//! End-to-end tool runs against the testbed designs: each tool is applied
//! the way a developer would use it during a debugging session.

use hwdbg::dataflow::{resolve, DepKind, PropGraph};
use hwdbg::ip::{StdIpLib, StdModels};
use hwdbg::rtl::parse_expr;
use hwdbg::sim::{SimConfig, Simulator};
use hwdbg::testbed::{buggy_design, workloads, BugId};
use hwdbg::tools::signalcat::SignalCatConfig;
use hwdbg::tools::statmon::Event;
use hwdbg::tools::{DependencyMonitor, FsmMonitor, SignalCat, StatisticsMonitor};

fn sim_of(design: hwdbg::dataflow::Design) -> Simulator {
    Simulator::new(design, &StdModels, SimConfig::default()).unwrap()
}

/// SignalCat's unified-logging contract on a real design: the
/// reconstructed on-FPGA log equals the native simulation log.
#[test]
fn signalcat_unifies_simulation_and_deployment_on_grayscale() {
    let lib = StdIpLib::new();
    let design = buggy_design(BugId::D2).unwrap();

    let mut native = sim_of(design.clone());
    let _ = workloads::run(BugId::D2, &mut native).unwrap();
    let native_msgs: Vec<_> = native.logs().iter().map(|l| l.message.clone()).collect();
    assert!(!native_msgs.is_empty());

    let info = SignalCat::instrument(&design, &SignalCatConfig::default()).unwrap();
    let mut deployed = sim_of(resolve(info.module.clone(), &lib).unwrap());
    let _ = workloads::run(BugId::D2, &mut deployed).unwrap();
    assert!(deployed.logs().is_empty(), "displays must be stripped");
    let rec: Vec<_> = SignalCat::reconstruct(&info, &deployed)
        .into_iter()
        .map(|l| l.message)
        .collect();
    assert_eq!(rec, native_msgs);
}

/// FSM Monitor on the case study: the hang leaves the read FSM in
/// RD_FINISH and the write FSM in WR_DATA (§6.3).
#[test]
fn fsm_monitor_shows_grayscale_stuck_states() {
    let lib = StdIpLib::new();
    let design = buggy_design(BugId::D2).unwrap();
    let info = FsmMonitor::new().instrument(&design).unwrap();
    let mut sim = sim_of(resolve(info.module.clone(), &lib).unwrap());
    let _ = workloads::run(BugId::D2, &mut sim).unwrap();
    let trace = FsmMonitor::trace(&info, &sim);
    let last = |sig: &str| {
        trace.iter().rfind(|t| t.signal == sig)
            .map(|t| t.to_name.clone())
            .unwrap_or_default()
    };
    assert_eq!(last("rd_state"), "RD_FINISH");
    assert_eq!(last("wr_state"), "WR_DATA");
}

/// Statistics Monitor exposes the loss as an input/output count mismatch.
#[test]
fn statistics_monitor_counts_expose_d2_loss() {
    let lib = StdIpLib::new();
    let design = buggy_design(BugId::D2).unwrap();
    let events = vec![
        Event::new("inp", parse_expr("pix_in_valid").unwrap()),
        Event::new("out", parse_expr("pix_out_valid").unwrap()),
    ];
    let info = StatisticsMonitor::instrument(&design, &events, None).unwrap();
    let mut sim = sim_of(resolve(info.module.clone(), &lib).unwrap());
    let _ = workloads::run(BugId::D2, &mut sim).unwrap();
    let counts = StatisticsMonitor::counts(&info, &sim);
    assert_eq!(counts["inp"], 24);
    assert!(counts["out"] < counts["inp"]);
}

/// Dependency Monitor traces an incorrect digest back through the SHA512
/// round pipeline to the truncated temporary.
#[test]
fn dependency_monitor_reaches_the_truncated_register_in_d5() {
    let lib = StdIpLib::new();
    let design = buggy_design(BugId::D5).unwrap();
    let graph = PropGraph::build(&design, &lib).unwrap();
    let chain = DependencyMonitor::analyze(
        &design,
        &graph,
        "digest",
        3,
        &[DepKind::Data, DepKind::Control],
    )
    .unwrap();
    assert!(
        chain.deps.contains_key("t1"),
        "the buggy 32-bit t1 must appear in digest's dependency chain: {:?}",
        chain.deps
    );
    let info = DependencyMonitor::instrument(&design, &chain).unwrap();
    let mut sim = sim_of(resolve(info.module.clone(), &lib).unwrap());
    let _ = workloads::run(BugId::D5, &mut sim).unwrap();
    let updates = DependencyMonitor::trace(&sim);
    assert!(
        updates.iter().any(|u| u.signal == "t1"),
        "updates to t1 must be logged: {updates:?}"
    );
}

/// The tools run on instrumented designs without changing the observable
/// bug: the symptom still reproduces after instrumentation.
#[test]
fn instrumentation_preserves_the_bug() {
    let lib = StdIpLib::new();
    for id in [BugId::D2, BugId::C1, BugId::D9] {
        let design = buggy_design(id).unwrap();
        let Ok(info) = SignalCat::instrument(&design, &SignalCatConfig::default()) else {
            continue;
        };
        let mut sim = sim_of(resolve(info.module, &lib).unwrap());
        let outcome = workloads::run(id, &mut sim).unwrap();
        assert!(
            matches!(outcome, hwdbg::testbed::Outcome::Fail { .. }),
            "{id}: instrumentation must not mask the bug"
        );
    }
}

/// Tool composition: FSM Monitor's trace instrumentation is itself built
/// from `$display`s, so SignalCat can compile it for deployment and the
/// transition trace reconstructs identically from the trace buffer —
/// exactly how §4.2 says FSM Monitor "uses SignalCat to support both
/// simulation and on-FPGA scenarios".
#[test]
fn fsm_monitor_composes_with_signalcat() {
    let lib = StdIpLib::new();
    let design = buggy_design(BugId::D9).unwrap();

    // FSM instrumentation, run natively.
    let fsm_info = FsmMonitor::new().instrument(&design).unwrap();
    let fsm_design = resolve(fsm_info.module.clone(), &lib).unwrap();
    let mut native = sim_of(fsm_design.clone());
    let _ = workloads::run(BugId::D9, &mut native).unwrap();
    let native_trace = FsmMonitor::trace(&fsm_info, &native);
    assert!(!native_trace.is_empty());

    // The FSM-instrumented design compiled for deployment by SignalCat.
    let sc_info = SignalCat::instrument(&fsm_design, &SignalCatConfig::default()).unwrap();
    let mut deployed = sim_of(resolve(sc_info.module.clone(), &lib).unwrap());
    let _ = workloads::run(BugId::D9, &mut deployed).unwrap();
    let reconstructed = SignalCat::reconstruct(&sc_info, &deployed);
    let deployed_trace = FsmMonitor::reconstruct(&fsm_info, &reconstructed);
    assert_eq!(deployed_trace, native_trace);
}

/// Checkpointing composes with the testbed: rewind a buggy run and
/// re-observe the same symptom deterministically.
#[test]
fn checkpoint_restore_replays_a_buggy_run() {
    let design = buggy_design(BugId::C1).unwrap();
    let mut sim = sim_of(design);
    sim.poke_u64("rst", 1).unwrap();
    sim.step("clk").unwrap();
    sim.poke_u64("rst", 0).unwrap();
    sim.poke_u64("go", 1).unwrap();
    sim.step("clk").unwrap();
    sim.poke_u64("go", 0).unwrap();
    let cp = sim.checkpoint().unwrap();
    sim.run("clk", 50).unwrap();
    let stuck_state = sim.peek("state_dbg").unwrap().to_u64();
    sim.restore(&cp).unwrap();
    sim.run("clk", 50).unwrap();
    assert_eq!(sim.peek("state_dbg").unwrap().to_u64(), stuck_state);
    assert_eq!(stuck_state, 1, "still deadlocked in WAIT");
}

/// §4.3's partial-assignment splitting: per-byte provenance of the SDSPI
/// response exposes the endianness bug directly — the low byte of `resp`
/// is sourced from the high byte of the shift register.
#[test]
fn partial_assignment_splitting_exposes_d9_endianness() {
    let design = buggy_design(BugId::D9).unwrap();
    let parts = DependencyMonitor::partial_assignments(&design, "resp");
    assert_eq!(parts.len(), 2, "{parts:?}");
    assert_eq!((parts[0].lo, parts[0].hi), (0, 7));
    assert_eq!((parts[1].lo, parts[1].hi), (8, 15));
    // Both ranges draw from `shift`; the *fixed* design has the same
    // shape, so the analysis output a developer compares is the printed
    // source expression per range — from the buggy design,
    // resp[7:0] <= shift[15:8] (swapped).
    assert_eq!(parts[0].srcs, vec!["shift".to_string()]);
    let buggy_src = hwdbg::testbed::metadata(BugId::D9).source;
    assert!(buggy_src.contains("resp[7:0] <= shift[15:8]"));
}
