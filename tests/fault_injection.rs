//! Resilience suite: every testbed bug × every applicable fault class,
//! through simulation *and* through all five debugging tools.
//!
//! The contract under test is the robustness story of this PR: when the
//! design under observation is perturbed mid-simulation (stuck nets, bit
//! flips, dropped handshakes, scrambled registers), every layer either
//! completes with a degraded-but-valid report or returns a typed error
//! (`SimError` / `ToolError` / `HwdbgError`) — it never panics. A panic
//! anywhere in this suite is a test failure by construction.

use hwdbg::dataflow::{resolve, DepKind, PropGraph, SigKind};
use hwdbg::ip::{StdIpLib, StdModels};
use hwdbg::rtl::parse_expr;
use hwdbg::sim::{run_with_faults, FaultPlan, SimConfig, Simulator};
use hwdbg::testbed::faults::{all_plans, FAULT_CLASSES};
use hwdbg::testbed::{buggy_design, metadata, BugId};
use hwdbg::tools::losscheck::LossCheckConfig;
use hwdbg::tools::signalcat::SignalCatConfig;
use hwdbg::tools::statmon::Event;
use hwdbg::tools::{DependencyMonitor, FsmMonitor, LossCheck, SignalCat, StatisticsMonitor};

/// Cycles to drive each faulted simulation. Long enough that every plan's
/// fault window (cycles 8..20) opens and closes while the workload-free
/// clock is still running.
const FAULT_CYCLES: u64 = 40;

const SEED: u64 = 0xC0FFEE;

fn clock_of(design: &hwdbg::dataflow::Design) -> Option<String> {
    design.clocks().into_iter().next()
}

/// Runs one faulted simulation of `design`, returning whether it
/// completed (Ok) or failed with a typed error (also fine).
fn faulted_run(design: hwdbg::dataflow::Design, clock: &str, plan: &FaultPlan) {
    let mut sim = match Simulator::new(design, &StdModels, SimConfig::default()) {
        Ok(s) => s,
        // A typed construction error is an acceptable outcome.
        Err(_e) => return,
    };
    // Ok(cycles) or a typed SimError are both acceptable; what is not
    // acceptable — a panic — would abort the test.
    let _ = run_with_faults(&mut sim, clock, FAULT_CYCLES, plan);
}

/// Every bug survives every applicable fault class in plain simulation.
#[test]
fn all_bugs_survive_all_fault_classes() {
    let mut pairs = 0usize;
    for id in BugId::ALL {
        let design = buggy_design(id).unwrap();
        let clock = clock_of(&design).unwrap_or_else(|| "clk".into());
        let plans = all_plans(&design, SEED);
        assert_eq!(
            plans.len(),
            FAULT_CLASSES.len(),
            "{id}: every fault class must apply, got {plans:?}"
        );
        for (class, plan) in &plans {
            faulted_run(design.clone(), &clock, plan);
            pairs += 1;
            let _ = class;
        }
    }
    // 20 designs × 4 classes: the suite must exercise the full matrix,
    // not silently skip its way to green.
    assert_eq!(
        pairs,
        BugId::ALL.len() * FAULT_CLASSES.len(),
        "fault matrix incomplete: only {pairs} (bug, class) pairs ran"
    );
}

/// The four fault classes all apply to at least one design each (no class
/// is dead code in the suite).
#[test]
fn every_fault_class_is_exercised() {
    let mut seen = std::collections::BTreeSet::new();
    for id in BugId::ALL {
        let design = buggy_design(id).unwrap();
        for (class, _) in all_plans(&design, SEED) {
            seen.insert(class);
        }
    }
    for class in FAULT_CLASSES {
        assert!(seen.contains(class), "fault class {class} never applied");
    }
}

/// SignalCat reconstruction stays panic-free on faulted runs across the
/// whole testbed.
#[test]
fn signalcat_survives_faults() {
    let lib = StdIpLib::new();
    for id in BugId::ALL {
        let design = buggy_design(id).unwrap();
        let clock = clock_of(&design).unwrap_or_else(|| "clk".into());
        let info = match SignalCat::instrument(&design, &SignalCatConfig::default()) {
            Ok(i) => i,
            Err(_e) => continue, // typed ToolError: acceptable
        };
        let instrumented = resolve(info.module.clone(), &lib).unwrap();
        for (_class, plan) in all_plans(&design, SEED) {
            let Ok(mut sim) = Simulator::new(instrumented.clone(), &StdModels, SimConfig::default())
            else {
                continue;
            };
            let _ = run_with_faults(&mut sim, &clock, FAULT_CYCLES, &plan);
            // Reconstruction over a perturbed buffer must not panic.
            let _records = SignalCat::reconstruct(&info, &sim);
        }
    }
}

/// FSM Monitor tracing stays panic-free on faulted runs — including
/// stuck/scrambled state registers driving the FSM into unnamed states.
#[test]
fn fsm_monitor_survives_faults() {
    let lib = StdIpLib::new();
    for id in BugId::ALL {
        let design = buggy_design(id).unwrap();
        let clock = clock_of(&design).unwrap_or_else(|| "clk".into());
        let info = match FsmMonitor::new().instrument(&design) {
            Ok(i) => i,
            Err(_e) => continue,
        };
        let instrumented = resolve(info.module.clone(), &lib).unwrap();
        for (_class, plan) in all_plans(&design, SEED) {
            let Ok(mut sim) = Simulator::new(instrumented.clone(), &StdModels, SimConfig::default())
            else {
                continue;
            };
            let _ = run_with_faults(&mut sim, &clock, FAULT_CYCLES, &plan);
            let _transitions = FsmMonitor::trace(&info, &sim);
        }
    }
}

/// Dependency Monitor: analyze a register's chain, instrument, run
/// faulted, reconstruct updates. Never panics.
#[test]
fn dependency_monitor_survives_faults() {
    let lib = StdIpLib::new();
    for id in BugId::ALL {
        let design = buggy_design(id).unwrap();
        let clock = clock_of(&design).unwrap_or_else(|| "clk".into());
        let Some(target) = design
            .signals
            .values()
            .find(|s| s.kind == SigKind::Reg && !s.name.starts_with("__"))
            .map(|s| s.name.clone())
        else {
            continue;
        };
        let graph = PropGraph::build(&design, &lib).unwrap();
        let chain = match DependencyMonitor::analyze(
            &design,
            &graph,
            &target,
            2,
            &[DepKind::Data, DepKind::Control],
        ) {
            Ok(c) => c,
            Err(_e) => continue,
        };
        let info = match DependencyMonitor::instrument(&design, &chain) {
            Ok(i) => i,
            Err(_e) => continue,
        };
        let instrumented = resolve(info.module.clone(), &lib).unwrap();
        for (_class, plan) in all_plans(&design, SEED) {
            let Ok(mut sim) = Simulator::new(instrumented.clone(), &StdModels, SimConfig::default())
            else {
                continue;
            };
            let _ = run_with_faults(&mut sim, &clock, FAULT_CYCLES, &plan);
            let _updates = DependencyMonitor::trace(&sim);
        }
    }
}

/// Statistics Monitor: count valid/ready strobes while the strobes
/// themselves are being dropped or scrambled. Never panics.
#[test]
fn statistics_monitor_survives_faults() {
    let lib = StdIpLib::new();
    for id in BugId::ALL {
        let design = buggy_design(id).unwrap();
        let clock = clock_of(&design).unwrap_or_else(|| "clk".into());
        let events: Vec<Event> = design
            .signals
            .values()
            .filter(|s| {
                s.width == 1
                    && matches!(s.kind, SigKind::Input | SigKind::Output)
                    && !s.name.starts_with("__")
                    && s.name != "clk"
                    && s.name != "rst"
            })
            .filter_map(|s| {
                let expr = parse_expr(&s.name).ok()?;
                Some(Event::new(format!("ev_{}", s.name), expr))
            })
            .collect();
        if events.is_empty() {
            continue;
        }
        let info = match StatisticsMonitor::instrument(&design, &events, None) {
            Ok(i) => i,
            Err(_e) => continue,
        };
        let instrumented = resolve(info.module.clone(), &lib).unwrap();
        for (_class, plan) in all_plans(&design, SEED) {
            let Ok(mut sim) = Simulator::new(instrumented.clone(), &StdModels, SimConfig::default())
            else {
                continue;
            };
            let _ = run_with_faults(&mut sim, &clock, FAULT_CYCLES, &plan);
            let counts = StatisticsMonitor::counts(&info, &sim);
            // Degraded-but-valid: every declared event still has a count.
            assert_eq!(counts.len(), events.len(), "{id}: missing event counts");
        }
    }
}

/// LossCheck on the data-loss bugs while faults drop the very handshakes
/// it watches: raw reports may be noisier or emptier than the clean run,
/// but reporting never panics.
#[test]
fn losscheck_survives_faults() {
    let lib = StdIpLib::new();
    for id in BugId::ALL {
        let meta = metadata(id);
        let Some(spec) = meta.loss else { continue };
        let design = buggy_design(id).unwrap();
        let clock = clock_of(&design).unwrap_or_else(|| "clk".into());
        let graph = PropGraph::build(&design, &lib).unwrap();
        let cfg = LossCheckConfig {
            source: spec.source.into(),
            sink: spec.sink.into(),
            source_valid: spec.valid.into(),
        };
        let info = match LossCheck::instrument(&design, &graph, &cfg) {
            Ok(i) => i,
            Err(_e) => continue,
        };
        let instrumented = resolve(info.module.clone(), &lib).unwrap();
        for (_class, plan) in all_plans(&design, SEED) {
            let Ok(mut sim) = Simulator::new(instrumented.clone(), &StdModels, SimConfig::default())
            else {
                continue;
            };
            let _ = run_with_faults(&mut sim, &clock, FAULT_CYCLES, &plan);
            let _reports = LossCheck::reports(sim.logs());
        }
    }
}

/// Peeks every observable (non-generated, non-memory) signal of the
/// design, giving one bit-for-bit snapshot of the architectural state.
fn snapshot(sim: &Simulator, design: &hwdbg::dataflow::Design) -> Vec<(String, hwdbg::bits::Bits)> {
    design
        .signals
        .values()
        .filter(|s| !s.name.starts_with("__"))
        .filter_map(|s| Some((s.name.clone(), sim.peek(&s.name).ok()?.clone())))
        .collect()
}

/// Checkpoint/restore must erase a fault's footprint completely: run to a
/// checkpoint, let a fault plan force registers (window still open — the
/// force is live at restore time), restore, and rerun fault-free. The
/// rerun's cycle-by-cycle state must match a never-faulted run bit for
/// bit. Guards the `Checkpoint`-captures-`forces` fix: before it, the
/// leaked force pinned the register through the rerun.
#[test]
fn restore_after_faulted_run_replays_bit_for_bit() {
    const PREFIX: u64 = 10;
    const FAULTED: u64 = 12;
    const REPLAY: u64 = 20;

    let design = buggy_design(BugId::D2).unwrap();
    let clock = clock_of(&design).unwrap_or_else(|| "clk".into());
    let (target, width) = design
        .signals
        .values()
        .find(|s| s.kind == SigKind::Reg && !s.name.starts_with("__"))
        .map(|s| (s.name.clone(), s.width))
        .unwrap();

    // Ground truth: the same stimulus with no fault ever injected.
    let mut clean = Simulator::new(design.clone(), &StdModels, SimConfig::default()).unwrap();
    clean.run(&clock, PREFIX).unwrap();
    let mut expected = Vec::new();
    for _ in 0..REPLAY {
        clean.step(&clock).unwrap();
        expected.push(snapshot(&clean, &design));
    }

    // Candidate: checkpoint, simulate under an open-ended stuck-at force
    // (until=None — still pinned when we restore), then rewind and replay.
    let mut sim = Simulator::new(design.clone(), &StdModels, SimConfig::default()).unwrap();
    sim.run(&clock, PREFIX).unwrap();
    let cp = sim.checkpoint().unwrap();
    // Fault cycles are absolute clock cycles; the window opens shortly
    // after the checkpoint (taken at cycle PREFIX) and never closes.
    let plan = FaultPlan::new().stuck_at(
        &target,
        hwdbg::bits::Bits::from_u64(width, 0xA5),
        PREFIX + 2,
        None,
    );
    for _ in 0..FAULTED {
        hwdbg::sim::step_with_faults(&mut sim, &clock, &plan).unwrap();
    }
    assert!(
        !sim.forced_signals().is_empty(),
        "the fault window must still be open at restore time"
    );
    sim.restore(&cp).unwrap();
    assert!(
        sim.forced_signals().is_empty(),
        "restore must drop forces applied after the checkpoint"
    );
    for (cycle, want) in expected.iter().enumerate() {
        sim.step(&clock).unwrap();
        let got = snapshot(&sim, &design);
        assert_eq!(
            &got, want,
            "cycle {cycle} after restore diverged from the never-faulted run"
        );
    }
}

/// A fault plan that names a signal the design does not have is rejected
/// with a typed error naming the culprit, not a panic downstream.
#[test]
fn bogus_plan_is_rejected_by_validate() {
    let design = buggy_design(BugId::D1).unwrap();
    let plan = FaultPlan::new().handshake_drop("no_such_wire", 0, None);
    let err = plan.validate(&design).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("no_such_wire"), "error must name the signal: {msg}");
    let diag: hwdbg::diag::HwdbgError = err.into();
    assert_eq!(diag.code, hwdbg::diag::ErrorCode::BadFaultPlan);
}

/// Forces really do pin signals against the design's own drivers: a
/// stuck-at fault on a register holds its value for the whole window.
#[test]
fn stuck_at_actually_pins_the_register() {
    let design = buggy_design(BugId::D2).unwrap();
    let clock = clock_of(&design).unwrap_or_else(|| "clk".into());
    let Some((_, plan)) = all_plans(&design, SEED)
        .into_iter()
        .find(|(c, _)| *c == "stuck-at")
    else {
        panic!("D2 must have a stuck-at plan");
    };
    let target = plan.faults[0].signal.clone();
    let mut sim = Simulator::new(design, &StdModels, SimConfig::default()).unwrap();
    let mut pinned_values = std::collections::BTreeSet::new();
    for cycle in 0..24u64 {
        let _ = hwdbg::sim::step_with_faults(&mut sim, &clock, &plan);
        // Inside the window (fault active from cycle 8 to 20) the value
        // must be the forced one, every cycle.
        if (9..20).contains(&cycle) {
            pinned_values.insert(sim.peek(&target).unwrap().to_u64());
        }
    }
    assert_eq!(
        pinned_values.len(),
        1,
        "stuck-at must hold one value across the window: {pinned_values:?}"
    );
}
