//! Cross-crate checks of the paper's quantitative claims, as reproduced by
//! this workspace (EXPERIMENTS.md records paper-vs-measured in detail).

use hwdbg_bench::{fsm_eval, losscheck_eval, monitor_overhead, LOSS_BUGS};
use hwdbg::testbed::{metadata, study, BugId, Tool};

/// Table 1: 68 bugs, the published per-subclass counts, 28/17/23 per class.
#[test]
fn table1_counts_match_the_paper() {
    assert_eq!(study::catalog().len(), 68);
    let counts = study::table1_counts();
    let get = |s: hwdbg::testbed::Subclass| {
        counts.iter().find(|(x, _)| *x == s).map(|(_, n)| *n).unwrap()
    };
    use hwdbg::testbed::Subclass::*;
    assert_eq!(get(BufferOverflow), 5);
    assert_eq!(get(BitTruncation), 12);
    assert_eq!(get(Misindexing), 5);
    assert_eq!(get(EndiannessMismatch), 1);
    assert_eq!(get(FailureToUpdate), 5);
    assert_eq!(get(Deadlock), 3);
    assert_eq!(get(ProducerConsumerMismatch), 3);
    assert_eq!(get(SignalAsynchrony), 10);
    assert_eq!(get(UseWithoutValid), 1);
    assert_eq!(get(ProtocolViolation), 3);
    assert_eq!(get(ApiMisuse), 3);
    assert_eq!(get(IncompleteImplementation), 7);
    assert_eq!(get(ErroneousExpression), 10);
}

/// §6.3: SignalCat helps every bug; each monitor helps at least four.
#[test]
fn tool_applicability_matches_section_6_3() {
    let helps = |tool: Tool| {
        BugId::ALL
            .iter()
            .filter(|id| metadata(**id).helpful.contains(&tool))
            .count()
    };
    assert_eq!(helps(Tool::SignalCat), 20);
    assert!(helps(Tool::FsmMonitor) >= 4);
    assert!(helps(Tool::StatMonitor) >= 4);
    assert!(helps(Tool::DepMonitor) >= 4);
    assert!(helps(Tool::LossCheck) >= 4);
}

/// §6.3: LossCheck localizes 6 of the 7 data-loss bugs; D1 shows exactly
/// one false positive; D11 is mis-filtered (the false negative).
#[test]
fn losscheck_results_match_section_6_3() {
    let mut localized = 0;
    for id in LOSS_BUGS {
        let e = losscheck_eval(id).unwrap_or_else(|err| panic!("{id}: {err}"));
        localized += e.localized as usize;
        match id {
            BugId::D1 => {
                assert!(e.localized);
                assert_eq!(e.false_positives, 1, "D1 must report exactly one FP: {e:?}");
            }
            BugId::D11 => {
                assert!(!e.localized, "D11 must be mis-filtered: {e:?}");
                assert!(e.raw.contains("in_reg"));
            }
            _ => {
                assert!(e.localized, "{id}: {e:?}");
                assert_eq!(e.false_positives, 0, "{id}: {e:?}");
            }
        }
        // Ground-truth filtering matches the metadata's expectation.
        assert_eq!(
            !e.ground.is_empty(),
            metadata(id).loss.unwrap().needs_filtering,
            "{id}: filtering usage diverged"
        );
    }
    assert_eq!(localized, 6, "paper: 6/7 localized");
}

/// §6.4: after SignalCat+monitor instrumentation, 18 of 20 designs keep
/// their target frequency; the two misses are the Optimus designs (D3 and
/// C2), which drop from 400 MHz but still meet 200 MHz.
#[test]
fn target_frequency_claims_match_section_6_4() {
    let mut misses = Vec::new();
    for id in BugId::ALL {
        let m = monitor_overhead(id, 8192).unwrap_or_else(|e| panic!("{id}: {e}"));
        if !m.meets_target {
            assert!(
                m.timing.meets(200.0),
                "{id}: even the reduced 200 MHz clock fails: {:?}",
                m.timing
            );
            misses.push(id);
        }
    }
    assert_eq!(misses, vec![BugId::D3, BugId::C2], "only Optimus misses");
}

/// Figure 2's shape: block RAM grows linearly with the recording-buffer
/// depth while register/logic overhead stays (essentially) flat.
#[test]
fn figure2_shape_holds() {
    for id in [BugId::D2, BugId::D5, BugId::C4] {
        let a = monitor_overhead(id, 1024).unwrap();
        let b = monitor_overhead(id, 2048).unwrap();
        let c = monitor_overhead(id, 4096).unwrap();
        let d1 = b.overhead.bram_bits - a.overhead.bram_bits;
        let d2 = c.overhead.bram_bits - b.overhead.bram_bits;
        assert_eq!(d2, 2 * d1, "{id}: BRAM not linear");
        assert!(d1 > 0, "{id}: BRAM must grow");
        assert!(
            c.overhead.registers.abs_diff(a.overhead.registers) <= 8,
            "{id}: registers not flat"
        );
    }
}

/// §4.2 / §6.3: the FSM detector has 0 false positives and 5 false
/// negatives against the labeled FSMs of the testbed.
#[test]
fn fsm_confusion_matrix_matches_the_paper() {
    let f = fsm_eval().unwrap();
    assert_eq!(f.false_positives, 0);
    assert_eq!(f.false_negatives, 5);
    assert_eq!(f.true_positives + f.false_negatives, f.labeled);
    assert!(f.labeled >= 10, "the testbed labels a meaningful FSM population");
}
