//! Randomized property tests on the core substrates: `Bits` arithmetic
//! against a `u128` reference model, parser/printer round-tripping over
//! generated expressions and modules, and const-eval/simulator agreement.
//!
//! Cases are driven by the in-tree [`SplitMix64`] generator with fixed
//! seeds, so every run checks the same (large) sample deterministically —
//! the offline build has no proptest, and shrinking matters less than
//! reproducibility here: a failure prints the seed/iteration inputs.

use hwdbg::bits::{Bits, SplitMix64};

const CASES: u64 = 512;

fn mask(width: u32) -> u128 {
    if width >= 128 {
        u128::MAX
    } else {
        (1u128 << width) - 1
    }
}

// ---- Bits vs. u128 reference model ---------------------------------------

#[test]
fn add_sub_match_u128() {
    let mut rng = SplitMix64::new(0xB175_0001);
    for _ in 0..CASES {
        let (a, b) = (rng.next_u128(), rng.next_u128());
        let width = rng.range(1, 128) as u32;
        let x = Bits::from_u128(width, a);
        let y = Bits::from_u128(width, b);
        assert_eq!(
            x.add(&y).to_u128(),
            a.wrapping_add(b) & mask(width),
            "add a={a:#x} b={b:#x} width={width}"
        );
        assert_eq!(
            x.sub(&y).to_u128(),
            a.wrapping_sub(b) & mask(width),
            "sub a={a:#x} b={b:#x} width={width}"
        );
    }
}

#[test]
fn mul_matches_u128() {
    let mut rng = SplitMix64::new(0xB175_0002);
    for _ in 0..CASES {
        let (a, b) = (rng.next_u64(), rng.next_u64());
        let width = rng.range(1, 64) as u32;
        let x = Bits::from_u128(width, a as u128);
        let y = Bits::from_u128(width, b as u128);
        let expect =
            (a as u128 & mask(width)).wrapping_mul(b as u128 & mask(width)) & mask(width);
        assert_eq!(x.mul(&y).to_u128(), expect, "a={a:#x} b={b:#x} width={width}");
    }
}

#[test]
fn div_rem_match_u128() {
    let mut rng = SplitMix64::new(0xB175_0003);
    for i in 0..CASES {
        let width = rng.range(1, 128) as u32;
        let am = rng.next_u128() & mask(width);
        // Exercise the divide-by-zero convention on a slice of the cases.
        let bm = if i % 8 == 0 { 0 } else { rng.next_u128() & mask(width) };
        let x = Bits::from_u128(width, am);
        let y = Bits::from_u128(width, bm);
        match (am.checked_div(bm), am.checked_rem(bm)) {
            // Hardware convention: division by zero yields zero.
            (None, None) => {
                assert!(x.div(&y).is_zero(), "a={am:#x} width={width}");
                assert!(x.rem(&y).is_zero(), "a={am:#x} width={width}");
            }
            (Some(q), Some(r)) => {
                assert_eq!(x.div(&y).to_u128(), q, "a={am:#x} b={bm:#x} width={width}");
                assert_eq!(x.rem(&y).to_u128(), r, "a={am:#x} b={bm:#x} width={width}");
            }
            _ => unreachable!(),
        }
    }
}

#[test]
fn shifts_match_u128() {
    let mut rng = SplitMix64::new(0xB175_0004);
    for _ in 0..CASES {
        let a = rng.next_u128();
        let sh = rng.below(140) as u32;
        let width = rng.range(1, 128) as u32;
        let x = Bits::from_u128(width, a);
        let expect = if sh >= width {
            0
        } else {
            ((a & mask(width)) << sh) & mask(width)
        };
        assert_eq!(x.shl(sh).to_u128(), expect, "shl a={a:#x} sh={sh} width={width}");
        let expect_r = if sh >= 128 { 0 } else { (a & mask(width)) >> sh };
        assert_eq!(x.shr(sh).to_u128(), expect_r, "shr a={a:#x} sh={sh} width={width}");
    }
}

#[test]
fn concat_slice_roundtrip() {
    let mut rng = SplitMix64::new(0xB175_0005);
    for _ in 0..CASES {
        let (a, b) = (rng.next_u64(), rng.next_u64());
        let wa = rng.range(1, 64) as u32;
        let wb = rng.range(1, 64) as u32;
        let hi = Bits::from_u64(wa, a);
        let lo = Bits::from_u64(wb, b);
        let cat = hi.concat(&lo);
        assert_eq!(cat.width(), wa + wb);
        assert_eq!(cat.slice(0, wb), lo, "a={a:#x} b={b:#x} wa={wa} wb={wb}");
        assert_eq!(cat.slice(wb, wa), hi, "a={a:#x} b={b:#x} wa={wa} wb={wb}");
    }
}

#[test]
fn dec_string_matches_u128() {
    let mut rng = SplitMix64::new(0xB175_0006);
    for _ in 0..CASES {
        let a = rng.next_u128();
        let width = rng.range(1, 128) as u32;
        let x = Bits::from_u128(width, a);
        assert_eq!(x.to_dec_string(), format!("{}", a & mask(width)));
    }
}

#[test]
fn literal_roundtrip() {
    let mut rng = SplitMix64::new(0xB175_0007);
    for _ in 0..CASES {
        let width = rng.range(1, 64) as u32;
        let v = rng.next_u64() & mask(width) as u64;
        let text = format!("{width}'h{v:x}");
        let parsed = Bits::parse_literal(&text).unwrap();
        assert_eq!(parsed.to_u64(), v, "text={text}");
        assert_eq!(parsed.width(), width, "text={text}");
    }
}

// ---- Random expression generator -----------------------------------------

/// Produces a random well-formed expression over a small identifier
/// alphabet, with bounded recursion depth.
fn arb_expr(rng: &mut SplitMix64, depth: u32) -> String {
    const IDENTS: [&str; 4] = ["a", "b", "c", "sel"];
    const BINOPS: [&str; 13] = [
        "+", "-", "&", "|", "^", "==", "!=", "<", ">", "&&", "||", "<<", ">>",
    ];
    if depth == 0 || rng.below(4) == 0 {
        // Leaf: identifier or sized literal.
        return if rng.next_bool() {
            IDENTS[rng.below(IDENTS.len() as u64) as usize].to_owned()
        } else {
            let w = rng.range(1, 16);
            let v = rng.below(200) & ((1 << w) - 1);
            format!("{w}'h{v:x}")
        };
    }
    match rng.below(6) {
        0 => {
            let l = arb_expr(rng, depth - 1);
            let r = arb_expr(rng, depth - 1);
            let op = BINOPS[rng.below(BINOPS.len() as u64) as usize];
            format!("({l}) {op} ({r})")
        }
        1 => format!("~({})", arb_expr(rng, depth - 1)),
        2 => format!("!({})", arb_expr(rng, depth - 1)),
        3 => {
            let c = arb_expr(rng, depth - 1);
            let t = arb_expr(rng, depth - 1);
            let f = arb_expr(rng, depth - 1);
            format!("({c}) ? ({t}) : ({f})")
        }
        4 => {
            let l = arb_expr(rng, depth - 1);
            let r = arb_expr(rng, depth - 1);
            format!("{{({l}), ({r})}}")
        }
        _ => {
            let n = rng.range(1, 5);
            format!("{{{n}{{({})}}}}", arb_expr(rng, depth - 1))
        }
    }
}

// ---- Parser / printer round-trip -----------------------------------------

/// print(parse(e)) is a fixpoint: re-parsing the printed text yields a
/// structurally identical AST.
#[test]
fn expr_print_parse_fixpoint() {
    let mut rng = SplitMix64::new(0xE10A_0001);
    for _ in 0..128 {
        let src = arb_expr(&mut rng, 4);
        let ast1 = hwdbg::rtl::parse_expr(&src).unwrap();
        let printed1 = hwdbg::rtl::print_expr(&ast1);
        let ast2 = hwdbg::rtl::parse_expr(&printed1).unwrap();
        assert_eq!(ast1, ast2, "src: {src}\nprinted: {printed1}");
    }
}

/// Random always-block bodies survive a module-level round trip.
#[test]
fn module_print_parse_fixpoint() {
    let mut rng = SplitMix64::new(0xE10A_0002);
    for _ in 0..64 {
        let e1 = arb_expr(&mut rng, 3);
        let e2 = arb_expr(&mut rng, 3);
        let src = format!(
            "module m(input clk, input [7:0] a, input [7:0] b, input [7:0] c, input sel,
                      output reg [15:0] q);
               always @(posedge clk) begin
                 if ({e1}) q <= {e2};
                 else q <= q + 16'd1;
               end
             endmodule"
        );
        let ast1 = hwdbg::rtl::parse(&src).unwrap();
        let printed = hwdbg::rtl::print(&ast1);
        let ast2 = hwdbg::rtl::parse(&printed).unwrap();
        assert_eq!(hwdbg::rtl::print(&ast2), printed, "e1: {e1}\ne2: {e2}");
    }
}

/// Constant folding agrees with the simulator: evaluating an expression
/// over constants gives the same value through `eval_const` and through a
/// simulated continuous assignment.
#[test]
fn const_eval_matches_simulation() {
    let mut rng = SplitMix64::new(0xE10A_0003);
    for _ in 0..128 {
        let e = arb_expr(&mut rng, 4);
        // Bind the free identifiers to fixed constants.
        let env: hwdbg::dataflow::ConstEnv = [
            ("a", 8u32, 0x5Au64),
            ("b", 8, 0x33),
            ("c", 8, 0x0F),
            ("sel", 1, 1), // widths must match the module's port widths
        ]
        .into_iter()
        .map(|(n, w, v)| (n.to_string(), Bits::from_u64(w, v)))
        .collect();
        let expr = hwdbg::rtl::parse_expr(&e).unwrap();
        let Ok(folded) = hwdbg::dataflow::eval_const(&expr, &env) else {
            continue; // e.g. zero replication count
        };

        let src = format!(
            "module m(input [7:0] a, input [7:0] b, input [7:0] c, input sel,
                      output [63:0] q);
               assign q = {e};
             endmodule"
        );
        let design = hwdbg::dataflow::elaborate(
            &hwdbg::rtl::parse(&src).unwrap(),
            "m",
            &hwdbg::dataflow::NoBlackboxes,
        )
        .unwrap();
        let mut sim = hwdbg::sim::Simulator::new(
            design,
            &hwdbg::sim::NoModels,
            hwdbg::sim::SimConfig::default(),
        )
        .unwrap();
        sim.poke_u64("a", 0x5A).unwrap();
        sim.poke_u64("b", 0x33).unwrap();
        sim.poke_u64("c", 0x0F).unwrap();
        sim.poke_u64("sel", 1).unwrap();
        sim.settle().unwrap();
        let got = sim.peek("q").unwrap().to_u64();
        assert_eq!(got, folded.resize(64).to_u64(), "expr: {e}");
    }
}
