//! Property-based tests on the core substrates: `Bits` arithmetic against
//! a `u128` reference model, parser/printer round-tripping over generated
//! expressions and modules, and simulator/propagation invariants.

use hwdbg::bits::Bits;
use proptest::prelude::*;

// ---- Bits vs. u128 reference model ---------------------------------------

fn mask(width: u32) -> u128 {
    if width >= 128 {
        u128::MAX
    } else {
        (1u128 << width) - 1
    }
}

proptest! {
    #[test]
    fn add_matches_u128(a: u128, b: u128, width in 1u32..128) {
        let x = Bits::from_u128(width, a);
        let y = Bits::from_u128(width, b);
        let got = x.add(&y).to_u128();
        prop_assert_eq!(got, a.wrapping_add(b) & mask(width));
    }

    #[test]
    fn sub_matches_u128(a: u128, b: u128, width in 1u32..128) {
        let x = Bits::from_u128(width, a);
        let y = Bits::from_u128(width, b);
        prop_assert_eq!(x.sub(&y).to_u128(), a.wrapping_sub(b) & mask(width));
    }

    #[test]
    fn mul_matches_u128(a: u64, b: u64, width in 1u32..64) {
        let x = Bits::from_u128(width, a as u128);
        let y = Bits::from_u128(width, b as u128);
        let expect = (a as u128 & mask(width)).wrapping_mul(b as u128 & mask(width)) & mask(width);
        prop_assert_eq!(x.mul(&y).to_u128(), expect);
    }

    #[test]
    fn div_rem_matches_u128(a: u128, b: u128, width in 1u32..128) {
        let am = a & mask(width);
        let bm = b & mask(width);
        let x = Bits::from_u128(width, am);
        let y = Bits::from_u128(width, bm);
        if bm == 0 {
            prop_assert!(x.div(&y).is_zero());
            prop_assert!(x.rem(&y).is_zero());
        } else {
            prop_assert_eq!(x.div(&y).to_u128(), am / bm);
            prop_assert_eq!(x.rem(&y).to_u128(), am % bm);
        }
    }

    #[test]
    fn shifts_match_u128(a: u128, sh in 0u32..140, width in 1u32..128) {
        let x = Bits::from_u128(width, a);
        let expect = if sh >= width { 0 } else { ((a & mask(width)) << sh) & mask(width) };
        prop_assert_eq!(x.shl(sh).to_u128(), expect);
        let expect_r = if sh >= 128 { 0 } else { (a & mask(width)) >> sh };
        prop_assert_eq!(x.shr(sh).to_u128(), expect_r);
    }

    #[test]
    fn concat_slice_roundtrip(a: u64, b: u64, wa in 1u32..64, wb in 1u32..64) {
        let hi = Bits::from_u64(wa, a);
        let lo = Bits::from_u64(wb, b);
        let cat = hi.concat(&lo);
        prop_assert_eq!(cat.width(), wa + wb);
        prop_assert_eq!(cat.slice(0, wb), lo);
        prop_assert_eq!(cat.slice(wb, wa), hi);
    }

    #[test]
    fn dec_string_matches_u128(a: u128, width in 1u32..128) {
        let x = Bits::from_u128(width, a);
        prop_assert_eq!(x.to_dec_string(), format!("{}", a & mask(width)));
    }

    #[test]
    fn literal_roundtrip(a: u64, width in 1u32..64) {
        let v = a & mask(width) as u64;
        let text = format!("{width}'h{:x}", v);
        let parsed = Bits::parse_literal(&text).unwrap();
        prop_assert_eq!(parsed.to_u64(), v);
        prop_assert_eq!(parsed.width(), width);
    }
}

// ---- Parser / printer round-trip -----------------------------------------

/// Strategy producing random well-formed expressions over a small
/// identifier alphabet.
fn arb_expr() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        prop::sample::select(vec!["a", "b", "c", "sel"]).prop_map(String::from),
        (1u32..16, 0u64..200).prop_map(|(w, v)| format!("{w}'h{:x}", v & ((1 << w) - 1))),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), prop::sample::select(vec![
                "+", "-", "&", "|", "^", "==", "!=", "<", ">", "&&", "||", "<<", ">>"
            ]))
                .prop_map(|(l, r, op)| format!("({l}) {op} ({r})")),
            (inner.clone()).prop_map(|e| format!("~({e})")),
            (inner.clone()).prop_map(|e| format!("!({e})")),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, f)| format!("({c}) ? ({t}) : ({f})")),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| format!("{{({l}), ({r})}}")),
            (1u32..5, inner.clone()).prop_map(|(n, e)| format!("{{{n}{{({e})}}}}")),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// print(parse(e)) is a fixpoint: re-parsing the printed text yields
    /// a structurally identical AST.
    #[test]
    fn expr_print_parse_fixpoint(src in arb_expr()) {
        let ast1 = hwdbg::rtl::parse_expr(&src).unwrap();
        let printed1 = hwdbg::rtl::print_expr(&ast1);
        let ast2 = hwdbg::rtl::parse_expr(&printed1).unwrap();
        prop_assert_eq!(&ast1, &ast2, "printed: {}", printed1);
    }

    /// Random always-block bodies survive a module-level round trip.
    #[test]
    fn module_print_parse_fixpoint(e1 in arb_expr(), e2 in arb_expr()) {
        let src = format!(
            "module m(input clk, input [7:0] a, input [7:0] b, input [7:0] c, input sel,
                      output reg [15:0] q);
               always @(posedge clk) begin
                 if ({e1}) q <= {e2};
                 else q <= q + 16'd1;
               end
             endmodule"
        );
        let ast1 = hwdbg::rtl::parse(&src).unwrap();
        let printed = hwdbg::rtl::print(&ast1);
        let ast2 = hwdbg::rtl::parse(&printed).unwrap();
        prop_assert_eq!(hwdbg::rtl::print(&ast2), printed);
    }

    /// Constant folding agrees with the simulator: evaluating an
    /// expression over constants gives the same value through
    /// `eval_const` and through a simulated continuous assignment.
    #[test]
    fn const_eval_matches_simulation(e in arb_expr()) {
        // Bind the free identifiers to fixed constants.
        let env: hwdbg::dataflow::ConstEnv = [
            ("a", 8u32, 0x5Au64),
            ("b", 8, 0x33),
            ("c", 8, 0x0F),
            ("sel", 1, 1), // widths must match the module's port widths
        ]
        .into_iter()
        .map(|(n, w, v)| (n.to_string(), Bits::from_u64(w, v)))
        .collect();
        let expr = hwdbg::rtl::parse_expr(&e).unwrap();
        let Ok(folded) = hwdbg::dataflow::eval_const(&expr, &env) else {
            return Ok(()); // e.g. zero replication count
        };

        let src = format!(
            "module m(input [7:0] a, input [7:0] b, input [7:0] c, input sel,
                      output [63:0] q);
               assign q = {e};
             endmodule"
        );
        let design = hwdbg::dataflow::elaborate(
            &hwdbg::rtl::parse(&src).unwrap(),
            "m",
            &hwdbg::dataflow::NoBlackboxes,
        )
        .unwrap();
        let mut sim = hwdbg::sim::Simulator::new(
            design,
            &hwdbg::sim::NoModels,
            hwdbg::sim::SimConfig::default(),
        )
        .unwrap();
        sim.poke_u64("a", 0x5A).unwrap();
        sim.poke_u64("b", 0x33).unwrap();
        sim.poke_u64("c", 0x0F).unwrap();
        sim.poke_u64("sel", 1).unwrap();
        sim.settle().unwrap();
        let got = sim.peek("q").unwrap().to_u64();
        prop_assert_eq!(got, folded.resize(64).to_u64(), "expr: {}", e);
    }
}
