//! The testbed's headline property (§6.1): every bug in Table 2 is
//! reproducible push-button — the buggy design exhibits its documented
//! symptom and the fixed design passes the same workload.

use hwdbg::testbed::{metadata, reproduce, BugId};

#[test]
fn all_twenty_bugs_reproduce_and_all_fixes_pass() {
    for id in BugId::ALL {
        let r = reproduce(id).unwrap_or_else(|e| panic!("{id}: {e}"));
        assert!(
            r.symptom_observed,
            "{id}: expected one of {:?}, observed {:?} ({})",
            metadata(id).symptoms,
            r.symptom,
            r.detail
        );
        assert!(r.fixed_passes, "{id}: fixed design failed ({})", r.detail);
    }
}

#[test]
fn buggy_and_fixed_sources_differ_for_every_bug() {
    for id in BugId::ALL {
        let m = metadata(id);
        assert_ne!(m.fixed_source(), m.source, "{id}");
    }
}

#[test]
fn symptoms_are_consistent_with_subclass_profiles() {
    use hwdbg::testbed::study::common_symptoms;
    for id in BugId::ALL {
        let m = metadata(id);
        let profile = common_symptoms(m.subclass);
        assert!(
            m.symptoms.iter().any(|s| profile.contains(s)),
            "{id}: symptoms {:?} share nothing with the Table 1 profile {:?}",
            m.symptoms,
            profile
        );
    }
}
