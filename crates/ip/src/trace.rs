//! The recording IP used by SignalCat: a bounded on-chip capture buffer
//! with trigger control, standing in for Intel SignalTap / Xilinx ILA.

use hwdbg_bits::Bits;
use hwdbg_sim::Blackbox;
use std::any::Any;
use std::collections::{BTreeMap, VecDeque};

/// One captured entry: the cycle it was recorded and the payload word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Local cycle counter of the trace buffer (counts its clock edges).
    pub cycle: u64,
    /// Captured `din` word.
    pub data: Bits,
}

/// A ring-buffer recording IP.
///
/// Parameters:
/// * `WIDTH` — payload width of `din`;
/// * `DEPTH` — number of entries the on-chip buffer holds (the paper's
///   evaluation sweeps this from 1K to 8K, Figure 2);
/// * `POST`  — when nonzero, recording stops `POST` cycles after the
///   `trigger` input pulses, which is how a developer captures a window
///   *around* an event (§4.1).
///
/// Ports: `clock`, `enable` (capture `din` this cycle), `din`, `trigger`,
/// and outputs `full` / `count`.
///
/// When the ring is full the oldest entry is overwritten, matching the
/// vendor IPs' circular capture mode.
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    width: u32,
    depth: usize,
    post: u64,
    entries: VecDeque<TraceEntry>,
    cycle: u64,
    countdown: Option<u64>,
    stopped: bool,
    overwritten: u64,
}

impl TraceBuffer {
    /// Creates the model from instance parameters.
    pub fn new(params: &BTreeMap<String, Bits>) -> Self {
        let width = params.get("WIDTH").map_or(32, |b| b.to_u64() as u32).max(1);
        let depth = params.get("DEPTH").map_or(8192, |b| b.to_u64()).max(1) as usize;
        let post = params.get("POST").map_or(0, |b| b.to_u64());
        TraceBuffer {
            width,
            depth,
            post,
            entries: VecDeque::new(),
            cycle: 0,
            countdown: None,
            stopped: false,
            overwritten: 0,
        }
    }

    /// Captured entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// How many entries were overwritten after the ring filled up.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// True once the post-trigger window has closed.
    pub fn stopped(&self) -> bool {
        self.stopped
    }

    /// Payload width.
    pub fn width(&self) -> u32 {
        self.width
    }
}

impl Blackbox for TraceBuffer {
    fn eval(&mut self, inputs: &BTreeMap<String, Bits>) -> BTreeMap<String, Bits> {
        let mut out = BTreeMap::new();
        for port in ["full", "count"] {
            let mut v = Bits::default();
            self.eval_port(port, inputs, &mut v);
            out.insert(port.into(), v);
        }
        out
    }

    fn eval_port(&mut self, port: &str, _inputs: &BTreeMap<String, Bits>, out: &mut Bits) -> bool {
        match port {
            "full" => out.set_bool(self.entries.len() >= self.depth),
            "count" => out.set_u64(32, self.entries.len() as u64),
            _ => return false,
        }
        true
    }

    fn tick(&mut self, _clock_port: &str, inputs: &BTreeMap<String, Bits>) {
        self.cycle += 1;
        if self.stopped {
            return;
        }
        // Count down the post-trigger window; the capture below still runs
        // on the cycle the window closes, so exactly `post` cycles after the
        // trigger are retained.
        if let Some(cd) = &mut self.countdown {
            *cd -= 1;
        }
        if inputs.get("enable").is_some_and(Bits::to_bool) {
            if self.entries.len() >= self.depth {
                self.entries.pop_front();
                self.overwritten += 1;
            }
            self.entries.push_back(TraceEntry {
                cycle: self.cycle,
                data: inputs
                    .get("din")
                    .cloned()
                    .unwrap_or_else(|| Bits::zero(self.width))
                    .resize(self.width),
            });
        }
        if self.post > 0
            && self.countdown.is_none()
            && inputs.get("trigger").is_some_and(Bits::to_bool)
        {
            self.countdown = Some(self.post);
        }
        if self.countdown == Some(0) {
            self.stopped = true;
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn snapshot(&self) -> Option<Box<dyn Any + Send>> {
        Some(Box::new(self.clone()))
    }

    fn restore(&mut self, state: &dyn Any) -> bool {
        match state.downcast_ref::<Self>() {
            Some(st) => {
                *self = st.clone();
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(width: u64, depth: u64, post: u64) -> BTreeMap<String, Bits> {
        let mut p = BTreeMap::new();
        p.insert("WIDTH".into(), Bits::from_u64(32, width));
        p.insert("DEPTH".into(), Bits::from_u64(32, depth));
        p.insert("POST".into(), Bits::from_u64(32, post));
        p
    }

    fn capture(v: u64) -> BTreeMap<String, Bits> {
        let mut m = BTreeMap::new();
        m.insert("enable".into(), Bits::from_bool(true));
        m.insert("din".into(), Bits::from_u64(16, v));
        m
    }

    #[test]
    fn records_when_enabled() {
        let mut t = TraceBuffer::new(&params(16, 8, 0));
        t.tick("clock", &BTreeMap::new());
        t.tick("clock", &capture(0xA));
        t.tick("clock", &BTreeMap::new());
        t.tick("clock", &capture(0xB));
        let got: Vec<_> = t.entries().map(|e| (e.cycle, e.data.to_u64())).collect();
        assert_eq!(got, vec![(2, 0xA), (4, 0xB)]);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let mut t = TraceBuffer::new(&params(16, 2, 0));
        for v in 1..=4 {
            t.tick("clock", &capture(v));
        }
        let got: Vec<_> = t.entries().map(|e| e.data.to_u64()).collect();
        assert_eq!(got, vec![3, 4]);
        assert_eq!(t.overwritten(), 2);
    }

    #[test]
    fn post_trigger_window() {
        let mut t = TraceBuffer::new(&params(16, 16, 2));
        t.tick("clock", &capture(1));
        let mut trig = capture(2);
        trig.insert("trigger".into(), Bits::from_bool(true));
        t.tick("clock", &trig);
        t.tick("clock", &capture(3));
        t.tick("clock", &capture(4));
        assert!(t.stopped());
        t.tick("clock", &capture(5)); // ignored
        let got: Vec<_> = t.entries().map(|e| e.data.to_u64()).collect();
        assert_eq!(got, vec![1, 2, 3, 4]);
    }
}
