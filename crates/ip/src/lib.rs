//! Behavioral blackbox IP models and their static dependency descriptions.
//!
//! The paper's testbed uses three closed-source IPs — `altsyncram`,
//! `scfifo`, and `dcfifo` — for which the authors wrote behavioral models
//! and *IP dependency models* so Dependency Monitor and LossCheck can trace
//! through them (§5). This crate provides the same for our designs, plus
//! the [`TraceBuffer`] recording IP that SignalCat instantiates in place of
//! Intel SignalTap / Xilinx ILA.
//!
//! [`StdIpLib`] is the static side (port directions, widths, dependency
//! relations) consumed by elaboration and the analyses; [`StdModels`] is the
//! runtime side consumed by the simulator.
//!
//! # Examples
//!
//! ```
//! use hwdbg_ip::{StdIpLib, StdModels};
//! use hwdbg_dataflow::elaborate;
//! use hwdbg_sim::{Simulator, SimConfig};
//!
//! let src = "module m(input clk, input [7:0] d, input push, input pop,
//!                     output [7:0] head, output empty, output full);
//!     scfifo #(.WIDTH(8), .DEPTH(4)) f0 (.clock(clk), .data(d), .wrreq(push),
//!                                        .rdreq(pop), .q(head), .empty(empty), .full(full));
//! endmodule";
//! let design = elaborate(&hwdbg_rtl::parse(src)?, "m", &StdIpLib::new())?;
//! let mut sim = Simulator::new(design, &StdModels, SimConfig::default())?;
//! sim.poke_u64("push", 1)?;
//! sim.poke_u64("d", 42)?;
//! sim.step("clk")?;
//! sim.poke_u64("push", 0)?;
//! sim.settle()?;
//! assert_eq!(sim.peek("head")?.to_u64(), 42);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod fifo;
mod ram;
mod trace;

pub use fifo::{Dcfifo, Scfifo};
pub use ram::Altsyncram;
pub use trace::{TraceBuffer, TraceEntry};

use hwdbg_dataflow::{BbDir, BbInst, BbPort, BlackboxLib, BlackboxSpec, IpRelation, WidthSpec};
use hwdbg_sim::{Blackbox, BlackboxFactory};
use std::collections::BTreeMap;

/// Name of the recording IP module SignalCat instantiates.
pub const TRACE_BUFFER_MODULE: &str = "trace_buffer";

fn port(name: &str, dir: BbDir, width: WidthSpec, is_clock: bool) -> BbPort {
    BbPort {
        name: name.into(),
        dir,
        width,
        is_clock,
    }
}

fn rel(src: &str, dst: &str, cond: Option<&str>, latency: u32) -> IpRelation {
    IpRelation {
        src: src.into(),
        dst: dst.into(),
        cond: cond.map(Into::into),
        latency,
    }
}

fn scfifo_spec() -> BlackboxSpec {
    use BbDir::*;
    let w = || WidthSpec::Param("WIDTH".into());
    BlackboxSpec {
        name: "scfifo".into(),
        ports: vec![
            port("clock", Input, WidthSpec::Const(1), true),
            port("data", Input, w(), false),
            port("wrreq", Input, WidthSpec::Const(1), false),
            port("rdreq", Input, WidthSpec::Const(1), false),
            port("sclr", Input, WidthSpec::Const(1), false),
            port("aclr", Input, WidthSpec::Const(1), false),
            port("q", Output, w(), false),
            port("empty", Output, WidthSpec::Const(1), false),
            port("full", Output, WidthSpec::Const(1), false),
            port("usedw", Output, WidthSpec::Clog2Param("DEPTH".into()), false),
        ],
        relations: vec![
            rel("data", "q", Some("wrreq"), 1),
            rel("wrreq", "empty", None, 1),
            rel("wrreq", "full", None, 1),
            rel("wrreq", "usedw", None, 1),
            rel("rdreq", "q", None, 1),
            rel("rdreq", "empty", None, 1),
            rel("rdreq", "full", None, 1),
            rel("rdreq", "usedw", None, 1),
        ],
    }
}

fn dcfifo_spec() -> BlackboxSpec {
    use BbDir::*;
    let w = || WidthSpec::Param("WIDTH".into());
    BlackboxSpec {
        name: "dcfifo".into(),
        ports: vec![
            port("wrclk", Input, WidthSpec::Const(1), true),
            port("rdclk", Input, WidthSpec::Const(1), true),
            port("data", Input, w(), false),
            port("wrreq", Input, WidthSpec::Const(1), false),
            port("rdreq", Input, WidthSpec::Const(1), false),
            port("q", Output, w(), false),
            port("rdempty", Output, WidthSpec::Const(1), false),
            port("wrfull", Output, WidthSpec::Const(1), false),
            port("wrusedw", Output, WidthSpec::Clog2Param("DEPTH".into()), false),
        ],
        relations: vec![
            rel("data", "q", Some("wrreq"), 1),
            rel("wrreq", "rdempty", None, 1),
            rel("wrreq", "wrfull", None, 1),
            rel("rdreq", "q", None, 1),
            rel("rdreq", "rdempty", None, 1),
            rel("rdreq", "wrfull", None, 1),
        ],
    }
}

fn altsyncram_spec() -> BlackboxSpec {
    use BbDir::*;
    BlackboxSpec {
        name: "altsyncram".into(),
        ports: vec![
            port("clock0", Input, WidthSpec::Const(1), true),
            port("data", Input, WidthSpec::Param("WIDTH".into()), false),
            port("wraddress", Input, WidthSpec::Clog2Param("DEPTH".into()), false),
            port("wren", Input, WidthSpec::Const(1), false),
            port("rdaddress", Input, WidthSpec::Clog2Param("DEPTH".into()), false),
            port("q", Output, WidthSpec::Param("WIDTH".into()), false),
        ],
        relations: vec![
            rel("data", "q", Some("wren"), 1),
            rel("wraddress", "q", Some("wren"), 1),
            rel("rdaddress", "q", None, 1),
        ],
    }
}

fn trace_buffer_spec() -> BlackboxSpec {
    use BbDir::*;
    BlackboxSpec {
        name: TRACE_BUFFER_MODULE.into(),
        ports: vec![
            port("clock", Input, WidthSpec::Const(1), true),
            port("enable", Input, WidthSpec::Const(1), false),
            port("din", Input, WidthSpec::Param("WIDTH".into()), false),
            port("trigger", Input, WidthSpec::Const(1), false),
            port("full", Output, WidthSpec::Const(1), false),
            port("count", Output, WidthSpec::Const(32), false),
        ],
        // The trace buffer never feeds back into the design; no relations.
        relations: vec![],
    }
}

/// The standard IP library: static specs for `scfifo`, `dcfifo`,
/// `altsyncram`, and `trace_buffer`.
#[derive(Debug, Clone)]
pub struct StdIpLib {
    specs: BTreeMap<String, BlackboxSpec>,
}

impl StdIpLib {
    /// Builds the library.
    pub fn new() -> Self {
        let mut specs = BTreeMap::new();
        for s in [
            scfifo_spec(),
            dcfifo_spec(),
            altsyncram_spec(),
            trace_buffer_spec(),
        ] {
            specs.insert(s.name.clone(), s);
        }
        StdIpLib { specs }
    }
}

impl Default for StdIpLib {
    fn default() -> Self {
        Self::new()
    }
}

impl BlackboxLib for StdIpLib {
    fn spec(&self, module: &str) -> Option<&BlackboxSpec> {
        self.specs.get(module)
    }
}

/// The standard behavioral-model factory matching [`StdIpLib`].
#[derive(Debug, Clone, Copy, Default)]
pub struct StdModels;

impl BlackboxFactory for StdModels {
    fn create(&self, inst: &BbInst) -> Option<Box<dyn Blackbox + Send>> {
        match inst.module.as_str() {
            "scfifo" => Some(Box::new(Scfifo::new(&inst.params))),
            "dcfifo" => Some(Box::new(Dcfifo::new(&inst.params))),
            "altsyncram" => Some(Box::new(Altsyncram::new(&inst.params))),
            TRACE_BUFFER_MODULE => Some(Box::new(TraceBuffer::new(&inst.params))),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwdbg_dataflow::elaborate;
    use hwdbg_sim::{SimConfig, Simulator};

    #[test]
    fn lib_has_all_specs() {
        let lib = StdIpLib::new();
        for m in ["scfifo", "dcfifo", "altsyncram", "trace_buffer"] {
            assert!(lib.spec(m).is_some(), "{m}");
        }
        assert!(lib.spec("mystery").is_none());
    }

    #[test]
    fn fifo_in_design_end_to_end() {
        let src = "module m(input clk, input [7:0] d, input push, input pop,
                            output [7:0] head, output empty, output full);
            scfifo #(.WIDTH(8), .DEPTH(4)) f0 (.clock(clk), .data(d), .wrreq(push),
                                               .rdreq(pop), .q(head), .empty(empty), .full(full));
        endmodule";
        let design =
            elaborate(&hwdbg_rtl::parse(src).unwrap(), "m", &StdIpLib::new()).unwrap();
        let mut sim = Simulator::new(design, &StdModels, SimConfig::default()).unwrap();
        sim.poke_u64("push", 1).unwrap();
        for v in [10u64, 20, 30] {
            sim.poke_u64("d", v).unwrap();
            sim.step("clk").unwrap();
        }
        sim.poke_u64("push", 0).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.peek("head").unwrap().to_u64(), 10);
        assert!(!sim.peek("empty").unwrap().to_bool());
        sim.poke_u64("pop", 1).unwrap();
        sim.step("clk").unwrap();
        assert_eq!(sim.peek("head").unwrap().to_u64(), 20);
    }

    #[test]
    fn fifo_relations_traverse_ip() {
        use hwdbg_dataflow::{DepKind, PropGraph};
        let src = "module m(input clk, input [7:0] din, input push, input pop,
                            output reg [7:0] out);
            wire [7:0] head;
            scfifo #(.WIDTH(8), .DEPTH(4)) f0 (.clock(clk), .data(din), .wrreq(push),
                                               .rdreq(pop), .q(head));
            always @(posedge clk) out <= head;
        endmodule";
        let lib = StdIpLib::new();
        let design = elaborate(&hwdbg_rtl::parse(src).unwrap(), "m", &lib).unwrap();
        let g = PropGraph::build(&design, &lib).unwrap();
        let slice = g.back_slice("out", 3, &[DepKind::Data]);
        assert!(slice.contains_key("din"), "{slice:?}");
        let seq = g.propagation_sequence("din", "out");
        assert!(seq.contains("head"));
    }
}
