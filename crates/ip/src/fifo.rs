//! Behavioral models of the Intel-style FIFO IPs: `scfifo` (single clock)
//! and `dcfifo` (dual clock).

use hwdbg_bits::Bits;
use hwdbg_dataflow::clog2;
use hwdbg_sim::Blackbox;
use std::any::Any;
use std::collections::{BTreeMap, VecDeque};

fn input(inputs: &BTreeMap<String, Bits>, name: &str) -> Bits {
    inputs.get(name).cloned().unwrap_or_else(|| Bits::zero(1))
}

fn input_bool(inputs: &BTreeMap<String, Bits>, name: &str) -> bool {
    inputs.get(name).is_some_and(Bits::to_bool)
}

/// Single-clock FIFO (`scfifo`).
///
/// Show-ahead mode (`SHOWAHEAD = 1`, the testbed default): `q` presents the
/// head element while `rdreq` acts as an acknowledge. Normal mode
/// (`SHOWAHEAD = 0`): `rdreq` pops into a registered `q` one cycle later.
#[derive(Debug, Clone)]
pub struct Scfifo {
    width: u32,
    depth: u64,
    showahead: bool,
    queue: VecDeque<Bits>,
    q_reg: Bits,
}

impl Scfifo {
    /// Creates the model from instance parameters `WIDTH`, `DEPTH`,
    /// `SHOWAHEAD` (default 1).
    pub fn new(params: &BTreeMap<String, Bits>) -> Self {
        let width = params.get("WIDTH").map_or(8, |b| b.to_u64() as u32).max(1);
        let depth = params.get("DEPTH").map_or(16, |b| b.to_u64()).max(1);
        let showahead = params.get("SHOWAHEAD").is_none_or(Bits::to_bool);
        Scfifo {
            width,
            depth,
            showahead,
            queue: VecDeque::new(),
            q_reg: Bits::zero(width),
        }
    }

    /// Current occupancy (for assertions in tests).
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

impl Blackbox for Scfifo {
    fn eval(&mut self, inputs: &BTreeMap<String, Bits>) -> BTreeMap<String, Bits> {
        let mut out = BTreeMap::new();
        for port in ["empty", "full", "usedw", "q"] {
            let mut v = Bits::default();
            self.eval_port(port, inputs, &mut v);
            out.insert(port.into(), v);
        }
        out
    }

    fn eval_port(&mut self, port: &str, _inputs: &BTreeMap<String, Bits>, out: &mut Bits) -> bool {
        match port {
            "empty" => out.set_bool(self.queue.is_empty()),
            "full" => out.set_bool(self.queue.len() as u64 >= self.depth),
            "usedw" => out.set_u64(clog2(self.depth) + 1, self.queue.len() as u64),
            "q" if self.showahead => match self.queue.front() {
                Some(head) => out.assign_from(head),
                None => out.set_zero(self.width),
            },
            "q" => out.assign_from(&self.q_reg),
            _ => return false,
        }
        true
    }

    fn tick(&mut self, _clock_port: &str, inputs: &BTreeMap<String, Bits>) {
        if input_bool(inputs, "sclr") || input_bool(inputs, "aclr") {
            self.queue.clear();
            self.q_reg = Bits::zero(self.width);
            return;
        }
        let rd = input_bool(inputs, "rdreq");
        let wr = input_bool(inputs, "wrreq");
        if rd {
            if let Some(head) = self.queue.pop_front() {
                self.q_reg = head;
            }
        }
        if wr && (self.queue.len() as u64) < self.depth {
            self.queue.push_back(input(inputs, "data").resize(self.width));
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn snapshot(&self) -> Option<Box<dyn Any + Send>> {
        Some(Box::new(self.clone()))
    }

    fn restore(&mut self, state: &dyn Any) -> bool {
        match state.downcast_ref::<Self>() {
            Some(st) => {
                *self = st.clone();
                true
            }
            None => false,
        }
    }
}

/// Dual-clock FIFO (`dcfifo`): writes on `wrclk`, reads on `rdclk`.
/// Show-ahead read interface like [`Scfifo`]. Clock-domain-crossing
/// metastability is not modeled (the paper's bugs are functional).
#[derive(Debug, Clone)]
pub struct Dcfifo {
    width: u32,
    depth: u64,
    queue: VecDeque<Bits>,
}

impl Dcfifo {
    /// Creates the model from `WIDTH` and `DEPTH`.
    pub fn new(params: &BTreeMap<String, Bits>) -> Self {
        let width = params.get("WIDTH").map_or(8, |b| b.to_u64() as u32).max(1);
        let depth = params.get("DEPTH").map_or(16, |b| b.to_u64()).max(1);
        Dcfifo {
            width,
            depth,
            queue: VecDeque::new(),
        }
    }
}

impl Blackbox for Dcfifo {
    fn eval(&mut self, inputs: &BTreeMap<String, Bits>) -> BTreeMap<String, Bits> {
        let mut out = BTreeMap::new();
        for port in ["rdempty", "wrfull", "wrusedw", "q"] {
            let mut v = Bits::default();
            self.eval_port(port, inputs, &mut v);
            out.insert(port.into(), v);
        }
        out
    }

    fn eval_port(&mut self, port: &str, _inputs: &BTreeMap<String, Bits>, out: &mut Bits) -> bool {
        match port {
            "rdempty" => out.set_bool(self.queue.is_empty()),
            "wrfull" => out.set_bool(self.queue.len() as u64 >= self.depth),
            "wrusedw" => out.set_u64(clog2(self.depth) + 1, self.queue.len() as u64),
            "q" => match self.queue.front() {
                Some(head) => out.assign_from(head),
                None => out.set_zero(self.width),
            },
            _ => return false,
        }
        true
    }

    fn tick(&mut self, clock_port: &str, inputs: &BTreeMap<String, Bits>) {
        match clock_port {
            "wrclk" if input_bool(inputs, "wrreq") && (self.queue.len() as u64) < self.depth => {
                self.queue.push_back(input(inputs, "data").resize(self.width));
            }
            "rdclk" if input_bool(inputs, "rdreq") => {
                self.queue.pop_front();
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn snapshot(&self) -> Option<Box<dyn Any + Send>> {
        Some(Box::new(self.clone()))
    }

    fn restore(&mut self, state: &dyn Any) -> bool {
        match state.downcast_ref::<Self>() {
            Some(st) => {
                *self = st.clone();
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(width: u64, depth: u64) -> BTreeMap<String, Bits> {
        let mut p = BTreeMap::new();
        p.insert("WIDTH".into(), Bits::from_u64(32, width));
        p.insert("DEPTH".into(), Bits::from_u64(32, depth));
        p
    }

    fn wr(v: u64) -> BTreeMap<String, Bits> {
        let mut m = BTreeMap::new();
        m.insert("wrreq".into(), Bits::from_bool(true));
        m.insert("data".into(), Bits::from_u64(8, v));
        m
    }

    fn rd() -> BTreeMap<String, Bits> {
        let mut m = BTreeMap::new();
        m.insert("rdreq".into(), Bits::from_bool(true));
        m
    }

    #[test]
    fn scfifo_showahead_order() {
        let mut f = Scfifo::new(&params(8, 4));
        f.tick("clock", &wr(1));
        f.tick("clock", &wr(2));
        let out = f.eval(&BTreeMap::new());
        assert_eq!(out["q"].to_u64(), 1);
        assert!(!out["empty"].to_bool());
        f.tick("clock", &rd());
        assert_eq!(f.eval(&BTreeMap::new())["q"].to_u64(), 2);
        f.tick("clock", &rd());
        assert!(f.eval(&BTreeMap::new())["empty"].to_bool());
    }

    #[test]
    fn scfifo_full_drops_writes() {
        let mut f = Scfifo::new(&params(8, 2));
        for v in 1..=5 {
            f.tick("clock", &wr(v));
        }
        assert_eq!(f.len(), 2);
        assert!(f.eval(&BTreeMap::new())["full"].to_bool());
        assert_eq!(f.eval(&BTreeMap::new())["usedw"].to_u64(), 2);
    }

    #[test]
    fn scfifo_simultaneous_rd_wr_when_full() {
        let mut f = Scfifo::new(&params(8, 2));
        f.tick("clock", &wr(1));
        f.tick("clock", &wr(2));
        // Read frees a slot in the same cycle the write lands.
        let mut both = wr(3);
        both.insert("rdreq".into(), Bits::from_bool(true));
        f.tick("clock", &both);
        assert_eq!(f.len(), 2);
        assert_eq!(f.eval(&BTreeMap::new())["q"].to_u64(), 2);
    }

    #[test]
    fn scfifo_normal_mode_registers_q() {
        let mut p = params(8, 4);
        p.insert("SHOWAHEAD".into(), Bits::from_u64(1, 0));
        let mut f = Scfifo::new(&p);
        f.tick("clock", &wr(7));
        assert_eq!(f.eval(&BTreeMap::new())["q"].to_u64(), 0); // not popped yet
        f.tick("clock", &rd());
        assert_eq!(f.eval(&BTreeMap::new())["q"].to_u64(), 7);
    }

    #[test]
    fn scfifo_sclr_clears() {
        let mut f = Scfifo::new(&params(8, 4));
        f.tick("clock", &wr(1));
        let mut clr = BTreeMap::new();
        clr.insert("sclr".into(), Bits::from_bool(true));
        f.tick("clock", &clr);
        assert!(f.is_empty());
    }

    #[test]
    fn dcfifo_two_domains() {
        let mut f = Dcfifo::new(&params(16, 4));
        let mut w = BTreeMap::new();
        w.insert("wrreq".into(), Bits::from_bool(true));
        w.insert("data".into(), Bits::from_u64(16, 0xBEEF));
        f.tick("wrclk", &w);
        let out = f.eval(&BTreeMap::new());
        assert!(!out["rdempty"].to_bool());
        assert_eq!(out["q"].to_u64(), 0xBEEF);
        let mut r = BTreeMap::new();
        r.insert("rdreq".into(), Bits::from_bool(true));
        f.tick("rdclk", &r);
        assert!(f.eval(&BTreeMap::new())["rdempty"].to_bool());
    }
}
