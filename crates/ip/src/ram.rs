//! Behavioral model of `altsyncram` in simple dual-port mode
//! (one write port, one registered read port).

use hwdbg_bits::Bits;
use hwdbg_sim::Blackbox;
use std::any::Any;
use std::collections::BTreeMap;

/// Simple dual-port block RAM: synchronous write, registered synchronous
/// read (`q` updates one cycle after `rdaddress`, old-data behavior on
/// read-during-write).
#[derive(Debug, Clone)]
pub struct Altsyncram {
    width: u32,
    mem: Vec<Bits>,
    q_reg: Bits,
}

impl Altsyncram {
    /// Creates the model from `WIDTH` and `DEPTH` (a.k.a. `NUMWORDS`).
    pub fn new(params: &BTreeMap<String, Bits>) -> Self {
        let width = params.get("WIDTH").map_or(8, |b| b.to_u64() as u32).max(1);
        let depth = params
            .get("DEPTH")
            .or_else(|| params.get("NUMWORDS"))
            .map_or(256, |b| b.to_u64())
            .max(1);
        Altsyncram {
            width,
            mem: vec![Bits::zero(width); depth as usize],
            q_reg: Bits::zero(width),
        }
    }

    /// Direct read for testbench assertions.
    pub fn word(&self, addr: u64) -> Option<&Bits> {
        self.mem.get(addr as usize)
    }
}

impl Blackbox for Altsyncram {
    fn eval(&mut self, inputs: &BTreeMap<String, Bits>) -> BTreeMap<String, Bits> {
        let mut out = BTreeMap::new();
        let mut v = Bits::default();
        self.eval_port("q", inputs, &mut v);
        out.insert("q".into(), v);
        out
    }

    fn eval_port(&mut self, port: &str, _inputs: &BTreeMap<String, Bits>, out: &mut Bits) -> bool {
        match port {
            "q" => {
                out.assign_from(&self.q_reg);
                true
            }
            _ => false,
        }
    }

    fn tick(&mut self, _clock_port: &str, inputs: &BTreeMap<String, Bits>) {
        let rdaddr = inputs.get("rdaddress").map_or(0, |b| b.to_u64());
        // Old-data read-during-write: capture before the write lands.
        self.q_reg = self
            .mem
            .get(rdaddr as usize)
            .cloned()
            .unwrap_or_else(|| Bits::zero(self.width));
        if inputs.get("wren").is_some_and(Bits::to_bool) {
            let wraddr = inputs.get("wraddress").map_or(0, |b| b.to_u64());
            if let Some(slot) = self.mem.get_mut(wraddr as usize) {
                *slot = inputs
                    .get("data")
                    .cloned()
                    .unwrap_or_else(|| Bits::zero(self.width))
                    .resize(self.width);
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn snapshot(&self) -> Option<Box<dyn Any + Send>> {
        Some(Box::new(self.clone()))
    }

    fn restore(&mut self, state: &dyn Any) -> bool {
        match state.downcast_ref::<Self>() {
            Some(st) => {
                *self = st.clone();
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read() {
        let mut p = BTreeMap::new();
        p.insert("WIDTH".into(), Bits::from_u64(32, 16));
        p.insert("DEPTH".into(), Bits::from_u64(32, 8));
        let mut ram = Altsyncram::new(&p);
        let mut w = BTreeMap::new();
        w.insert("wren".into(), Bits::from_bool(true));
        w.insert("wraddress".into(), Bits::from_u64(3, 5));
        w.insert("data".into(), Bits::from_u64(16, 0xCAFE));
        ram.tick("clock0", &w);
        let mut r = BTreeMap::new();
        r.insert("rdaddress".into(), Bits::from_u64(3, 5));
        ram.tick("clock0", &r);
        assert_eq!(ram.eval(&BTreeMap::new())["q"].to_u64(), 0xCAFE);
    }

    #[test]
    fn read_during_write_returns_old_data() {
        let mut p = BTreeMap::new();
        p.insert("WIDTH".into(), Bits::from_u64(32, 8));
        p.insert("DEPTH".into(), Bits::from_u64(32, 4));
        let mut ram = Altsyncram::new(&p);
        let mut rw = BTreeMap::new();
        rw.insert("wren".into(), Bits::from_bool(true));
        rw.insert("wraddress".into(), Bits::from_u64(2, 1));
        rw.insert("rdaddress".into(), Bits::from_u64(2, 1));
        rw.insert("data".into(), Bits::from_u64(8, 0x42));
        ram.tick("clock0", &rw);
        assert_eq!(ram.eval(&BTreeMap::new())["q"].to_u64(), 0); // old data
        ram.tick("clock0", &rw);
        assert_eq!(ram.eval(&BTreeMap::new())["q"].to_u64(), 0x42);
    }

    #[test]
    fn out_of_range_write_ignored() {
        let mut p = BTreeMap::new();
        p.insert("WIDTH".into(), Bits::from_u64(32, 8));
        p.insert("DEPTH".into(), Bits::from_u64(32, 4));
        let mut ram = Altsyncram::new(&p);
        let mut w = BTreeMap::new();
        w.insert("wren".into(), Bits::from_bool(true));
        w.insert("wraddress".into(), Bits::from_u64(8, 200));
        w.insert("data".into(), Bits::from_u64(8, 0xFF));
        ram.tick("clock0", &w);
        for a in 0..4 {
            assert!(ram.word(a).unwrap().is_zero());
        }
    }
}
