//! Parser edge cases beyond the unit tests: error reporting, tricky token
//! sequences, and multi-module files.

use hwdbg_rtl::{parse, parse_expr, print, print_expr, CaseKind, Expr, Item, Stmt};

#[test]
fn multi_module_file_order_preserved() {
    let f = parse(
        "module a(input x); endmodule
         module b(input y); endmodule
         module c(input z); endmodule",
    )
    .unwrap();
    let names: Vec<_> = f.modules.iter().map(|m| m.name.clone()).collect();
    assert_eq!(names, vec!["a", "b", "c"]);
    assert!(f.module("b").is_some());
    assert!(f.module("d").is_none());
}

#[test]
fn casez_parses_and_prints() {
    let src = "module m(input clk, input [3:0] s, output reg q);
        always @(posedge clk)
            casez (s)
                4'd1: q <= 1'b1;
                default: q <= 1'b0;
            endcase
    endmodule";
    let f = parse(src).unwrap();
    let Item::Always { body, .. } = &f.modules[0].items[0] else {
        panic!()
    };
    assert!(matches!(
        body,
        Stmt::Case {
            kind: CaseKind::Casez,
            ..
        }
    ));
    assert!(print(&f).contains("casez"));
}

#[test]
fn deeply_nested_expression() {
    let mut src = String::from("a");
    for _ in 0..40 {
        src = format!("({src} + 1)");
    }
    let e = parse_expr(&src).unwrap();
    assert_eq!(parse_expr(&print_expr(&e)).unwrap(), e);
}

#[test]
fn comments_between_any_tokens() {
    let src = "module /*x*/ m (input /*y*/ clk); // trailing
        reg /* multi
        line */ q;
        always @(posedge clk) q <= /*v*/ ~q;
    endmodule";
    assert!(parse(src).is_ok());
}

#[test]
fn error_spans_point_into_source() {
    let src = "module m(input clk);\n  wire w = ;\nendmodule";
    let err = parse(src).unwrap_err();
    let rendered = err.render(src);
    assert!(rendered.contains("line 2"), "{rendered}");
}

#[test]
fn reserved_words_rejected_as_identifiers() {
    assert!(parse("module module(input clk); endmodule").is_err());
    assert!(parse_expr("case + 1").is_err());
}

#[test]
fn unary_chains_and_reductions() {
    let e = parse_expr("~^x").unwrap();
    assert!(matches!(e, Expr::Unary(hwdbg_rtl::UnaryOp::RedXnor, _)));
    let e = parse_expr("!!x").unwrap();
    assert_eq!(print_expr(&e), "!(!x)");
    let e = parse_expr("&b | ^c").unwrap();
    assert!(matches!(e, Expr::Binary(hwdbg_rtl::BinaryOp::Or, _, _)));
}

#[test]
fn shift_tower_is_left_associative() {
    let e = parse_expr("a << 1 << 2").unwrap();
    assert_eq!(print_expr(&e), "(a << 1) << 2");
}

#[test]
fn ternary_is_right_associative() {
    let e = parse_expr("a ? b : c ? d : e").unwrap();
    assert_eq!(print_expr(&e), "a ? b : (c ? d : e)");
}

#[test]
fn empty_port_list_and_body() {
    let f = parse("module m(); endmodule module n; endmodule").unwrap();
    assert_eq!(f.modules.len(), 2);
    assert!(f.modules[0].ports.is_empty());
}

#[test]
fn signed_decls_roundtrip() {
    let src = "module m(input clk, input signed [7:0] a);
        reg signed [15:0] acc;
        always @(posedge clk) acc <= acc + a;
    endmodule";
    let f = parse(src).unwrap();
    assert!(f.modules[0].net("acc").unwrap().signed);
    let printed = print(&f);
    assert!(printed.contains("reg signed"));
    assert_eq!(print(&parse(&printed).unwrap()), printed);
}

#[test]
fn display_with_no_args() {
    let src = r#"module m(input clk);
        always @(posedge clk) $display("tick");
    endmodule"#;
    assert!(parse(src).is_ok());
}

#[test]
fn instance_without_params_or_conns() {
    let src = "module m(input clk); sub s0 (); endmodule";
    let f = parse(src).unwrap();
    let Item::Instance(i) = &f.modules[0].items[0] else {
        panic!()
    };
    assert!(i.conns.is_empty());
    assert!(i.params.is_empty());
}

// ---------------------------------------------------------------------------
// Negative cases: malformed source must surface as typed, spanned
// diagnostics (hwdbg-diag E0101), never as panics.
// ---------------------------------------------------------------------------

#[test]
fn parse_error_converts_to_spanned_diagnostic() {
    let src = "module m(input clk);\n  assign x = ;\nendmodule";
    let err = parse(src).unwrap_err();
    let diag: hwdbg_diag::HwdbgError = err.into();
    assert_eq!(diag.code, hwdbg_diag::ErrorCode::ParseFailed);
    assert_eq!(diag.code.as_str(), "E0101");
    assert!(diag.span.is_some(), "parse errors must carry their span");
}

#[test]
fn parse_error_renders_with_source_excerpt() {
    let src = "module m(input clk);\n  wire [3:0 a;\nendmodule";
    let err = parse(src).unwrap_err();
    let diag: hwdbg_diag::HwdbgError = err.into();
    let rendered = diag.render(Some(src));
    assert!(rendered.contains("E0101"), "{rendered}");
    assert!(
        rendered.contains("wire [3:0 a;"),
        "rendered diagnostic must excerpt the offending line: {rendered}"
    );
}

#[test]
fn truncated_module_is_a_typed_error() {
    for src in [
        "module m(input clk);",
        "module m(input clk); always @(posedge clk)",
        "module",
        "module m(input clk); assign = 1; endmodule",
        "module m(input [7:0); endmodule",
    ] {
        let err = parse(src).unwrap_err();
        let diag: hwdbg_diag::HwdbgError = err.into();
        assert_eq!(diag.code, hwdbg_diag::ErrorCode::ParseFailed, "src: {src}");
    }
}

#[test]
fn garbage_expression_is_a_typed_error() {
    for src in ["a +", "(a", "a ? b", "[3:0]", "&&& q"] {
        let err = parse_expr(src).unwrap_err();
        let diag: hwdbg_diag::HwdbgError = err.into();
        assert_eq!(diag.code, hwdbg_diag::ErrorCode::ParseFailed, "src: {src}");
    }
}
