//! Recursive-descent parser for the synthesizable Verilog subset.

use crate::ast::*;
use crate::span::{ParseError, Span};
use crate::token::{lex, Keyword as K, Tok, Token};
use hwdbg_bits::Bits;

/// Parses a source file containing one or more modules.
///
/// # Errors
///
/// Returns the first lexical or syntactic error with its source span.
pub fn parse(source: &str) -> Result<SourceFile, ParseError> {
    let toks = lex(source)?;
    let mut p = Parser { toks, pos: 0 };
    let mut modules = Vec::new();
    while !p.at_eof() {
        modules.push(p.module()?);
    }
    Ok(SourceFile { modules })
}

/// Parses a single expression (used by tool configuration strings).
///
/// # Errors
///
/// Returns an error if the text is not a complete expression.
pub fn parse_expr(source: &str) -> Result<Expr, ParseError> {
    let toks = lex(source)?;
    let mut p = Parser { toks, pos: 0 };
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError::new(msg, self.span()))
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<Span, ParseError> {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            Ok(self.bump().span)
        } else {
            self.err(format!("expected `{p}`, found {}", describe(self.peek())))
        }
    }

    fn eat_kw(&mut self, k: K) -> bool {
        if matches!(self.peek(), Tok::Keyword(q) if *q == k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, k: K) -> Result<Span, ParseError> {
        if matches!(self.peek(), Tok::Keyword(q) if *q == k) {
            Ok(self.bump().span)
        } else {
            self.err(format!(
                "expected `{}`, found {}",
                k.as_str(),
                describe(self.peek())
            ))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Tok::Ident(_) => {
                let Tok::Ident(name) = self.bump().tok else {
                    unreachable!()
                };
                Ok(name)
            }
            other => self.err(format!("expected identifier, found {}", describe(other))),
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if self.at_eof() {
            Ok(())
        } else {
            self.err(format!("unexpected {}", describe(self.peek())))
        }
    }

    // ---- modules -----------------------------------------------------

    fn module(&mut self) -> Result<Module, ParseError> {
        let start = self.expect_kw(K::Module)?;
        let name = self.ident()?;
        let mut params = Vec::new();
        if self.eat_punct("#") {
            self.expect_punct("(")?;
            loop {
                self.eat_kw(K::Parameter);
                params.push(self.param_binding()?);
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(")")?;
        }
        let mut ports = Vec::new();
        if self.eat_punct("(") {
            if !matches!(self.peek(), Tok::Punct(")")) {
                let mut last_dir = Dir::Input;
                let mut last_kind = NetKind::Wire;
                let mut last_signed = false;
                let mut last_range: Option<(Expr, Expr)> = None;
                loop {
                    let dir = match self.peek() {
                        Tok::Keyword(K::Input) => {
                            self.bump();
                            Some(Dir::Input)
                        }
                        Tok::Keyword(K::Output) => {
                            self.bump();
                            Some(Dir::Output)
                        }
                        Tok::Keyword(K::Inout) => {
                            self.bump();
                            Some(Dir::Inout)
                        }
                        _ => None,
                    };
                    if let Some(d) = dir {
                        last_dir = d;
                        last_kind = if self.eat_kw(K::Reg) {
                            NetKind::Reg
                        } else {
                            self.eat_kw(K::Wire);
                            NetKind::Wire
                        };
                        last_signed = self.eat_kw(K::Signed);
                        last_range = self.opt_range()?;
                    }
                    let span = self.span();
                    let pname = self.ident()?;
                    ports.push(Port {
                        dir: last_dir,
                        net: NetDecl {
                            kind: last_kind,
                            signed: last_signed,
                            range: last_range.clone(),
                            name: pname,
                            mem_dim: None,
                            span,
                        },
                    });
                    if !self.eat_punct(",") {
                        break;
                    }
                }
            }
            self.expect_punct(")")?;
        }
        self.expect_punct(";")?;
        let mut items = Vec::new();
        while !self.eat_kw(K::Endmodule) {
            if self.at_eof() {
                return self.err("unexpected end of input inside module");
            }
            items.push(self.item()?);
        }
        Ok(Module {
            name,
            params,
            ports,
            items,
            span: start,
        })
    }

    fn param_binding(&mut self) -> Result<Param, ParseError> {
        let span = self.span();
        let range = self.opt_range()?;
        let name = self.ident()?;
        self.expect_punct("=")?;
        let value = self.expr()?;
        Ok(Param {
            name,
            value,
            range,
            span,
        })
    }

    fn opt_range(&mut self) -> Result<Option<(Expr, Expr)>, ParseError> {
        if self.eat_punct("[") {
            let msb = self.expr()?;
            self.expect_punct(":")?;
            let lsb = self.expr()?;
            self.expect_punct("]")?;
            Ok(Some((msb, lsb)))
        } else {
            Ok(None)
        }
    }

    // ---- items -------------------------------------------------------

    fn item(&mut self) -> Result<Item, ParseError> {
        match self.peek().clone() {
            Tok::Keyword(K::Wire) | Tok::Keyword(K::Reg) | Tok::Keyword(K::Integer) => {
                self.net_item()
            }
            Tok::Keyword(K::Parameter) => {
                self.bump();
                let p = self.param_binding()?;
                self.expect_punct(";")?;
                Ok(Item::Param(p))
            }
            Tok::Keyword(K::Localparam) => {
                self.bump();
                let p = self.param_binding()?;
                self.expect_punct(";")?;
                Ok(Item::Localparam(p))
            }
            Tok::Keyword(K::Assign) => {
                let span = self.bump().span;
                let lhs = self.lvalue()?;
                self.expect_punct("=")?;
                let rhs = self.expr()?;
                self.expect_punct(";")?;
                Ok(Item::Assign { lhs, rhs, span })
            }
            Tok::Keyword(K::Always) => {
                let span = self.bump().span;
                self.expect_punct("@")?;
                let event = self.event_control()?;
                let body = self.stmt()?;
                Ok(Item::Always { event, body, span })
            }
            Tok::Ident(_) => self.instance(),
            other => self.err(format!(
                "expected module item, found {}",
                describe(&other)
            )),
        }
    }

    fn net_item(&mut self) -> Result<Item, ParseError> {
        // `integer x;` is sugar for a signed 32-bit reg.
        if self.eat_kw(K::Integer) {
            let span = self.span();
            let name = self.ident()?;
            self.expect_punct(";")?;
            return Ok(Item::Net(NetDecl {
                kind: NetKind::Reg,
                signed: true,
                range: Some((Expr::number(31), Expr::number(0))),
                name,
                mem_dim: None,
                span,
            }));
        }
        let kind = if self.eat_kw(K::Reg) {
            NetKind::Reg
        } else {
            self.expect_kw(K::Wire)?;
            NetKind::Wire
        };
        let signed = self.eat_kw(K::Signed);
        let range = self.opt_range()?;
        let span = self.span();
        let name = self.ident()?;
        let mem_dim = if self.eat_punct("[") {
            let lo = self.expr()?;
            self.expect_punct(":")?;
            let hi = self.expr()?;
            self.expect_punct("]")?;
            Some((lo, hi))
        } else {
            None
        };
        // Multiple declarators share one statement: split into extra items
        // is awkward from a single return, so we only allow one name per
        // declaration when a memory dimension is present.
        if matches!(self.peek(), Tok::Punct(",")) {
            if mem_dim.is_some() {
                return self.err("memory declarations must declare one name each");
            }
            // Desugar `wire a, b;` by rewriting the token stream is not
            // possible here; instead we return the first and let the caller
            // loop — so we implement the loop inline via a Concat-like item.
            // Simpler: collect all names now and emit a Net for the first,
            // pushing the rest back as pending items.
            let mut extra = Vec::new();
            while self.eat_punct(",") {
                let sp = self.span();
                let n = self.ident()?;
                extra.push(NetDecl {
                    kind,
                    signed,
                    range: range.clone(),
                    name: n,
                    mem_dim: None,
                    span: sp,
                });
            }
            self.expect_punct(";")?;
            // Splice the extra declarations into the token-free pending list
            // by storing them for the caller; we model this with a small
            // queue inside the parser.
            let first = NetDecl {
                kind,
                signed,
                range,
                name,
                mem_dim: None,
                span,
            };
            self.pending_nets(extra);
            return Ok(Item::Net(first));
        }
        self.expect_punct(";")?;
        Ok(Item::Net(NetDecl {
            kind,
            signed,
            range,
            name,
            mem_dim,
            span,
        }))
    }

    fn pending_nets(&mut self, extra: Vec<NetDecl>) {
        // Re-inject synthetic tokens equivalent to the remaining
        // declarations so the main loop picks them up naturally.
        let mut synth = Vec::new();
        for d in extra {
            synth.push(Token {
                tok: Tok::Keyword(match d.kind {
                    NetKind::Wire => K::Wire,
                    NetKind::Reg => K::Reg,
                }),
                span: d.span,
            });
            if d.signed {
                synth.push(Token {
                    tok: Tok::Keyword(K::Signed),
                    span: d.span,
                });
            }
            if let Some((msb, lsb)) = &d.range {
                synth.push(Token {
                    tok: Tok::Punct("["),
                    span: d.span,
                });
                synth.extend(expr_tokens(msb, d.span));
                synth.push(Token {
                    tok: Tok::Punct(":"),
                    span: d.span,
                });
                synth.extend(expr_tokens(lsb, d.span));
                synth.push(Token {
                    tok: Tok::Punct("]"),
                    span: d.span,
                });
            }
            synth.push(Token {
                tok: Tok::Ident(d.name),
                span: d.span,
            });
            synth.push(Token {
                tok: Tok::Punct(";"),
                span: d.span,
            });
        }
        self.toks.splice(self.pos..self.pos, synth);
    }

    fn instance(&mut self) -> Result<Item, ParseError> {
        let span = self.span();
        let module = self.ident()?;
        let mut params = Vec::new();
        if self.eat_punct("#") {
            self.expect_punct("(")?;
            loop {
                self.expect_punct(".")?;
                let name = self.ident()?;
                self.expect_punct("(")?;
                let value = self.expr()?;
                self.expect_punct(")")?;
                params.push((name, value));
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(")")?;
        }
        let name = self.ident()?;
        self.expect_punct("(")?;
        let mut conns = Vec::new();
        if !matches!(self.peek(), Tok::Punct(")")) {
            loop {
                self.expect_punct(".")?;
                let port = self.ident()?;
                self.expect_punct("(")?;
                let expr = if matches!(self.peek(), Tok::Punct(")")) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_punct(")")?;
                conns.push((port, expr));
                if !self.eat_punct(",") {
                    break;
                }
            }
        }
        self.expect_punct(")")?;
        self.expect_punct(";")?;
        Ok(Item::Instance(Instance {
            module,
            name,
            params,
            conns,
            span,
        }))
    }

    fn event_control(&mut self) -> Result<EventControl, ParseError> {
        if self.eat_punct("*") {
            return Ok(EventControl::Comb);
        }
        self.expect_punct("(")?;
        if self.eat_punct("*") {
            self.expect_punct(")")?;
            return Ok(EventControl::Comb);
        }
        let mut edges = Vec::new();
        loop {
            let posedge = if self.eat_kw(K::Posedge) {
                true
            } else if self.eat_kw(K::Negedge) {
                false
            } else {
                return self.err("expected `posedge`, `negedge`, or `*` in sensitivity list");
            };
            let signal = self.ident()?;
            edges.push(Edge { posedge, signal });
            if self.eat_kw(K::Or) || self.eat_punct(",") {
                continue;
            }
            break;
        }
        self.expect_punct(")")?;
        Ok(EventControl::Edges(edges))
    }

    // ---- statements ----------------------------------------------------

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            Tok::Keyword(K::Begin) => {
                self.bump();
                // optional block label `begin : name`
                if self.eat_punct(":") {
                    self.ident()?;
                }
                let mut stmts = Vec::new();
                while !self.eat_kw(K::End) {
                    if self.at_eof() {
                        return self.err("unexpected end of input inside `begin` block");
                    }
                    stmts.push(self.stmt()?);
                }
                Ok(Stmt::Block(stmts))
            }
            Tok::Keyword(K::If) => {
                self.bump();
                self.expect_punct("(")?;
                let cond = self.expr()?;
                self.expect_punct(")")?;
                let then = Box::new(self.stmt()?);
                let els = if self.eat_kw(K::Else) {
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                Ok(Stmt::If { cond, then, els })
            }
            Tok::Keyword(K::Case) | Tok::Keyword(K::Casez) => {
                let span = self.span();
                let kind = if self.eat_kw(K::Case) {
                    CaseKind::Case
                } else {
                    self.expect_kw(K::Casez)?;
                    CaseKind::Casez
                };
                self.expect_punct("(")?;
                let expr = self.expr()?;
                self.expect_punct(")")?;
                let mut arms = Vec::new();
                let mut default = None;
                while !self.eat_kw(K::Endcase) {
                    if self.at_eof() {
                        return self.err("unexpected end of input inside `case`");
                    }
                    if self.eat_kw(K::Default) {
                        self.eat_punct(":");
                        default = Some(Box::new(self.stmt()?));
                        continue;
                    }
                    let mut labels = vec![self.expr()?];
                    while self.eat_punct(",") {
                        labels.push(self.expr()?);
                    }
                    self.expect_punct(":")?;
                    let body = self.stmt()?;
                    arms.push(CaseArm { labels, body });
                }
                Ok(Stmt::Case {
                    kind,
                    expr,
                    arms,
                    default,
                    span,
                })
            }
            Tok::Keyword(K::For) => {
                self.bump();
                self.expect_punct("(")?;
                let var = self.ident()?;
                self.expect_punct("=")?;
                let init = self.expr()?;
                self.expect_punct(";")?;
                let cond = self.expr()?;
                self.expect_punct(";")?;
                let var2 = self.ident()?;
                if var2 != var {
                    return self.err("for-loop step must assign the loop variable");
                }
                self.expect_punct("=")?;
                let step = self.expr()?;
                self.expect_punct(")")?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt::For {
                    var,
                    init,
                    cond,
                    step,
                    body,
                })
            }
            Tok::SysName(name) => {
                let span = self.bump().span;
                match name.as_str() {
                    "$display" | "$write" => {
                        self.expect_punct("(")?;
                        let format = match self.peek().clone() {
                            Tok::Str(s) => {
                                self.bump();
                                s
                            }
                            other => {
                                return self.err(format!(
                                    "expected format string, found {}",
                                    describe(&other)
                                ))
                            }
                        };
                        let mut args = Vec::new();
                        while self.eat_punct(",") {
                            args.push(self.expr()?);
                        }
                        self.expect_punct(")")?;
                        self.expect_punct(";")?;
                        Ok(Stmt::Display { format, args, span })
                    }
                    "$finish" | "$stop" => {
                        if self.eat_punct("(") {
                            if !matches!(self.peek(), Tok::Punct(")")) {
                                self.expr()?;
                            }
                            self.expect_punct(")")?;
                        }
                        self.expect_punct(";")?;
                        Ok(Stmt::Finish)
                    }
                    other => self.err(format!("unsupported system task `{other}`")),
                }
            }
            Tok::Punct(";") => {
                self.bump();
                Ok(Stmt::Empty)
            }
            Tok::Ident(_) | Tok::Punct("{") => {
                let span = self.span();
                let lhs = self.lvalue()?;
                let nonblocking = if self.eat_punct("<=") {
                    true
                } else {
                    self.expect_punct("=")?;
                    false
                };
                let rhs = self.expr()?;
                self.expect_punct(";")?;
                Ok(Stmt::Assign {
                    lhs,
                    nonblocking,
                    rhs,
                    span,
                })
            }
            other => self.err(format!("expected statement, found {}", describe(&other))),
        }
    }

    fn lvalue(&mut self) -> Result<LValue, ParseError> {
        if self.eat_punct("{") {
            let mut parts = vec![self.lvalue()?];
            while self.eat_punct(",") {
                parts.push(self.lvalue()?);
            }
            self.expect_punct("}")?;
            return Ok(LValue::Concat(parts));
        }
        let name = self.ident()?;
        if self.eat_punct("[") {
            let first = self.expr()?;
            if self.eat_punct(":") {
                let lsb = self.expr()?;
                self.expect_punct("]")?;
                return Ok(LValue::Range(name, first, lsb));
            }
            self.expect_punct("]")?;
            return Ok(LValue::Index(name, first));
        }
        Ok(LValue::Id(name))
    }

    // ---- expressions ---------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let cond = self.binary(0)?;
        if self.eat_punct("?") {
            let t = self.expr()?;
            self.expect_punct(":")?;
            let f = self.expr()?;
            return Ok(Expr::Ternary(Box::new(cond), Box::new(t), Box::new(f)));
        }
        Ok(cond)
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        while let Some((op, prec)) = self.peek_binop() {
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn peek_binop(&self) -> Option<(BinaryOp, u8)> {
        let p = match self.peek() {
            Tok::Punct(p) => *p,
            _ => return None,
        };
        Some(match p {
            "||" => (BinaryOp::LogOr, 1),
            "&&" => (BinaryOp::LogAnd, 2),
            "|" => (BinaryOp::Or, 3),
            "^" => (BinaryOp::Xor, 4),
            "~^" | "^~" => (BinaryOp::Xnor, 4),
            "&" => (BinaryOp::And, 5),
            "==" => (BinaryOp::Eq, 6),
            "!=" => (BinaryOp::Ne, 6),
            "<" => (BinaryOp::Lt, 7),
            "<=" => (BinaryOp::Le, 7),
            ">" => (BinaryOp::Gt, 7),
            ">=" => (BinaryOp::Ge, 7),
            "<<" => (BinaryOp::Shl, 8),
            ">>" => (BinaryOp::Shr, 8),
            ">>>" => (BinaryOp::AShr, 8),
            "+" => (BinaryOp::Add, 9),
            "-" => (BinaryOp::Sub, 9),
            "*" => (BinaryOp::Mul, 10),
            "/" => (BinaryOp::Div, 10),
            "%" => (BinaryOp::Mod, 10),
            _ => return None,
        })
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        let op = match self.peek() {
            Tok::Punct("~") => Some(UnaryOp::Not),
            Tok::Punct("!") => Some(UnaryOp::LogNot),
            Tok::Punct("-") => Some(UnaryOp::Neg),
            Tok::Punct("&") => Some(UnaryOp::RedAnd),
            Tok::Punct("|") => Some(UnaryOp::RedOr),
            Tok::Punct("^") => Some(UnaryOp::RedXor),
            Tok::Punct("~^") | Tok::Punct("^~") => Some(UnaryOp::RedXnor),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let e = self.unary()?;
            return Ok(Expr::Unary(op, Box::new(e)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Number(text) => {
                self.bump();
                // Width cast `W'(expr)` — the lexer leaves `W` bare when `'`
                // is followed by `(`.
                if matches!(self.peek(), Tok::Punct("'")) && matches!(self.peek2(), Tok::Punct("("))
                {
                    self.bump(); // '
                    self.bump(); // (
                    let inner = self.expr()?;
                    self.expect_punct(")")?;
                    let width: u32 = text
                        .parse()
                        .map_err(|_| ParseError::new("bad cast width", self.span()))?;
                    if width == 0 {
                        return self.err("cast width must be positive");
                    }
                    return Ok(Expr::WidthCast(width, Box::new(inner)));
                }
                let value = Bits::parse_literal(&text)
                    .map_err(|e| ParseError::new(e.to_string(), self.span()))?;
                Ok(Expr::Literal {
                    value,
                    sized: text.contains('\''),
                })
            }
            Tok::Ident(name) => {
                self.bump();
                if self.eat_punct("[") {
                    let first = self.expr()?;
                    if self.eat_punct(":") {
                        let lsb = self.expr()?;
                        self.expect_punct("]")?;
                        return Ok(Expr::Range(name, Box::new(first), Box::new(lsb)));
                    }
                    self.expect_punct("]")?;
                    return Ok(Expr::Index(name, Box::new(first)));
                }
                Ok(Expr::Ident(name))
            }
            Tok::SysName(sys) => {
                self.bump();
                match sys.as_str() {
                    "$signed" | "$unsigned" => {
                        self.expect_punct("(")?;
                        let e = self.expr()?;
                        self.expect_punct(")")?;
                        Ok(Expr::SignCast(sys == "$signed", Box::new(e)))
                    }
                    other => self.err(format!("unsupported system function `{other}`")),
                }
            }
            Tok::Punct("(") => {
                self.bump();
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Tok::Punct("{") => {
                self.bump();
                let first = self.expr()?;
                // Replication `{n{expr}}`.
                if self.eat_punct("{") {
                    let body = self.expr()?;
                    self.expect_punct("}")?;
                    self.expect_punct("}")?;
                    return Ok(Expr::Repeat(Box::new(first), Box::new(body)));
                }
                let mut parts = vec![first];
                while self.eat_punct(",") {
                    parts.push(self.expr()?);
                }
                self.expect_punct("}")?;
                Ok(Expr::Concat(parts))
            }
            other => self.err(format!("expected expression, found {}", describe(&other))),
        }
    }
}

fn describe(t: &Tok) -> String {
    match t {
        Tok::Ident(n) => format!("identifier `{n}`"),
        Tok::SysName(n) => format!("`{n}`"),
        Tok::Number(n) => format!("number `{n}`"),
        Tok::Str(_) => "string literal".into(),
        Tok::Keyword(k) => format!("keyword `{}`", k.as_str()),
        Tok::Punct(p) => format!("`{p}`"),
        Tok::Eof => "end of input".into(),
    }
}

/// Renders an already-parsed expression back into tokens for the
/// multi-declarator desugaring path. Only literals and identifiers appear in
/// declaration ranges in practice; other shapes fall back to a parenthesized
/// reprint via the pretty-printer.
fn expr_tokens(e: &Expr, span: Span) -> Vec<Token> {
    let text = crate::printer::print_expr(e);
    // Lexing a printed expression cannot fail: the printer emits only tokens
    // the lexer accepts.
    #[allow(clippy::expect_used)]
    let mut toks = lex(&text).expect("printed expression must re-lex");
    toks.pop(); // drop EOF
    for t in &mut toks {
        t.span = span;
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_minimal_module() {
        let f = parse("module m(input clk, output reg [7:0] q); endmodule").unwrap();
        assert_eq!(f.modules.len(), 1);
        let m = &f.modules[0];
        assert_eq!(m.name, "m");
        assert_eq!(m.ports.len(), 2);
        assert_eq!(m.ports[1].net.kind, NetKind::Reg);
    }

    #[test]
    fn parse_port_direction_carryover() {
        let f = parse("module m(input a, b, output c); endmodule").unwrap();
        let m = &f.modules[0];
        assert_eq!(m.ports[1].dir, Dir::Input);
        assert_eq!(m.ports[2].dir, Dir::Output);
    }

    #[test]
    fn parse_params_and_localparam() {
        let src = "module m #(parameter W = 8, parameter D = 16)(input clk);
            localparam IDLE = 2'd0;
            endmodule";
        let m = parse(src).unwrap().modules.remove(0);
        assert_eq!(m.params.len(), 2);
        assert!(m.param("IDLE").is_some());
    }

    #[test]
    fn parse_multi_declarator() {
        let src = "module m; wire [3:0] a, b, c; reg x, y; endmodule";
        let m = parse(src).unwrap().modules.remove(0);
        let nets: Vec<_> = m.nets().map(|n| n.name.clone()).collect();
        assert_eq!(nets, vec!["a", "b", "c", "x", "y"]);
        assert!(m.net("b").unwrap().range.is_some());
        assert!(m.net("y").unwrap().range.is_none());
    }

    #[test]
    fn parse_memory_decl() {
        let src = "module m; reg [7:0] mem [0:255]; endmodule";
        let m = parse(src).unwrap().modules.remove(0);
        assert!(m.net("mem").unwrap().mem_dim.is_some());
    }

    #[test]
    fn parse_always_and_case() {
        let src = "module m(input clk);
            reg [1:0] state;
            always @(posedge clk) begin
              case (state)
                2'd0: state <= 2'd1;
                2'd1, 2'd2: state <= 2'd0;
                default: state <= 2'd0;
              endcase
            end
            endmodule";
        let m = parse(src).unwrap().modules.remove(0);
        let Item::Always { event, body, .. } = &m.items[1] else {
            panic!("expected always");
        };
        assert_eq!(
            event,
            &EventControl::Edges(vec![Edge {
                posedge: true,
                signal: "clk".into()
            }])
        );
        let Stmt::Block(stmts) = body else {
            panic!("expected block")
        };
        let Stmt::Case { arms, default, .. } = &stmts[0] else {
            panic!("expected case")
        };
        assert_eq!(arms.len(), 2);
        assert_eq!(arms[1].labels.len(), 2);
        assert!(default.is_some());
    }

    #[test]
    fn parse_expressions_precedence() {
        let e = parse_expr("a + b * c").unwrap();
        assert_eq!(
            e,
            Expr::add(
                Expr::ident("a"),
                Expr::Binary(
                    BinaryOp::Mul,
                    Box::new(Expr::ident("b")),
                    Box::new(Expr::ident("c"))
                )
            )
        );
        let e = parse_expr("a == b && c || d").unwrap();
        let Expr::Binary(BinaryOp::LogOr, _, _) = e else {
            panic!("|| should be outermost: {e:?}");
        };
    }

    #[test]
    fn parse_ternary_and_concat() {
        let e = parse_expr("sel ? {a, 2'b01} : {4{b}}").unwrap();
        let Expr::Ternary(_, t, f) = e else {
            panic!()
        };
        assert!(matches!(*t, Expr::Concat(_)));
        assert!(matches!(*f, Expr::Repeat(_, _)));
    }

    #[test]
    fn parse_width_cast() {
        let e = parse_expr("42'(right) >> 6").unwrap();
        let Expr::Binary(BinaryOp::Shr, l, _) = e else {
            panic!()
        };
        assert_eq!(*l, Expr::WidthCast(42, Box::new(Expr::ident("right"))));
    }

    #[test]
    fn parse_le_vs_nonblocking() {
        // `<=` is less-equal inside expressions...
        let e = parse_expr("a <= b").unwrap();
        assert!(matches!(e, Expr::Binary(BinaryOp::Le, _, _)));
        // ...and nonblocking assignment in statement position.
        let src = "module m(input clk); reg x;
            always @(posedge clk) x <= 1'b1;
            endmodule";
        let m = parse(src).unwrap().modules.remove(0);
        let Item::Always { body, .. } = &m.items[1] else {
            panic!()
        };
        assert!(matches!(
            body,
            Stmt::Assign {
                nonblocking: true,
                ..
            }
        ));
    }

    #[test]
    fn parse_display_and_finish() {
        let src = r#"module m(input clk);
            always @(posedge clk) begin
              $display("x=%d y=%h", x, y);
              $finish;
            end
            endmodule"#;
        let m = parse(src).unwrap().modules.remove(0);
        let Item::Always { body, .. } = &m.items[0] else {
            panic!()
        };
        let Stmt::Block(stmts) = body else { panic!() };
        assert!(matches!(&stmts[0], Stmt::Display { args, .. } if args.len() == 2));
        assert!(matches!(&stmts[1], Stmt::Finish));
    }

    #[test]
    fn parse_instance() {
        let src = "module top(input clk);
            wire [7:0] q;
            fifo #(.DEPTH(16), .W(8)) f0 (.clk(clk), .din(8'h00), .dout(q), .full());
            endmodule";
        let m = parse(src).unwrap().modules.remove(0);
        let Item::Instance(inst) = &m.items[1] else {
            panic!()
        };
        assert_eq!(inst.module, "fifo");
        assert_eq!(inst.params.len(), 2);
        assert_eq!(inst.conns.len(), 4);
        assert!(inst.conns[3].1.is_none());
    }

    #[test]
    fn parse_for_loop() {
        let src = "module m(input clk);
            reg [7:0] acc;
            integer i;
            always @(posedge clk) begin
              for (i = 0; i < 4; i = i + 1) acc = acc + 1;
            end
            endmodule";
        let m = parse(src).unwrap().modules.remove(0);
        let Item::Always { body, .. } = &m.items[2] else {
            panic!()
        };
        let Stmt::Block(stmts) = body else { panic!() };
        assert!(matches!(&stmts[0], Stmt::For { .. }));
    }

    #[test]
    fn parse_errors_have_spans() {
        let err = parse("module m(input clk) endmodule").unwrap_err();
        assert!(err.span.start > 0);
        assert!(parse("module m; garbage!!! endmodule").is_err());
        assert!(parse("module m; wire w endmodule").is_err());
    }

    #[test]
    fn parse_multiple_edges() {
        let src = "module m(input clk, input rst_n); reg q;
            always @(posedge clk or negedge rst_n) q <= 1'b0;
            endmodule";
        let m = parse(src).unwrap().modules.remove(0);
        let Item::Always { event, .. } = &m.items[1] else {
            panic!()
        };
        let EventControl::Edges(edges) = event else {
            panic!()
        };
        assert_eq!(edges.len(), 2);
        assert!(!edges[1].posedge);
    }
}
