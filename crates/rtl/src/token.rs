//! Lexer for the synthesizable Verilog subset.

use crate::span::{ParseError, Span};

/// A lexical token kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier such as `counter` or an escaped name.
    Ident(String),
    /// A system task/function name including the `$`, e.g. `$display`.
    SysName(String),
    /// A numeric literal in its original spelling, e.g. `8'hFF` or `42`.
    Number(String),
    /// A string literal without the surrounding quotes.
    Str(String),
    /// A keyword such as `module` or `always`.
    Keyword(Keyword),
    /// Punctuation or an operator, e.g. `<=` or `(`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

/// Reserved words recognized by the lexer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Keyword {
    Module,
    Endmodule,
    Input,
    Output,
    Inout,
    Wire,
    Reg,
    Integer,
    Parameter,
    Localparam,
    Assign,
    Always,
    Posedge,
    Negedge,
    Or,
    If,
    Else,
    Case,
    Casez,
    Endcase,
    Default,
    Begin,
    End,
    For,
    Signed,
    Initial,
    Genvar,
    Generate,
    Endgenerate,
    Function,
    Endfunction,
}

impl Keyword {
    /// The textual spelling of the keyword.
    pub fn as_str(self) -> &'static str {
        use Keyword::*;
        match self {
            Module => "module",
            Endmodule => "endmodule",
            Input => "input",
            Output => "output",
            Inout => "inout",
            Wire => "wire",
            Reg => "reg",
            Integer => "integer",
            Parameter => "parameter",
            Localparam => "localparam",
            Assign => "assign",
            Always => "always",
            Posedge => "posedge",
            Negedge => "negedge",
            Or => "or",
            If => "if",
            Else => "else",
            Case => "case",
            Casez => "casez",
            Endcase => "endcase",
            Default => "default",
            Begin => "begin",
            End => "end",
            For => "for",
            Signed => "signed",
            Initial => "initial",
            Genvar => "genvar",
            Generate => "generate",
            Endgenerate => "endgenerate",
            Function => "function",
            Endfunction => "endfunction",
        }
    }

    fn lookup(s: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match s {
            "module" => Module,
            "endmodule" => Endmodule,
            "input" => Input,
            "output" => Output,
            "inout" => Inout,
            "wire" => Wire,
            "reg" => Reg,
            "integer" => Integer,
            "parameter" => Parameter,
            "localparam" => Localparam,
            "assign" => Assign,
            "always" => Always,
            "posedge" => Posedge,
            "negedge" => Negedge,
            "or" => Or,
            "if" => If,
            "else" => Else,
            "case" => Case,
            "casez" => Casez,
            "endcase" => Endcase,
            "default" => Default,
            "begin" => Begin,
            "end" => End,
            "for" => For,
            "signed" => Signed,
            "initial" => Initial,
            "genvar" => Genvar,
            "generate" => Generate,
            "endgenerate" => Endgenerate,
            "function" => Function,
            "endfunction" => Endfunction,
            _ => return None,
        })
    }
}

/// A token paired with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind/payload.
    pub tok: Tok,
    /// Location in the source text.
    pub span: Span,
}

/// Multi-character punctuation, longest first so greedy matching works.
const PUNCTS: &[&str] = &[
    "<<<", ">>>", "===", "!==", "<=", ">=", "==", "!=", "&&", "||", "<<", ">>", "~^", "^~", "+:",
    "-:", "(", ")", "[", "]", "{", "}", ";", ",", ".", ":", "?", "+", "-", "*", "/", "%", "&",
    "|", "^", "~", "!", "<", ">", "=", "#", "@", "'",
];

/// Tokenizes `source`, returning the token stream terminated by [`Tok::Eof`].
///
/// # Errors
///
/// Returns a [`ParseError`] on unterminated comments/strings or characters
/// outside the language.
pub fn lex(source: &str) -> Result<Vec<Token>, ParseError> {
    let bytes = source.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        // Whitespace
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments
        if c == '/' && i + 1 < bytes.len() {
            if bytes[i + 1] == b'/' {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            if bytes[i + 1] == b'*' {
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(ParseError::new(
                            "unterminated block comment",
                            Span::new(start, bytes.len()),
                        ));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
                continue;
            }
        }
        // Compiler directives like `timescale — skip to end of line.
        if c == '`' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        // String literal
        if c == '"' {
            let start = i;
            i += 1;
            let mut s = String::new();
            loop {
                if i >= bytes.len() {
                    return Err(ParseError::new(
                        "unterminated string literal",
                        Span::new(start, bytes.len()),
                    ));
                }
                match bytes[i] {
                    b'"' => {
                        i += 1;
                        break;
                    }
                    b'\\' if i + 1 < bytes.len() => {
                        let esc = bytes[i + 1];
                        s.push(match esc {
                            b'n' => '\n',
                            b't' => '\t',
                            other => other as char,
                        });
                        i += 2;
                    }
                    other => {
                        s.push(other as char);
                        i += 1;
                    }
                }
            }
            toks.push(Token {
                tok: Tok::Str(s),
                span: Span::new(start, i),
            });
            continue;
        }
        // Number (possibly based: `8'hFF`, `'b1010`). A `'` NOT followed by
        // a base character is left as punctuation so width casts like
        // `42'(expr)` lex as Number("42"), Punct("'"), Punct("(").
        let is_based_tick = |j: usize| -> bool {
            j + 1 < bytes.len()
                && bytes[j] == b'\''
                && matches!(bytes[j + 1].to_ascii_lowercase(), b'b' | b'o' | b'd' | b'h')
        };
        if c.is_ascii_digit() || is_based_tick(i) {
            let start = i;
            let mut text = String::new();
            while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                text.push(bytes[i] as char);
                i += 1;
            }
            // Optional based part. Allow whitespace between size and base.
            let mut j = i;
            while j < bytes.len() && (bytes[j] as char).is_ascii_whitespace() {
                j += 1;
            }
            if is_based_tick(j) {
                i = j;
                text.push('\'');
                text.push(bytes[i + 1] as char);
                i += 2;
                let mut any_digit = false;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    text.push(bytes[i] as char);
                    i += 1;
                    any_digit = true;
                }
                if !any_digit {
                    return Err(ParseError::new(
                        "missing digits after base character",
                        Span::new(start, i),
                    ));
                }
            }
            toks.push(Token {
                tok: Tok::Number(text),
                span: Span::new(start, i),
            });
            continue;
        }
        // Identifier / keyword / system name
        if c.is_ascii_alphabetic() || c == '_' || c == '$' {
            let start = i;
            let is_sys = c == '$';
            i += 1;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'$')
            {
                i += 1;
            }
            let text = &source[start..i];
            let tok = if is_sys {
                Tok::SysName(text.to_owned())
            } else if let Some(kw) = Keyword::lookup(text) {
                Tok::Keyword(kw)
            } else {
                Tok::Ident(text.to_owned())
            };
            toks.push(Token {
                tok,
                span: Span::new(start, i),
            });
            continue;
        }
        // Punctuation
        let rest = &source[i..];
        let mut matched = false;
        for p in PUNCTS {
            if rest.starts_with(p) {
                toks.push(Token {
                    tok: Tok::Punct(p),
                    span: Span::new(i, i + p.len()),
                });
                i += p.len();
                matched = true;
                break;
            }
        }
        if !matched {
            return Err(ParseError::new(
                format!("unexpected character `{c}`"),
                Span::new(i, i + 1),
            ));
        }
    }
    toks.push(Token {
        tok: Tok::Eof,
        span: Span::new(bytes.len(), bytes.len()),
    });
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lex_module_header() {
        let toks = kinds("module m(input clk);endmodule");
        assert_eq!(toks[0], Tok::Keyword(Keyword::Module));
        assert_eq!(toks[1], Tok::Ident("m".into()));
        assert_eq!(toks[2], Tok::Punct("("));
        assert_eq!(toks[3], Tok::Keyword(Keyword::Input));
    }

    #[test]
    fn lex_based_number() {
        assert_eq!(kinds("8'hFF")[0], Tok::Number("8'hFF".into()));
        assert_eq!(kinds("'b1010")[0], Tok::Number("'b1010".into()));
        assert_eq!(kinds("4 'd9")[0], Tok::Number("4'd9".into()));
        assert_eq!(kinds("12_3")[0], Tok::Number("12_3".into()));
    }

    #[test]
    fn lex_operators_longest_match() {
        assert_eq!(kinds("a <= b")[1], Tok::Punct("<="));
        assert_eq!(kinds("a >>> 2")[1], Tok::Punct(">>>"));
        assert_eq!(kinds("a ~^ b")[1], Tok::Punct("~^"));
        assert_eq!(kinds("a < = b")[1], Tok::Punct("<"));
    }

    #[test]
    fn lex_comments_skipped() {
        let toks = kinds("a // line\n/* block\nmore */ b");
        assert_eq!(toks[0], Tok::Ident("a".into()));
        assert_eq!(toks[1], Tok::Ident("b".into()));
    }

    #[test]
    fn lex_string_escapes() {
        assert_eq!(
            kinds("\"hi\\nthere\"")[0],
            Tok::Str("hi\nthere".into())
        );
    }

    #[test]
    fn lex_sysname() {
        assert_eq!(kinds("$display")[0], Tok::SysName("$display".into()));
    }

    #[test]
    fn lex_directive_skipped() {
        let toks = kinds("`timescale 1ns/1ps\nmodule");
        assert_eq!(toks[0], Tok::Keyword(Keyword::Module));
    }

    #[test]
    fn lex_errors() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("/* unterminated").is_err());
    }

    #[test]
    fn lex_width_cast_shape() {
        // `8'q0` is not a based literal: `'` stays punctuation.
        let toks = kinds("8'q0");
        assert_eq!(toks[0], Tok::Number("8".into()));
        assert_eq!(toks[1], Tok::Punct("'"));
        // Width-cast shape.
        let toks = kinds("42'(right)");
        assert_eq!(toks[0], Tok::Number("42".into()));
        assert_eq!(toks[1], Tok::Punct("'"));
        assert_eq!(toks[2], Tok::Punct("("));
    }
}
