//! Byte-offset source spans and human-readable diagnostics.

use std::fmt;

/// A half-open byte range into the original source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Creates a span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// A zero-length span used for synthesized (tool-generated) nodes.
    pub fn synthetic() -> Self {
        Span { start: 0, end: 0 }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Computes the 1-based `(line, column)` of the span start in `source`.
    pub fn line_col(&self, source: &str) -> (usize, usize) {
        let mut line = 1;
        let mut col = 1;
        for (i, ch) in source.char_indices() {
            if i >= self.start {
                break;
            }
            if ch == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }
}

/// An error produced by the lexer or parser, with location info.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Where it went wrong.
    pub span: Span,
}

impl ParseError {
    /// Creates a new parse error.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        ParseError {
            message: message.into(),
            span,
        }
    }

    /// Renders the error with line/column and a source excerpt.
    pub fn render(&self, source: &str) -> String {
        let (line, col) = self.span.line_col(source);
        let line_text = source.lines().nth(line - 1).unwrap_or("");
        format!(
            "parse error at line {line}, column {col}: {}\n  {line_text}\n  {}^",
            self.message,
            " ".repeat(col.saturating_sub(1))
        )
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at bytes {}..{}: {}",
            self.span.start, self.span.end, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_basic() {
        let src = "abc\ndef\nghi";
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
        assert_eq!(Span::new(5, 6).line_col(src), (2, 2));
        assert_eq!(Span::new(10, 11).line_col(src), (3, 3));
    }

    #[test]
    fn merge_spans() {
        assert_eq!(Span::new(3, 5).merge(Span::new(1, 4)), Span::new(1, 5));
    }

    #[test]
    fn render_points_at_column() {
        let src = "module m;\nwire x\nendmodule";
        let err = ParseError::new("expected `;`", Span::new(15, 16));
        let rendered = err.render(src);
        assert!(rendered.contains("line 2"), "{rendered}");
        assert!(rendered.contains("wire x"), "{rendered}");
    }
}
