//! Pretty-printer: renders AST nodes back to canonical Verilog text.
//!
//! Instrumentation passes build ASTs and use this printer to emit the
//! instrumented design; the output always re-parses to a structurally
//! identical AST (a property test in this crate enforces it).

// Every unwrap in this file is a `write!` into a `String`; `fmt::Write`
// for `String` is infallible, so none of them can fire.
#![allow(clippy::unwrap_used)]

use crate::ast::*;
use std::fmt::Write;

/// Prints a whole source file.
pub fn print(file: &SourceFile) -> String {
    let mut out = String::new();
    for (i, m) in file.modules.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        print_module_into(m, &mut out);
    }
    out
}

/// Prints a single module.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    print_module_into(m, &mut out);
    out
}

fn print_module_into(m: &Module, out: &mut String) {
    write!(out, "module {}", m.name).unwrap();
    if !m.params.is_empty() {
        out.push_str(" #(\n");
        for (i, p) in m.params.iter().enumerate() {
            let sep = if i + 1 == m.params.len() { "" } else { "," };
            writeln!(out, "  parameter {}{} = {}{}", range_str(&p.range), p.name, print_expr(&p.value), sep)
                .unwrap();
        }
        out.push(')');
    }
    if !m.ports.is_empty() {
        out.push_str(" (\n");
        for (i, port) in m.ports.iter().enumerate() {
            let sep = if i + 1 == m.ports.len() { "" } else { "," };
            let kind = match port.net.kind {
                NetKind::Reg => "reg ",
                NetKind::Wire => "",
            };
            let signed = if port.net.signed { "signed " } else { "" };
            writeln!(
                out,
                "  {} {}{}{}{}{}",
                port.dir.as_str(),
                kind,
                signed,
                range_str(&port.net.range),
                port.net.name,
                sep
            )
            .unwrap();
        }
        out.push(')');
    }
    out.push_str(";\n");
    for item in &m.items {
        print_item(item, out, 1);
    }
    out.push_str("endmodule\n");
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn range_str(range: &Option<(Expr, Expr)>) -> String {
    match range {
        None => String::new(),
        Some((msb, lsb)) => format!("[{}:{}] ", print_expr(msb), print_expr(lsb)),
    }
}

fn print_item(item: &Item, out: &mut String, level: usize) {
    indent(out, level);
    match item {
        Item::Net(n) => {
            let kind = match n.kind {
                NetKind::Wire => "wire",
                NetKind::Reg => "reg",
            };
            let signed = if n.signed { " signed" } else { "" };
            let mem = match &n.mem_dim {
                None => String::new(),
                Some((lo, hi)) => format!(" [{}:{}]", print_expr(lo), print_expr(hi)),
            };
            let range = range_str(&n.range);
            writeln!(out, "{kind}{signed} {range}{}{mem};", n.name).unwrap();
        }
        Item::Param(p) => {
            writeln!(out, "parameter {}{} = {};", range_str(&p.range), p.name, print_expr(&p.value)).unwrap();
        }
        Item::Localparam(p) => {
            writeln!(out, "localparam {}{} = {};", range_str(&p.range), p.name, print_expr(&p.value)).unwrap();
        }
        Item::Assign { lhs, rhs, .. } => {
            writeln!(out, "assign {} = {};", print_lvalue(lhs), print_expr(rhs)).unwrap();
        }
        Item::Always { event, body, .. } => {
            match event {
                EventControl::Comb => out.push_str("always @(*) "),
                EventControl::Edges(edges) => {
                    let list = edges
                        .iter()
                        .map(|e| {
                            format!(
                                "{} {}",
                                if e.posedge { "posedge" } else { "negedge" },
                                e.signal
                            )
                        })
                        .collect::<Vec<_>>()
                        .join(" or ");
                    write!(out, "always @({list}) ").unwrap();
                }
            }
            print_stmt(body, out, level, false);
        }
        Item::Instance(inst) => {
            write!(out, "{}", inst.module).unwrap();
            if !inst.params.is_empty() {
                let ps = inst
                    .params
                    .iter()
                    .map(|(n, e)| format!(".{n}({})", print_expr(e)))
                    .collect::<Vec<_>>()
                    .join(", ");
                write!(out, " #({ps})").unwrap();
            }
            let cs = inst
                .conns
                .iter()
                .map(|(n, e)| match e {
                    Some(e) => format!(".{n}({})", print_expr(e)),
                    None => format!(".{n}()"),
                })
                .collect::<Vec<_>>()
                .join(", ");
            writeln!(out, " {} ({cs});", inst.name).unwrap();
        }
    }
}

fn print_stmt(stmt: &Stmt, out: &mut String, level: usize, do_indent: bool) {
    if do_indent {
        indent(out, level);
    }
    match stmt {
        Stmt::Block(stmts) => {
            out.push_str("begin\n");
            for s in stmts {
                print_stmt(s, out, level + 1, true);
            }
            indent(out, level);
            out.push_str("end\n");
        }
        Stmt::If { cond, then, els } => {
            write!(out, "if ({}) ", print_expr(cond)).unwrap();
            print_stmt(then, out, level, false);
            if let Some(els) = els {
                indent(out, level);
                out.push_str("else ");
                print_stmt(els, out, level, false);
            }
        }
        Stmt::Case {
            kind,
            expr,
            arms,
            default,
            ..
        } => {
            let kw = match kind {
                CaseKind::Case => "case",
                CaseKind::Casez => "casez",
            };
            writeln!(out, "{kw} ({})", print_expr(expr)).unwrap();
            for arm in arms {
                indent(out, level + 1);
                let labels = arm
                    .labels
                    .iter()
                    .map(print_expr)
                    .collect::<Vec<_>>()
                    .join(", ");
                write!(out, "{labels}: ").unwrap();
                print_stmt(&arm.body, out, level + 1, false);
            }
            if let Some(d) = default {
                indent(out, level + 1);
                out.push_str("default: ");
                print_stmt(d, out, level + 1, false);
            }
            indent(out, level);
            out.push_str("endcase\n");
        }
        Stmt::Assign {
            lhs,
            nonblocking,
            rhs,
            ..
        } => {
            let op = if *nonblocking { "<=" } else { "=" };
            writeln!(out, "{} {op} {};", print_lvalue(lhs), print_expr(rhs)).unwrap();
        }
        Stmt::For {
            var,
            init,
            cond,
            step,
            body,
        } => {
            write!(
                out,
                "for ({var} = {}; {}; {var} = {}) ",
                print_expr(init),
                print_expr(cond),
                print_expr(step)
            )
            .unwrap();
            print_stmt(body, out, level, false);
        }
        Stmt::Display { format, args, .. } => {
            let escaped = format.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n");
            write!(out, "$display(\"{escaped}\"").unwrap();
            for a in args {
                write!(out, ", {}", print_expr(a)).unwrap();
            }
            out.push_str(");\n");
        }
        Stmt::Finish => out.push_str("$finish;\n"),
        Stmt::Empty => out.push_str(";\n"),
    }
}

/// Prints an lvalue.
pub fn print_lvalue(lv: &LValue) -> String {
    match lv {
        LValue::Id(n) => n.clone(),
        LValue::Index(n, i) => format!("{n}[{}]", print_expr(i)),
        LValue::Range(n, msb, lsb) => {
            format!("{n}[{}:{}]", print_expr(msb), print_expr(lsb))
        }
        LValue::Concat(parts) => {
            let inner = parts
                .iter()
                .map(print_lvalue)
                .collect::<Vec<_>>()
                .join(", ");
            format!("{{{inner}}}")
        }
    }
}

/// Prints an expression with full parenthesization of nested operators,
/// so precedence never changes on re-parse.
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Literal { value, sized } => {
            if *sized || value.width() != 32 {
                format!("{}'h{}", value.width(), value.to_hex_string())
            } else {
                value.to_dec_string()
            }
        }
        Expr::Ident(n) => n.clone(),
        Expr::Unary(op, inner) => format!("{}{}", op.as_str(), atom(inner)),
        Expr::Binary(op, l, r) => {
            format!("{} {} {}", atom(l), op.as_str(), atom(r))
        }
        Expr::Ternary(c, t, f) => {
            format!("{} ? {} : {}", atom(c), atom(t), atom(f))
        }
        Expr::Index(n, i) => format!("{n}[{}]", print_expr(i)),
        Expr::Range(n, msb, lsb) => format!("{n}[{}:{}]", print_expr(msb), print_expr(lsb)),
        Expr::Concat(parts) => {
            let inner = parts.iter().map(print_expr).collect::<Vec<_>>().join(", ");
            format!("{{{inner}}}")
        }
        Expr::Repeat(n, body) => format!("{{{}{{{}}}}}", print_expr(n), print_expr(body)),
        Expr::WidthCast(w, inner) => format!("{w}'({})", print_expr(inner)),
        Expr::SignCast(signed, inner) => format!(
            "{}({})",
            if *signed { "$signed" } else { "$unsigned" },
            print_expr(inner)
        ),
    }
}

/// Prints a subexpression, parenthesizing anything that is not atomic.
fn atom(e: &Expr) -> String {
    match e {
        Expr::Literal { .. }
        | Expr::Ident(_)
        | Expr::Index(_, _)
        | Expr::Range(_, _, _)
        | Expr::Concat(_)
        | Expr::Repeat(_, _)
        | Expr::WidthCast(_, _)
        | Expr::SignCast(_, _) => print_expr(e),
        _ => format!("({})", print_expr(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, parse_expr};

    #[test]
    fn print_expr_parenthesizes() {
        let e = parse_expr("a + b * c").unwrap();
        assert_eq!(print_expr(&e), "a + (b * c)");
        let e2 = parse_expr(&print_expr(&e)).unwrap();
        assert_eq!(print_expr(&e2), "a + (b * c)");
    }

    #[test]
    fn roundtrip_module() {
        let src = r#"module fifo #(parameter W = 8, parameter D = 4) (
            input clk, input rst, input wr, input [7:0] din,
            output reg [7:0] dout, output full);
          reg [1:0] wptr;
          reg [7:0] mem [0:3];
          localparam EMPTY = 2'd0;
          assign full = wptr == 2'd3;
          always @(posedge clk) begin
            if (rst) wptr <= 2'd0;
            else if (wr && !full) begin
              mem[wptr] <= din;
              wptr <= wptr + 2'd1;
              $display("wrote %h at %d", din, wptr);
            end
          end
        endmodule"#;
        let ast1 = parse(src).unwrap();
        let printed1 = print(&ast1);
        let ast2 = parse(&printed1).unwrap();
        let printed2 = print(&ast2);
        assert_eq!(printed1, printed2, "printer must be a fixpoint");
        assert_eq!(ast1.modules[0].items.len(), ast2.modules[0].items.len());
    }

    #[test]
    fn roundtrip_instance_and_for() {
        let src = "module top(input clk);
            wire [7:0] q;
            integer i;
            reg [7:0] acc;
            sub #(.N(4)) s0 (.clk(clk), .q(q), .nc());
            always @(*) begin
              acc = 8'd0;
              for (i = 0; i < 4; i = i + 1) acc = acc + q;
            end
          endmodule";
        let ast1 = parse(src).unwrap();
        let printed = print(&ast1);
        let ast2 = parse(&printed).unwrap();
        assert_eq!(print(&ast2), printed);
    }

    #[test]
    fn literal_printing() {
        assert_eq!(print_expr(&Expr::sized(8, 255)), "8'hff");
        assert_eq!(print_expr(&Expr::number(42)), "42");
        let e = parse_expr("64'hdead_beef_cafe_f00d").unwrap();
        assert_eq!(print_expr(&e), "64'hdeadbeefcafef00d");
    }

    #[test]
    fn display_string_escaping() {
        let s = Stmt::Display {
            format: "a\"b\nc".into(),
            args: vec![],
            span: crate::span::Span::synthetic(),
        };
        let mut out = String::new();
        print_stmt(&s, &mut out, 0, false);
        assert_eq!(out, "$display(\"a\\\"b\\nc\");\n");
    }
}
