//! Abstract syntax tree for the synthesizable Verilog subset.
//!
//! The AST is the exchange format between the parser, the elaborator, and
//! the instrumentation passes of the debugging tools: tools read designs as
//! ASTs, splice in new declarations/statements, and print the result back to
//! Verilog text (mirroring the paper's Pyverilog-pass architecture).

use crate::span::Span;
use hwdbg_bits::Bits;

/// A parsed source file: one or more module definitions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SourceFile {
    /// Modules in source order.
    pub modules: Vec<Module>,
}

impl SourceFile {
    /// Finds a module by name.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.modules.iter().find(|m| m.name == name)
    }

    /// Finds a module by name, mutably.
    pub fn module_mut(&mut self, name: &str) -> Option<&mut Module> {
        self.modules.iter_mut().find(|m| m.name == name)
    }
}

/// A `module ... endmodule` definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Header parameters (`#(parameter W = 8, ...)`).
    pub params: Vec<Param>,
    /// ANSI-style port list.
    pub ports: Vec<Port>,
    /// Body items in source order.
    pub items: Vec<Item>,
    /// Source location of the header.
    pub span: Span,
}

impl Module {
    /// Iterates over all net declarations, both ports and body items.
    pub fn nets(&self) -> impl Iterator<Item = &NetDecl> {
        self.ports
            .iter()
            .map(|p| &p.net)
            .chain(self.items.iter().filter_map(|i| match i {
                Item::Net(n) => Some(n),
                _ => None,
            }))
    }

    /// Looks up a net declaration (port or body) by name.
    pub fn net(&self, name: &str) -> Option<&NetDecl> {
        self.nets().find(|n| n.name == name)
    }

    /// Looks up a parameter or localparam by name.
    pub fn param(&self, name: &str) -> Option<&Param> {
        self.params.iter().find(|p| p.name == name).or_else(|| {
            self.items.iter().find_map(|i| match i {
                Item::Param(p) | Item::Localparam(p) if p.name == name => Some(p),
                _ => None,
            })
        })
    }
}

/// A `parameter` or `localparam` binding.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Default / bound value.
    pub value: Expr,
    /// Declared width range, if any (`parameter [3:0] S = ...`).
    pub range: Option<(Expr, Expr)>,
    /// Source location.
    pub span: Span,
}

/// Port direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// `input`
    Input,
    /// `output`
    Output,
    /// `inout`
    Inout,
}

impl Dir {
    /// Textual keyword for the direction.
    pub fn as_str(self) -> &'static str {
        match self {
            Dir::Input => "input",
            Dir::Output => "output",
            Dir::Inout => "inout",
        }
    }
}

/// A module port: direction plus its net declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Port {
    /// Direction.
    pub dir: Dir,
    /// Underlying net (name, width, reg-ness).
    pub net: NetDecl,
}

/// Net kind: `wire` or `reg`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetKind {
    /// Driven by `assign` or by an instance output.
    Wire,
    /// Assigned in procedural blocks; holds state across cycles when
    /// assigned under a clock edge.
    Reg,
}

/// A single net (wire/reg) declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct NetDecl {
    /// `wire` or `reg`.
    pub kind: NetKind,
    /// Declared `signed`.
    pub signed: bool,
    /// Packed range `[msb:lsb]`, if any; `None` means a 1-bit scalar.
    pub range: Option<(Expr, Expr)>,
    /// Net name.
    pub name: String,
    /// Unpacked (memory) dimension `[lo:hi]`, if any.
    pub mem_dim: Option<(Expr, Expr)>,
    /// Source location.
    pub span: Span,
}

impl NetDecl {
    /// A 1-bit scalar declaration.
    pub fn scalar(kind: NetKind, name: impl Into<String>) -> Self {
        NetDecl {
            kind,
            signed: false,
            range: None,
            name: name.into(),
            mem_dim: None,
            span: Span::synthetic(),
        }
    }

    /// A `[width-1:0]` vector declaration.
    pub fn vector(kind: NetKind, name: impl Into<String>, width: u32) -> Self {
        NetDecl {
            kind,
            signed: false,
            range: Some((Expr::number(width as u64 - 1), Expr::number(0))),
            name: name.into(),
            mem_dim: None,
            span: Span::synthetic(),
        }
    }
}

/// A module body item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A net declaration.
    Net(NetDecl),
    /// A `parameter` in the body.
    Param(Param),
    /// A `localparam`.
    Localparam(Param),
    /// A continuous assignment `assign lhs = rhs;`.
    Assign {
        /// Left-hand side.
        lhs: LValue,
        /// Right-hand side expression.
        rhs: Expr,
        /// Source location.
        span: Span,
    },
    /// An `always` block.
    Always {
        /// Sensitivity: clock edges or combinational.
        event: EventControl,
        /// The body statement (usually a `begin` block).
        body: Stmt,
        /// Source location.
        span: Span,
    },
    /// A module instantiation.
    Instance(Instance),
}

/// A module instantiation with named connections.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// Name of the instantiated module (or blackbox IP).
    pub module: String,
    /// Instance name.
    pub name: String,
    /// Parameter overrides `#(.N(8))`.
    pub params: Vec<(String, Expr)>,
    /// Port connections `.port(expr)`; `None` expression means unconnected.
    pub conns: Vec<(String, Option<Expr>)>,
    /// Source location.
    pub span: Span,
}

/// Sensitivity control of an `always` block.
#[derive(Debug, Clone, PartialEq)]
pub enum EventControl {
    /// One or more clock edges: `@(posedge clk)` / `@(posedge a or negedge b)`.
    Edges(Vec<Edge>),
    /// Combinational: `@*` or `@(*)`.
    Comb,
}

/// A single edge term in a sensitivity list.
#[derive(Debug, Clone, PartialEq)]
pub struct Edge {
    /// Rising or falling.
    pub posedge: bool,
    /// The triggering signal name.
    pub signal: String,
}

/// Kind of case statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseKind {
    /// Exact match.
    Case,
    /// `casez` — `?`/`z` bits are treated as wildcards (we support only
    /// literal labels, so this degrades to exact matching of the given bits).
    Casez,
}

/// Procedural statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `begin ... end`.
    Block(Vec<Stmt>),
    /// `if (cond) then else els`.
    If {
        /// Condition expression (truthy if nonzero).
        cond: Expr,
        /// Taken branch.
        then: Box<Stmt>,
        /// Else branch, if present.
        els: Option<Box<Stmt>>,
    },
    /// `case (expr) ... endcase`.
    Case {
        /// Case flavor.
        kind: CaseKind,
        /// Selector expression.
        expr: Expr,
        /// Arms, excluding `default`.
        arms: Vec<CaseArm>,
        /// `default:` body, if present.
        default: Option<Box<Stmt>>,
        /// Source location of the `case` keyword (anchors lint
        /// diagnostics such as missing-default warnings).
        span: Span,
    },
    /// A blocking (`=`) or nonblocking (`<=`) assignment.
    Assign {
        /// Destination.
        lhs: LValue,
        /// True for nonblocking `<=`.
        nonblocking: bool,
        /// Source expression.
        rhs: Expr,
        /// Source location.
        span: Span,
    },
    /// A bounded `for` loop (unrolled at elaboration).
    For {
        /// Loop variable name.
        var: String,
        /// Initial value.
        init: Expr,
        /// Continuation condition.
        cond: Expr,
        /// Step assignment RHS (`var = step`).
        step: Expr,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `$display(fmt, args...)`.
    Display {
        /// Format string.
        format: String,
        /// Arguments substituted into `%d`/`%h`/`%b` holes.
        args: Vec<Expr>,
        /// Source location.
        span: Span,
    },
    /// `$finish;` — stops simulation.
    Finish,
    /// An empty statement (`;`).
    Empty,
}

impl Stmt {
    /// Builds a nonblocking assignment `lhs <= rhs;`.
    pub fn nonblocking(lhs: LValue, rhs: Expr) -> Stmt {
        Stmt::Assign {
            lhs,
            nonblocking: true,
            rhs,
            span: Span::synthetic(),
        }
    }

    /// Builds a blocking assignment `lhs = rhs;`.
    pub fn blocking(lhs: LValue, rhs: Expr) -> Stmt {
        Stmt::Assign {
            lhs,
            nonblocking: false,
            rhs,
            span: Span::synthetic(),
        }
    }

    /// Builds `if (cond) then` with no else.
    pub fn if_then(cond: Expr, then: Stmt) -> Stmt {
        Stmt::If {
            cond,
            then: Box::new(then),
            els: None,
        }
    }
}

/// One arm of a `case` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseArm {
    /// Match labels (comma-separated constants).
    pub labels: Vec<Expr>,
    /// Arm body.
    pub body: Stmt,
}

/// Assignment destination.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// Whole net: `x`.
    Id(String),
    /// Bit or memory element: `x[i]`.
    Index(String, Expr),
    /// Constant part select: `x[msb:lsb]`.
    Range(String, Expr, Expr),
    /// Concatenation target: `{a, b} = ...`.
    Concat(Vec<LValue>),
}

impl LValue {
    /// Names of all nets written by this lvalue.
    pub fn target_names(&self) -> Vec<&str> {
        match self {
            LValue::Id(n) | LValue::Index(n, _) | LValue::Range(n, _, _) => vec![n],
            LValue::Concat(parts) => parts.iter().flat_map(|p| p.target_names()).collect(),
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum UnaryOp {
    /// Bitwise not `~`.
    Not,
    /// Logical not `!`.
    LogNot,
    /// Arithmetic negation `-`.
    Neg,
    /// Reduction AND `&`.
    RedAnd,
    /// Reduction OR `|`.
    RedOr,
    /// Reduction XOR `^`.
    RedXor,
    /// Reduction XNOR `~^`.
    RedXnor,
}

impl UnaryOp {
    /// Operator spelling.
    pub fn as_str(self) -> &'static str {
        use UnaryOp::*;
        match self {
            Not => "~",
            LogNot => "!",
            Neg => "-",
            RedAnd => "&",
            RedOr => "|",
            RedXor => "^",
            RedXnor => "~^",
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Shl,
    Shr,
    AShr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    LogAnd,
    LogOr,
    And,
    Or,
    Xor,
    Xnor,
}

impl BinaryOp {
    /// Operator spelling.
    pub fn as_str(self) -> &'static str {
        use BinaryOp::*;
        match self {
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Mod => "%",
            Shl => "<<",
            Shr => ">>",
            AShr => ">>>",
            Lt => "<",
            Le => "<=",
            Gt => ">",
            Ge => ">=",
            Eq => "==",
            Ne => "!=",
            LogAnd => "&&",
            LogOr => "||",
            And => "&",
            Or => "|",
            Xor => "^",
            Xnor => "~^",
        }
    }

    /// True for comparison/logical operators whose result is 1 bit.
    pub fn is_boolean(self) -> bool {
        use BinaryOp::*;
        matches!(self, Lt | Le | Gt | Ge | Eq | Ne | LogAnd | LogOr)
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A numeric literal. `sized` records whether an explicit width was
    /// written (`8'hFF`) or the Verilog 32-bit default applied (`42`).
    Literal {
        /// The constant value (its `width()` is authoritative).
        value: Bits,
        /// Whether the source spelled an explicit width.
        sized: bool,
    },
    /// A net, parameter, or genvar reference.
    Ident(String),
    /// Unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// Binary operation.
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// Conditional `cond ? t : f`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Bit select or memory read: `x[i]`.
    Index(String, Box<Expr>),
    /// Constant part select: `x[msb:lsb]`.
    Range(String, Box<Expr>, Box<Expr>),
    /// Concatenation `{a, b, ...}` (first element = most significant).
    Concat(Vec<Expr>),
    /// Replication `{n{expr}}`.
    Repeat(Box<Expr>, Box<Expr>),
    /// Width cast `W'(expr)` (SystemVerilog-style, used by the paper's
    /// bit-truncation examples).
    WidthCast(u32, Box<Expr>),
    /// `$signed(expr)` / `$unsigned(expr)`.
    SignCast(bool, Box<Expr>),
}

impl Expr {
    /// An unsized decimal literal (32-bit, like a bare `42`).
    pub fn number(v: u64) -> Expr {
        Expr::Literal {
            value: Bits::from_u64(32, v),
            sized: false,
        }
    }

    /// A sized literal of explicit width.
    pub fn sized(width: u32, v: u64) -> Expr {
        Expr::Literal {
            value: Bits::from_u64(width, v),
            sized: true,
        }
    }

    /// An identifier reference.
    pub fn ident(name: impl Into<String>) -> Expr {
        Expr::Ident(name.into())
    }

    /// `a & b` (bitwise).
    pub fn and(a: Expr, b: Expr) -> Expr {
        Expr::Binary(BinaryOp::And, Box::new(a), Box::new(b))
    }

    /// `a | b` (bitwise).
    pub fn or(a: Expr, b: Expr) -> Expr {
        Expr::Binary(BinaryOp::Or, Box::new(a), Box::new(b))
    }

    /// `~a`.
    #[allow(clippy::should_implement_trait)] // constructor for an AST node, not std::ops
    pub fn not(a: Expr) -> Expr {
        Expr::Unary(UnaryOp::Not, Box::new(a))
    }

    /// `a == b`.
    pub fn eq(a: Expr, b: Expr) -> Expr {
        Expr::Binary(BinaryOp::Eq, Box::new(a), Box::new(b))
    }

    /// `a + b`.
    #[allow(clippy::should_implement_trait)] // constructor for an AST node, not std::ops
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Binary(BinaryOp::Add, Box::new(a), Box::new(b))
    }

    /// Folds a list of expressions with `|`, or `1'b0` when empty.
    pub fn any(exprs: impl IntoIterator<Item = Expr>) -> Expr {
        let mut it = exprs.into_iter();
        match it.next() {
            None => Expr::sized(1, 0),
            Some(first) => it.fold(first, Self::or),
        }
    }

    /// All identifier names read by this expression (including index bases).
    pub fn idents(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.visit_idents(&mut |n| out.push(n));
        out
    }

    fn visit_idents<'a>(&'a self, f: &mut impl FnMut(&'a str)) {
        match self {
            Expr::Literal { .. } => {}
            Expr::Ident(n) => f(n),
            Expr::Unary(_, e) | Expr::WidthCast(_, e) | Expr::SignCast(_, e) => {
                e.visit_idents(f)
            }
            Expr::Binary(_, a, b) | Expr::Repeat(a, b) => {
                a.visit_idents(f);
                b.visit_idents(f);
            }
            Expr::Ternary(c, t, e) => {
                c.visit_idents(f);
                t.visit_idents(f);
                e.visit_idents(f);
            }
            Expr::Index(n, i) => {
                f(n);
                i.visit_idents(f);
            }
            Expr::Range(n, a, b) => {
                f(n);
                a.visit_idents(f);
                b.visit_idents(f);
            }
            Expr::Concat(parts) => {
                for p in parts {
                    p.visit_idents(f);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_builders() {
        let e = Expr::and(Expr::ident("a"), Expr::not(Expr::ident("b")));
        assert_eq!(e.idents(), vec!["a", "b"]);
    }

    #[test]
    fn any_of_empty_is_zero() {
        assert_eq!(Expr::any([]), Expr::sized(1, 0));
    }

    #[test]
    fn lvalue_targets() {
        let lv = LValue::Concat(vec![
            LValue::Id("a".into()),
            LValue::Index("b".into(), Expr::number(3)),
        ]);
        assert_eq!(lv.target_names(), vec!["a", "b"]);
    }

    #[test]
    fn net_decl_helpers() {
        let v = NetDecl::vector(NetKind::Reg, "x", 8);
        assert_eq!(
            v.range,
            Some((Expr::number(7), Expr::number(0)))
        );
    }

    #[test]
    fn idents_cover_all_nodes() {
        let e = Expr::Ternary(
            Box::new(Expr::ident("c")),
            Box::new(Expr::Index("m".into(), Box::new(Expr::ident("i")))),
            Box::new(Expr::Concat(vec![
                Expr::ident("x"),
                Expr::Repeat(Box::new(Expr::number(2)), Box::new(Expr::ident("y"))),
            ])),
        );
        assert_eq!(e.idents(), vec!["c", "m", "i", "x", "y"]);
    }
}
