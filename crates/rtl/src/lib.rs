//! Verilog-subset frontend: lexer, AST, parser, and pretty-printer.
//!
//! This crate is the substrate the paper obtained from Verilator's parser
//! plus Pyverilog's AST: a synthesizable Verilog-2005 subset covering
//! modules with ANSI ports and parameters, `wire`/`reg`/memories,
//! `assign`, `always @(posedge ...)` / `always @(*)`, if/case/for,
//! blocking and nonblocking assignments, module instantiation, `$display`,
//! and the full operator expression grammar (including concatenation,
//! replication, part selects, and SystemVerilog width casts `W'(expr)`).
//!
//! The pretty-printer emits canonical text that re-parses to the same AST,
//! which is what lets the debugging tools in `hwdbg-tools` instrument a
//! design and hand the result straight back to the elaborator.
//!
//! # Examples
//!
//! ```
//! let src = "module blink(input clk, output reg led);
//!              always @(posedge clk) led <= ~led;
//!            endmodule";
//! let file = hwdbg_rtl::parse(src)?;
//! assert_eq!(file.modules[0].name, "blink");
//! let printed = hwdbg_rtl::print(&file);
//! assert!(printed.contains("led <= ~led;"));
//! # Ok::<(), hwdbg_rtl::ParseError>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod parser;
pub mod printer;
pub mod span;
pub mod token;

pub use ast::{
    BinaryOp, CaseArm, CaseKind, Dir, Edge, EventControl, Expr, Instance, Item, LValue, Module,
    NetDecl, NetKind, Param, Port, SourceFile, Stmt, UnaryOp,
};
pub use parser::{parse, parse_expr};
pub use printer::{print, print_expr, print_lvalue, print_module};
pub use span::{ParseError, Span};
