//! Arbitrary-width two-state bit vectors.
//!
//! [`Bits`] is the value type used throughout `hwdbg` for RTL constants,
//! simulation state, and analysis results. It models Verilog's two-state
//! (0/1) value semantics the way Verilator does: there is no `x`/`z`;
//! uninitialized state is supplied by the simulator's init policy instead.
//!
//! A `Bits` has a fixed `width` (at least 1) and stores its payload in
//! little-endian `u64` limbs. All bits above `width` are kept at zero
//! (a crate invariant maintained by every operation).
//!
//! # Examples
//!
//! ```
//! use hwdbg_bits::Bits;
//!
//! let a = Bits::from_u64(8, 0xF0);
//! let b = Bits::from_u64(8, 0x0F);
//! assert_eq!((&a | &b).to_u64(), 0xFF);
//! assert_eq!(a.add(&b).to_u64(), 0xFF);
//! assert_eq!(Bits::parse_literal("8'hff").unwrap().to_u64(), 0xFF);
//! ```

#![warn(missing_docs)]

mod literal;
mod ops;
pub mod prng;

pub use literal::LiteralError;
pub use prng::SplitMix64;

use std::fmt;

/// A fixed-width, two-state bit vector.
///
/// Widths are at least 1. Arithmetic wraps modulo `2^width`, matching
/// synthesizable Verilog semantics for unsigned operands.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bits {
    width: u32,
    limbs: Vec<u64>,
}

#[inline]
fn limbs_for(width: u32) -> usize {
    (width as usize).div_ceil(64)
}

impl Bits {
    /// Creates an all-zero vector of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn zero(width: u32) -> Self {
        assert!(width > 0, "Bits width must be at least 1");
        Bits {
            width,
            limbs: vec![0; limbs_for(width)],
        }
    }

    /// Creates an all-ones vector of `width` bits.
    pub fn ones(width: u32) -> Self {
        let mut b = Bits::zero(width);
        for l in &mut b.limbs {
            *l = u64::MAX;
        }
        b.mask_top();
        b
    }

    /// Creates a vector holding `value` truncated to `width` bits.
    pub fn from_u64(width: u32, value: u64) -> Self {
        let mut b = Bits::zero(width);
        b.limbs[0] = value;
        b.mask_top();
        b
    }

    /// Creates a vector holding `value` truncated to `width` bits.
    pub fn from_u128(width: u32, value: u128) -> Self {
        let mut b = Bits::zero(width);
        b.limbs[0] = value as u64;
        if b.limbs.len() > 1 {
            b.limbs[1] = (value >> 64) as u64;
        }
        b.mask_top();
        b
    }

    /// Creates a 1-bit vector from a boolean.
    pub fn from_bool(v: bool) -> Self {
        Bits::from_u64(1, v as u64)
    }

    /// The width in bits.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Raw little-endian limbs (bits above `width` are zero).
    #[inline]
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Zeroes any bits above `width` in the top limb.
    fn mask_top(&mut self) {
        let rem = self.width % 64;
        if rem != 0 {
            let last = self.limbs.len() - 1;
            self.limbs[last] &= (1u64 << rem) - 1;
        }
    }

    /// Returns bit `i` (false if `i >= width`).
    pub fn bit(&self, i: u32) -> bool {
        if i >= self.width {
            return false;
        }
        (self.limbs[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to `v`. Out-of-range indices are ignored, mirroring the
    /// hardware behaviour of writes past a vector's end.
    pub fn set_bit(&mut self, i: u32, v: bool) {
        if i >= self.width {
            return;
        }
        let limb = &mut self.limbs[(i / 64) as usize];
        if v {
            *limb |= 1 << (i % 64);
        } else {
            *limb &= !(1 << (i % 64));
        }
    }

    /// True iff every bit is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// True iff the value is exactly 1.
    pub fn is_one(&self) -> bool {
        self.limbs[0] == 1 && self.limbs[1..].iter().all(|&l| l == 0)
    }

    /// The value truncated to 64 bits.
    pub fn to_u64(&self) -> u64 {
        self.limbs[0]
    }

    /// The value truncated to 128 bits.
    pub fn to_u128(&self) -> u128 {
        let lo = self.limbs[0] as u128;
        let hi = if self.limbs.len() > 1 {
            self.limbs[1] as u128
        } else {
            0
        };
        (hi << 64) | lo
    }

    /// The value as `bool`: true iff nonzero (Verilog truthiness).
    pub fn to_bool(&self) -> bool {
        !self.is_zero()
    }

    /// Returns a copy resized to `width`, zero-extending or truncating.
    pub fn resize(&self, width: u32) -> Bits {
        assert!(width > 0, "Bits width must be at least 1");
        let mut out = Bits::zero(width);
        let n = out.limbs.len().min(self.limbs.len());
        out.limbs[..n].copy_from_slice(&self.limbs[..n]);
        out.mask_top();
        out
    }

    /// Returns a copy resized to `width`, sign-extending from the current
    /// top bit when growing.
    pub fn resize_signed(&self, width: u32) -> Bits {
        let mut out = self.resize(width);
        if width > self.width && self.bit(self.width - 1) {
            for i in self.width..width {
                out.set_bit(i, true);
            }
        }
        out
    }

    /// Extracts `width` bits starting at bit `lo` (bits past the end read
    /// as zero).
    pub fn slice(&self, lo: u32, width: u32) -> Bits {
        let mut out = Bits::zero(width.max(1));
        for i in 0..width {
            out.set_bit(i, self.bit(lo + i));
        }
        out
    }

    /// Writes `value` into bits `[lo +: value.width]` of `self`; bits past
    /// the end of `self` are dropped.
    pub fn splice(&mut self, lo: u32, value: &Bits) {
        for i in 0..value.width {
            self.set_bit(lo + i, value.bit(i));
        }
    }

    /// Concatenates `{ self, low }` — `self` occupies the high bits, as in
    /// a Verilog concatenation written `{self, low}`.
    pub fn concat(&self, low: &Bits) -> Bits {
        let mut out = Bits::zero(self.width + low.width);
        out.splice(0, low);
        out.splice(low.width, self);
        out
    }

    /// Repeats the vector `n` times (Verilog replication `{n{v}}`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn repeat(&self, n: u32) -> Bits {
        assert!(n > 0, "replication count must be positive");
        let mut out = Bits::zero(self.width * n);
        for k in 0..n {
            out.splice(k * self.width, self);
        }
        out
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.limbs.iter().map(|l| l.count_ones()).sum()
    }

    /// Divides in place by a small divisor, returning the remainder.
    /// Used by decimal formatting.
    fn divmod_small(&mut self, div: u64) -> u64 {
        debug_assert!(div != 0);
        let mut rem: u128 = 0;
        for limb in self.limbs.iter_mut().rev() {
            let cur = (rem << 64) | (*limb as u128);
            *limb = (cur / div as u128) as u64;
            rem = cur % div as u128;
        }
        rem as u64
    }

    /// Formats as an unsigned decimal string.
    pub fn to_dec_string(&self) -> String {
        if self.is_zero() {
            return "0".into();
        }
        let mut tmp = self.clone();
        let mut digits = Vec::new();
        while !tmp.is_zero() {
            digits.push(b'0' + tmp.divmod_small(10) as u8);
        }
        digits.reverse();
        digits.into_iter().map(char::from).collect()
    }

    /// Formats as lowercase hex, `ceil(width/4)` digits, no prefix.
    pub fn to_hex_string(&self) -> String {
        let digits = self.width.div_ceil(4) as usize;
        let mut s = String::with_capacity(digits);
        for d in (0..digits).rev() {
            let nib = self.slice(d as u32 * 4, 4).to_u64();
            s.push(char::from(b"0123456789abcdef"[(nib & 0xF) as usize]));
        }
        s
    }

    /// Formats as binary, exactly `width` digits, no prefix.
    pub fn to_bin_string(&self) -> String {
        (0..self.width)
            .rev()
            .map(|i| if self.bit(i) { '1' } else { '0' })
            .collect()
    }
}

impl fmt::Debug for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'h{}", self.width, self.to_hex_string())
    }
}

impl fmt::Display for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_dec_string())
    }
}

impl fmt::LowerHex for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex_string())
    }
}

impl fmt::Binary for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_bin_string())
    }
}

impl Default for Bits {
    /// A single zero bit.
    fn default() -> Self {
        Bits::zero(1)
    }
}

impl From<bool> for Bits {
    fn from(v: bool) -> Self {
        Bits::from_bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_ones() {
        let z = Bits::zero(65);
        assert!(z.is_zero());
        assert_eq!(z.width(), 65);
        let o = Bits::ones(65);
        assert_eq!(o.count_ones(), 65);
        assert!(o.bit(64));
        assert!(!o.bit(65));
    }

    #[test]
    #[should_panic]
    fn zero_width_panics() {
        let _ = Bits::zero(0);
    }

    #[test]
    fn from_u64_truncates() {
        let b = Bits::from_u64(4, 0xFF);
        assert_eq!(b.to_u64(), 0xF);
    }

    #[test]
    fn from_u128_roundtrip() {
        let v = 0x0123_4567_89AB_CDEF_FEDC_BA98_7654_3210u128;
        let b = Bits::from_u128(128, v);
        assert_eq!(b.to_u128(), v);
    }

    #[test]
    fn bit_get_set() {
        let mut b = Bits::zero(70);
        b.set_bit(69, true);
        assert!(b.bit(69));
        b.set_bit(69, false);
        assert!(b.is_zero());
        b.set_bit(200, true); // ignored
        assert!(b.is_zero());
    }

    #[test]
    fn slice_and_splice() {
        let b = Bits::from_u64(16, 0xABCD);
        assert_eq!(b.slice(4, 8).to_u64(), 0xBC);
        assert_eq!(b.slice(12, 8).to_u64(), 0x0A); // reads past end as zero
        let mut c = Bits::zero(16);
        c.splice(8, &Bits::from_u64(8, 0xAB));
        assert_eq!(c.to_u64(), 0xAB00);
    }

    #[test]
    fn concat_and_repeat() {
        let hi = Bits::from_u64(4, 0xA);
        let lo = Bits::from_u64(4, 0x5);
        assert_eq!(hi.concat(&lo).to_u64(), 0xA5);
        assert_eq!(Bits::from_u64(2, 0b10).repeat(3).to_u64(), 0b101010);
    }

    #[test]
    fn resize_signed_extends() {
        let b = Bits::from_u64(4, 0b1000);
        assert_eq!(b.resize_signed(8).to_u64(), 0xF8);
        assert_eq!(b.resize(8).to_u64(), 0x08);
        assert_eq!(Bits::from_u64(4, 0b0100).resize_signed(8).to_u64(), 0x04);
    }

    #[test]
    fn dec_string_multi_limb() {
        let b = Bits::from_u128(128, 340_282_366_920_938_463_463_374_607_431_768_211_455u128);
        assert_eq!(b.to_dec_string(), "340282366920938463463374607431768211455");
        assert_eq!(Bits::zero(8).to_dec_string(), "0");
    }

    #[test]
    fn hex_bin_strings() {
        let b = Bits::from_u64(12, 0xabc);
        assert_eq!(b.to_hex_string(), "abc");
        assert_eq!(b.to_bin_string(), "101010111100");
        assert_eq!(format!("{b:?}"), "12'habc");
    }
}
