//! Arbitrary-width two-state bit vectors.
//!
//! [`Bits`] is the value type used throughout `hwdbg` for RTL constants,
//! simulation state, and analysis results. It models Verilog's two-state
//! (0/1) value semantics the way Verilator does: there is no `x`/`z`;
//! uninitialized state is supplied by the simulator's init policy instead.
//!
//! A `Bits` has a fixed `width` (at least 1) and stores its payload in
//! little-endian `u64` limbs. All bits above `width` are kept at zero
//! (a crate invariant maintained by every operation).
//!
//! # Representation
//!
//! Values of `width <= 64` — virtually every RTL signal in practice — are
//! stored *inline* as a single `u64`, with no heap allocation. Wider values
//! spill to a limb vector. The representation is intentionally lazy in one
//! direction: a heap-backed value that is narrowed (e.g. a reused scratch
//! buffer) may stay heap-backed rather than churn its allocation, so
//! equality and hashing are defined over `(width, limbs)` and never over
//! the storage kind. Constructors always produce the inline form when the
//! width permits.
//!
//! The in-place API (`assign_from`, `resize_in_place`, the `*_into`
//! operations in [`ops`](self)) writes results into caller-owned storage
//! and is what the simulator's hot path uses to run allocation-free.
//!
//! # Examples
//!
//! ```
//! use hwdbg_bits::Bits;
//!
//! let a = Bits::from_u64(8, 0xF0);
//! let b = Bits::from_u64(8, 0x0F);
//! assert_eq!((&a | &b).to_u64(), 0xFF);
//! assert_eq!(a.add(&b).to_u64(), 0xFF);
//! assert_eq!(Bits::parse_literal("8'hff").unwrap().to_u64(), 0xFF);
//! ```

#![warn(missing_docs)]

pub mod fixed;
mod literal;
mod ops;
pub mod prng;

pub use literal::LiteralError;
pub use prng::SplitMix64;

use std::fmt;
use std::hash::{Hash, Hasher};

/// Storage for the limb payload: one inline limb for narrow values, a heap
/// vector for wide ones. `Inline` is only legal for `width <= 64`;
/// `Spilled` is legal at any width (see the module docs on laziness).
#[derive(Clone)]
enum Repr {
    Inline(u64),
    Spilled(Vec<u64>),
}

/// A fixed-width, two-state bit vector.
///
/// Widths are at least 1. Arithmetic wraps modulo `2^width`, matching
/// synthesizable Verilog semantics for unsigned operands.
#[derive(Clone)]
pub struct Bits {
    width: u32,
    repr: Repr,
}

#[inline]
fn limbs_for(width: u32) -> usize {
    (width as usize).div_ceil(64)
}

impl Bits {
    /// Bit mask covering a width of 1..=64 bits.
    #[inline]
    fn mask(width: u32) -> u64 {
        debug_assert!((1..=64).contains(&width));
        if width >= 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        }
    }

    /// Inline constructor for `width <= 64`; masks `raw` to `width`.
    #[inline]
    fn small(width: u32, raw: u64) -> Self {
        debug_assert!((1..=64).contains(&width));
        Bits {
            width,
            repr: Repr::Inline(raw & Self::mask(width)),
        }
    }

    /// Creates an all-zero vector of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn zero(width: u32) -> Self {
        assert!(width > 0, "Bits width must be at least 1");
        if width <= 64 {
            Bits::small(width, 0)
        } else {
            Bits {
                width,
                repr: Repr::Spilled(vec![0; limbs_for(width)]),
            }
        }
    }

    /// Creates an all-ones vector of `width` bits.
    pub fn ones(width: u32) -> Self {
        assert!(width > 0, "Bits width must be at least 1");
        if width <= 64 {
            return Bits::small(width, u64::MAX);
        }
        let mut b = Bits {
            width,
            repr: Repr::Spilled(vec![u64::MAX; limbs_for(width)]),
        };
        b.mask_top();
        b
    }

    /// Creates a vector holding `value` truncated to `width` bits.
    pub fn from_u64(width: u32, value: u64) -> Self {
        assert!(width > 0, "Bits width must be at least 1");
        if width <= 64 {
            return Bits::small(width, value);
        }
        let mut b = Bits::zero(width);
        b.limbs_mut()[0] = value;
        b
    }

    /// Creates a vector holding `value` truncated to `width` bits.
    pub fn from_u128(width: u32, value: u128) -> Self {
        assert!(width > 0, "Bits width must be at least 1");
        if width <= 64 {
            return Bits::small(width, value as u64);
        }
        let mut b = Bits::zero(width);
        {
            let limbs = b.limbs_mut();
            limbs[0] = value as u64;
            if limbs.len() > 1 {
                limbs[1] = (value >> 64) as u64;
            }
        }
        b.mask_top();
        b
    }

    /// Creates a 1-bit vector from a boolean.
    pub fn from_bool(v: bool) -> Self {
        Bits::small(1, v as u64)
    }

    /// The width in bits.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Raw little-endian limbs (bits above `width` are zero).
    #[inline]
    pub fn limbs(&self) -> &[u64] {
        match &self.repr {
            Repr::Inline(v) => std::slice::from_ref(v),
            Repr::Spilled(v) => v,
        }
    }

    /// Mutable view of the limbs; callers must re-establish the masked-top
    /// invariant before the borrow ends.
    #[inline]
    fn limbs_mut(&mut self) -> &mut [u64] {
        match &mut self.repr {
            Repr::Inline(v) => std::slice::from_mut(v),
            Repr::Spilled(v) => v,
        }
    }

    /// The lowest limb without branching on representation.
    #[inline]
    pub(crate) fn limb0(&self) -> u64 {
        match &self.repr {
            Repr::Inline(v) => *v,
            Repr::Spilled(v) => v[0],
        }
    }

    /// True iff the value is stored inline (no heap allocation backs it).
    ///
    /// Diagnostic/testing aid; semantics never depend on the storage kind.
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Inline(_))
    }

    /// Returns a copy forced onto the spilled (heap-backed) representation
    /// even when the value fits inline. Differential tests use this to run
    /// every operation over both representations; production code never
    /// needs it.
    #[must_use]
    pub fn spilled(&self) -> Bits {
        Bits {
            width: self.width,
            repr: Repr::Spilled(self.limbs().to_vec()),
        }
    }

    /// Re-dimensions `self` to an all-zero value of `width` bits, reusing
    /// existing heap storage where possible. The previous value is lost.
    fn reshape(&mut self, width: u32) {
        debug_assert!(width > 0, "Bits width must be at least 1");
        self.width = width;
        if width <= 64 {
            match &mut self.repr {
                Repr::Inline(v) => *v = 0,
                Repr::Spilled(v) => {
                    v.truncate(1);
                    v[0] = 0;
                }
            }
        } else {
            let n = limbs_for(width);
            match &mut self.repr {
                Repr::Inline(_) => self.repr = Repr::Spilled(vec![0; n]),
                Repr::Spilled(v) => {
                    v.clear();
                    v.resize(n, 0);
                }
            }
        }
    }

    /// Stores a narrow value (`width <= 64`), masking `raw`, reusing any
    /// existing heap storage.
    #[inline]
    pub(crate) fn store_small(&mut self, width: u32, raw: u64) {
        debug_assert!((1..=64).contains(&width));
        self.width = width;
        let m = raw & Self::mask(width);
        match &mut self.repr {
            Repr::Inline(v) => *v = m,
            Repr::Spilled(v) => {
                v.truncate(1);
                v[0] = m;
            }
        }
    }

    /// Stores a `<= 128`-bit value (`64 < width <= 128`), masking to
    /// `width`, reusing existing heap storage.
    #[inline]
    pub(crate) fn store_u128(&mut self, width: u32, raw: u128) {
        debug_assert!((65..=128).contains(&width));
        self.reshape(width);
        let limbs = self.limbs_mut();
        limbs[0] = raw as u64;
        limbs[1] = (raw >> 64) as u64;
        self.mask_top();
    }

    /// Becomes an all-zero value of `width` bits (in place, storage reused).
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn set_zero(&mut self, width: u32) {
        assert!(width > 0, "Bits width must be at least 1");
        self.reshape(width);
    }

    /// Becomes `value` truncated to `width` bits (in place).
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn set_u64(&mut self, width: u32, value: u64) {
        assert!(width > 0, "Bits width must be at least 1");
        if width <= 64 {
            self.store_small(width, value);
        } else {
            self.reshape(width);
            self.limbs_mut()[0] = value;
        }
    }

    /// Becomes the 1-bit value `v` (in place).
    pub fn set_bool(&mut self, v: bool) {
        self.store_small(1, v as u64);
    }

    /// Sets the value to `value` truncated to the *current* width, keeping
    /// both width and storage; returns true if the stored value changed.
    ///
    /// Never allocates regardless of width — this is the poke-an-integer
    /// hot path, where constructing a temporary wide `Bits` would cost a
    /// heap allocation per call.
    pub fn update_u64(&mut self, value: u64) -> bool {
        let m = if self.width >= 64 {
            value
        } else {
            value & Self::mask(self.width)
        };
        match &mut self.repr {
            Repr::Inline(v) => {
                if *v == m {
                    return false;
                }
                *v = m;
            }
            Repr::Spilled(v) => {
                if v[0] == m && v[1..].iter().all(|&l| l == 0) {
                    return false;
                }
                v[1..].fill(0);
                v[0] = m;
            }
        }
        true
    }

    /// Becomes a copy of `src` (width and value), reusing storage; only
    /// allocates when growing a wide value past existing capacity.
    pub fn assign_from(&mut self, src: &Bits) {
        self.assign_resized(src, src.width);
    }

    /// Becomes `src.resize(width)` without the intermediate allocation.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn assign_resized(&mut self, src: &Bits, width: u32) {
        assert!(width > 0, "Bits width must be at least 1");
        if width <= 64 {
            self.store_small(width, src.limb0());
            return;
        }
        let n = limbs_for(width);
        self.width = width;
        let s = src.limbs();
        let k = n.min(s.len());
        match &mut self.repr {
            Repr::Inline(_) => {
                let mut v = vec![0u64; n];
                v[..k].copy_from_slice(&s[..k]);
                self.repr = Repr::Spilled(v);
            }
            Repr::Spilled(v) => {
                v.clear();
                v.resize(n, 0);
                v[..k].copy_from_slice(&s[..k]);
            }
        }
        self.mask_top();
    }

    /// Zeroes any bits above `width` in the top limb.
    pub(crate) fn mask_top(&mut self) {
        let rem = self.width % 64;
        if rem != 0 {
            let limbs = self.limbs_mut();
            let last = limbs.len() - 1;
            limbs[last] &= (1u64 << rem) - 1;
        }
    }

    /// Returns bit `i` (false if `i >= width`).
    pub fn bit(&self, i: u32) -> bool {
        if i >= self.width {
            return false;
        }
        (self.limbs()[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to `v`. Out-of-range indices are ignored, mirroring the
    /// hardware behaviour of writes past a vector's end.
    pub fn set_bit(&mut self, i: u32, v: bool) {
        if i >= self.width {
            return;
        }
        let limb = &mut self.limbs_mut()[(i / 64) as usize];
        if v {
            *limb |= 1 << (i % 64);
        } else {
            *limb &= !(1 << (i % 64));
        }
    }

    /// True iff every bit is zero.
    pub fn is_zero(&self) -> bool {
        match &self.repr {
            Repr::Inline(v) => *v == 0,
            Repr::Spilled(v) => v.iter().all(|&l| l == 0),
        }
    }

    /// True iff the value is exactly 1.
    pub fn is_one(&self) -> bool {
        let l = self.limbs();
        l[0] == 1 && l[1..].iter().all(|&l| l == 0)
    }

    /// The value truncated to 64 bits.
    #[inline]
    pub fn to_u64(&self) -> u64 {
        self.limb0()
    }

    /// The value truncated to 128 bits.
    pub fn to_u128(&self) -> u128 {
        let l = self.limbs();
        let lo = l[0] as u128;
        let hi = if l.len() > 1 { l[1] as u128 } else { 0 };
        (hi << 64) | lo
    }

    /// The value as `bool`: true iff nonzero (Verilog truthiness).
    pub fn to_bool(&self) -> bool {
        !self.is_zero()
    }

    /// Returns a copy resized to `width`, zero-extending or truncating.
    pub fn resize(&self, width: u32) -> Bits {
        let mut out = Bits::default();
        out.assign_resized(self, width);
        out
    }

    /// Resizes in place, zero-extending or truncating, reusing storage.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn resize_in_place(&mut self, width: u32) {
        assert!(width > 0, "Bits width must be at least 1");
        if width == self.width {
            return;
        }
        if width <= 64 {
            let v = self.limb0() & Self::mask(width);
            self.store_small(width, v);
        } else if width < self.width {
            // Shrinking a wide value: stay spilled, drop surplus limbs.
            self.width = width;
            let n = limbs_for(width);
            if let Repr::Spilled(v) = &mut self.repr {
                v.truncate(n);
            }
            self.mask_top();
        } else {
            // Growing past 64 bits: the one place widening can allocate.
            let n = limbs_for(width);
            self.width = width;
            match &mut self.repr {
                Repr::Inline(v0) => {
                    let lo = *v0;
                    let mut v = vec![0u64; n];
                    v[0] = lo;
                    self.repr = Repr::Spilled(v);
                }
                Repr::Spilled(v) => v.resize(n, 0),
            }
        }
    }

    /// Returns a copy resized to `width`, sign-extending from the current
    /// top bit when growing.
    pub fn resize_signed(&self, width: u32) -> Bits {
        let mut out = self.resize(width);
        if width > self.width && self.bit(self.width - 1) {
            out.fill_ones(self.width, width);
        }
        out
    }

    /// Resizes in place with sign extension when growing.
    pub fn resize_signed_in_place(&mut self, width: u32) {
        let old = self.width;
        let negative = width > old && self.bit(old - 1);
        self.resize_in_place(width);
        if negative {
            self.fill_ones(old, width);
        }
    }

    /// Sets bits `[from, to)` to one, word-wise. Bounds are clamped to the
    /// current width by the limb loop.
    fn fill_ones(&mut self, from: u32, to: u32) {
        if from >= to {
            return;
        }
        let first = (from / 64) as usize;
        let limbs = self.limbs_mut();
        for (i, limb) in limbs.iter_mut().enumerate().skip(first) {
            let base = i as u32 * 64;
            if base >= to {
                break;
            }
            let lo = from.saturating_sub(base).min(64);
            let hi = (to - base).min(64);
            if lo >= hi {
                continue;
            }
            let m = if hi - lo == 64 {
                u64::MAX
            } else {
                ((1u64 << (hi - lo)) - 1) << lo
            };
            *limb |= m;
        }
        self.mask_top();
    }

    /// Extracts `width` bits starting at bit `lo` (bits past the end read
    /// as zero).
    pub fn slice(&self, lo: u32, width: u32) -> Bits {
        let mut out = Bits::default();
        self.slice_into(lo, width, &mut out);
        out
    }

    /// In-place [`slice`](Bits::slice): writes `self[lo +: width]` into
    /// `out`, reusing its storage. A zero `width` yields a 1-bit zero,
    /// matching `slice`.
    pub fn slice_into(&self, lo: u32, width: u32, out: &mut Bits) {
        if width == 0 {
            out.set_zero(1);
            return;
        }
        out.reshape(width);
        let limb_off = (lo / 64) as usize;
        let bit_off = lo % 64;
        let src = self.limbs();
        let dst = out.limbs_mut();
        for (i, d) in dst.iter_mut().enumerate() {
            let lo_limb = src.get(limb_off + i).copied().unwrap_or(0);
            *d = if bit_off == 0 {
                lo_limb
            } else {
                let hi_limb = src.get(limb_off + i + 1).copied().unwrap_or(0);
                (lo_limb >> bit_off) | (hi_limb << (64 - bit_off))
            };
        }
        out.mask_top();
    }

    /// Writes `value` into bits `[lo +: value.width]` of `self`; bits past
    /// the end of `self` are dropped.
    pub fn splice(&mut self, lo: u32, value: &Bits) {
        if lo >= self.width {
            return;
        }
        if self.width <= 64 {
            let n = value.width.min(self.width - lo);
            let m = Self::mask(n) << lo;
            let w = self.width;
            let merged = (self.limb0() & !m) | ((value.limb0() << lo) & m);
            self.store_small(w, merged);
            return;
        }
        for i in 0..value.width {
            self.set_bit(lo + i, value.bit(i));
        }
    }

    /// True iff `splice(lo, value)` would leave `self` unchanged: the
    /// in-range window already equals `value` (out-of-range bits of `value`
    /// are ignored, as `splice` drops them).
    pub fn slice_eq(&self, lo: u32, value: &Bits) -> bool {
        if lo >= self.width {
            return true;
        }
        for i in 0..value.width {
            let pos = lo + i;
            if pos >= self.width {
                break;
            }
            if self.bit(pos) != value.bit(i) {
                return false;
            }
        }
        true
    }

    /// True iff `self == src.resize(self.width)`, without allocating.
    pub fn eq_truncated(&self, src: &Bits) -> bool {
        if self.width <= 64 {
            return self.limb0() == src.limb0() & Self::mask(self.width);
        }
        let a = self.limbs();
        let s = src.limbs();
        let rem = self.width % 64;
        for (i, &av) in a.iter().enumerate() {
            let mut sv = s.get(i).copied().unwrap_or(0);
            if i == a.len() - 1 && rem != 0 {
                sv &= (1u64 << rem) - 1;
            }
            if av != sv {
                return false;
            }
        }
        true
    }

    /// Equality after zero-extending both operands to the wider width,
    /// without allocating.
    pub fn eq_zero_ext(&self, other: &Bits) -> bool {
        let a = self.limbs();
        let b = other.limbs();
        let n = a.len().max(b.len());
        (0..n).all(|i| a.get(i).copied().unwrap_or(0) == b.get(i).copied().unwrap_or(0))
    }

    /// Concatenates `{ self, low }` — `self` occupies the high bits, as in
    /// a Verilog concatenation written `{self, low}`.
    pub fn concat(&self, low: &Bits) -> Bits {
        let mut out = self.clone();
        out.push_low(low);
        out
    }

    /// In-place concatenation step: `self` becomes `{ self, low }`. Used to
    /// fold a Verilog concatenation left-to-right without temporaries.
    pub fn push_low(&mut self, low: &Bits) {
        let lw = low.width;
        self.resize_in_place(self.width + lw);
        self.shl_in_place(lw);
        if self.width <= 64 {
            let w = self.width;
            let v = self.limb0() | low.limb0();
            self.store_small(w, v);
        } else {
            let src = low.limbs();
            let dst = self.limbs_mut();
            for (d, s) in dst.iter_mut().zip(src) {
                *d |= s;
            }
        }
    }

    /// Repeats the vector `n` times (Verilog replication `{n{v}}`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn repeat(&self, n: u32) -> Bits {
        let mut out = Bits::default();
        self.repeat_into(n, &mut out);
        out
    }

    /// In-place [`repeat`](Bits::repeat), reusing `out`'s storage.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn repeat_into(&self, n: u32, out: &mut Bits) {
        assert!(n > 0, "replication count must be positive");
        out.set_zero(self.width * n);
        for k in 0..n {
            out.splice(k * self.width, self);
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.limbs().iter().map(|l| l.count_ones()).sum()
    }

    /// Divides in place by a small divisor, returning the remainder.
    /// Used by decimal formatting.
    fn divmod_small(&mut self, div: u64) -> u64 {
        debug_assert!(div != 0);
        let mut rem: u128 = 0;
        for limb in self.limbs_mut().iter_mut().rev() {
            let cur = (rem << 64) | (*limb as u128);
            *limb = (cur / div as u128) as u64;
            rem = cur % div as u128;
        }
        rem as u64
    }

    /// Formats as an unsigned decimal string.
    pub fn to_dec_string(&self) -> String {
        if self.is_zero() {
            return "0".into();
        }
        let mut tmp = self.clone();
        let mut digits = Vec::new();
        while !tmp.is_zero() {
            digits.push(b'0' + tmp.divmod_small(10) as u8);
        }
        digits.reverse();
        digits.into_iter().map(char::from).collect()
    }

    /// Formats as lowercase hex, `ceil(width/4)` digits, no prefix.
    pub fn to_hex_string(&self) -> String {
        let digits = self.width.div_ceil(4) as usize;
        let mut s = String::with_capacity(digits);
        for d in (0..digits).rev() {
            // Nibbles are 4-aligned, so none straddles a 64-bit limb.
            let bit = d as u32 * 4;
            let limb = self.limbs().get((bit / 64) as usize).copied().unwrap_or(0);
            let nib = limb >> (bit % 64);
            s.push(char::from(b"0123456789abcdef"[(nib & 0xF) as usize]));
        }
        s
    }

    /// Formats as binary, exactly `width` digits, no prefix.
    pub fn to_bin_string(&self) -> String {
        (0..self.width)
            .rev()
            .map(|i| if self.bit(i) { '1' } else { '0' })
            .collect()
    }
}

impl PartialEq for Bits {
    /// Value equality over `(width, limbs)`; independent of whether either
    /// side is inline or spilled.
    fn eq(&self, other: &Self) -> bool {
        if self.width != other.width {
            return false;
        }
        match (&self.repr, &other.repr) {
            (Repr::Inline(a), Repr::Inline(b)) => a == b,
            _ => self.limbs() == other.limbs(),
        }
    }
}

impl Eq for Bits {}

impl Hash for Bits {
    /// Hashes `(width, limbs)` so inline and spilled forms of the same
    /// value hash identically (required by the `Eq` impl).
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.width.hash(state);
        self.limbs().hash(state);
    }
}

impl fmt::Debug for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'h{}", self.width, self.to_hex_string())
    }
}

impl fmt::Display for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_dec_string())
    }
}

impl fmt::LowerHex for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex_string())
    }
}

impl fmt::Binary for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_bin_string())
    }
}

impl Default for Bits {
    /// A single zero bit (inline; `Bits::default()` never allocates).
    fn default() -> Self {
        Bits::small(1, 0)
    }
}

impl From<bool> for Bits {
    fn from(v: bool) -> Self {
        Bits::from_bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_ones() {
        let z = Bits::zero(65);
        assert!(z.is_zero());
        assert_eq!(z.width(), 65);
        let o = Bits::ones(65);
        assert_eq!(o.count_ones(), 65);
        assert!(o.bit(64));
        assert!(!o.bit(65));
    }

    #[test]
    #[should_panic]
    fn zero_width_panics() {
        let _ = Bits::zero(0);
    }

    #[test]
    fn from_u64_truncates() {
        let b = Bits::from_u64(4, 0xFF);
        assert_eq!(b.to_u64(), 0xF);
    }

    #[test]
    fn from_u128_roundtrip() {
        let v = 0x0123_4567_89AB_CDEF_FEDC_BA98_7654_3210u128;
        let b = Bits::from_u128(128, v);
        assert_eq!(b.to_u128(), v);
    }

    #[test]
    fn narrow_values_are_inline() {
        assert!(Bits::zero(1).is_inline());
        assert!(Bits::zero(64).is_inline());
        assert!(!Bits::zero(65).is_inline());
        assert!(Bits::from_u64(32, 7).is_inline());
        assert!(Bits::default().is_inline());
    }

    #[test]
    fn inline_and_spilled_compare_equal() {
        let a = Bits::from_u64(32, 0xDEAD);
        let b = a.spilled();
        assert!(!b.is_inline());
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        let h = |v: &Bits| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&a), h(&b));
    }

    #[test]
    fn bit_get_set() {
        let mut b = Bits::zero(70);
        b.set_bit(69, true);
        assert!(b.bit(69));
        b.set_bit(69, false);
        assert!(b.is_zero());
        b.set_bit(200, true); // ignored
        assert!(b.is_zero());
    }

    #[test]
    fn slice_and_splice() {
        let b = Bits::from_u64(16, 0xABCD);
        assert_eq!(b.slice(4, 8).to_u64(), 0xBC);
        assert_eq!(b.slice(12, 8).to_u64(), 0x0A); // reads past end as zero
        let mut c = Bits::zero(16);
        c.splice(8, &Bits::from_u64(8, 0xAB));
        assert_eq!(c.to_u64(), 0xAB00);
    }

    #[test]
    fn slice_eq_matches_splice() {
        let mut b = Bits::from_u64(16, 0xABCD);
        assert!(b.slice_eq(4, &Bits::from_u64(8, 0xBC)));
        assert!(!b.slice_eq(4, &Bits::from_u64(8, 0xBD)));
        // Out-of-range window bits are ignored, like splice drops them.
        assert!(b.slice_eq(12, &Bits::from_u64(8, 0x0A)));
        b.splice(12, &Bits::from_u64(8, 0x0A));
        assert_eq!(b.to_u64(), 0xABCD);
    }

    #[test]
    fn concat_and_repeat() {
        let hi = Bits::from_u64(4, 0xA);
        let lo = Bits::from_u64(4, 0x5);
        assert_eq!(hi.concat(&lo).to_u64(), 0xA5);
        assert_eq!(Bits::from_u64(2, 0b10).repeat(3).to_u64(), 0b101010);
    }

    #[test]
    fn push_low_across_limb_boundary() {
        let mut acc = Bits::from_u64(40, 0xAB_CDEF_0123);
        acc.push_low(&Bits::from_u64(40, 0x45_6789_ABCD));
        assert_eq!(acc.width(), 80);
        assert_eq!(acc.to_u128(), (0xAB_CDEF_0123u128 << 40) | 0x45_6789_ABCD);
    }

    #[test]
    fn resize_signed_extends() {
        let b = Bits::from_u64(4, 0b1000);
        assert_eq!(b.resize_signed(8).to_u64(), 0xF8);
        assert_eq!(b.resize(8).to_u64(), 0x08);
        assert_eq!(Bits::from_u64(4, 0b0100).resize_signed(8).to_u64(), 0x04);
    }

    #[test]
    fn resize_in_place_round_trip() {
        let mut b = Bits::from_u64(32, 0xDEAD_BEEF);
        b.resize_in_place(128);
        assert_eq!(b.to_u128(), 0xDEAD_BEEF);
        b.set_bit(100, true);
        b.resize_in_place(32);
        assert_eq!(b.to_u64(), 0xDEAD_BEEF);
        assert_eq!(b.width(), 32);
        // Narrowed wide storage may stay spilled; value semantics identical.
        assert_eq!(b, Bits::from_u64(32, 0xDEAD_BEEF));
        b.resize_in_place(16);
        assert_eq!(b.to_u64(), 0xBEEF);
    }

    #[test]
    fn resize_signed_in_place_wide() {
        let mut b = Bits::from_u64(8, 0x80);
        b.resize_signed_in_place(200);
        assert_eq!(b.count_ones(), 193);
        assert!(b.bit(199));
        let mut p = Bits::from_u64(8, 0x7F);
        p.resize_signed_in_place(200);
        assert_eq!(p.to_u64(), 0x7F);
        assert_eq!(p.count_ones(), 7);
    }

    #[test]
    fn assign_resized_matches_resize() {
        let src = Bits::from_u128(100, 0xFFFF_FFFF_FFFF_FFFF_FFFFu128);
        for w in [1u32, 16, 63, 64, 65, 100, 128, 192] {
            let mut dst = Bits::default();
            dst.assign_resized(&src, w);
            assert_eq!(dst, src.resize(w), "width {w}");
        }
    }

    #[test]
    fn dec_string_multi_limb() {
        let b = Bits::from_u128(128, 340_282_366_920_938_463_463_374_607_431_768_211_455u128);
        assert_eq!(b.to_dec_string(), "340282366920938463463374607431768211455");
        assert_eq!(Bits::zero(8).to_dec_string(), "0");
    }

    #[test]
    fn hex_bin_strings() {
        let b = Bits::from_u64(12, 0xabc);
        assert_eq!(b.to_hex_string(), "abc");
        assert_eq!(b.to_bin_string(), "101010111100");
        assert_eq!(format!("{b:?}"), "12'habc");
        // Nibbles straddling the 64-bit limb boundary.
        let wide = Bits::from_u128(68, 0xF_0123_4567_89AB_CDEFu128);
        assert_eq!(wide.to_hex_string(), "f0123456789abcdef");
    }
}
