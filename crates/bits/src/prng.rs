//! A small deterministic PRNG (SplitMix64).
//!
//! The simulator's `RegInit::Random` policy and the repo's property tests
//! need seeded, reproducible randomness but nothing cryptographic; this
//! self-contained generator keeps the workspace free of external
//! dependencies so it builds in offline environments.

/// SplitMix64: a fast, high-quality 64-bit PRNG with a trivial state.
///
/// The output sequence for a given seed is fixed forever — checkpoints and
/// the `RegInit::Random` register images depend on it.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 128 uniformly random bits.
    pub fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }

    /// A fair coin flip.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant for test-vector generation.
        self.next_u64() % bound
    }

    /// Uniform value in `[lo, hi)`; `lo < hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(8);
        assert_ne!(SplitMix64::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut r = SplitMix64::new(1);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let v = r.range(5, 9);
            assert!((5..9).contains(&v));
        }
    }
}
