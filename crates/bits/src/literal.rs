//! Parsing of Verilog-style numeric literals into [`Bits`].
//!
//! Supported forms (underscores allowed between digits):
//!
//! * plain decimal: `42` — 32 bits wide, per the Verilog default
//! * based, unsized: `'hFF`, `'b1010`, `'d9`, `'o17` — 32 bits wide
//! * based, sized: `8'hFF`, `12'o777`, `1'b1`, `64'd18446744073709551615`

use crate::Bits;
use std::fmt;

/// Error produced when a numeric literal cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiteralError {
    text: String,
    reason: &'static str,
}

impl fmt::Display for LiteralError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid numeric literal `{}`: {}", self.text, self.reason)
    }
}

impl std::error::Error for LiteralError {}

fn err(text: &str, reason: &'static str) -> LiteralError {
    LiteralError {
        text: text.to_owned(),
        reason,
    }
}

impl Bits {
    /// Parses a Verilog numeric literal such as `8'hFF` or `42`.
    ///
    /// # Errors
    ///
    /// Returns [`LiteralError`] for malformed text, a zero width, digits
    /// invalid for the base, or a value that does not fit the given width.
    pub fn parse_literal(text: &str) -> Result<Bits, LiteralError> {
        let cleaned: String = text.chars().filter(|&c| c != '_').collect();
        let s = cleaned.as_str();
        let Some(tick) = s.find('\'') else {
            // Plain decimal, default 32 bits.
            return from_digits(text, 32, 10, s, true);
        };
        let (width_part, rest) = s.split_at(tick);
        let rest = &rest[1..];
        let width: u32 = if width_part.is_empty() {
            32
        } else {
            width_part
                .parse()
                .map_err(|_| err(text, "bad width prefix"))?
        };
        if width == 0 {
            return Err(err(text, "zero width"));
        }
        let mut chars = rest.chars();
        let base_ch = chars
            .next()
            .ok_or_else(|| err(text, "missing base character"))?;
        let base = match base_ch.to_ascii_lowercase() {
            'b' => 2,
            'o' => 8,
            'd' => 10,
            'h' => 16,
            _ => return Err(err(text, "unknown base character")),
        };
        let digits = chars.as_str();
        if digits.is_empty() {
            return Err(err(text, "missing digits"));
        }
        from_digits(text, width, base, digits, width_part.is_empty())
    }
}

fn from_digits(
    orig: &str,
    width: u32,
    base: u64,
    digits: &str,
    unsized_literal: bool,
) -> Result<Bits, LiteralError> {
    // Narrow fast path: accumulate in a u128 (same modulus as the Bits
    // accumulator below — `width + 64` headroom bits) without allocating.
    if width <= 64 {
        let head = width + 64;
        let modulus_mask = if head == 128 {
            u128::MAX
        } else {
            (1u128 << head) - 1
        };
        let mut acc: u128 = 0;
        for ch in digits.chars() {
            let d = ch
                .to_digit(36)
                .filter(|&d| (d as u64) < base)
                .ok_or_else(|| err(orig, "digit invalid for base"))?;
            acc = (acc.wrapping_mul(base as u128).wrapping_add(d as u128)) & modulus_mask;
        }
        if !unsized_literal && acc >> width != 0 {
            return Err(err(orig, "value does not fit in the given width"));
        }
        return Ok(Bits::from_u128(width, acc));
    }
    let mut acc = Bits::zero(width.max(1) + 64); // headroom to detect overflow
    let base_b = Bits::from_u64(acc.width(), base);
    for ch in digits.chars() {
        let d = ch
            .to_digit(36)
            .filter(|&d| (d as u64) < base)
            .ok_or_else(|| err(orig, "digit invalid for base"))?;
        acc = acc.mul(&base_b).add(&Bits::from_u64(acc.width(), d as u64));
    }
    let out = acc.resize(width);
    // A sized literal whose value does not fit is almost always a typo; the
    // paper's bit-truncation subclass is about *assignments*, not literals,
    // so we reject rather than silently truncate. Unsized literals truncate
    // to 32 bits like Verilog does.
    if !unsized_literal && out.resize(acc.width()) != acc {
        return Err(err(orig, "value does not fit in the given width"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_decimal() {
        let b = Bits::parse_literal("42").unwrap();
        assert_eq!(b.width(), 32);
        assert_eq!(b.to_u64(), 42);
    }

    #[test]
    fn sized_hex() {
        let b = Bits::parse_literal("8'hFF").unwrap();
        assert_eq!(b.width(), 8);
        assert_eq!(b.to_u64(), 0xFF);
    }

    #[test]
    fn sized_binary_octal() {
        assert_eq!(Bits::parse_literal("4'b1010").unwrap().to_u64(), 10);
        assert_eq!(Bits::parse_literal("6'o77").unwrap().to_u64(), 0o77);
    }

    #[test]
    fn underscores_ignored() {
        assert_eq!(
            Bits::parse_literal("16'hAB_CD").unwrap().to_u64(),
            0xABCD
        );
    }

    #[test]
    fn unsized_based() {
        let b = Bits::parse_literal("'h10").unwrap();
        assert_eq!(b.width(), 32);
        assert_eq!(b.to_u64(), 16);
    }

    #[test]
    fn wide_decimal() {
        let b = Bits::parse_literal("64'd18446744073709551615").unwrap();
        assert_eq!(b.to_u64(), u64::MAX);
    }

    #[test]
    fn overflow_rejected() {
        assert!(Bits::parse_literal("4'hFF").is_err());
        assert!(Bits::parse_literal("1'd2").is_err());
    }

    #[test]
    fn malformed_rejected() {
        assert!(Bits::parse_literal("8'q12").is_err());
        assert!(Bits::parse_literal("8'").is_err());
        assert!(Bits::parse_literal("0'd1").is_err());
        assert!(Bits::parse_literal("8'b012").is_err());
        assert!(Bits::parse_literal("abc").is_err());
    }
}
