//! Fixed-limb unrolled kernels for wide operations.
//!
//! The generic `*_into` operations in [`ops`](crate::Bits) loop over a
//! runtime limb count, paying a bounds check and a loop-carried branch per
//! limb. The simulator's bytecode backend knows each operand's width at
//! lowering time, so for the common wide classes — 2 limbs (65..=128 bits)
//! and 4 limbs (129..=256 bits) — it selects one of these kernels instead.
//! Monomorphizing over `L` lets the compiler emit straight-line code over
//! `[u64; L]` views with a single bounds check per operand.
//!
//! Every kernel computes bit-for-bit the same result as its generic
//! counterpart (`add_into`, `sub_into`, the bitwise `*_into`s,
//! `cmp_unsigned`); the differential suite in `hwdbg-sim` holds the
//! backends to that. Callers guarantee both operands share a width `w`
//! with `64 < w` and `limbs_for(w) == L`; that contract is checked in
//! debug builds.

use crate::{limbs_for, Bits};
use std::cmp::Ordering;

/// Fixed-length view of an operand's limbs.
#[inline]
fn arr<const L: usize>(b: &Bits) -> &[u64; L] {
    match b.limbs()[..L].try_into() {
        Ok(view) => view,
        // Callers uphold `limbs_for(width) == L` (checked in `check`).
        Err(_) => unreachable!("fixed-kernel limb count"),
    }
}

/// Fixed-length mutable view of an output's limbs (post `set_zero`).
#[inline]
fn arr_mut<const L: usize>(b: &mut Bits) -> &mut [u64; L] {
    match (&mut b.limbs_mut()[..L]).try_into() {
        Ok(view) => view,
        Err(_) => unreachable!("fixed-kernel limb count"),
    }
}

#[inline]
fn check<const L: usize>(a: &Bits, b: &Bits) {
    debug_assert_eq!(a.width(), b.width(), "fixed kernels need equal widths");
    debug_assert!(a.width() > 64, "fixed kernels are wide-only");
    debug_assert_eq!(limbs_for(a.width()), L, "limb count mismatch");
}

/// `out = a + b` with an unrolled `L`-limb carry chain.
#[inline]
pub fn add_into<const L: usize>(a: &Bits, b: &Bits, out: &mut Bits) {
    check::<L>(a, b);
    let w = a.width();
    out.set_zero(w);
    let (a, b) = (arr::<L>(a), arr::<L>(b));
    let o = arr_mut::<L>(out);
    let mut carry = 0u64;
    for i in 0..L {
        let (s1, c1) = a[i].overflowing_add(b[i]);
        let (s2, c2) = s1.overflowing_add(carry);
        o[i] = s2;
        carry = (c1 as u64) + (c2 as u64);
    }
    out.mask_top();
}

/// `out = a - b` with an unrolled `L`-limb borrow chain.
#[inline]
pub fn sub_into<const L: usize>(a: &Bits, b: &Bits, out: &mut Bits) {
    check::<L>(a, b);
    let w = a.width();
    out.set_zero(w);
    let (a, b) = (arr::<L>(a), arr::<L>(b));
    let o = arr_mut::<L>(out);
    let mut borrow = 0u64;
    for i in 0..L {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow);
        o[i] = d2;
        borrow = (b1 | b2) as u64;
    }
    out.mask_top();
}

macro_rules! fixed_bitwise {
    ($(#[$meta:meta])* $name:ident, $op:tt) => {
        $(#[$meta])*
        #[inline]
        pub fn $name<const L: usize>(a: &Bits, b: &Bits, out: &mut Bits) {
            check::<L>(a, b);
            let w = a.width();
            out.set_zero(w);
            let (a, b) = (arr::<L>(a), arr::<L>(b));
            let o = arr_mut::<L>(out);
            for i in 0..L {
                o[i] = a[i] $op b[i];
            }
            out.mask_top();
        }
    };
}

fixed_bitwise!(
    /// `out = a & b`, unrolled over `L` limbs.
    and_into, &
);
fixed_bitwise!(
    /// `out = a | b`, unrolled over `L` limbs.
    or_into, |
);
fixed_bitwise!(
    /// `out = a ^ b`, unrolled over `L` limbs.
    xor_into, ^
);

/// Unsigned comparison over exactly `L` limbs, high limb first.
#[inline]
pub fn cmp_unsigned<const L: usize>(a: &Bits, b: &Bits) -> Ordering {
    check::<L>(a, b);
    let (a, b) = (arr::<L>(a), arr::<L>(b));
    for i in (0..L).rev() {
        match a[i].cmp(&b[i]) {
            Ordering::Equal => continue,
            ord => return ord,
        }
    }
    Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    fn rand_bits(rng: &mut SplitMix64, w: u32) -> Bits {
        let mut b = Bits::zero(w);
        for i in 0..w {
            b.set_bit(i, rng.next_bool());
        }
        b
    }

    /// Every fixed kernel must agree with its generic counterpart at the
    /// width extremes of its limb class, on dense random operands.
    #[test]
    fn fixed_matches_generic() {
        let mut rng = SplitMix64::new(0xF1C5);
        for &(w, limbs) in &[(65u32, 2usize), (128, 2), (193, 4), (224, 4), (256, 4)] {
            for _ in 0..64 {
                let a = rand_bits(&mut rng, w);
                let b = rand_bits(&mut rng, w);
                let mut want = Bits::zero(w);
                let mut got = Bits::zero(w);
                macro_rules! case {
                    ($generic:ident, $fixed:ident) => {
                        a.$generic(&b, &mut want);
                        match limbs {
                            2 => $fixed::<2>(&a, &b, &mut got),
                            _ => $fixed::<4>(&a, &b, &mut got),
                        }
                        assert_eq!(want, got, "{} at width {w}", stringify!($fixed));
                    };
                }
                case!(add_into, add_into);
                case!(sub_into, sub_into);
                case!(and_into, and_into);
                case!(or_into, or_into);
                case!(xor_into, xor_into);
                let want = a.cmp_unsigned(&b);
                let got = match limbs {
                    2 => cmp_unsigned::<2>(&a, &b),
                    _ => cmp_unsigned::<4>(&a, &b),
                };
                assert_eq!(want, got, "cmp_unsigned at width {w}");
            }
        }
    }
}
