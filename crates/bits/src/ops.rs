//! Arithmetic, logical, shift, and comparison operations on [`Bits`].
//!
//! Binary operations require equal widths (the elaborator is responsible for
//! width-extending operands per Verilog's context rules); mixing widths is a
//! programming error and panics in debug and release alike, because silently
//! truncating here would mask exactly the class of bugs this toolkit hunts.

use crate::{Bits, limbs_for};
use std::cmp::Ordering;
use std::ops::{BitAnd, BitOr, BitXor, Not};

impl Bits {
    #[track_caller]
    fn check_same_width(&self, rhs: &Bits, op: &str) {
        assert_eq!(
            self.width, rhs.width,
            "width mismatch in Bits::{op}: {} vs {}",
            self.width, rhs.width
        );
    }

    /// Wrapping addition modulo `2^width`.
    #[track_caller]
    #[allow(clippy::should_implement_trait)] // width-checked domain API, not std::ops
    pub fn add(&self, rhs: &Bits) -> Bits {
        self.check_same_width(rhs, "add");
        let mut out = Bits::zero(self.width);
        let mut carry = 0u64;
        for i in 0..self.limbs.len() {
            let (s1, c1) = self.limbs[i].overflowing_add(rhs.limbs[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            out.limbs[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        out.mask_top();
        out
    }

    /// Wrapping subtraction modulo `2^width`.
    #[track_caller]
    pub fn sub(&self, rhs: &Bits) -> Bits {
        self.check_same_width(rhs, "sub");
        self.add(&rhs.neg())
    }

    /// Two's-complement negation modulo `2^width`.
    pub fn neg(&self) -> Bits {
        let mut out = !self;
        let one = Bits::from_u64(self.width, 1);
        out = out.add(&one);
        out
    }

    /// Wrapping multiplication modulo `2^width` (schoolbook over limbs).
    #[track_caller]
    pub fn mul(&self, rhs: &Bits) -> Bits {
        self.check_same_width(rhs, "mul");
        let n = self.limbs.len();
        let mut acc = vec![0u128; n + 1];
        for i in 0..n {
            if self.limbs[i] == 0 {
                continue;
            }
            for j in 0..n {
                if i + j >= n {
                    break; // contributions beyond the width are discarded
                }
                let p = (self.limbs[i] as u128) * (rhs.limbs[j] as u128);
                let lo = p as u64 as u128;
                let hi = p >> 64;
                acc[i + j] += lo;
                acc[i + j + 1] += hi;
            }
        }
        let mut out = Bits::zero(self.width);
        let mut carry: u128 = 0;
        for (limb, a) in out.limbs.iter_mut().zip(&acc) {
            let v = a + carry;
            *limb = v as u64;
            carry = v >> 64;
        }
        out.mask_top();
        out
    }

    /// Unsigned division. Division by zero yields all-zeros (the two-state
    /// convention used by Verilator for `/ 0`).
    #[track_caller]
    pub fn div(&self, rhs: &Bits) -> Bits {
        self.check_same_width(rhs, "div");
        if rhs.is_zero() {
            return Bits::zero(self.width);
        }
        self.divmod(rhs).0
    }

    /// Unsigned remainder. Remainder by zero yields all-zeros.
    #[track_caller]
    pub fn rem(&self, rhs: &Bits) -> Bits {
        self.check_same_width(rhs, "rem");
        if rhs.is_zero() {
            return Bits::zero(self.width);
        }
        self.divmod(rhs).1
    }

    /// Long division: `(quotient, remainder)`. Caller ensures `rhs != 0`.
    fn divmod(&self, rhs: &Bits) -> (Bits, Bits) {
        // Fast path: both fit in u128.
        if self.width <= 128 {
            let a = self.to_u128();
            let b = rhs.to_u128();
            return (
                Bits::from_u128(self.width, a / b),
                Bits::from_u128(self.width, a % b),
            );
        }
        // Bitwise restoring division for wide values.
        let mut quo = Bits::zero(self.width);
        let mut rem = Bits::zero(self.width);
        for i in (0..self.width).rev() {
            rem = rem.shl(1);
            rem.set_bit(0, self.bit(i));
            if rem.cmp_unsigned(rhs) != Ordering::Less {
                rem = rem.sub(rhs);
                quo.set_bit(i, true);
            }
        }
        (quo, rem)
    }

    /// Logical shift left by `n` (bits shifted past the top are lost).
    pub fn shl(&self, n: u32) -> Bits {
        let mut out = Bits::zero(self.width);
        if n >= self.width {
            return out;
        }
        let limb_shift = (n / 64) as usize;
        let bit_shift = n % 64;
        for i in (0..out.limbs.len()).rev() {
            if i < limb_shift {
                continue;
            }
            let mut v = self.limbs[i - limb_shift] << bit_shift;
            if bit_shift > 0 && i > limb_shift {
                v |= self.limbs[i - limb_shift - 1] >> (64 - bit_shift);
            }
            out.limbs[i] = v;
        }
        out.mask_top();
        out
    }

    /// Logical shift right by `n` (zero fill).
    pub fn shr(&self, n: u32) -> Bits {
        let mut out = Bits::zero(self.width);
        if n >= self.width {
            return out;
        }
        let limb_shift = (n / 64) as usize;
        let bit_shift = n % 64;
        for i in 0..out.limbs.len() {
            if i + limb_shift >= self.limbs.len() {
                break;
            }
            let mut v = self.limbs[i + limb_shift] >> bit_shift;
            if bit_shift > 0 && i + limb_shift + 1 < self.limbs.len() {
                v |= self.limbs[i + limb_shift + 1] << (64 - bit_shift);
            }
            out.limbs[i] = v;
        }
        out
    }

    /// Arithmetic shift right by `n` (sign fill from the current top bit).
    pub fn shr_arith(&self, n: u32) -> Bits {
        let mut out = self.shr(n);
        if self.bit(self.width - 1) {
            let n = n.min(self.width);
            for i in (self.width - n)..self.width {
                out.set_bit(i, true);
            }
        }
        out
    }

    /// Unsigned comparison.
    #[track_caller]
    pub fn cmp_unsigned(&self, rhs: &Bits) -> Ordering {
        self.check_same_width(rhs, "cmp_unsigned");
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&rhs.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Signed (two's-complement) comparison.
    #[track_caller]
    pub fn cmp_signed(&self, rhs: &Bits) -> Ordering {
        self.check_same_width(rhs, "cmp_signed");
        let sa = self.bit(self.width - 1);
        let sb = rhs.bit(self.width - 1);
        match (sa, sb) {
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            _ => self.cmp_unsigned(rhs),
        }
    }

    /// Reduction AND: 1 iff all bits set.
    pub fn reduce_and(&self) -> bool {
        self.count_ones() == self.width
    }

    /// Reduction OR: 1 iff any bit set.
    pub fn reduce_or(&self) -> bool {
        !self.is_zero()
    }

    /// Reduction XOR: parity of set bits.
    pub fn reduce_xor(&self) -> bool {
        self.count_ones() % 2 == 1
    }
}

macro_rules! bitwise_impl {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for &Bits {
            type Output = Bits;
            #[track_caller]
            fn $method(self, rhs: &Bits) -> Bits {
                self.check_same_width(rhs, stringify!($method));
                let mut out = Bits::zero(self.width);
                for i in 0..self.limbs.len() {
                    out.limbs[i] = self.limbs[i] $op rhs.limbs[i];
                }
                out.mask_top();
                out
            }
        }
        impl $trait for Bits {
            type Output = Bits;
            #[track_caller]
            fn $method(self, rhs: Bits) -> Bits {
                (&self).$method(&rhs)
            }
        }
    };
}

bitwise_impl!(BitAnd, bitand, &);
bitwise_impl!(BitOr, bitor, |);
bitwise_impl!(BitXor, bitxor, ^);

impl Not for &Bits {
    type Output = Bits;
    fn not(self) -> Bits {
        let mut out = Bits {
            width: self.width,
            limbs: self.limbs.iter().map(|&l| !l).collect(),
        };
        out.mask_top();
        out
    }
}

impl Not for Bits {
    type Output = Bits;
    fn not(self) -> Bits {
        !&self
    }
}

// `limbs_for` is used by the parent module; re-reference to silence the
// unused-import lint when building without debug assertions.
#[allow(dead_code)]
fn _touch() {
    let _ = limbs_for(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(w: u32, v: u128) -> Bits {
        Bits::from_u128(w, v)
    }

    #[test]
    fn add_wraps() {
        assert_eq!(b(8, 0xFF).add(&b(8, 1)).to_u64(), 0);
        assert_eq!(b(8, 100).add(&b(8, 55)).to_u64(), 155);
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = b(128, u64::MAX as u128);
        let one = b(128, 1);
        assert_eq!(a.add(&one).to_u128(), (u64::MAX as u128) + 1);
    }

    #[test]
    fn sub_and_neg() {
        assert_eq!(b(8, 5).sub(&b(8, 7)).to_u64(), 0xFE);
        assert_eq!(b(8, 1).neg().to_u64(), 0xFF);
        assert_eq!(b(8, 0).neg().to_u64(), 0);
    }

    #[test]
    fn mul_wraps() {
        assert_eq!(b(8, 16).mul(&b(8, 16)).to_u64(), 0);
        assert_eq!(b(8, 12).mul(&b(8, 12)).to_u64(), 144);
        let a = b(128, 1u128 << 100);
        assert_eq!(a.mul(&b(128, 2)).to_u128(), 1u128 << 101);
    }

    #[test]
    fn div_rem() {
        assert_eq!(b(16, 1000).div(&b(16, 7)).to_u64(), 142);
        assert_eq!(b(16, 1000).rem(&b(16, 7)).to_u64(), 6);
        assert_eq!(b(16, 1000).div(&b(16, 0)).to_u64(), 0);
        assert_eq!(b(16, 1000).rem(&b(16, 0)).to_u64(), 0);
    }

    #[test]
    fn wide_divmod() {
        // > 128-bit path exercises the restoring divider.
        let a = Bits::from_u64(200, 999_999_937).shl(64);
        let d = Bits::from_u64(200, 1 << 32);
        let q = a.div(&d);
        assert_eq!(q.to_u128(), (999_999_937u128 << 64) >> 32);
    }

    #[test]
    fn shifts() {
        assert_eq!(b(8, 0b0001_0110).shl(2).to_u64(), 0b0101_1000);
        assert_eq!(b(8, 0b0001_0110).shr(2).to_u64(), 0b0000_0101);
        assert_eq!(b(8, 0x96).shr_arith(4).to_u64(), 0xF9);
        assert_eq!(b(8, 0x16).shr_arith(4).to_u64(), 0x01);
        assert_eq!(b(8, 0xFF).shl(8).to_u64(), 0);
        assert_eq!(b(8, 0xFF).shr(200).to_u64(), 0);
        let wide = b(128, 1).shl(100);
        assert_eq!(wide.shr(99).to_u64(), 2);
    }

    #[test]
    fn comparisons() {
        assert_eq!(b(8, 5).cmp_unsigned(&b(8, 7)), Ordering::Less);
        assert_eq!(b(8, 0xFE).cmp_signed(&b(8, 1)), Ordering::Less); // -2 < 1
        assert_eq!(b(8, 0xFE).cmp_unsigned(&b(8, 1)), Ordering::Greater);
        assert_eq!(b(8, 0x80).cmp_signed(&b(8, 0x7F)), Ordering::Less);
    }

    #[test]
    fn reductions() {
        assert!(b(4, 0xF).reduce_and());
        assert!(!b(4, 0xE).reduce_and());
        assert!(b(4, 0x2).reduce_or());
        assert!(!b(4, 0).reduce_or());
        assert!(b(4, 0b0111).reduce_xor());
        assert!(!b(4, 0b0110).reduce_xor());
    }

    #[test]
    fn bitwise_ops() {
        assert_eq!((&b(8, 0xF0) & &b(8, 0x3C)).to_u64(), 0x30);
        assert_eq!((&b(8, 0xF0) | &b(8, 0x3C)).to_u64(), 0xFC);
        assert_eq!((&b(8, 0xF0) ^ &b(8, 0x3C)).to_u64(), 0xCC);
        assert_eq!((!&b(8, 0xF0)).to_u64(), 0x0F);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mixed_width_panics() {
        let _ = b(8, 1).add(&b(9, 1));
    }
}
