//! Arithmetic, logical, shift, and comparison operations on [`Bits`].
//!
//! Binary operations require equal widths (the elaborator is responsible for
//! width-extending operands per Verilog's context rules); mixing widths is a
//! programming error and panics in debug and release alike, because silently
//! truncating here would mask exactly the class of bugs this toolkit hunts.
//!
//! Every binary operation exists in two forms: a by-value form (`add`,
//! `mul`, the `std::ops` impls) that returns a fresh `Bits`, and an
//! in-place `*_into` form that writes the result into caller-owned storage.
//! The by-value forms are thin wrappers over the `*_into` forms, so there
//! is exactly one implementation of each operation's semantics. For widths
//! `<= 64` — the inline representation — every `*_into` operation is a few
//! register ops and never touches the heap; that is the invariant the
//! simulator's zero-allocation hot path rests on (see DESIGN.md §7).

use crate::Bits;
use std::cmp::Ordering;
use std::ops::{BitAnd, BitOr, BitXor, Not};

impl Bits {
    #[track_caller]
    fn check_same_width(&self, rhs: &Bits, op: &str) {
        assert_eq!(
            self.width(),
            rhs.width(),
            "width mismatch in Bits::{op}: {} vs {}",
            self.width(),
            rhs.width()
        );
    }

    /// Wrapping addition modulo `2^width`.
    #[track_caller]
    #[allow(clippy::should_implement_trait)] // width-checked domain API, not std::ops
    pub fn add(&self, rhs: &Bits) -> Bits {
        let mut out = Bits::default();
        self.add_into(rhs, &mut out);
        out
    }

    /// In-place [`add`](Bits::add): `out = self + rhs`, reusing `out`'s
    /// storage.
    #[track_caller]
    pub fn add_into(&self, rhs: &Bits, out: &mut Bits) {
        self.check_same_width(rhs, "add");
        let w = self.width();
        if w <= 64 {
            out.store_small(w, self.limb0().wrapping_add(rhs.limb0()));
            return;
        }
        out.set_zero(w);
        let (a, b) = (self.limbs(), rhs.limbs());
        let o = out.limbs_mut();
        let mut carry = 0u64;
        for i in 0..o.len() {
            let (s1, c1) = a[i].overflowing_add(b[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            o[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        out.mask_top();
    }

    /// Wrapping subtraction modulo `2^width`.
    #[track_caller]
    pub fn sub(&self, rhs: &Bits) -> Bits {
        let mut out = Bits::default();
        self.sub_into(rhs, &mut out);
        out
    }

    /// In-place [`sub`](Bits::sub): `out = self - rhs` (borrow chain, no
    /// negation temporary).
    #[track_caller]
    pub fn sub_into(&self, rhs: &Bits, out: &mut Bits) {
        self.check_same_width(rhs, "sub");
        let w = self.width();
        if w <= 64 {
            out.store_small(w, self.limb0().wrapping_sub(rhs.limb0()));
            return;
        }
        out.set_zero(w);
        let (a, b) = (self.limbs(), rhs.limbs());
        let o = out.limbs_mut();
        let mut borrow = 0u64;
        for i in 0..o.len() {
            let (d1, b1) = a[i].overflowing_sub(b[i]);
            let (d2, b2) = d1.overflowing_sub(borrow);
            o[i] = d2;
            borrow = (b1 | b2) as u64;
        }
        out.mask_top();
    }

    /// Wrapping in-place subtraction: `self -= rhs` modulo `2^width`.
    /// The borrow chain runs directly over `self`'s limbs — no scratch.
    #[track_caller]
    pub fn sub_in_place(&mut self, rhs: &Bits) {
        self.check_same_width(rhs, "sub");
        let w = self.width();
        if w <= 64 {
            self.store_small(w, self.limb0().wrapping_sub(rhs.limb0()));
            return;
        }
        let b = rhs.limbs();
        let a = self.limbs_mut();
        let mut borrow = 0u64;
        for i in 0..b.len() {
            let (d1, b1) = a[i].overflowing_sub(b[i]);
            let (d2, b2) = d1.overflowing_sub(borrow);
            a[i] = d2;
            borrow = (b1 | b2) as u64;
        }
        self.mask_top();
    }

    /// Two's-complement negation modulo `2^width`.
    pub fn neg(&self) -> Bits {
        let mut out = self.clone();
        out.neg_in_place();
        out
    }

    /// Negates in place: `self = -self` modulo `2^width`.
    pub fn neg_in_place(&mut self) {
        let w = self.width();
        if w <= 64 {
            let v = self.limb0().wrapping_neg();
            self.store_small(w, v);
            return;
        }
        let mut carry = 1u64;
        for l in self.limbs_mut() {
            let (s, c) = (!*l).overflowing_add(carry);
            *l = s;
            carry = c as u64;
        }
        self.mask_top();
    }

    /// Inverts every bit in place: `self = !self`.
    pub fn not_in_place(&mut self) {
        let w = self.width();
        if w <= 64 {
            let v = !self.limb0();
            self.store_small(w, v);
            return;
        }
        for l in self.limbs_mut() {
            *l = !*l;
        }
        self.mask_top();
    }

    /// In-place bitwise NOT into `out`.
    pub fn not_into(&self, out: &mut Bits) {
        let w = self.width();
        if w <= 64 {
            out.store_small(w, !self.limb0());
            return;
        }
        out.set_zero(w);
        let a = self.limbs();
        let o = out.limbs_mut();
        for i in 0..o.len() {
            o[i] = !a[i];
        }
        out.mask_top();
    }

    /// Wrapping multiplication modulo `2^width` (schoolbook over limbs).
    #[track_caller]
    pub fn mul(&self, rhs: &Bits) -> Bits {
        let mut out = Bits::default();
        self.mul_into(rhs, &mut out);
        out
    }

    /// In-place [`mul`](Bits::mul): schoolbook product accumulated directly
    /// into `out`'s limbs — no side accumulator.
    #[track_caller]
    pub fn mul_into(&self, rhs: &Bits, out: &mut Bits) {
        self.check_same_width(rhs, "mul");
        let w = self.width();
        if w <= 64 {
            out.store_small(w, self.limb0().wrapping_mul(rhs.limb0()));
            return;
        }
        out.set_zero(w);
        let (a, b) = (self.limbs(), rhs.limbs());
        let o = out.limbs_mut();
        let n = o.len();
        for i in 0..n {
            let ai = a[i];
            if ai == 0 {
                continue;
            }
            let mut carry = 0u64;
            for j in 0..(n - i) {
                // ai*bj + limb + carry < 2^128: never overflows u128.
                let p = (ai as u128) * (b[j] as u128) + (o[i + j] as u128) + (carry as u128);
                o[i + j] = p as u64;
                carry = (p >> 64) as u64;
            }
        }
        out.mask_top();
    }

    /// Unsigned division. Division by zero yields all-zeros (the two-state
    /// convention used by Verilator for `/ 0`).
    #[track_caller]
    pub fn div(&self, rhs: &Bits) -> Bits {
        let mut out = Bits::default();
        self.div_into(rhs, &mut out);
        out
    }

    /// In-place [`div`](Bits::div). Allocation-free through 128 bits; the
    /// restoring divider for wider values allocates one remainder scratch —
    /// callers on an allocation-free path should hold both buffers and use
    /// [`divmod_into`](Bits::divmod_into) instead.
    #[track_caller]
    pub fn div_into(&self, rhs: &Bits, out: &mut Bits) {
        self.check_same_width(rhs, "div");
        let w = self.width();
        if rhs.is_zero() {
            out.set_zero(w);
            return;
        }
        if w <= 64 {
            out.store_small(w, self.limb0() / rhs.limb0());
        } else if w <= 128 {
            out.store_u128(w, self.to_u128() / rhs.to_u128());
        } else {
            let mut rem = Bits::zero(w);
            self.divmod_into(rhs, out, &mut rem);
        }
    }

    /// Unsigned remainder. Remainder by zero yields all-zeros.
    #[track_caller]
    pub fn rem(&self, rhs: &Bits) -> Bits {
        let mut out = Bits::default();
        self.rem_into(rhs, &mut out);
        out
    }

    /// In-place [`rem`](Bits::rem). Allocation-free through 128 bits; the
    /// restoring divider for wider values allocates one quotient scratch —
    /// callers on an allocation-free path should hold both buffers and use
    /// [`divmod_into`](Bits::divmod_into) instead.
    #[track_caller]
    pub fn rem_into(&self, rhs: &Bits, out: &mut Bits) {
        self.check_same_width(rhs, "rem");
        let w = self.width();
        if rhs.is_zero() {
            out.set_zero(w);
            return;
        }
        if w <= 64 {
            out.store_small(w, self.limb0() % rhs.limb0());
        } else if w <= 128 {
            out.store_u128(w, self.to_u128() % rhs.to_u128());
        } else {
            let mut quo = Bits::zero(w);
            self.divmod_into(rhs, &mut quo, out);
        }
    }

    /// Simultaneous quotient and remainder into caller-provided buffers.
    /// One restoring-divider walk serves both `/` and `%`, and every width
    /// tier is allocation-free once `quo`/`rem` already hold `width` bits:
    /// the wide path shifts and subtracts directly in the out buffers.
    /// Division by zero yields all-zero quotient and remainder.
    #[track_caller]
    pub fn divmod_into(&self, rhs: &Bits, quo: &mut Bits, rem: &mut Bits) {
        self.check_same_width(rhs, "divmod");
        let w = self.width();
        if rhs.is_zero() {
            quo.set_zero(w);
            rem.set_zero(w);
            return;
        }
        if w <= 64 {
            quo.store_small(w, self.limb0() / rhs.limb0());
            rem.store_small(w, self.limb0() % rhs.limb0());
            return;
        }
        if w <= 128 {
            let (a, b) = (self.to_u128(), rhs.to_u128());
            quo.store_u128(w, a / b);
            rem.store_u128(w, a % b);
            return;
        }
        quo.set_zero(w);
        rem.set_zero(w);
        for i in (0..w).rev() {
            rem.shl_in_place(1);
            rem.set_bit(0, self.bit(i));
            if rem.cmp_unsigned(rhs) != Ordering::Less {
                rem.sub_in_place(rhs);
                quo.set_bit(i, true);
            }
        }
    }

    /// Logical shift left by `n` (bits shifted past the top are lost).
    pub fn shl(&self, n: u32) -> Bits {
        let mut out = Bits::default();
        self.shl_into(n, &mut out);
        out
    }

    /// In-place [`shl`](Bits::shl): `out = self << n`.
    pub fn shl_into(&self, n: u32, out: &mut Bits) {
        let w = self.width();
        if w <= 64 {
            let v = if n >= w { 0 } else { self.limb0() << n };
            out.store_small(w, v);
            return;
        }
        out.set_zero(w);
        if n >= w {
            return;
        }
        let limb_shift = (n / 64) as usize;
        let bit_shift = n % 64;
        let a = self.limbs();
        let o = out.limbs_mut();
        for i in (limb_shift..o.len()).rev() {
            let mut v = a[i - limb_shift] << bit_shift;
            if bit_shift > 0 && i > limb_shift {
                v |= a[i - limb_shift - 1] >> (64 - bit_shift);
            }
            o[i] = v;
        }
        out.mask_top();
    }

    /// Shifts left in place: `self <<= n`.
    pub fn shl_in_place(&mut self, n: u32) {
        let w = self.width();
        if w <= 64 {
            let v = if n >= w { 0 } else { self.limb0() << n };
            self.store_small(w, v);
            return;
        }
        if n >= w {
            for l in self.limbs_mut() {
                *l = 0;
            }
            return;
        }
        let limb_shift = (n / 64) as usize;
        let bit_shift = n % 64;
        let limbs = self.limbs_mut();
        // Descending order only reads indices not yet overwritten.
        for i in (0..limbs.len()).rev() {
            if i < limb_shift {
                limbs[i] = 0;
                continue;
            }
            let mut v = limbs[i - limb_shift] << bit_shift;
            if bit_shift > 0 && i > limb_shift {
                v |= limbs[i - limb_shift - 1] >> (64 - bit_shift);
            }
            limbs[i] = v;
        }
        self.mask_top();
    }

    /// Logical shift right by `n` (zero fill).
    pub fn shr(&self, n: u32) -> Bits {
        let mut out = Bits::default();
        self.shr_into(n, &mut out);
        out
    }

    /// In-place [`shr`](Bits::shr): `out = self >> n` (zero fill).
    pub fn shr_into(&self, n: u32, out: &mut Bits) {
        let w = self.width();
        if w <= 64 {
            let v = if n >= w { 0 } else { self.limb0() >> n };
            out.store_small(w, v);
            return;
        }
        out.set_zero(w);
        if n >= w {
            return;
        }
        let limb_shift = (n / 64) as usize;
        let bit_shift = n % 64;
        let a = self.limbs();
        let o = out.limbs_mut();
        for i in 0..o.len() {
            if i + limb_shift >= a.len() {
                break;
            }
            let mut v = a[i + limb_shift] >> bit_shift;
            if bit_shift > 0 && i + limb_shift + 1 < a.len() {
                v |= a[i + limb_shift + 1] << (64 - bit_shift);
            }
            o[i] = v;
        }
    }

    /// Arithmetic shift right by `n` (sign fill from the current top bit).
    pub fn shr_arith(&self, n: u32) -> Bits {
        let mut out = Bits::default();
        self.shr_arith_into(n, &mut out);
        out
    }

    /// In-place [`shr_arith`](Bits::shr_arith): `out = self >>> n`.
    pub fn shr_arith_into(&self, n: u32, out: &mut Bits) {
        self.shr_into(n, out);
        if self.bit(self.width() - 1) {
            let n = n.min(self.width());
            out.fill_ones(self.width() - n, self.width());
        }
    }

    /// Unsigned comparison.
    #[track_caller]
    pub fn cmp_unsigned(&self, rhs: &Bits) -> Ordering {
        self.check_same_width(rhs, "cmp_unsigned");
        let (a, b) = (self.limbs(), rhs.limbs());
        for i in (0..a.len()).rev() {
            match a[i].cmp(&b[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Signed (two's-complement) comparison.
    #[track_caller]
    pub fn cmp_signed(&self, rhs: &Bits) -> Ordering {
        self.check_same_width(rhs, "cmp_signed");
        let sa = self.bit(self.width() - 1);
        let sb = rhs.bit(rhs.width() - 1);
        match (sa, sb) {
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            _ => self.cmp_unsigned(rhs),
        }
    }

    /// Reduction AND: 1 iff all bits set.
    pub fn reduce_and(&self) -> bool {
        self.count_ones() == self.width()
    }

    /// Reduction OR: 1 iff any bit set.
    pub fn reduce_or(&self) -> bool {
        !self.is_zero()
    }

    /// Reduction XOR: parity of set bits.
    pub fn reduce_xor(&self) -> bool {
        self.count_ones() % 2 == 1
    }
}

macro_rules! bitwise_into_impl {
    ($(#[$meta:meta])* $into:ident, $name:literal, $op:tt) => {
        impl Bits {
            $(#[$meta])*
            #[track_caller]
            pub fn $into(&self, rhs: &Bits, out: &mut Bits) {
                self.check_same_width(rhs, $name);
                let w = self.width();
                if w <= 64 {
                    out.store_small(w, self.limb0() $op rhs.limb0());
                    return;
                }
                out.set_zero(w);
                let (a, b) = (self.limbs(), rhs.limbs());
                let o = out.limbs_mut();
                for i in 0..o.len() {
                    o[i] = a[i] $op b[i];
                }
                out.mask_top();
            }
        }
    };
}

bitwise_into_impl!(
    /// In-place bitwise AND: `out = self & rhs`.
    and_into, "and", &
);
bitwise_into_impl!(
    /// In-place bitwise OR: `out = self | rhs`.
    or_into, "or", |
);
bitwise_into_impl!(
    /// In-place bitwise XOR: `out = self ^ rhs`.
    xor_into, "xor", ^
);

macro_rules! bitwise_impl {
    ($trait:ident, $method:ident, $into:ident) => {
        impl $trait for &Bits {
            type Output = Bits;
            #[track_caller]
            fn $method(self, rhs: &Bits) -> Bits {
                let mut out = Bits::default();
                self.$into(rhs, &mut out);
                out
            }
        }
        impl $trait for Bits {
            type Output = Bits;
            #[track_caller]
            fn $method(self, rhs: Bits) -> Bits {
                (&self).$method(&rhs)
            }
        }
    };
}

bitwise_impl!(BitAnd, bitand, and_into);
bitwise_impl!(BitOr, bitor, or_into);
bitwise_impl!(BitXor, bitxor, xor_into);

impl Not for &Bits {
    type Output = Bits;
    fn not(self) -> Bits {
        let mut out = Bits::default();
        self.not_into(&mut out);
        out
    }
}

impl Not for Bits {
    type Output = Bits;
    fn not(mut self) -> Bits {
        self.not_in_place();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(w: u32, v: u128) -> Bits {
        Bits::from_u128(w, v)
    }

    #[test]
    fn add_wraps() {
        assert_eq!(b(8, 0xFF).add(&b(8, 1)).to_u64(), 0);
        assert_eq!(b(8, 100).add(&b(8, 55)).to_u64(), 155);
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = b(128, u64::MAX as u128);
        let one = b(128, 1);
        assert_eq!(a.add(&one).to_u128(), (u64::MAX as u128) + 1);
    }

    #[test]
    fn sub_and_neg() {
        assert_eq!(b(8, 5).sub(&b(8, 7)).to_u64(), 0xFE);
        assert_eq!(b(8, 1).neg().to_u64(), 0xFF);
        assert_eq!(b(8, 0).neg().to_u64(), 0);
    }

    #[test]
    fn sub_borrows_across_limbs() {
        let a = b(128, 1u128 << 64);
        assert_eq!(a.sub(&b(128, 1)).to_u128(), u64::MAX as u128);
        assert_eq!(b(128, 0).sub(&b(128, 1)).count_ones(), 128);
    }

    #[test]
    fn mul_wraps() {
        assert_eq!(b(8, 16).mul(&b(8, 16)).to_u64(), 0);
        assert_eq!(b(8, 12).mul(&b(8, 12)).to_u64(), 144);
        let a = b(128, 1u128 << 100);
        assert_eq!(a.mul(&b(128, 2)).to_u128(), 1u128 << 101);
    }

    #[test]
    fn div_rem() {
        assert_eq!(b(16, 1000).div(&b(16, 7)).to_u64(), 142);
        assert_eq!(b(16, 1000).rem(&b(16, 7)).to_u64(), 6);
        assert_eq!(b(16, 1000).div(&b(16, 0)).to_u64(), 0);
        assert_eq!(b(16, 1000).rem(&b(16, 0)).to_u64(), 0);
    }

    #[test]
    fn wide_divmod() {
        // > 128-bit path exercises the restoring divider.
        let a = Bits::from_u64(200, 999_999_937).shl(64);
        let d = Bits::from_u64(200, 1 << 32);
        let q = a.div(&d);
        assert_eq!(q.to_u128(), (999_999_937u128 << 64) >> 32);
    }

    #[test]
    fn divmod_into_matches_div_and_rem() {
        // One walk, both outputs, at every width tier — including the
        // restoring divider and the divide-by-zero convention.
        let cases: [(u32, u128, u128); 6] = [
            (16, 1000, 7),
            (16, 1000, 0),
            (100, (999u128 << 64) | 12345, 1 << 33),
            (100, 17, (1u128 << 90) + 5),
            (200, (999_999_937u128 << 64) | 42, (1 << 32) + 3),
            (200, 999_999_937, 0),
        ];
        for (w, a, d) in cases {
            let a = Bits::from_u128(w, a);
            let d = Bits::from_u128(w, d);
            let (mut quo, mut rem) = (Bits::default(), Bits::default());
            a.divmod_into(&d, &mut quo, &mut rem);
            assert_eq!(quo, a.div(&d), "quotient w={w}");
            assert_eq!(rem, a.rem(&d), "remainder w={w}");
        }
    }

    #[test]
    fn sub_in_place_matches_sub() {
        for w in [8u32, 64, 65, 128, 200] {
            let a = Bits::ones(w).shr(1);
            let c = Bits::from_u64(w, 0xDEAD).shl(w / 4);
            let mut ip = a.clone();
            ip.sub_in_place(&c);
            assert_eq!(ip, a.sub(&c), "w={w}");
        }
    }

    #[test]
    fn shifts() {
        assert_eq!(b(8, 0b0001_0110).shl(2).to_u64(), 0b0101_1000);
        assert_eq!(b(8, 0b0001_0110).shr(2).to_u64(), 0b0000_0101);
        assert_eq!(b(8, 0x96).shr_arith(4).to_u64(), 0xF9);
        assert_eq!(b(8, 0x16).shr_arith(4).to_u64(), 0x01);
        assert_eq!(b(8, 0xFF).shl(8).to_u64(), 0);
        assert_eq!(b(8, 0xFF).shr(200).to_u64(), 0);
        let wide = b(128, 1).shl(100);
        assert_eq!(wide.shr(99).to_u64(), 2);
    }

    #[test]
    fn shl_in_place_matches_shl() {
        for w in [8u32, 64, 65, 128, 200] {
            for n in [0u32, 1, 7, 63, 64, 65, 127, 199, 300] {
                let v = Bits::ones(w);
                let mut ip = v.clone();
                ip.shl_in_place(n);
                assert_eq!(ip, v.shl(n), "w={w} n={n}");
            }
        }
    }

    #[test]
    fn comparisons() {
        assert_eq!(b(8, 5).cmp_unsigned(&b(8, 7)), Ordering::Less);
        assert_eq!(b(8, 0xFE).cmp_signed(&b(8, 1)), Ordering::Less); // -2 < 1
        assert_eq!(b(8, 0xFE).cmp_unsigned(&b(8, 1)), Ordering::Greater);
        assert_eq!(b(8, 0x80).cmp_signed(&b(8, 0x7F)), Ordering::Less);
    }

    #[test]
    fn reductions() {
        assert!(b(4, 0xF).reduce_and());
        assert!(!b(4, 0xE).reduce_and());
        assert!(b(4, 0x2).reduce_or());
        assert!(!b(4, 0).reduce_or());
        assert!(b(4, 0b0111).reduce_xor());
        assert!(!b(4, 0b0110).reduce_xor());
    }

    #[test]
    fn bitwise_ops() {
        assert_eq!((&b(8, 0xF0) & &b(8, 0x3C)).to_u64(), 0x30);
        assert_eq!((&b(8, 0xF0) | &b(8, 0x3C)).to_u64(), 0xFC);
        assert_eq!((&b(8, 0xF0) ^ &b(8, 0x3C)).to_u64(), 0xCC);
        assert_eq!((!&b(8, 0xF0)).to_u64(), 0x0F);
    }

    #[test]
    fn into_ops_never_allocate_when_narrow() {
        // Semantics-level check that the in-place forms agree with the
        // by-value forms and keep the inline representation.
        let a = b(64, u64::MAX as u128);
        let c = b(64, 12345);
        let mut out = Bits::default();
        a.add_into(&c, &mut out);
        assert!(out.is_inline());
        assert_eq!(out, a.add(&c));
        a.mul_into(&c, &mut out);
        assert!(out.is_inline());
        assert_eq!(out, a.mul(&c));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mixed_width_panics() {
        let _ = b(8, 1).add(&b(9, 1));
    }
}
