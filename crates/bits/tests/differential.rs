//! Differential tests between the inline and spilled `Bits` representations.
//!
//! The value plane stores widths ≤ 64 inline (one `u64`, no heap) and
//! wider values in a limb vector, but the two representations must be
//! observationally identical: `spilled()` forces any value onto the
//! heap-backed layout, and these seeded loops run every operation over
//! all four operand-representation combinations and demand bit-for-bit
//! equal results. Widths sweep 1..=192, crossing the 63/64/65 inline
//! boundary and both limb-count boundaries (128/129), which is where a
//! masking or limb-indexing bug in one representation would diverge.
//!
//! House style: seeded SplitMix64 loops, no property-testing framework —
//! failures reproduce exactly from the printed seed context.

use hwdbg_bits::{Bits, SplitMix64};

/// A random value of exactly `width` bits, built 64-bit chunks at a time.
fn rand_bits(rng: &mut SplitMix64, width: u32) -> Bits {
    let mut v = Bits::zero(width);
    let mut lo = 0;
    while lo < width {
        let chunk = (width - lo).min(64);
        v.splice(lo, &Bits::from_u64(chunk, rng.next_u64()));
        lo += chunk;
    }
    v
}

/// Asserts `f` computes the same result for every combination of inline
/// and spilled operand representations.
fn check_binary(name: &str, a: &Bits, b: &Bits, f: impl Fn(&Bits, &Bits) -> Bits) {
    let expect = f(a, b);
    for (x, y, tag) in [
        (a.spilled(), b.clone(), "spilled/inline"),
        (a.clone(), b.spilled(), "inline/spilled"),
        (a.spilled(), b.spilled(), "spilled/spilled"),
    ] {
        let got = f(&x, &y);
        assert_eq!(
            got, expect,
            "{name} diverged ({tag}) at width {}: a={} b={}",
            a.width(),
            a.to_hex_string(),
            b.to_hex_string()
        );
    }
}

/// Asserts a unary `f` is representation-independent.
fn check_unary(name: &str, a: &Bits, f: impl Fn(&Bits) -> Bits) {
    let expect = f(a);
    let got = f(&a.spilled());
    assert_eq!(
        got,
        expect,
        "{name} diverged at width {}: a={}",
        a.width(),
        a.to_hex_string()
    );
}

/// Every width from 1 to 192 once, the inline/spill boundary widths with
/// extra trials.
fn width_schedule() -> Vec<(u32, usize)> {
    let mut widths: Vec<(u32, usize)> = (1..=192).map(|w| (w, 2)).collect();
    for boundary in [1, 31, 32, 33, 63, 64, 65, 127, 128, 129, 191, 192] {
        widths.push((boundary, 16));
    }
    widths
}

#[test]
fn arithmetic_ops_agree_across_representations() {
    let mut rng = SplitMix64::new(0xD1FF_0001);
    for (w, trials) in width_schedule() {
        for _ in 0..trials {
            let a = rand_bits(&mut rng, w);
            let b = rand_bits(&mut rng, w);
            check_binary("add", &a, &b, |x, y| x.add(y));
            check_binary("sub", &a, &b, |x, y| x.sub(y));
            check_binary("mul", &a, &b, |x, y| x.mul(y));
            check_binary("div", &a, &b, |x, y| x.div(y));
            check_binary("rem", &a, &b, |x, y| x.rem(y));
            check_binary("div0", &a, &Bits::zero(w), |x, y| x.div(y));
            check_binary("rem0", &a, &Bits::zero(w), |x, y| x.rem(y));
            check_unary("neg", &a, |x| x.neg());
        }
    }
}

#[test]
fn bitwise_and_shift_ops_agree_across_representations() {
    let mut rng = SplitMix64::new(0xD1FF_0002);
    for (w, trials) in width_schedule() {
        for _ in 0..trials {
            let a = rand_bits(&mut rng, w);
            let b = rand_bits(&mut rng, w);
            check_binary("and", &a, &b, |x, y| x & y);
            check_binary("or", &a, &b, |x, y| x | y);
            check_binary("xor", &a, &b, |x, y| x ^ y);
            check_unary("not", &a, |x| {
                let mut out = Bits::default();
                x.not_into(&mut out);
                out
            });
            // Shift amounts across the interesting range: inside the
            // width, at it, and past it (must clear to zero / sign).
            for n in [0, 1, w / 2, w.saturating_sub(1), w, w + 3, 64, 65] {
                check_unary("shl", &a, |x| x.shl(n));
                check_unary("shr", &a, |x| x.shr(n));
                check_unary("shr_arith", &a, |x| x.shr_arith(n));
            }
        }
    }
}

#[test]
fn comparisons_and_reductions_agree_across_representations() {
    let mut rng = SplitMix64::new(0xD1FF_0003);
    for (w, trials) in width_schedule() {
        for _ in 0..trials {
            let a = rand_bits(&mut rng, w);
            // Near-miss values exercise the top-limb compare path.
            let b = if rng.next_bool() {
                let mut c = a.clone();
                c.set_bit(rng.below(w as u64) as u32, rng.next_bool());
                c
            } else {
                rand_bits(&mut rng, w)
            };
            let (asp, bsp) = (a.spilled(), b.spilled());
            assert_eq!(a.cmp_unsigned(&b), asp.cmp_unsigned(&bsp), "cmp_unsigned w={w}");
            assert_eq!(a.cmp_signed(&b), asp.cmp_signed(&bsp), "cmp_signed w={w}");
            assert_eq!(a.reduce_and(), asp.reduce_and(), "reduce_and w={w}");
            assert_eq!(a.reduce_or(), asp.reduce_or(), "reduce_or w={w}");
            assert_eq!(a.reduce_xor(), asp.reduce_xor(), "reduce_xor w={w}");
            assert_eq!(a.count_ones(), asp.count_ones(), "count_ones w={w}");
            assert_eq!(a.is_zero(), asp.is_zero(), "is_zero w={w}");
            assert_eq!(a.to_u64(), asp.to_u64(), "to_u64 w={w}");
            assert_eq!(a.to_u128(), asp.to_u128(), "to_u128 w={w}");
            // Value equality and hashing must be representation-blind.
            assert_eq!(a, asp, "PartialEq inline vs spilled w={w}");
            assert_eq!(hash_of(&a), hash_of(&asp), "Hash inline vs spilled w={w}");
            assert_eq!(a == b, asp == bsp, "PartialEq consistency w={w}");
        }
    }
}

#[test]
fn structural_ops_agree_across_representations() {
    let mut rng = SplitMix64::new(0xD1FF_0004);
    for (w, trials) in width_schedule() {
        for _ in 0..trials {
            let a = rand_bits(&mut rng, w);
            for target in [1, w / 2 + 1, w, w + 1, w + 63, w + 64, w + 65] {
                check_unary("resize", &a, |x| x.resize(target));
                check_unary("resize_signed", &a, |x| x.resize_signed(target));
                check_unary("resize_in_place", &a, |x| {
                    let mut c = x.clone();
                    c.resize_in_place(target);
                    c
                });
                check_unary("resize_signed_in_place", &a, |x| {
                    let mut c = x.clone();
                    c.resize_signed_in_place(target);
                    c
                });
            }
            let lo = rng.below(w as u64) as u32;
            let slice_w = 1 + rng.below((w - lo) as u64) as u32;
            check_unary("slice", &a, |x| x.slice(lo, slice_w));
            let patch = rand_bits(&mut rng, slice_w);
            check_binary("splice", &a, &patch, |x, y| {
                let mut c = x.clone();
                c.splice(lo, y);
                c
            });
            assert_eq!(
                a.slice_eq(lo, &patch),
                a.spilled().slice_eq(lo, &patch.spilled()),
                "slice_eq w={w} lo={lo}"
            );
            let bw = 1 + rng.below(192) as u32;
            let b = rand_bits(&mut rng, bw);
            check_binary("concat", &a, &b, |x, y| x.concat(y));
            check_binary("push_low", &a, &b, |x, y| {
                let mut c = x.clone();
                c.push_low(y);
                c
            });
            let reps = 1 + rng.below(4) as u32;
            check_unary("repeat", &a, |x| x.repeat(reps));
            assert_eq!(
                a.eq_truncated(&b),
                a.spilled().eq_truncated(&b.spilled()),
                "eq_truncated w={w}"
            );
            assert_eq!(
                a.eq_zero_ext(&b),
                a.spilled().eq_zero_ext(&b.spilled()),
                "eq_zero_ext w={w}"
            );
        }
    }
}

#[test]
fn in_place_ops_match_by_value_ops() {
    let mut rng = SplitMix64::new(0xD1FF_0005);
    for (w, trials) in width_schedule() {
        for _ in 0..trials {
            let a = rand_bits(&mut rng, w);
            let b = rand_bits(&mut rng, w);
            // Reuse one out buffer across ops and widths — exactly how the
            // compiled eval scratch pool drives these — so stale width or
            // stale limbs from the previous op would be caught here.
            let ow = 1 + rng.below(192) as u32;
            let mut out = rand_bits(&mut rng, ow).spilled();
            type BinOp = fn(&Bits, &Bits) -> Bits;
            type BinInto = fn(&Bits, &Bits, &mut Bits);
            let cases: &[(&str, BinOp, BinInto)] = &[
                ("add", |x, y| x.add(y), |x, y, o| x.add_into(y, o)),
                ("sub", |x, y| x.sub(y), |x, y, o| x.sub_into(y, o)),
                ("mul", |x, y| x.mul(y), |x, y, o| x.mul_into(y, o)),
                ("div", |x, y| x.div(y), |x, y, o| x.div_into(y, o)),
                ("rem", |x, y| x.rem(y), |x, y, o| x.rem_into(y, o)),
                ("and", |x, y| x & y, |x, y, o| x.and_into(y, o)),
                ("or", |x, y| x | y, |x, y, o| x.or_into(y, o)),
                ("xor", |x, y| x ^ y, |x, y, o| x.xor_into(y, o)),
            ];
            for (name, by_value, into) in cases {
                let expect = by_value(&a, &b);
                into(&a, &b, &mut out);
                assert_eq!(out, expect, "{name}_into vs {name} at width {w}");
            }
            for n in [0, 1, w - 1, w, w + 7] {
                let mut c = a.clone();
                c.shl_in_place(n);
                assert_eq!(c, a.shl(n), "shl_in_place w={w} n={n}");
                a.shl_into(n, &mut out);
                assert_eq!(out, a.shl(n), "shl_into w={w} n={n}");
                a.shr_into(n, &mut out);
                assert_eq!(out, a.shr(n), "shr_into w={w} n={n}");
                a.shr_arith_into(n, &mut out);
                assert_eq!(out, a.shr_arith(n), "shr_arith_into w={w} n={n}");
            }
            let mut c = a.clone();
            c.neg_in_place();
            assert_eq!(c, a.neg(), "neg_in_place w={w}");
            let mut c = a.spilled();
            c.not_in_place();
            let mut expect = Bits::default();
            a.not_into(&mut expect);
            assert_eq!(c, expect, "not_in_place w={w}");
            // assign_from / assign_resized into a reused buffer.
            out.assign_from(&a);
            assert_eq!(out, a, "assign_from w={w}");
            let target = 1 + rng.below(192) as u32;
            out.assign_resized(&a, target);
            assert_eq!(out, a.resize(target), "assign_resized w={w} -> {target}");
            // update_u64 == set to from_u64 at the same width, with a
            // correct changed-flag.
            let raw = rng.next_u64();
            let mut c = a.clone();
            let changed = c.update_u64(raw);
            assert_eq!(c, Bits::from_u64(64.min(w), raw).resize(w), "update_u64 w={w}");
            assert_eq!(changed, c != a, "update_u64 changed flag w={w}");
        }
    }
}

#[test]
fn parse_literal_round_trips_both_representations() {
    let mut rng = SplitMix64::new(0xD1FF_0006);
    for (w, trials) in width_schedule() {
        for _ in 0..trials {
            let a = rand_bits(&mut rng, w);
            for (base, digits) in [
                ('h', a.to_hex_string()),
                ('b', a.to_bin_string()),
                ('d', a.to_dec_string()),
            ] {
                let text = format!("{w}'{base}{digits}");
                let parsed = Bits::parse_literal(&text)
                    .unwrap_or_else(|e| panic!("reparse of {text} failed: {e}"));
                assert_eq!(parsed, a, "round trip via {text}");
                // Formatting must be representation-independent too.
                let sp = a.spilled();
                let sp_digits = match base {
                    'h' => sp.to_hex_string(),
                    'b' => sp.to_bin_string(),
                    _ => sp.to_dec_string(),
                };
                assert_eq!(sp_digits, digits, "to-string diverged at width {w}");
            }
        }
    }
}

fn hash_of(b: &Bits) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    b.hash(&mut h);
    h.finish()
}
