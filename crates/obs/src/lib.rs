//! Observability layer: pipeline stage timing and hot-path counters.
//!
//! The paper's premise is that hardware debugging fails for lack of
//! visibility into execution — and the same holds for the debugging
//! toolchain itself. This crate is the low-overhead telemetry layer every
//! other crate reports into:
//!
//! * [`StageTimer`] — nestable wall-clock spans over the pipeline stages
//!   (parse → elaborate → flatten → compile → simulate → analyze), the
//!   software analogue of a pipeline stage monitor;
//! * [`SimCounters`] — a plain-`u64` registry of hot-path event counters
//!   (settle iterations, unit executions, work-list pushes, nonblocking
//!   commits, force hits, …) that the simulator bumps behind a single
//!   branch when enabled and skips entirely when disabled;
//! * JSON and rustc-style human renderers, so the same data feeds
//!   `hwdbg profile`, `perfsuite`/`BENCH_sim.json`, and eyeballs.
//!
//! Nothing here depends on the rest of the workspace, so any crate can
//! report into it without dependency cycles.
//!
//! # Examples
//!
//! ```
//! use hwdbg_obs::{SimCounters, StageTimer};
//!
//! let mut timer = StageTimer::new();
//! timer.start("elaborate");
//! timer.start("flatten"); // nested under elaborate
//! timer.finish();
//! timer.finish();
//!
//! let mut c = SimCounters::default();
//! c.steps += 42;
//! assert!(hwdbg_obs::render_human(&timer, &c).contains("flatten"));
//! assert!(hwdbg_obs::counters_json(&c).contains("\"steps\": 42"));
//! ```

#![warn(missing_docs)]

pub mod alloc_counter;

pub use alloc_counter::{thread_allocs, CountingAlloc};

use std::time::{Duration, Instant};

/// One completed (or still-open) pipeline stage span.
#[derive(Debug, Clone)]
pub struct StageSpan {
    /// Stage name, e.g. `parse` or `simulate`.
    pub name: String,
    /// Nesting depth (0 = top-level stage).
    pub depth: usize,
    /// Wall-clock duration. Zero while the span is still open.
    pub elapsed: Duration,
}

/// A nestable wall-clock timer over pipeline stages.
///
/// Spans are recorded in start order; [`StageTimer::start`] opens a span
/// nested under the innermost open one, [`StageTimer::finish`] closes the
/// innermost open span. Unbalanced `finish` calls are ignored rather than
/// panicking — a profiler must never take down the run it is observing.
#[derive(Debug, Clone, Default)]
pub struct StageTimer {
    spans: Vec<StageSpan>,
    /// Open spans: index into `spans` and the instant the span started.
    stack: Vec<(usize, Instant)>,
}

impl StageTimer {
    /// Creates an empty timer.
    pub fn new() -> Self {
        StageTimer::default()
    }

    /// Opens a span named `name`, nested under the innermost open span.
    pub fn start(&mut self, name: &str) {
        let depth = self.stack.len();
        self.spans.push(StageSpan {
            name: name.to_owned(),
            depth,
            elapsed: Duration::ZERO,
        });
        self.stack.push((self.spans.len() - 1, Instant::now()));
    }

    /// Closes the innermost open span. A `finish` with no open span is a
    /// no-op.
    pub fn finish(&mut self) {
        if let Some((idx, started)) = self.stack.pop() {
            if let Some(span) = self.spans.get_mut(idx) {
                span.elapsed = started.elapsed();
            }
        }
    }

    /// Times one closure as a span: `start`, run, `finish`.
    pub fn time<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        self.start(name);
        let r = f();
        self.finish();
        r
    }

    /// Recorded spans in start order.
    pub fn spans(&self) -> &[StageSpan] {
        &self.spans
    }

    /// Sum of the top-level (depth 0) span durations.
    pub fn total(&self) -> Duration {
        self.spans
            .iter()
            .filter(|s| s.depth == 0)
            .map(|s| s.elapsed)
            .sum()
    }
}

/// The hot-path counter registry: one plain `u64` per event class.
///
/// The simulator holds these behind an `Option`, so the disabled path pays
/// exactly one branch per instrumentation site (the same pattern its
/// `forces` map uses); enabled, every bump is a single integer add.
/// The first block is filled by the simulator hot path, the second by the
/// debugging tools' dynamic halves (see each tool's `observe`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimCounters {
    // --- simulator hot path ---
    /// Clock edges stepped ([`step`]: settle, edge, commit, settle).
    ///
    /// [`step`]: https://docs.rs/hwdbg-sim
    pub steps: u64,
    /// Combinational settles executed (two per step, plus explicit calls).
    pub settles: u64,
    /// Settles that ran the *entire* unit set: full-pass iterations, plus
    /// event-driven settles seeded from scratch (initial state, restores).
    pub full_settles: u64,
    /// Individual settle-unit executions (comb drivers + blackbox evals).
    pub units_executed: u64,
    /// Unit indices offered to the event-driven work-list (pre-dedup).
    pub worklist_pushes: u64,
    /// Fused-region executions under the levelized backend (each runs all
    /// of its member units straight-line, no worklist).
    pub regions_executed: u64,
    /// Regions left untouched by a levelized settle because none of their
    /// external inputs changed (per settle: total regions − executed).
    pub region_skips: u64,
    /// Clocked-process executions at posedges.
    pub proc_runs: u64,
    /// Nonblocking writes committed after clock edges.
    pub nb_commits: u64,
    /// Writes swallowed because the target signal was force-pinned.
    pub force_hits: u64,
    /// Fault-plan transitions applied (forces, releases, bit flips).
    pub fault_events: u64,
    /// Pokes that actually changed a signal's stored value.
    pub pokes: u64,
    // --- tool dynamic halves ---
    /// Trace-buffer entries held at observation time (occupancy).
    pub trace_entries: u64,
    /// Trace-buffer entries lost to ring wrap-around.
    pub trace_wraps: u64,
    /// FSM state transitions reconstructed by the FSM Monitor.
    pub fsm_transitions: u64,
    /// Dependency-chain updates reconstructed by the Dependency Monitor.
    pub dep_updates: u64,
    /// Event occurrences totalled by the Statistics Monitor.
    pub stat_events: u64,
    /// LossCheck shadow-state updates observed (LOSSCHECK records).
    pub shadow_updates: u64,
    // --- static analysis (lint) ---
    /// Lint passes executed over an elaborated design.
    pub lint_passes: u64,
    /// Lint findings emitted (all severities, before allow-filtering).
    pub lint_findings: u64,
    // --- campaign fault tolerance ---
    /// Jobs whose final attempt panicked (isolated to a `crashed` record).
    pub jobs_crashed: u64,
    /// Jobs whose final attempt blew its wall-clock deadline.
    pub jobs_timed_out: u64,
    /// Extra attempts consumed by bounded retries of transient failures.
    pub jobs_retried: u64,
    /// Batched fsyncs performed by the campaign journal writer.
    pub journal_flushes: u64,
}

impl SimCounters {
    /// Every counter as `(name, value)` pairs, in declaration order. The
    /// single source of truth for both renderers.
    pub fn pairs(&self) -> [(&'static str, u64); 24] {
        [
            ("steps", self.steps),
            ("settles", self.settles),
            ("full_settles", self.full_settles),
            ("units_executed", self.units_executed),
            ("worklist_pushes", self.worklist_pushes),
            ("regions_executed", self.regions_executed),
            ("region_skips", self.region_skips),
            ("proc_runs", self.proc_runs),
            ("nb_commits", self.nb_commits),
            ("force_hits", self.force_hits),
            ("fault_events", self.fault_events),
            ("pokes", self.pokes),
            ("trace_entries", self.trace_entries),
            ("trace_wraps", self.trace_wraps),
            ("fsm_transitions", self.fsm_transitions),
            ("dep_updates", self.dep_updates),
            ("stat_events", self.stat_events),
            ("shadow_updates", self.shadow_updates),
            ("lint_passes", self.lint_passes),
            ("lint_findings", self.lint_findings),
            ("jobs_crashed", self.jobs_crashed),
            ("jobs_timed_out", self.jobs_timed_out),
            ("jobs_retried", self.jobs_retried),
            ("journal_flushes", self.journal_flushes),
        ]
    }

    /// Sets a counter by its [`pairs`](Self::pairs) name; returns false
    /// for unknown names. This is the inverse of the JSON renderer, used
    /// by the campaign journal loader to round-trip records exactly.
    pub fn set(&mut self, name: &str, value: u64) -> bool {
        let slot = match name {
            "steps" => &mut self.steps,
            "settles" => &mut self.settles,
            "full_settles" => &mut self.full_settles,
            "units_executed" => &mut self.units_executed,
            "worklist_pushes" => &mut self.worklist_pushes,
            "regions_executed" => &mut self.regions_executed,
            "region_skips" => &mut self.region_skips,
            "proc_runs" => &mut self.proc_runs,
            "nb_commits" => &mut self.nb_commits,
            "force_hits" => &mut self.force_hits,
            "fault_events" => &mut self.fault_events,
            "pokes" => &mut self.pokes,
            "trace_entries" => &mut self.trace_entries,
            "trace_wraps" => &mut self.trace_wraps,
            "fsm_transitions" => &mut self.fsm_transitions,
            "dep_updates" => &mut self.dep_updates,
            "stat_events" => &mut self.stat_events,
            "shadow_updates" => &mut self.shadow_updates,
            "lint_passes" => &mut self.lint_passes,
            "lint_findings" => &mut self.lint_findings,
            "jobs_crashed" => &mut self.jobs_crashed,
            "jobs_timed_out" => &mut self.jobs_timed_out,
            "jobs_retried" => &mut self.jobs_retried,
            "journal_flushes" => &mut self.journal_flushes,
            _ => return false,
        };
        *slot = value;
        true
    }

    /// Adds every counter of `other` into `self` (merging per-run
    /// telemetry from several simulators into one report).
    pub fn merge(&mut self, other: &SimCounters) {
        let SimCounters {
            steps,
            settles,
            full_settles,
            units_executed,
            worklist_pushes,
            regions_executed,
            region_skips,
            proc_runs,
            nb_commits,
            force_hits,
            fault_events,
            pokes,
            trace_entries,
            trace_wraps,
            fsm_transitions,
            dep_updates,
            stat_events,
            shadow_updates,
            lint_passes,
            lint_findings,
            jobs_crashed,
            jobs_timed_out,
            jobs_retried,
            journal_flushes,
        } = other;
        self.steps += steps;
        self.settles += settles;
        self.full_settles += full_settles;
        self.units_executed += units_executed;
        self.worklist_pushes += worklist_pushes;
        self.regions_executed += regions_executed;
        self.region_skips += region_skips;
        self.proc_runs += proc_runs;
        self.nb_commits += nb_commits;
        self.force_hits += force_hits;
        self.fault_events += fault_events;
        self.pokes += pokes;
        self.trace_entries += trace_entries;
        self.trace_wraps += trace_wraps;
        self.fsm_transitions += fsm_transitions;
        self.dep_updates += dep_updates;
        self.stat_events += stat_events;
        self.shadow_updates += shadow_updates;
        self.lint_passes += lint_passes;
        self.lint_findings += lint_findings;
        self.jobs_crashed += jobs_crashed;
        self.jobs_timed_out += jobs_timed_out;
        self.jobs_retried += jobs_retried;
        self.journal_flushes += journal_flushes;
    }

    /// Sums many counter sets into one — the campaign aggregation path,
    /// where every job reports its own [`SimCounters`] and the fleet
    /// report carries the total.
    pub fn merge_all<'a>(sets: impl IntoIterator<Item = &'a SimCounters>) -> SimCounters {
        let mut out = SimCounters::default();
        for s in sets {
            out.merge(s);
        }
        out
    }
}

/// Milliseconds with enough precision for sub-millisecond stages.
fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Minimal JSON string escaping for hand-rolled JSON renderers (this
/// crate's and those of downstream reporters like the CLI and perfsuite).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the stage spans as a JSON array:
/// `[{"stage": "parse", "depth": 0, "ms": 0.12}, …]`.
pub fn stages_json(timer: &StageTimer) -> String {
    let mut out = String::from("[");
    for (i, s) in timer.spans().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"stage\": \"{}\", \"depth\": {}, \"ms\": {:.4}}}",
            json_escape(&s.name),
            s.depth,
            ms(s.elapsed)
        ));
    }
    out.push(']');
    out
}

/// Renders the counters as a JSON object: `{"steps": 42, …}`.
/// Every counter appears, including zeros, so the schema is stable.
pub fn counters_json(c: &SimCounters) -> String {
    let mut out = String::from("{");
    for (i, (name, v)) in c.pairs().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{name}\": {v}"));
    }
    out.push('}');
    out
}

/// Renders a rustc-style human report: an indented stage-timing block
/// (`time: 12.345ms  stage`) followed by a dot-ruled counter table.
pub fn render_human(timer: &StageTimer, c: &SimCounters) -> String {
    let mut out = String::new();
    if !timer.spans().is_empty() {
        out.push_str("stage timings:\n");
        for s in timer.spans() {
            out.push_str(&format!(
                "  time: {:>10.3}ms  {}{}\n",
                ms(s.elapsed),
                "  ".repeat(s.depth),
                s.name
            ));
        }
        out.push_str(&format!(
            "  time: {:>10.3}ms  total\n",
            ms(timer.total())
        ));
    }
    out.push_str("hot-path counters:\n");
    let width = c
        .pairs()
        .iter()
        .map(|(n, _)| n.len())
        .max()
        .unwrap_or(0);
    for (name, v) in c.pairs() {
        out.push_str(&format!(
            "  {name} {} {v}\n",
            ".".repeat(width + 3 - name.len())
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_close_in_order() {
        let mut t = StageTimer::new();
        t.start("elaborate");
        t.start("flatten");
        t.finish();
        t.start("resolve");
        t.finish();
        t.finish();
        let spans = t.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!((spans[0].name.as_str(), spans[0].depth), ("elaborate", 0));
        assert_eq!((spans[1].name.as_str(), spans[1].depth), ("flatten", 1));
        assert_eq!((spans[2].name.as_str(), spans[2].depth), ("resolve", 1));
        // The parent span covers its children.
        assert!(spans[0].elapsed >= spans[1].elapsed + spans[2].elapsed);
        assert_eq!(t.total(), spans[0].elapsed);
    }

    #[test]
    fn unbalanced_finish_is_ignored() {
        let mut t = StageTimer::new();
        t.finish();
        t.start("a");
        t.finish();
        t.finish();
        assert_eq!(t.spans().len(), 1);
    }

    #[test]
    fn time_closure_returns_value() {
        let mut t = StageTimer::new();
        let v = t.time("work", || 7u32);
        assert_eq!(v, 7);
        assert_eq!(t.spans()[0].name, "work");
    }

    #[test]
    fn counters_merge_and_render() {
        let mut a = SimCounters {
            steps: 2,
            trace_wraps: 1,
            ..SimCounters::default()
        };
        let b = SimCounters {
            steps: 3,
            shadow_updates: 5,
            ..SimCounters::default()
        };
        a.merge(&b);
        assert_eq!(a.steps, 5);
        assert_eq!(a.shadow_updates, 5);
        assert_eq!(a.trace_wraps, 1);
        let json = counters_json(&a);
        assert!(json.contains("\"steps\": 5"));
        assert!(json.contains("\"shadow_updates\": 5"));
        // Stable schema: all 22 counters present even when zero.
        assert_eq!(json.matches(':').count(), 24);
    }

    #[test]
    fn set_by_name_round_trips_every_pair() {
        let mut c = SimCounters::default();
        for (i, (name, _)) in SimCounters::default().pairs().iter().enumerate() {
            assert!(c.set(name, i as u64 + 1), "unknown counter {name}");
        }
        for (i, (name, v)) in c.pairs().iter().enumerate() {
            assert_eq!(*v, i as u64 + 1, "{name} did not round-trip");
        }
        assert!(!c.set("no_such_counter", 1));
    }

    #[test]
    fn stages_json_shape() {
        let mut t = StageTimer::new();
        t.start("parse");
        t.finish();
        let json = stages_json(&t);
        assert!(json.starts_with('['));
        assert!(json.contains("\"stage\": \"parse\""));
        assert!(json.contains("\"depth\": 0"));
    }

    #[test]
    fn human_report_lists_every_counter() {
        let t = StageTimer::new();
        let c = SimCounters::default();
        let text = render_human(&t, &c);
        for (name, _) in c.pairs() {
            assert!(text.contains(name), "missing {name}");
        }
    }
}
