//! A counting global allocator for zero-allocation regression tests.
//!
//! The simulator's hot path is specified to make *zero* heap allocations
//! per cycle in steady state (ROADMAP: the compiled value plane). That
//! claim is only worth having if a test can falsify it, so this module
//! provides a delegating [`GlobalAlloc`] that counts allocations
//! per-thread. A consuming test crate installs it:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: hwdbg_obs::CountingAlloc = hwdbg_obs::CountingAlloc;
//! ```
//!
//! then brackets the region of interest with [`thread_allocs`] snapshots.
//! Counts are per-thread so parallel test runners don't bleed into each
//! other's measurements.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// A [`GlobalAlloc`] that delegates to [`System`] and counts every
/// allocation (including reallocations) on the calling thread.
///
/// Deallocations are not counted: the regression tests care about
/// allocation pressure, and a free with no matching alloc in the window
/// is not a defect.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingAlloc;

/// Heap allocations made by the current thread since it started (only
/// meaningful when [`CountingAlloc`] is installed as the global
/// allocator; always 0 otherwise).
pub fn thread_allocs() -> u64 {
    ALLOCS.try_with(Cell::get).unwrap_or(0)
}

#[inline]
fn bump() {
    // `try_with`: allocation can happen during thread teardown after the
    // thread-local has been dropped; those events are uncountable but must
    // not panic.
    let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The allocator is not installed in this crate's own tests (that would
    // tax every other test); we only check the counter plumbing.
    #[test]
    fn counter_starts_at_zero_without_installation() {
        assert_eq!(thread_allocs(), 0);
    }

    #[test]
    fn bump_increments_thread_counter() {
        let before = thread_allocs();
        bump();
        bump();
        assert_eq!(thread_allocs(), before + 2);
    }
}
