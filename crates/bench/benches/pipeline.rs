//! Benchmarks over the full pipeline: parsing, elaboration, simulation,
//! analysis, and instrumentation — plus the ablations called out in
//! DESIGN.md §6 (trigger encoding sweep, comb-scheduling cost).
//!
//! Uses the registry-free harness in `hwdbg_bench::harness` (see there for
//! why criterion is not an option in this build environment). Run with
//! `cargo bench -p hwdbg-bench`; for the machine-readable simulation suite
//! use the `perfsuite` binary instead.

use hwdbg_bench::harness::bench;
use hwdbg_dataflow::{elaborate, PropGraph};
use hwdbg_ip::{StdIpLib, StdModels};
use hwdbg_sim::{SimConfig, Simulator};
use hwdbg_testbed::{buggy_design, metadata, BugId};
use hwdbg_tools::losscheck::LossCheckConfig;
use hwdbg_tools::signalcat::SignalCatConfig;
use hwdbg_tools::{FsmMonitor, LossCheck, SignalCat};

/// Elaborated design for an n-deep chain of `+1` comb stages.
fn comb_chain(n: usize) -> hwdbg_dataflow::Design {
    let mut src = String::from("module m(input clk, input [31:0] d, output [31:0] q);\n");
    for i in 0..n {
        let prev = if i == 0 { "d".into() } else { format!("w{}", i - 1) };
        src.push_str(&format!("wire [31:0] w{i}; assign w{i} = {prev} + 32'd1;\n"));
    }
    src.push_str(&format!("assign q = w{};\nendmodule", n - 1));
    elaborate(
        &hwdbg_rtl::parse(&src).unwrap(),
        "m",
        &hwdbg_dataflow::NoBlackboxes,
    )
    .unwrap()
}

fn bench_frontend() {
    let src = metadata(BugId::D2).source;
    bench("parse_grayscale", || hwdbg_rtl::parse(std::hint::black_box(src)).unwrap());
    let file = hwdbg_rtl::parse(src).unwrap();
    let lib = StdIpLib::new();
    bench("elaborate_grayscale", || {
        elaborate(std::hint::black_box(&file), "grayscale", &lib).unwrap()
    });
    bench("print_grayscale", || hwdbg_rtl::print(std::hint::black_box(&file)));
}

fn bench_simulation() {
    let design = buggy_design(BugId::D2).unwrap();
    bench("sim_grayscale_100_cycles", || {
        let mut sim = Simulator::new(design.clone(), &StdModels, SimConfig::default()).unwrap();
        sim.poke_u64("pix_in_valid", 1).unwrap();
        for i in 0..100u64 {
            sim.poke_u64("pix_in", i).unwrap();
            sim.step("clk").unwrap();
        }
        sim.cycle("clk")
    });

    // Ablation: cost of the settle fixpoint as comb chain length grows.
    for n in [4usize, 16, 64, 256] {
        let design = comb_chain(n);
        bench(&format!("sim_comb_chain/{n}"), || {
            let mut sim =
                Simulator::new(design.clone(), &hwdbg_sim::NoModels, SimConfig::default())
                    .unwrap();
            sim.poke_u64("d", 7).unwrap();
            sim.settle().unwrap();
            sim.peek("q").unwrap().to_u64()
        });
    }
}

fn bench_analyses() {
    let lib = StdIpLib::new();
    let design = buggy_design(BugId::D2).unwrap();
    bench("propgraph_grayscale", || {
        PropGraph::build(std::hint::black_box(&design), &lib).unwrap()
    });
    bench("fsm_detect_grayscale", || {
        FsmMonitor::detect(std::hint::black_box(&design))
    });
    let graph = PropGraph::build(&design, &lib).unwrap();
    bench("back_slice_pix_out", || {
        graph.back_slice("pix_out", 4, &[hwdbg_dataflow::DepKind::Data])
    });
    bench("resource_estimate_grayscale", || {
        hwdbg_synth::estimate(std::hint::black_box(&design))
    });
    bench("timing_estimate_grayscale", || {
        hwdbg_synth::estimate_timing(std::hint::black_box(&design))
    });
}

fn bench_instrumentation() {
    let lib = StdIpLib::new();
    let design = buggy_design(BugId::D2).unwrap();
    let graph = PropGraph::build(&design, &lib).unwrap();
    let cfg = LossCheckConfig {
        source: "pix_in".into(),
        sink: "pix_out".into(),
        source_valid: "pix_in_valid".into(),
    };
    bench("losscheck_instrument_grayscale", || {
        LossCheck::instrument(&design, &graph, &cfg).unwrap()
    });

    // Ablation: SignalCat trigger-encoding cost vs. number of $display
    // statements (the OR-reduced 1-bit-per-statement encoding of §4.1).
    for stmts in [2usize, 8, 32] {
        let mut src = String::from("module m(input clk, input [7:0] d);\nreg [7:0] acc;\n");
        src.push_str("always @(posedge clk) begin\nacc <= acc + d;\n");
        for i in 0..stmts {
            src.push_str(&format!("if (acc == 8'd{i}) $display(\"hit {i} %0d\", d);\n"));
        }
        src.push_str("end\nendmodule");
        let d = elaborate(&hwdbg_rtl::parse(&src).unwrap(), "m", &lib).unwrap();
        bench(&format!("signalcat_trigger/{stmts}"), || {
            SignalCat::instrument(&d, &SignalCatConfig::default()).unwrap()
        });
    }
}

fn main() {
    bench_frontend();
    bench_simulation();
    bench_analyses();
    bench_instrumentation();
}
