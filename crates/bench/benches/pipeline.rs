//! Criterion benchmarks over the full pipeline: parsing, elaboration,
//! simulation, analysis, and instrumentation — plus the ablations called
//! out in DESIGN.md §6 (trigger encoding sweep, comb-scheduling cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hwdbg_dataflow::{elaborate, PropGraph};
use hwdbg_ip::{StdIpLib, StdModels};
use hwdbg_sim::{SimConfig, Simulator};
use hwdbg_testbed::{buggy_design, metadata, BugId};
use hwdbg_tools::losscheck::LossCheckConfig;
use hwdbg_tools::signalcat::SignalCatConfig;
use hwdbg_tools::{FsmMonitor, LossCheck, SignalCat};

fn bench_frontend(c: &mut Criterion) {
    let src = metadata(BugId::D2).source;
    c.bench_function("parse_grayscale", |b| {
        b.iter(|| hwdbg_rtl::parse(std::hint::black_box(src)).unwrap())
    });
    let file = hwdbg_rtl::parse(src).unwrap();
    let lib = StdIpLib::new();
    c.bench_function("elaborate_grayscale", |b| {
        b.iter(|| elaborate(std::hint::black_box(&file), "grayscale", &lib).unwrap())
    });
    c.bench_function("print_grayscale", |b| {
        b.iter(|| hwdbg_rtl::print(std::hint::black_box(&file)))
    });
}

fn bench_simulation(c: &mut Criterion) {
    let design = buggy_design(BugId::D2).unwrap();
    c.bench_function("sim_grayscale_100_cycles", |b| {
        b.iter(|| {
            let mut sim =
                Simulator::new(design.clone(), &StdModels, SimConfig::default()).unwrap();
            sim.poke_u64("pix_in_valid", 1).unwrap();
            for i in 0..100u64 {
                sim.poke_u64("pix_in", i).unwrap();
                sim.step("clk").unwrap();
            }
            sim.cycle("clk")
        })
    });

    // Ablation: cost of the settle fixpoint as comb chain length grows.
    let mut group = c.benchmark_group("sim_comb_chain");
    for n in [4usize, 16, 64] {
        let mut src = String::from("module m(input clk, input [31:0] d, output [31:0] q);\n");
        for i in 0..n {
            let prev = if i == 0 { "d".into() } else { format!("w{}", i - 1) };
            src.push_str(&format!("wire [31:0] w{i}; assign w{i} = {prev} + 32'd1;\n"));
        }
        src.push_str(&format!("assign q = w{};\nendmodule", n - 1));
        let design = elaborate(
            &hwdbg_rtl::parse(&src).unwrap(),
            "m",
            &hwdbg_dataflow::NoBlackboxes,
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &design, |b, d| {
            b.iter(|| {
                let mut sim =
                    Simulator::new(d.clone(), &hwdbg_sim::NoModels, SimConfig::default())
                        .unwrap();
                sim.poke_u64("d", 7).unwrap();
                sim.settle().unwrap();
                sim.peek("q").unwrap().to_u64()
            })
        });
    }
    group.finish();
}

fn bench_analyses(c: &mut Criterion) {
    let lib = StdIpLib::new();
    let design = buggy_design(BugId::D2).unwrap();
    c.bench_function("propgraph_grayscale", |b| {
        b.iter(|| PropGraph::build(std::hint::black_box(&design), &lib).unwrap())
    });
    c.bench_function("fsm_detect_grayscale", |b| {
        b.iter(|| FsmMonitor::detect(std::hint::black_box(&design)))
    });
    let graph = PropGraph::build(&design, &lib).unwrap();
    c.bench_function("back_slice_pix_out", |b| {
        b.iter(|| graph.back_slice("pix_out", 4, &[hwdbg_dataflow::DepKind::Data]))
    });
    c.bench_function("resource_estimate_grayscale", |b| {
        b.iter(|| hwdbg_synth::estimate(std::hint::black_box(&design)))
    });
    c.bench_function("timing_estimate_grayscale", |b| {
        b.iter(|| hwdbg_synth::estimate_timing(std::hint::black_box(&design)))
    });
}

fn bench_instrumentation(c: &mut Criterion) {
    let lib = StdIpLib::new();
    let design = buggy_design(BugId::D2).unwrap();
    let graph = PropGraph::build(&design, &lib).unwrap();
    c.bench_function("losscheck_instrument_grayscale", |b| {
        let cfg = LossCheckConfig {
            source: "pix_in".into(),
            sink: "pix_out".into(),
            source_valid: "pix_in_valid".into(),
        };
        b.iter(|| LossCheck::instrument(&design, &graph, &cfg).unwrap())
    });

    // Ablation: SignalCat trigger-encoding cost vs. number of $display
    // statements (the OR-reduced 1-bit-per-statement encoding of §4.1).
    let mut group = c.benchmark_group("signalcat_trigger");
    for stmts in [2usize, 8, 32] {
        let mut src = String::from("module m(input clk, input [7:0] d);\nreg [7:0] acc;\n");
        src.push_str("always @(posedge clk) begin\nacc <= acc + d;\n");
        for i in 0..stmts {
            src.push_str(&format!(
                "if (acc == 8'd{i}) $display(\"hit {i} %0d\", d);\n"
            ));
        }
        src.push_str("end\nendmodule");
        let d = elaborate(&hwdbg_rtl::parse(&src).unwrap(), "m", &lib).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(stmts), &d, |b, d| {
            b.iter(|| SignalCat::instrument(d, &SignalCatConfig::default()).unwrap())
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(800))
        .warm_up_time(std::time::Duration::from_millis(200))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_frontend, bench_simulation, bench_analyses, bench_instrumentation
}
criterion_main!(benches);
