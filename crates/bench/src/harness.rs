//! A dependency-free micro-benchmark harness.
//!
//! The container this repo builds in has no network access to the crate
//! registry, so the benches cannot use criterion; this module provides the
//! small subset we need: warm-up, a fixed measurement window, and a
//! per-iteration mean. Results are printed in a criterion-like one-line
//! format and returned for machine output (`perfsuite` writes JSON).

use std::time::{Duration, Instant};

/// One benchmark measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name, e.g. `sim_comb_chain/256`.
    pub name: String,
    /// Iterations executed inside the measurement window.
    pub iters: u64,
    /// Total wall time of the measurement window.
    pub total: Duration,
}

impl Measurement {
    /// Mean nanoseconds per iteration.
    pub fn ns_per_iter(&self) -> f64 {
        self.total.as_nanos() as f64 / self.iters.max(1) as f64
    }

    /// Mean iterations per second.
    pub fn iters_per_sec(&self) -> f64 {
        1e9 / self.ns_per_iter()
    }

    /// Mean milliseconds per iteration.
    pub fn ms_per_iter(&self) -> f64 {
        self.ns_per_iter() / 1e6
    }
}

/// Renders a duration the way a human scans a bench table.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Runs `f` repeatedly: a short warm-up, then a fixed measurement window,
/// and returns the mean. The closure's result is passed through
/// [`std::hint::black_box`] so the optimizer cannot delete the work.
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> Measurement {
    const WARMUP: Duration = Duration::from_millis(150);
    const WINDOW: Duration = Duration::from_millis(600);

    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < WARMUP {
        std::hint::black_box(f());
        warm_iters += 1;
    }

    // Size batches from the warm-up rate so we check the clock rarely.
    let per_iter = warm_start.elapsed().as_nanos() as u64 / warm_iters.max(1);
    let batch = (10_000_000 / per_iter.max(1)).clamp(1, 10_000);

    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < WINDOW {
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        iters += batch;
    }
    let m = Measurement {
        name: name.to_owned(),
        iters,
        total: start.elapsed(),
    };
    println!(
        "{:<40} {:>12}/iter   ({} iters)",
        m.name,
        fmt_ns(m.ns_per_iter()),
        m.iters
    );
    m
}

/// Result of a paired overhead measurement.
///
/// `pct` is the number to report: the median paired slowdown, clamped to
/// ≥ 0 because a real overhead cannot be negative — a negative median
/// means measurement noise exceeded the effect. `raw_pct` keeps the
/// unclamped median for diagnostics. `ci_lo_pct..ci_hi_pct` is an
/// approximate 95% confidence interval for the median (sign-test order
/// statistics over the quad ratios — distribution-free, so timing
/// outliers cannot widen it arbitrarily), and `noisy` records that the
/// interval contains zero: the measurement cannot distinguish the
/// overhead from nothing.
#[derive(Debug, Clone, Copy)]
pub struct Overhead {
    /// Median paired slowdown in percent, clamped to `max(raw_pct, 0)`.
    pub pct: f64,
    /// Unclamped median, possibly negative under noise.
    pub raw_pct: f64,
    /// Lower bound of the ~95% CI for the median slowdown, percent.
    pub ci_lo_pct: f64,
    /// Upper bound of the ~95% CI for the median slowdown, percent.
    pub ci_hi_pct: f64,
    /// True when the CI straddles zero — the effect is not resolved.
    pub noisy: bool,
    /// ABBA quads actually measured (adaptive, odd, 9..=25).
    pub quads: usize,
    /// Measurement window actually used per closure run, in ms.
    pub window_ms: f64,
}

/// Measures the per-iteration slowdown of `with` relative to `base`,
/// robustly against machine drift (frequency scaling, noisy neighbors).
///
/// Each repetition runs the closures in an ABBA quad — base, with, with,
/// base — so linear drift within the quad cancels to first order, and the
/// per-quad ratio is `(b₁+b₂)/(a₁+a₂)`. The reported overhead is the
/// median over the quads, with a sign-test 95% CI from the sorted
/// ratios. A separately-benched mean comparison would fold seconds of
/// drift into the delta; even simple AB pairing leaves a first-order
/// drift term, which is how earlier runs recorded a physically
/// impossible −7% overhead.
///
/// The window is adaptive: the warm-up pass doubles as calibration, and
/// the window is stretched (up to a cap) so that even a slow workload
/// completes enough iterations per window for the per-window mean to be
/// stable. A fixed short window gave slow workloads 1–2 iterations per
/// window, and their quad ratios were pure scheduling noise — which is
/// why `noisy` used to stick on for exactly the workloads where the
/// overhead mattered most. The quad count shrinks (never below 9) to
/// keep the total measurement inside a fixed time budget.
pub fn paired_overhead_pct(base: &mut dyn FnMut(), with: &mut dyn FnMut()) -> Overhead {
    const MIN_WINDOW: Duration = Duration::from_millis(40);
    const MAX_WINDOW: Duration = Duration::from_millis(320);
    const TARGET_WINDOW_ITERS: f64 = 12.0;
    const BUDGET: Duration = Duration::from_secs(10);
    fn window(f: &mut dyn FnMut(), dur: Duration) -> f64 {
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < dur {
            f();
            iters += 1;
        }
        start.elapsed().as_nanos() as f64 / iters.max(1) as f64
    }

    // Warm-up doubles as calibration: how slow is one iteration?
    let a_ns = window(base, MIN_WINDOW);
    let b_ns = window(with, MIN_WINDOW);
    let per_iter_ns = a_ns.max(b_ns);
    let want = Duration::from_nanos((per_iter_ns * TARGET_WINDOW_ITERS).min(1e12) as u64);
    let win = want.clamp(MIN_WINDOW, MAX_WINDOW);
    let by_budget = (BUDGET.as_nanos() / (4 * win.as_nanos()).max(1)) as usize;
    let quads = by_budget.clamp(9, 25) | 1; // odd, so the median is one ratio

    let mut ratios = Vec::with_capacity(quads);
    for _ in 0..quads {
        let a1 = window(base, win);
        let b1 = window(with, win);
        let b2 = window(with, win);
        let a2 = window(base, win);
        ratios.push((b1 + b2) / (a1 + a2));
    }
    ratios.sort_by(f64::total_cmp);
    let raw_pct = (ratios[quads / 2] - 1.0) * 100.0;
    // Sign-test order-statistic CI for the median: under H0 each ratio
    // falls on either side of the true median with p=1/2, so the ranks
    // covering ~95% are median ± 1.96·√n/2.
    let n = quads as f64;
    let lo_rank = (((n - 1.0) / 2.0) - 0.98 * n.sqrt()).floor().max(0.0) as usize;
    let hi_rank = (quads - 1).saturating_sub(lo_rank);
    let ci_lo_pct = (ratios[lo_rank] - 1.0) * 100.0;
    let ci_hi_pct = (ratios[hi_rank] - 1.0) * 100.0;
    let noisy = ci_lo_pct <= 0.0 && ci_hi_pct >= 0.0;
    if noisy {
        eprintln!(
            "warning: paired overhead {raw_pct:.2}% has a 95% CI \
             [{ci_lo_pct:.2}%, {ci_hi_pct:.2}%] straddling zero; \
             the effect is below this machine's noise floor"
        );
    }
    Overhead {
        pct: raw_pct.max(0.0),
        raw_pct,
        ci_lo_pct,
        ci_hi_pct,
        noisy,
        quads,
        window_ms: win.as_secs_f64() * 1e3,
    }
}

/// Minimal JSON string escaping for the hand-rolled output files.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_something() {
        let m = bench("noop_sum", || (0..100u64).sum::<u64>());
        assert!(m.iters > 0);
        assert!(m.ns_per_iter() > 0.0);
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn paired_overhead_of_identical_work_is_small_and_never_negative() {
        let mut a = || {
            std::hint::black_box((0..500u64).sum::<u64>());
        };
        let mut b = || {
            std::hint::black_box((0..500u64).sum::<u64>());
        };
        let oh = paired_overhead_pct(&mut a, &mut b);
        assert!(oh.pct >= 0.0, "reported overhead must be clamped: {oh:?}");
        assert!(
            oh.raw_pct.abs() < 50.0,
            "identical closures diverged: {oh:?}"
        );
        assert!(
            oh.ci_lo_pct <= oh.raw_pct && oh.raw_pct <= oh.ci_hi_pct,
            "median must sit inside its own CI: {oh:?}"
        );
    }

    /// A serially-dependent LCG chain the optimizer cannot collapse. The
    /// obvious `(0..n).sum()` fixture is useless in release builds —
    /// LLVM's scalar evolution folds it to the closed form, both sides
    /// become O(1), and the "20× slower" closure measures 0% overhead.
    fn chain(n: u64) -> u64 {
        let mut acc = 0u64;
        for i in 0..std::hint::black_box(n) {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        acc
    }

    #[test]
    fn real_overhead_is_detected() {
        let mut a = || {
            std::hint::black_box(chain(200));
        };
        let mut b = || {
            std::hint::black_box(chain(4000));
        };
        let oh = paired_overhead_pct(&mut a, &mut b);
        assert!(!oh.noisy, "a 20x slowdown must not read as noise: {oh:?}");
        assert!(oh.pct > 100.0, "expected a large overhead: {oh:?}");
        assert!(
            oh.ci_lo_pct > 0.0,
            "the CI must exclude zero for a real effect: {oh:?}"
        );
    }

    #[test]
    fn slow_workloads_get_longer_windows() {
        // ~4 ms per iteration: the old fixed 40 ms window fit only a
        // handful of iterations and the quad ratios were scheduling
        // noise — `noisy` stuck on for exactly these workloads. The
        // adaptive window must stretch instead.
        let mut a = || std::thread::sleep(Duration::from_millis(4));
        let mut b = || std::thread::sleep(Duration::from_millis(4));
        let oh = paired_overhead_pct(&mut a, &mut b);
        assert!(
            oh.window_ms > 40.0,
            "window must stretch for slow iterations: {oh:?}"
        );
        assert!(oh.quads >= 9 && oh.quads % 2 == 1, "quads odd and >= 9: {oh:?}");
        // Sleeps are identical, so whatever the verdict, the CI has to
        // be tight around zero rather than tens of percent wide.
        assert!(
            oh.ci_hi_pct - oh.ci_lo_pct < 20.0,
            "CI must be tight for identical sleeps: {oh:?}"
        );
    }
}
