//! A dependency-free micro-benchmark harness.
//!
//! The container this repo builds in has no network access to the crate
//! registry, so the benches cannot use criterion; this module provides the
//! small subset we need: warm-up, a fixed measurement window, and a
//! per-iteration mean. Results are printed in a criterion-like one-line
//! format and returned for machine output (`perfsuite` writes JSON).

use std::time::{Duration, Instant};

/// One benchmark measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name, e.g. `sim_comb_chain/256`.
    pub name: String,
    /// Iterations executed inside the measurement window.
    pub iters: u64,
    /// Total wall time of the measurement window.
    pub total: Duration,
}

impl Measurement {
    /// Mean nanoseconds per iteration.
    pub fn ns_per_iter(&self) -> f64 {
        self.total.as_nanos() as f64 / self.iters.max(1) as f64
    }

    /// Mean iterations per second.
    pub fn iters_per_sec(&self) -> f64 {
        1e9 / self.ns_per_iter()
    }

    /// Mean milliseconds per iteration.
    pub fn ms_per_iter(&self) -> f64 {
        self.ns_per_iter() / 1e6
    }
}

/// Renders a duration the way a human scans a bench table.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Runs `f` repeatedly: a short warm-up, then a fixed measurement window,
/// and returns the mean. The closure's result is passed through
/// [`std::hint::black_box`] so the optimizer cannot delete the work.
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> Measurement {
    const WARMUP: Duration = Duration::from_millis(150);
    const WINDOW: Duration = Duration::from_millis(600);

    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < WARMUP {
        std::hint::black_box(f());
        warm_iters += 1;
    }

    // Size batches from the warm-up rate so we check the clock rarely.
    let per_iter = warm_start.elapsed().as_nanos() as u64 / warm_iters.max(1);
    let batch = (10_000_000 / per_iter.max(1)).clamp(1, 10_000);

    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < WINDOW {
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        iters += batch;
    }
    let m = Measurement {
        name: name.to_owned(),
        iters,
        total: start.elapsed(),
    };
    println!(
        "{:<40} {:>12}/iter   ({} iters)",
        m.name,
        fmt_ns(m.ns_per_iter()),
        m.iters
    );
    m
}

/// Result of a paired overhead measurement.
///
/// `pct` is the number to report: the median paired slowdown, clamped to
/// ≥ 0 because a real overhead cannot be negative — a negative median
/// means measurement noise exceeded the effect. `raw_pct` keeps the
/// unclamped median for diagnostics, and `noisy` records that the clamp
/// fired so downstream JSON can flag the record.
#[derive(Debug, Clone, Copy)]
pub struct Overhead {
    /// Median paired slowdown in percent, clamped to `max(raw_pct, 0)`.
    pub pct: f64,
    /// Unclamped median, possibly negative under noise.
    pub raw_pct: f64,
    /// True when the raw median came out negative and was clamped.
    pub noisy: bool,
}

/// Measures the per-iteration slowdown of `with` relative to `base`,
/// robustly against machine drift (frequency scaling, noisy neighbors).
///
/// Each repetition runs the closures in an ABBA quad — base, with, with,
/// base — so linear drift within the quad cancels to first order, and the
/// per-quad ratio is `(b₁+b₂)/(a₁+a₂)`. The reported overhead is the
/// median over 25 quads. A separately-benched mean comparison would fold
/// seconds of drift into the delta; even simple AB pairing leaves a
/// first-order drift term, which is how earlier runs recorded a
/// physically impossible −7% overhead.
pub fn paired_overhead_pct(base: &mut dyn FnMut(), with: &mut dyn FnMut()) -> Overhead {
    const WINDOW: Duration = Duration::from_millis(40);
    const QUADS: usize = 25;
    fn window(f: &mut dyn FnMut(), dur: Duration) -> f64 {
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < dur {
            f();
            iters += 1;
        }
        start.elapsed().as_nanos() as f64 / iters.max(1) as f64
    }
    window(base, WINDOW);
    window(with, WINDOW);
    let mut ratios = Vec::with_capacity(QUADS);
    for _ in 0..QUADS {
        let a1 = window(base, WINDOW);
        let b1 = window(with, WINDOW);
        let b2 = window(with, WINDOW);
        let a2 = window(base, WINDOW);
        ratios.push((b1 + b2) / (a1 + a2));
    }
    ratios.sort_by(f64::total_cmp);
    let raw_pct = (ratios[QUADS / 2] - 1.0) * 100.0;
    let noisy = raw_pct < 0.0;
    if noisy {
        eprintln!(
            "warning: paired overhead measured negative ({raw_pct:.2}%); \
             noise dominates the effect, clamping to 0"
        );
    }
    Overhead {
        pct: raw_pct.max(0.0),
        raw_pct,
        noisy,
    }
}

/// Minimal JSON string escaping for the hand-rolled output files.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_something() {
        let m = bench("noop_sum", || (0..100u64).sum::<u64>());
        assert!(m.iters > 0);
        assert!(m.ns_per_iter() > 0.0);
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn paired_overhead_of_identical_work_is_small_and_never_negative() {
        let mut a = || {
            std::hint::black_box((0..500u64).sum::<u64>());
        };
        let mut b = || {
            std::hint::black_box((0..500u64).sum::<u64>());
        };
        let oh = paired_overhead_pct(&mut a, &mut b);
        assert!(oh.pct >= 0.0, "reported overhead must be clamped: {oh:?}");
        assert!(
            oh.raw_pct.abs() < 50.0,
            "identical closures diverged: {oh:?}"
        );
    }

    #[test]
    fn real_overhead_is_detected() {
        let mut a = || {
            std::hint::black_box((0..200u64).sum::<u64>());
        };
        let mut b = || {
            std::hint::black_box((0..4000u64).sum::<u64>());
        };
        let oh = paired_overhead_pct(&mut a, &mut b);
        assert!(!oh.noisy, "a 20x slowdown must not read as noise: {oh:?}");
        assert!(oh.pct > 100.0, "expected a large overhead: {oh:?}");
    }
}
