//! Regenerates Figure 2: resource overhead of SignalCat + monitors vs.
//! recording-buffer size, grouped by platform like the paper (HARP top,
//! KC705 bottom).


// Developer-facing report generator: aborting with a message on a broken
// fixture is the desired behavior, not a robustness hole.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hwdbg_bench::{monitor_overhead, synth_platform};
use hwdbg_synth::Platform;
use hwdbg_testbed::{metadata, BugId, BugPlatform};

const DEPTHS: [u64; 4] = [1024, 2048, 4096, 8192];

fn main() {
    for platform in [Platform::IntelHarp, Platform::XilinxKc705] {
        println!("=== {platform} ===");
        println!(
            "{:<4} {:>6} {:>14} {:>12} {:>10}   {:>8} {:>6}",
            "bug", "depth", "BRAM (bits)", "registers", "logic", "fmax", "meets"
        );
        for id in BugId::ALL {
            let wanted = match metadata(id).platform {
                BugPlatform::Harp => Platform::IntelHarp,
                _ => Platform::XilinxKc705,
            };
            if wanted != platform {
                continue;
            }
            for depth in DEPTHS {
                let m = monitor_overhead(id, depth).expect("instrumentation");
                println!(
                    "{:<4} {:>6} {:>14} {:>12} {:>10}   {:>7.0}M {:>6}",
                    id.to_string(),
                    depth,
                    m.overhead.bram_bits,
                    m.overhead.registers,
                    m.overhead.logic_cells,
                    m.timing.fmax_mhz,
                    m.meets_target,
                );
            }
        }
        println!();
    }
    // Shape summary (the paper's headline claims for this figure).
    let a = monitor_overhead(BugId::D2, 1024).unwrap();
    let b = monitor_overhead(BugId::D2, 8192).unwrap();
    println!("shape check (D2): BRAM x{:.1} for 8x buffer; registers {} -> {} (flat)",
        b.overhead.bram_bits as f64 / a.overhead.bram_bits as f64,
        a.overhead.registers, b.overhead.registers);
    let failing: Vec<String> = BugId::ALL
        .iter()
        .filter(|&&id| !monitor_overhead(id, 8192).unwrap().meets_target)
        .map(|id| id.to_string())
        .collect();
    println!(
        "target frequency: {}/20 designs keep their target; misses: {:?} (paper: Optimus only)",
        20 - failing.len(),
        failing
    );
    let _ = synth_platform(BugId::D1);
}
