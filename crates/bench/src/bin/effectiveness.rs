//! Regenerates the §6.3 effectiveness results:
//!
//! * SignalCat applies to every bug (it is the logging substrate);
//! * each monitor helps with at least four bugs;
//! * average lines of generated analysis Verilog for SignalCat+monitors;
//! * LossCheck localizes 6 of the 7 data-loss bugs, with D1 showing one
//!   false positive and D11 mis-filtered (the false negative);
//! * the FSM detector's confusion matrix (paper: 0 FP / 5 FN over 32 FSMs).

// Developer-facing report generator: aborting with a message on a broken
// fixture is the desired behavior, not a robustness hole.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hwdbg_bench::{fsm_eval, losscheck_eval, monitor_overhead, LOSS_BUGS};
use hwdbg_testbed::{metadata, BugId, Tool};

fn main() {
    // Tool applicability from the metadata (Table 2 columns).
    let mut per_tool = vec![
        (Tool::SignalCat, 0),
        (Tool::FsmMonitor, 0),
        (Tool::StatMonitor, 0),
        (Tool::DepMonitor, 0),
        (Tool::LossCheck, 0),
    ];
    for id in BugId::ALL {
        for (tool, n) in per_tool.iter_mut() {
            if metadata(id).helpful.contains(tool) {
                *n += 1;
            }
        }
    }
    println!("tool applicability across the 20 testbed bugs:");
    for (tool, n) in &per_tool {
        println!("  {tool:<5} helps {n:>2} bugs");
    }

    // Generated lines for SignalCat + monitors (the paper reports an
    // average of 72 lines on its designs).
    let mut lines = Vec::new();
    for id in BugId::ALL {
        let m = monitor_overhead(id, 8192).expect("instrumentation");
        lines.push(m.generated_lines);
    }
    let avg = lines.iter().sum::<usize>() as f64 / lines.len() as f64;
    println!(
        "\nSignalCat+monitors generated Verilog: avg {avg:.0} lines (min {}, max {})",
        lines.iter().min().unwrap(),
        lines.iter().max().unwrap()
    );

    // LossCheck outcomes.
    println!("\nLossCheck on the {} data-loss bugs:", LOSS_BUGS.len());
    let mut localized = 0;
    let mut lc_lines = Vec::new();
    for id in LOSS_BUGS {
        let e = losscheck_eval(id).expect("losscheck");
        localized += e.localized as usize;
        lc_lines.push(e.generated_lines);
        println!(
            "  {:<4} localized={:<5} false_positives={} filtering_used={} generated_lines={}",
            id.to_string(),
            e.localized,
            e.false_positives,
            !e.ground.is_empty(),
            e.generated_lines,
        );
    }
    println!(
        "  -> {localized}/{} localized (paper: 6/7); generated {}-{} lines",
        LOSS_BUGS.len(),
        lc_lines.iter().min().unwrap(),
        lc_lines.iter().max().unwrap()
    );

    // FSM detector confusion matrix.
    let f = fsm_eval().expect("fsm eval");
    println!(
        "\nFSM detector: {} labeled FSMs, {} detected correctly, {} false positives, {} false negatives",
        f.labeled, f.true_positives, f.false_positives, f.false_negatives
    );
}
