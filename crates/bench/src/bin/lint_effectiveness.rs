//! Static-lint effectiveness over the 20-bug testbed.
//!
//! For every bug, runs the full `hwdbg-lint` registry over the *buggy* and
//! the *fixed* elaborated design and reports which L-codes fire. The
//! headline numbers mirror the paper's static/dynamic boundary: the bug
//! subclasses with a structural fingerprint (out-of-range indices, width
//! truncation, sticky flags, dead handshakes, ignored signals) are caught
//! before simulation; the rest need the run-time monitors.
//!
//! Modes:
//!
//! * default — human-readable table plus summary counts;
//! * `--json` — machine-readable per-bug results plus cumulative per-pass
//!   wall-clock timings from the shared [`StageTimer`] (the CI artifact);
//! * `--check` — compare against the checked-in snapshot
//!   ([`hwdbg_testbed::lint_expect::expected_lints`]) and exit nonzero on
//!   any drift, including any finding at all on a fixed design.

// Developer-facing report generator: aborting with a message on a broken
// fixture is the desired behavior, not a robustness hole.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hwdbg_lint::LintConfig;
use hwdbg_obs::{json_escape, SimCounters, StageTimer};
use hwdbg_testbed::lint_expect::expected_lints;
use hwdbg_testbed::{buggy_design, fixed_design, BugId};
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Sorted, deduplicated L-codes that fire on a design, timed per pass into
/// the shared `timer`.
fn codes(
    design: &hwdbg_dataflow::Design,
    timer: &mut StageTimer,
    counters: &mut SimCounters,
) -> Vec<String> {
    let mut codes: Vec<String> = hwdbg_lint::run_all(design, &LintConfig::new(), timer, counters)
        .iter()
        .map(|e| e.code.as_str().to_owned())
        .collect();
    codes.sort();
    codes.dedup();
    codes
}

/// Aggregates the timer's spans by pass label. The registry runs 40 times
/// (buggy + fixed per bug) and [`StageTimer`] records every span
/// individually, so same-label durations are summed here.
fn pass_timings_us(timer: &StageTimer) -> BTreeMap<String, u128> {
    let mut out = BTreeMap::new();
    for span in timer.spans() {
        *out.entry(span.name.clone()).or_insert(0u128) += span.elapsed.as_micros();
    }
    out
}

struct Row {
    id: BugId,
    buggy: Vec<String>,
    fixed: Vec<String>,
    expected: Vec<String>,
}

impl Row {
    fn drifted(&self) -> bool {
        self.buggy != self.expected || !self.fixed.is_empty()
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let check = args.iter().any(|a| a == "--check");

    let mut timer = StageTimer::new();
    let mut counters = SimCounters::default();
    let rows: Vec<Row> = BugId::ALL
        .into_iter()
        .map(|id| {
            let buggy = buggy_design(id).expect("buggy design elaborates");
            let fixed = fixed_design(id).expect("fixed design elaborates");
            Row {
                id,
                buggy: codes(&buggy, &mut timer, &mut counters),
                fixed: codes(&fixed, &mut timer, &mut counters),
                expected: expected_lints(id).iter().map(|s| (*s).to_owned()).collect(),
            }
        })
        .collect();
    let timings = pass_timings_us(&timer);

    let flagged = rows.iter().filter(|r| !r.buggy.is_empty()).count();
    let false_pos = rows.iter().map(|r| r.fixed.len()).sum::<usize>();
    let drift = rows.iter().filter(|r| r.drifted()).count();

    if json {
        let items: Vec<String> = rows
            .iter()
            .map(|r| {
                let list = |codes: &[String]| {
                    codes
                        .iter()
                        .map(|c| format!("\"{}\"", json_escape(c)))
                        .collect::<Vec<_>>()
                        .join(", ")
                };
                format!(
                    "{{\"bug\": \"{}\", \"buggy\": [{}], \"fixed\": [{}], \
                     \"expected\": [{}], \"drift\": {}}}",
                    r.id,
                    list(&r.buggy),
                    list(&r.fixed),
                    list(&r.expected),
                    r.drifted()
                )
            })
            .collect();
        let timing_items: Vec<String> = timings
            .iter()
            .map(|(name, us)| format!("\"{}\": {us}", json_escape(name)))
            .collect();
        println!(
            "{{\"bugs\": {}, \"statically_flagged\": {flagged}, \
             \"fixed_false_positives\": {false_pos}, \"drift\": {drift}, \
             \"lint_passes_run\": {}, \"lint_findings\": {}, \
             \"pass_timings_us\": {{{}}}, \"results\": [{}]}}",
            rows.len(),
            counters.lint_passes,
            counters.lint_findings,
            timing_items.join(", "),
            items.join(", ")
        );
    } else {
        println!("static lint effectiveness over the {} testbed bugs:", rows.len());
        for r in &rows {
            let shown = if r.buggy.is_empty() {
                "-".to_owned()
            } else {
                r.buggy.join(",")
            };
            println!(
                "  {:<4} buggy: {shown:<12} fixed: {:<4} {}",
                r.id.to_string(),
                if r.fixed.is_empty() { "clean" } else { "DIRTY" },
                if r.drifted() { "DRIFT" } else { "" }
            );
        }
        println!(
            "\nstatically flagged {flagged}/{} bugs; \
             {false_pos} false positive(s) on fixed designs; {drift} snapshot drift(s)",
            rows.len()
        );
    }

    if check && drift > 0 {
        eprintln!("lint_effectiveness: {drift} bug(s) drifted from the snapshot");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
