//! Static-lint effectiveness over the 20-bug testbed.
//!
//! For every bug, runs the full `hwdbg-lint` registry over the *buggy* and
//! the *fixed* elaborated design and reports which L-codes fire. The
//! headline numbers mirror the paper's static/dynamic boundary: the bug
//! subclasses with a structural fingerprint (out-of-range indices, width
//! truncation, sticky flags, dead handshakes, ignored signals) are caught
//! before simulation; the rest need the run-time monitors.
//!
//! Modes:
//!
//! * default — human-readable table plus summary counts;
//! * `--json` — machine-readable per-bug results (the CI artifact);
//! * `--check` — compare against the checked-in snapshot
//!   ([`hwdbg_testbed::lint_expect::expected_lints`]) and exit nonzero on
//!   any drift, including any finding at all on a fixed design.

// Developer-facing report generator: aborting with a message on a broken
// fixture is the desired behavior, not a robustness hole.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hwdbg_obs::json_escape;
use hwdbg_testbed::lint_expect::expected_lints;
use hwdbg_testbed::{buggy_design, fixed_design, BugId};
use std::process::ExitCode;

/// Sorted, deduplicated L-codes that fire on a design.
fn codes(design: &hwdbg_dataflow::Design) -> Vec<String> {
    let mut codes: Vec<String> = hwdbg_lint::run_default(design)
        .iter()
        .map(|e| e.code.as_str().to_owned())
        .collect();
    codes.sort();
    codes.dedup();
    codes
}

struct Row {
    id: BugId,
    buggy: Vec<String>,
    fixed: Vec<String>,
    expected: Vec<String>,
}

impl Row {
    fn drifted(&self) -> bool {
        self.buggy != self.expected || !self.fixed.is_empty()
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let check = args.iter().any(|a| a == "--check");

    let rows: Vec<Row> = BugId::ALL
        .into_iter()
        .map(|id| {
            let buggy = buggy_design(id).expect("buggy design elaborates");
            let fixed = fixed_design(id).expect("fixed design elaborates");
            Row {
                id,
                buggy: codes(&buggy),
                fixed: codes(&fixed),
                expected: expected_lints(id).iter().map(|s| (*s).to_owned()).collect(),
            }
        })
        .collect();

    let flagged = rows.iter().filter(|r| !r.buggy.is_empty()).count();
    let false_pos = rows.iter().map(|r| r.fixed.len()).sum::<usize>();
    let drift = rows.iter().filter(|r| r.drifted()).count();

    if json {
        let items: Vec<String> = rows
            .iter()
            .map(|r| {
                let list = |codes: &[String]| {
                    codes
                        .iter()
                        .map(|c| format!("\"{}\"", json_escape(c)))
                        .collect::<Vec<_>>()
                        .join(", ")
                };
                format!(
                    "{{\"bug\": \"{}\", \"buggy\": [{}], \"fixed\": [{}], \
                     \"expected\": [{}], \"drift\": {}}}",
                    r.id,
                    list(&r.buggy),
                    list(&r.fixed),
                    list(&r.expected),
                    r.drifted()
                )
            })
            .collect();
        println!(
            "{{\"bugs\": {}, \"statically_flagged\": {flagged}, \
             \"fixed_false_positives\": {false_pos}, \"drift\": {drift}, \
             \"results\": [{}]}}",
            rows.len(),
            items.join(", ")
        );
    } else {
        println!("static lint effectiveness over the {} testbed bugs:", rows.len());
        for r in &rows {
            let shown = if r.buggy.is_empty() {
                "-".to_owned()
            } else {
                r.buggy.join(",")
            };
            println!(
                "  {:<4} buggy: {shown:<12} fixed: {:<4} {}",
                r.id.to_string(),
                if r.fixed.is_empty() { "clean" } else { "DIRTY" },
                if r.drifted() { "DRIFT" } else { "" }
            );
        }
        println!(
            "\nstatically flagged {flagged}/{} bugs; \
             {false_pos} false positive(s) on fixed designs; {drift} snapshot drift(s)",
            rows.len()
        );
    }

    if check && drift > 0 {
        eprintln!("lint_effectiveness: {drift} bug(s) drifted from the snapshot");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
