//! Machine-readable simulation performance suite.
//!
//! Runs the simulator hot-path benchmarks — the comb-chain settle ablation
//! (n ∈ {8, 64, 256}), a width sweep of a combinational ALU
//! (`sim_wide_alu/{32,64,128,256}`: add/xor/shift/sub, the ops the
//! value plane keeps allocation-free at any width), and 1000 cycles of
//! the grayscale pipeline — and writes `BENCH_sim.json` in the current
//! directory: a JSON array of `{"bench", "cycles_per_sec", "wall_ms",
//! "allocs_per_cycle"}` records. `cycles_per_sec` is simulated work per
//! wall-clock second (settles/s for the comb chains and ALU sweep, clock
//! cycles/s for grayscale); `wall_ms` is the mean wall time of one
//! benchmark iteration; `allocs_per_cycle` is heap allocations per unit
//! of steady-state work, counted by a delegating global allocator over a
//! 100-iteration window — the zero-allocation invariant makes 0.0 the
//! expected value, so any nonzero figure is a regression signal.
//!
//! Two `+metrics` companion records rerun the largest comb chain and the
//! grayscale pipeline with the observability counters enabled. They carry
//! extra fields: `metrics_overhead_pct` (per-iteration slowdown vs the
//! metrics-off record, from an ABBA-paired median over adaptive windows
//! — the budget is ≤5%), `metrics_overhead_ci_pct` (a sign-test ~95%
//! confidence interval `[lo, hi]` for that median), `overhead_noisy`
//! (true when the interval straddles zero — the effect is below the
//! machine's noise floor), `counters` (the [`hwdbg_obs::SimCounters`]
//! registry after the run), and, for grayscale, `stages` (per-stage wall
//! times of one elaborate → compile → simulate pass).
//!
//! Two `campaign_fault_matrix/*` records run the full 20-bug × 4-fault
//! campaign through the work-stealing pool at one worker and at the
//! host's available parallelism, reporting jobs (not cycles) per second
//! plus `workers`, `host_cpus`, and `steals` — the speedup between the
//! two records is the campaign engine's scaling headline, and is bounded
//! by `host_cpus` (a 1-core container shows ~1×, honestly).
//!
//! Usage: `cargo run --release -p hwdbg-bench --bin perfsuite`
//!
//! `--check FILE` turns the suite into a CI regression gate: instead of
//! writing `BENCH_sim.json`, the fresh numbers are compared against the
//! baseline records in FILE and the process exits nonzero when any
//! shared bench regressed more than 30% in `cycles_per_sec` or newly
//! allocates (`allocs_per_cycle > 0` where the baseline had exactly 0 —
//! benches the baseline already records as allocating, like the
//! campaign construction loop, are held to the throughput gate only).
//! `--bless` (with `--check`) accepts the fresh numbers and rewrites
//! FILE instead of failing.

// Developer-facing report generator: aborting with a message on a broken
// fixture is the desired behavior, not a robustness hole.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hwdbg_bench::harness::{bench, json_escape, paired_overhead_pct, Measurement};
use hwdbg_dataflow::elaborate;
use hwdbg_ip::StdModels;
use hwdbg_obs::{counters_json, stages_json, thread_allocs, CountingAlloc, StageTimer};
use hwdbg_sim::{Backend, SimConfig, Simulator};
use hwdbg_testbed::{buggy_design, BugId};

// Counts allocations for the `allocs_per_cycle` column. Steady-state
// windows allocate nothing, so the counter's TLS bump never runs inside
// the timed loops and the throughput numbers are unaffected.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// `(measurement, simulated units of work per iteration, steady-state
/// allocations per unit of work, extra JSON)`.
///
/// `extra` is a pre-rendered fragment of additional `"key": value` pairs
/// (starting with `, `) appended to the record, or empty.
struct Record {
    m: Measurement,
    work_per_iter: u64,
    allocs_per_cycle: f64,
    extra: String,
}

/// Heap allocations per unit of work over a 100-iteration window of `f`.
/// Call only after the workload is warm — cold-start allocations (pool
/// growth, map nodes) belong to construction, not the steady state.
fn allocs_per_cycle(work_per_iter: u64, mut f: impl FnMut()) -> f64 {
    const REPS: u64 = 100;
    let before = thread_allocs();
    for _ in 0..REPS {
        f();
    }
    (thread_allocs() - before) as f64 / (REPS * work_per_iter) as f64
}

fn comb_chain(n: usize) -> hwdbg_dataflow::Design {
    let mut src = String::from("module m(input clk, input [31:0] d, output [31:0] q);\n");
    for i in 0..n {
        let prev = if i == 0 { "d".into() } else { format!("w{}", i - 1) };
        src.push_str(&format!("wire [31:0] w{i}; assign w{i} = {prev} + 32'd1;\n"));
    }
    src.push_str(&format!("assign q = w{};\nendmodule", n - 1));
    elaborate(
        &hwdbg_rtl::parse(&src).unwrap(),
        "m",
        &hwdbg_dataflow::NoBlackboxes,
    )
    .unwrap()
}

/// A four-stage combinational ALU at width `w`: add, xor, shift, sub.
/// Deliberately no multiply or divide — those are the op families the
/// value plane documents as allocating above 128 bits, and this sweep
/// exists to show the allocation-free width scaling of everything else.
fn wide_alu(w: usize) -> hwdbg_dataflow::Design {
    let hi = w - 1;
    let src = format!(
        "module m(input clk, input [{hi}:0] a, input [{hi}:0] b, output [{hi}:0] q);\n\
         wire [{hi}:0] s; assign s = a + b;\n\
         wire [{hi}:0] x; assign x = s ^ a;\n\
         wire [{hi}:0] sh; assign sh = x >> 5;\n\
         wire [{hi}:0] d; assign d = sh - b;\n\
         assign q = d;\nendmodule"
    );
    elaborate(
        &hwdbg_rtl::parse(&src).unwrap(),
        "m",
        &hwdbg_dataflow::NoBlackboxes,
    )
    .unwrap()
}

/// One settle of the comb chain: the steady-state hot path.
fn bench_comb_chain(name: &str, config: SimConfig) -> (Measurement, Simulator) {
    let design = comb_chain(256);
    let mut sim = Simulator::new(design, &hwdbg_sim::NoModels, config).unwrap();
    let mut toggle = 0u64;
    let m = bench(name, || {
        toggle = toggle.wrapping_add(1);
        sim.poke_u64("d", 7 + (toggle & 1)).unwrap();
        sim.settle().unwrap();
        sim.peek("q").unwrap().to_u64()
    });
    (m, sim)
}

const GRAYSCALE_CYCLES: u64 = 1000;

/// One cold run of the grayscale pipeline: build the simulator, then step
/// 1000 clock cycles of pixel traffic.
fn grayscale_iter(design: &hwdbg_dataflow::Design, config: SimConfig) -> Simulator {
    let mut sim = Simulator::new(design.clone(), &StdModels, config).unwrap();
    sim.poke_u64("pix_in_valid", 1).unwrap();
    for i in 0..GRAYSCALE_CYCLES {
        sim.poke_u64("pix_in", i).unwrap();
        sim.step("clk").unwrap();
    }
    sim
}

/// Steady-state allocations per grayscale cycle: one warm simulator
/// stepped in place — the invariant under test — not the cold
/// build-and-run loop the throughput bench times.
fn grayscale_steady_apc(design: &hwdbg_dataflow::Design, config: SimConfig) -> f64 {
    let mut sim = Simulator::new(design.clone(), &StdModels, config).unwrap();
    sim.poke_u64("pix_in_valid", 1).unwrap();
    let mut i = 0u64;
    for _ in 0..200 {
        i += 1;
        sim.poke_u64("pix_in", i).unwrap();
        sim.step("clk").unwrap();
    }
    allocs_per_cycle(1, || {
        i += 1;
        sim.poke_u64("pix_in", i).unwrap();
        sim.step("clk").unwrap();
    })
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut check_path: Option<String> = None;
    let mut bless = false;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => {
                check_path = Some(it.next().expect("--check needs a FILE").clone());
            }
            "--bless" => bless = true,
            other => panic!("unknown flag `{other}` (perfsuite [--check FILE [--bless]])"),
        }
    }
    assert!(
        !bless || check_path.is_some(),
        "--bless only makes sense with --check FILE"
    );

    let mut records = Vec::new();

    for n in [8usize, 64, 256] {
        let design = comb_chain(n);
        // Build once, settle per iteration: the steady-state hot path.
        let mut sim =
            Simulator::new(design, &hwdbg_sim::NoModels, SimConfig::default()).unwrap();
        let mut toggle = 0u64;
        let m = bench(&format!("sim_comb_chain/{n}"), || {
            toggle = toggle.wrapping_add(1);
            sim.poke_u64("d", 7 + (toggle & 1)).unwrap();
            sim.settle().unwrap();
            sim.peek("q").unwrap().to_u64()
        });
        let apc = allocs_per_cycle(1, || {
            toggle = toggle.wrapping_add(1);
            sim.poke_u64("d", 7 + (toggle & 1)).unwrap();
            sim.settle().unwrap();
            std::hint::black_box(sim.peek("q").unwrap().to_u64());
        });
        records.push(Record {
            m,
            work_per_iter: 1,
            allocs_per_cycle: apc,
            extra: String::new(),
        });
    }

    for w in [32usize, 64, 128, 256] {
        let design = wide_alu(w);
        let mut sim =
            Simulator::new(design, &hwdbg_sim::NoModels, SimConfig::default()).unwrap();
        let mut toggle = 0u64;
        let m = bench(&format!("sim_wide_alu/{w}"), || {
            toggle = toggle.wrapping_add(1);
            sim.poke_u64("a", 0x00C0_FFEE ^ (toggle & 1)).unwrap();
            sim.poke_u64("b", 0x0BAD_F00D).unwrap();
            sim.settle().unwrap();
            sim.peek("q").unwrap().to_u64()
        });
        let apc = allocs_per_cycle(1, || {
            toggle = toggle.wrapping_add(1);
            sim.poke_u64("a", 0x00C0_FFEE ^ (toggle & 1)).unwrap();
            sim.settle().unwrap();
            std::hint::black_box(sim.peek("q").unwrap().to_u64());
        });
        records.push(Record {
            m,
            work_per_iter: 1,
            allocs_per_cycle: apc,
            extra: String::new(),
        });
    }

    // Tree-walker companion for the settle headline: the default records
    // above run the bytecode backend, and this one reruns the 256-stage
    // chain on the reference tree-walker so the `bytecode_speedup` field
    // records the lowering win in the same report.
    {
        let bytecode_ips = records
            .iter()
            .find(|r| r.m.name == "sim_comb_chain/256")
            .unwrap()
            .m
            .iters_per_sec();
        let (m, mut sim) = bench_comb_chain(
            "sim_comb_chain/256+tree",
            SimConfig::default().with_backend(Backend::Tree),
        );
        let speedup = bytecode_ips / m.iters_per_sec();
        let mut toggle = 0u64;
        let apc = allocs_per_cycle(1, || {
            toggle = toggle.wrapping_add(1);
            sim.poke_u64("d", 7 + (toggle & 1)).unwrap();
            sim.settle().unwrap();
            std::hint::black_box(sim.peek("q").unwrap().to_u64());
        });
        records.push(Record {
            m,
            work_per_iter: 1,
            allocs_per_cycle: apc,
            extra: format!(", \"bytecode_speedup\": {speedup:.2}"),
        });
    }

    let design = buggy_design(BugId::D2).unwrap();
    {
        let m = bench("sim_grayscale_1000_cycles", || {
            grayscale_iter(&design, SimConfig::default()).cycle("clk")
        });
        let apc = grayscale_steady_apc(&design, SimConfig::default());
        records.push(Record {
            m,
            work_per_iter: GRAYSCALE_CYCLES,
            allocs_per_cycle: apc,
            extra: String::new(),
        });
    }
    // Tree-walker companion for the clocked-pipeline headline.
    {
        let bytecode_ips = records
            .iter()
            .find(|r| r.m.name == "sim_grayscale_1000_cycles")
            .unwrap()
            .m
            .iters_per_sec();
        let tree = SimConfig::default().with_backend(Backend::Tree);
        let m = bench("sim_grayscale_1000_cycles+tree", || {
            grayscale_iter(&design, tree.clone()).cycle("clk")
        });
        let speedup = bytecode_ips / m.iters_per_sec();
        let apc = grayscale_steady_apc(&design, tree);
        records.push(Record {
            m,
            work_per_iter: GRAYSCALE_CYCLES,
            allocs_per_cycle: apc,
            extra: format!(", \"bytecode_speedup\": {speedup:.2}"),
        });
    }

    // Metrics-on companions: same workloads with the counter registry
    // live. The overhead comes from an ABBA-paired median (not from
    // comparing the two separately-benched means, which folds machine
    // drift into the delta and can even drive it negative).
    {
        let (m, mut on) =
            bench_comb_chain("sim_comb_chain/256+metrics", SimConfig::default().with_metrics(true));
        let counters = *on.counters().unwrap();
        let mut t1 = 0u64;
        let apc = allocs_per_cycle(1, || {
            t1 = t1.wrapping_add(1);
            on.poke_u64("d", 7 + (t1 & 1)).unwrap();
            on.settle().unwrap();
            std::hint::black_box(on.peek("q").unwrap().to_u64());
        });
        let mut off =
            Simulator::new(comb_chain(256), &hwdbg_sim::NoModels, SimConfig::default()).unwrap();
        let mut t0 = 0u64;
        let oh = paired_overhead_pct(
            &mut || {
                t0 = t0.wrapping_add(1);
                off.poke_u64("d", 7 + (t0 & 1)).unwrap();
                off.settle().unwrap();
                std::hint::black_box(off.peek("q").unwrap().to_u64());
            },
            &mut || {
                t1 = t1.wrapping_add(1);
                on.poke_u64("d", 7 + (t1 & 1)).unwrap();
                on.settle().unwrap();
                std::hint::black_box(on.peek("q").unwrap().to_u64());
            },
        );
        let extra = format!(
            ", \"metrics_overhead_pct\": {:.2}, \"metrics_overhead_ci_pct\": [{:.2}, {:.2}], \"overhead_noisy\": {}, \"counters\": {}",
            oh.pct,
            oh.ci_lo_pct,
            oh.ci_hi_pct,
            oh.noisy,
            counters_json(&counters)
        );
        records.push(Record {
            m,
            work_per_iter: 1,
            allocs_per_cycle: apc,
            extra,
        });
    }
    {
        let m = bench("sim_grayscale_1000_cycles+metrics", || {
            grayscale_iter(&design, SimConfig::default().with_metrics(true)).cycle("clk")
        });
        let apc = grayscale_steady_apc(&design, SimConfig::default().with_metrics(true));
        let oh = paired_overhead_pct(
            &mut || {
                std::hint::black_box(grayscale_iter(&design, SimConfig::default()).cycle("clk"));
            },
            &mut || {
                std::hint::black_box(
                    grayscale_iter(&design, SimConfig::default().with_metrics(true)).cycle("clk"),
                );
            },
        );
        // One instrumented pass with per-stage wall times, outside the
        // measurement window so the timer itself is not benchmarked.
        let mut timer = StageTimer::new();
        let d = timer.time("elaborate", || buggy_design(BugId::D2).unwrap());
        let mut sim = timer.time("compile", || {
            Simulator::new(d, &StdModels, SimConfig::default().with_metrics(true)).unwrap()
        });
        timer.time("simulate", || {
            sim.poke_u64("pix_in_valid", 1).unwrap();
            for i in 0..GRAYSCALE_CYCLES {
                sim.poke_u64("pix_in", i).unwrap();
                sim.step("clk").unwrap();
            }
        });
        let counters = *sim.counters().unwrap();
        let extra = format!(
            ", \"metrics_overhead_pct\": {:.2}, \"metrics_overhead_ci_pct\": [{:.2}, {:.2}], \"overhead_noisy\": {}, \"stages\": {}, \"counters\": {}",
            oh.pct,
            oh.ci_lo_pct,
            oh.ci_hi_pct,
            oh.noisy,
            stages_json(&timer),
            counters_json(&counters)
        );
        records.push(Record {
            m,
            work_per_iter: GRAYSCALE_CYCLES,
            allocs_per_cycle: apc,
            extra,
        });
    }

    // Campaign scaling: the full fault matrix through the work-stealing
    // pool at 1 worker and at host parallelism. Jobs per second, not
    // cycles — each job is a whole 40-cycle faulted simulation. The
    // speedup between the two records is bounded by `host_cpus`; on a
    // single-core container both legitimately read ~1×.
    {
        let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
        let campaign = hwdbg_campaign::clients::fault_matrix().expect("matrix builds");
        let n_jobs = campaign.jobs.len() as u64;
        // Per-job allocations, measured on the serial reference loop (the
        // pool's allocations land on worker threads, invisible to the
        // thread-local counter). Jobs build whole simulators, so unlike
        // the steady-state benches this is expected to be large — it is
        // here to catch regressions, not to be zero.
        campaign.run_serial().expect("warm serial run");
        let apc = allocs_per_cycle(n_jobs, || {
            std::hint::black_box(campaign.run_serial().expect("serial run").records.len());
        });
        let mut baseline = None;
        for workers in [1usize, host_cpus.max(2)] {
            let m = bench(&format!("campaign_fault_matrix/jobs={workers}"), || {
                campaign.run(workers).expect("campaign run").records.len()
            });
            let report = campaign.run(workers).expect("campaign run");
            let jps = m.iters_per_sec() * n_jobs as f64;
            let speedup = match baseline {
                None => {
                    baseline = Some(jps);
                    1.0
                }
                Some(b) => jps / b,
            };
            // On a single-core host the two worker counts share one CPU
            // and the ratio measures scheduler contention, not scaling —
            // record that honestly instead of a meaningless "speedup".
            let scaling = if host_cpus == 1 {
                "\"contended\": true".to_owned()
            } else {
                format!("\"speedup_vs_jobs1\": {speedup:.2}")
            };
            let extra = format!(
                ", \"workers\": {}, \"host_cpus\": {}, \"steals\": {}, {scaling}",
                report.workers, host_cpus, report.steals
            );
            records.push(Record {
                m,
                work_per_iter: n_jobs,
                allocs_per_cycle: apc,
                extra,
            });
        }
    }

    let mut json = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let per_sec = r.m.iters_per_sec() * r.work_per_iter as f64;
        json.push_str(&format!(
            "  {{\"bench\": \"{}\", \"cycles_per_sec\": {:.1}, \"wall_ms\": {:.4}, \"allocs_per_cycle\": {:.4}{}}}{}\n",
            json_escape(&r.m.name),
            per_sec,
            r.m.ms_per_iter(),
            r.allocs_per_cycle,
            r.extra,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    json.push_str("]\n");

    match check_path {
        None => {
            std::fs::write("BENCH_sim.json", &json).expect("write BENCH_sim.json");
            println!("\nwrote BENCH_sim.json:\n{json}");
        }
        Some(path) => {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
            let baseline = parse_records(&text);
            let mut failures = 0usize;
            for r in &records {
                let per_sec = r.m.iters_per_sec() * r.work_per_iter as f64;
                let Some(&(base_cps, base_apc)) = baseline.get(r.m.name.as_str()) else {
                    println!("check {:<40} NEW (no baseline record)", r.m.name);
                    continue;
                };
                let ratio = per_sec / base_cps;
                let regressed = ratio < 0.70;
                let new_allocs = base_apc == 0.0 && r.allocs_per_cycle > 0.0;
                let verdict = if regressed || new_allocs { failures += 1; "FAIL" } else { "ok" };
                println!(
                    "check {:<40} {verdict}: {:.0}/s vs {:.0}/s ({:+.1}%), allocs {:.4} (base {:.4})",
                    r.m.name,
                    per_sec,
                    base_cps,
                    (ratio - 1.0) * 100.0,
                    r.allocs_per_cycle,
                    base_apc,
                );
            }
            if bless {
                std::fs::write(&path, &json).unwrap_or_else(|e| panic!("bless {path}: {e}"));
                println!("blessed: rewrote {path} with the fresh numbers");
            } else if failures > 0 {
                eprintln!(
                    "perfsuite --check: {failures} bench(es) regressed >30% or newly allocate \
                     (rerun with --bless to accept)"
                );
                std::process::exit(1);
            } else {
                println!("perfsuite --check: all benches within 30% of {path}, no new allocs");
            }
        }
    }
}

/// Extracts `(cycles_per_sec, allocs_per_cycle)` per bench name from a
/// `BENCH_sim.json` the suite itself wrote (one record per line — this is
/// a fixture parser, not a general JSON reader).
fn parse_records(text: &str) -> std::collections::BTreeMap<&str, (f64, f64)> {
    fn num_field(line: &str, key: &str) -> Option<f64> {
        let pat = format!("\"{key}\": ");
        let rest = &line[line.find(&pat)? + pat.len()..];
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
            .unwrap_or(rest.len());
        rest[..end].parse().ok()
    }
    let mut out = std::collections::BTreeMap::new();
    for line in text.lines() {
        let Some(i) = line.find("\"bench\": \"") else { continue };
        let rest = &line[i + 10..];
        let Some(j) = rest.find('"') else { continue };
        let name = &rest[..j];
        let (Some(cps), Some(apc)) = (
            num_field(line, "cycles_per_sec"),
            num_field(line, "allocs_per_cycle"),
        ) else {
            continue;
        };
        out.insert(name, (cps, apc));
    }
    out
}
