//! Machine-readable simulation performance suite.
//!
//! Runs the simulator hot-path benchmarks — the comb-chain settle ablation
//! (n ∈ {8, 64, 256}) and 1000 cycles of the grayscale pipeline — and
//! writes `BENCH_sim.json` in the current directory: a JSON array of
//! `{"bench", "cycles_per_sec", "wall_ms"}` records. `cycles_per_sec` is
//! simulated work per wall-clock second (settles/s for the comb chains,
//! clock cycles/s for grayscale); `wall_ms` is the mean wall time of one
//! benchmark iteration.
//!
//! Usage: `cargo run --release -p hwdbg-bench --bin perfsuite`


// Developer-facing report generator: aborting with a message on a broken
// fixture is the desired behavior, not a robustness hole.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hwdbg_bench::harness::{bench, json_escape, Measurement};
use hwdbg_dataflow::elaborate;
use hwdbg_ip::StdModels;
use hwdbg_sim::{SimConfig, Simulator};
use hwdbg_testbed::{buggy_design, BugId};

/// `(measurement, simulated units of work per iteration)`.
struct Record {
    m: Measurement,
    work_per_iter: u64,
}

fn comb_chain(n: usize) -> hwdbg_dataflow::Design {
    let mut src = String::from("module m(input clk, input [31:0] d, output [31:0] q);\n");
    for i in 0..n {
        let prev = if i == 0 { "d".into() } else { format!("w{}", i - 1) };
        src.push_str(&format!("wire [31:0] w{i}; assign w{i} = {prev} + 32'd1;\n"));
    }
    src.push_str(&format!("assign q = w{};\nendmodule", n - 1));
    elaborate(
        &hwdbg_rtl::parse(&src).unwrap(),
        "m",
        &hwdbg_dataflow::NoBlackboxes,
    )
    .unwrap()
}

fn main() {
    let mut records = Vec::new();

    for n in [8usize, 64, 256] {
        let design = comb_chain(n);
        // Build once, settle per iteration: the steady-state hot path.
        let mut sim =
            Simulator::new(design, &hwdbg_sim::NoModels, SimConfig::default()).unwrap();
        let mut toggle = 0u64;
        let m = bench(&format!("sim_comb_chain/{n}"), || {
            toggle = toggle.wrapping_add(1);
            sim.poke_u64("d", 7 + (toggle & 1)).unwrap();
            sim.settle().unwrap();
            sim.peek("q").unwrap().to_u64()
        });
        records.push(Record { m, work_per_iter: 1 });
    }

    {
        const CYCLES: u64 = 1000;
        let design = buggy_design(BugId::D2).unwrap();
        let m = bench("sim_grayscale_1000_cycles", || {
            let mut sim =
                Simulator::new(design.clone(), &StdModels, SimConfig::default()).unwrap();
            sim.poke_u64("pix_in_valid", 1).unwrap();
            for i in 0..CYCLES {
                sim.poke_u64("pix_in", i).unwrap();
                sim.step("clk").unwrap();
            }
            sim.cycle("clk")
        });
        records.push(Record { m, work_per_iter: CYCLES });
    }

    let mut json = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let per_sec = r.m.iters_per_sec() * r.work_per_iter as f64;
        json.push_str(&format!(
            "  {{\"bench\": \"{}\", \"cycles_per_sec\": {:.1}, \"wall_ms\": {:.4}}}{}\n",
            json_escape(&r.m.name),
            per_sec,
            r.m.ms_per_iter(),
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    json.push_str("]\n");
    std::fs::write("BENCH_sim.json", &json).expect("write BENCH_sim.json");
    println!("\nwrote BENCH_sim.json:\n{json}");
}
