//! Regenerates Figure 3: LossCheck register/logic overhead normalized to
//! the platform totals, for the data-loss bugs, plus the localization
//! outcomes of §6.3.


// Developer-facing report generator: aborting with a message on a broken
// fixture is the desired behavior, not a robustness hole.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hwdbg_bench::{losscheck_eval, synth_platform, LOSS_BUGS};

fn main() {
    println!(
        "{:<4} {:>12} {:>10} {:>12} {:>10}  {:>9} {:>6}",
        "bug", "regs", "regs %", "logic", "logic %", "localized", "FPs"
    );
    for id in LOSS_BUGS {
        let e = losscheck_eval(id).expect("losscheck");
        let platform = synth_platform(id);
        let (regs_pct, logic_pct, _) = e.overhead.normalized(platform);
        println!(
            "{:<4} {:>12} {:>9.4}% {:>12} {:>9.4}%  {:>9} {:>6}",
            id.to_string(),
            e.overhead.registers,
            regs_pct,
            e.overhead.logic_cells,
            logic_pct,
            e.localized,
            e.false_positives,
        );
    }
}
