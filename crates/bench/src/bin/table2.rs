//! Regenerates Table 2: the testbed of 20 reproducible bugs. Every row is
//! actually reproduced (buggy run shows the symptom, fixed run passes).


// Developer-facing report generator: aborting with a message on a broken
// fixture is the desired behavior, not a robustness hole.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hwdbg_testbed::{metadata, reproduce, BugId, Symptom, Tool};

fn main() {
    println!(
        "{:<4} {:<27} {:<22} {:<8} | {:^23} | {:^24} | repro",
        "ID", "Subclass", "Application", "Platform", "Symptoms", "Helpful Tools"
    );
    println!("{}", "-".repeat(130));
    let mut all_ok = true;
    for id in BugId::ALL {
        let m = metadata(id);
        let sym = |s: Symptom| if m.symptoms.contains(&s) { "x" } else { " " };
        let tool = |t: Tool| if m.helpful.contains(&t) { "x" } else { " " };
        let r = reproduce(id).expect("reproduction must run");
        let ok = r.symptom_observed && r.fixed_passes;
        all_ok &= ok;
        println!(
            "{:<4} {:<27} {:<22} {:<8} | Stuck:{} Loss:{} Inc:{} Ext:{} | SC:{} FSM:{} St:{} Dep:{} LC:{} | {}",
            id.to_string(),
            m.subclass.name(),
            m.app,
            m.platform.to_string(),
            sym(Symptom::Stuck),
            sym(Symptom::DataLoss),
            sym(Symptom::IncorrectOutput),
            sym(Symptom::ExternalError),
            tool(Tool::SignalCat),
            tool(Tool::FsmMonitor),
            tool(Tool::StatMonitor),
            tool(Tool::DepMonitor),
            tool(Tool::LossCheck),
            if ok { "OK" } else { "FAILED" },
        );
    }
    println!("{}", "-".repeat(130));
    println!(
        "push-button reproduction: {}",
        if all_ok { "all 20 bugs reproduce and all fixes pass" } else { "REGRESSION" }
    );
}
