//! Regenerates Table 1: the bug-study classification.


// Developer-facing report generator: aborting with a message on a broken
// fixture is the desired behavior, not a robustness hole.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hwdbg_testbed::study::{catalog, class_totals, common_symptoms, table1_counts};
use hwdbg_testbed::Symptom;

fn main() {
    let cat = catalog();
    println!("Table 1: bug classification ({} bugs studied)", cat.len());
    println!(
        "{:<16} {:<28} {:>5}   {:<30}",
        "Bug Class", "Bug Subclass", "Bugs", "Common Symptoms"
    );
    println!("{}", "-".repeat(84));
    let mut last_class = None;
    for (sub, n) in table1_counts() {
        let class = sub.class();
        let class_label = if last_class == Some(class) {
            String::new()
        } else {
            class.to_string()
        };
        last_class = Some(class);
        let symptoms = common_symptoms(sub)
            .iter()
            .map(Symptom::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        println!("{class_label:<16} {:<28} {n:>5}   {symptoms:<30}", sub.name());
    }
    println!("{}", "-".repeat(84));
    for (class, n) in class_totals() {
        println!("{class:<45} {n:>5}");
    }
}
