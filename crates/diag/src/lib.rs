//! Typed diagnostics for the whole `hwdbg` pipeline.
//!
//! The paper's premise is that hardware bugs manifest as hangs, data loss,
//! and silent corruption. A debugger that *itself* aborts on a malformed
//! design is no better than the buggy RTL it inspects, so every stage of
//! the pipeline — `parse → elaborate → compile → simulate → analyze` —
//! reports failures as an [`HwdbgError`]: a stable [`ErrorCode`], a
//! [`Severity`], an optional source [`Span`], and the names of the signals
//! involved. Each crate's native error type (`ParseError`,
//! `DataflowError`, `SimError`, `ToolError`) converts into `HwdbgError`
//! via `From`, so callers can collapse any stage failure into one
//! renderable diagnostic.
//!
//! # Examples
//!
//! ```
//! use hwdbg_diag::{ErrorCode, HwdbgError, Severity};
//!
//! let err = HwdbgError::new(ErrorCode::CombLoop, "settle did not converge")
//!     .with_signal("ack")
//!     .with_signal("req")
//!     .with_path("handshake.v");
//! assert_eq!(err.code.as_str(), "E0402");
//! assert_eq!(err.severity, Severity::Error);
//! let rendered = err.render(None);
//! assert!(rendered.contains("E0402"));
//! assert!(rendered.contains("`ack`"));
//! ```

#![warn(missing_docs)]

use hwdbg_rtl::{ParseError, Span};
use std::fmt;

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational note attached to otherwise-valid output.
    Note,
    /// The pipeline continued but its output is degraded (e.g. a tool
    /// report reconstructed from a partially corrupt trace buffer).
    Warning,
    /// The stage failed; no output was produced.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable diagnostic codes, grouped by pipeline stage:
///
/// * `E01xx` — lexing/parsing
/// * `E02xx` — elaboration (flatten/consteval/resolve)
/// * `E03xx` — simulator compilation
/// * `E04xx` — simulation runtime guards
/// * `E05xx` — analysis tools
/// * `E06xx` — fault injection / testbed harness
/// * `E07xx` — I/O and environment
/// * `E08xx` — campaign orchestration (specs, journals, baselines)
///
/// Static-analysis (lint) findings use a parallel `L`-code range, grouped
/// by the bug-study taxonomy the passes are keyed to:
///
/// * `L01xx` — simulation/synthesis mismatch (latches, assignment races)
/// * `L02xx` — structural defects (combinational loops, width truncation)
/// * `L03xx` — FSM structural defects
/// * `L04xx` — static data loss (the compile-time shadow of LossCheck)
/// * `L05xx` — value-range defects (memory index overflow)
/// * `L06xx` — handshake/protocol defects
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[non_exhaustive]
pub enum ErrorCode {
    // E01xx: parse.
    /// Source text failed to lex/parse.
    ParseFailed,
    // E02xx: elaboration.
    /// A compile-time expression references a runtime value.
    NotConstant,
    /// Invalid `[msb:lsb]` range (descending, zero-width, or bad memory base).
    BadRange,
    /// Instantiated module is neither RTL source nor a known blackbox.
    UnknownModule,
    /// Connection names a port the module does not have.
    UnknownPort,
    /// Parameter override names an unknown parameter.
    UnknownParam,
    /// Two declarations share one flat name.
    DuplicateName,
    /// Reference to an undeclared signal.
    UnknownSignal,
    /// An instance input was left unconnected.
    UnconnectedInput,
    /// An instance output is connected to a non-lvalue.
    BadOutputConnection,
    /// A signal is driven both combinationally and under a clock.
    ConflictingDrivers,
    /// A signal has more than one combinational driver.
    DuplicateDriver,
    /// A declared signal is never driven.
    UndrivenSignal,
    /// Instantiation recursion exceeded the depth limit.
    RecursionLimit,
    /// Construct outside the supported Verilog subset.
    Unsupported,
    // E03xx: simulator compilation.
    /// A blackbox instance has no behavioral model.
    NoModel,
    /// A connection's width disagrees with the port/signal width.
    WidthMismatch,
    // E04xx: simulation runtime.
    /// Non-constant or inverted select bounds at runtime.
    NonConstSelect,
    /// Combinational logic failed to reach a fixpoint.
    CombLoop,
    /// A procedural `for` loop exceeded its iteration cap.
    LoopCap,
    /// The design appears stuck (watchdog expired).
    Watchdog,
    /// A memory access was out of bounds (strict-bounds mode).
    OutOfBounds,
    /// `$finish` executed before the awaited condition held.
    EarlyFinish,
    /// The wall-clock deadline expired before the run finished (the
    /// cooperative per-job watchdog of campaign runs).
    DeadlineExceeded,
    /// A part-select whose constant bounds are reversed (`msb < lsb`).
    ReversedRange,
    // E05xx: tools.
    /// The design has no clocked logic to instrument.
    NoClock,
    /// The analysis found nothing to instrument.
    NothingToInstrument,
    /// Re-elaborating an instrumented module failed (a tool bug).
    ToolElaboration,
    /// No propagation path between the configured source and sink.
    NoPath,
    /// Tool output was produced but is degraded (marked, not fatal).
    DegradedOutput,
    // E06xx: fault injection.
    /// A fault plan names a signal the design does not have.
    BadFaultTarget,
    /// A fault plan is self-contradictory (overlapping forces, zero window).
    BadFaultPlan,
    // E07xx: environment.
    /// Filesystem or other I/O failure.
    Io,
    /// Anything that escaped classification.
    Internal,
    // E08xx: campaign orchestration.
    /// A campaign job-matrix spec is malformed.
    CampaignSpec,
    /// A campaign design failed to load, elaborate, or compile.
    CampaignDesign,
    /// A campaign worker died beyond what recovery could absorb.
    CampaignWorker,
    /// A resume journal does not match the campaign being resumed.
    JournalMismatch,
    /// A resume journal is unreadable or structurally corrupt.
    JournalCorrupt,
    /// Campaign verdicts drifted from the `--baseline` report.
    BaselineDrift,
    // L01xx: sim/synth mismatch.
    /// A `case` in a combinational block does not cover every path
    /// (missing `default` / partial writes): latch inference.
    LintIncompleteCase,
    /// Blocking assignment in a sequential block to a signal other
    /// processes read: evaluation-order-dependent behavior.
    LintBlockingInSeq,
    /// Nonblocking assignment in a combinational block.
    LintNonblockingInComb,
    /// The same signal is written by more than one clocked process.
    LintMultiProcWrite,
    // L02xx: structure.
    /// Combinational drivers form a cycle (static SCC).
    LintCombLoop,
    /// An assignment silently drops driven high bits.
    LintWidthTruncation,
    // L03xx: FSM structure.
    /// A declared FSM state is never entered.
    LintUnreachableState,
    /// An FSM state has no outgoing transition (trap state).
    LintTrapState,
    /// An FSM transition targets an encoding with no declared state.
    LintUndeclaredState,
    // L04xx: static data loss.
    /// A write is unconditionally overwritten later in the same process
    /// before any reader can observe it.
    LintDeadWrite,
    /// An internal signal is written but never read.
    LintNeverRead,
    /// An input is observed only by `$display`, never by logic.
    LintInputIgnored,
    /// A one-bit flag is set and read but never cleared outside reset.
    LintStickyFlag,
    /// A re-initialization branch misses one register of a reset group.
    LintIncompleteReinit,
    // L05xx: value ranges.
    /// A register-indexed memory access can exceed the memory depth.
    LintMemIndexRange,
    /// A value is width-cast *before* a right shift, discarding the
    /// significant high bits the shift was meant to bring down
    /// (`W'(x) >> k` where `x` is wider than `W`).
    LintTruncatedShift,
    // L06xx: handshake protocol.
    /// A response `valid` is only asserted when `ready` is already high
    /// (the AXI "valid must not wait for ready" rule).
    LintValidWaitsReady,
    /// Handshake flags form a circular set-dependency with no seed:
    /// structural deadlock.
    LintHandshakeDeadlock,
    /// Stream payload registers advance without their valid/ready
    /// qualification (AXI-stream stability violation).
    LintUnqualifiedAdvance,
    /// A backpressure output (ready/stall) is tied to a constant that
    /// permanently admits the upstream stream.
    LintConstantBackpressure,
    /// A FIFO full/ready occupancy threshold admits one write more than
    /// the memory holds.
    LintOccupancyOverflow,
    /// A FIFO admission threshold leaves no margin for the skid register
    /// and/or the registered (one-cycle-stale) ready it is observed
    /// through.
    LintOccupancyMargin,
}

impl ErrorCode {
    /// The stable `EXXYY` code string.
    pub fn as_str(self) -> &'static str {
        use ErrorCode::*;
        match self {
            ParseFailed => "E0101",
            NotConstant => "E0201",
            BadRange => "E0202",
            UnknownModule => "E0203",
            UnknownPort => "E0204",
            UnknownParam => "E0205",
            DuplicateName => "E0206",
            UnknownSignal => "E0207",
            UnconnectedInput => "E0208",
            BadOutputConnection => "E0209",
            ConflictingDrivers => "E0210",
            DuplicateDriver => "E0211",
            UndrivenSignal => "E0212",
            RecursionLimit => "E0213",
            Unsupported => "E0214",
            NoModel => "E0301",
            WidthMismatch => "E0302",
            NonConstSelect => "E0401",
            CombLoop => "E0402",
            LoopCap => "E0403",
            Watchdog => "E0404",
            OutOfBounds => "E0405",
            EarlyFinish => "E0406",
            DeadlineExceeded => "E0407",
            ReversedRange => "E0408",
            NoClock => "E0501",
            NothingToInstrument => "E0502",
            ToolElaboration => "E0503",
            NoPath => "E0504",
            DegradedOutput => "E0505",
            BadFaultTarget => "E0601",
            BadFaultPlan => "E0602",
            Io => "E0701",
            Internal => "E0799",
            CampaignSpec => "E0801",
            CampaignDesign => "E0802",
            CampaignWorker => "E0803",
            JournalMismatch => "E0804",
            JournalCorrupt => "E0805",
            BaselineDrift => "E0806",
            LintIncompleteCase => "L0101",
            LintBlockingInSeq => "L0102",
            LintNonblockingInComb => "L0103",
            LintMultiProcWrite => "L0104",
            LintCombLoop => "L0201",
            LintWidthTruncation => "L0202",
            LintUnreachableState => "L0301",
            LintTrapState => "L0302",
            LintUndeclaredState => "L0303",
            LintDeadWrite => "L0401",
            LintNeverRead => "L0402",
            LintInputIgnored => "L0403",
            LintStickyFlag => "L0404",
            LintIncompleteReinit => "L0405",
            LintMemIndexRange => "L0501",
            LintTruncatedShift => "L0502",
            LintValidWaitsReady => "L0601",
            LintHandshakeDeadlock => "L0602",
            LintUnqualifiedAdvance => "L0603",
            LintConstantBackpressure => "L0604",
            LintOccupancyOverflow => "L0605",
            LintOccupancyMargin => "L0606",
        }
    }

    /// True for static-analysis (lint) codes — the `LXXYY` range.
    pub fn is_lint(self) -> bool {
        self.as_str().starts_with('L')
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One pipeline diagnostic: a typed, renderable error or warning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HwdbgError {
    /// Stable code identifying the failure class.
    pub code: ErrorCode,
    /// Error vs. degraded-output warning.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
    /// Byte span into the design source, when known.
    pub span: Option<Span>,
    /// Signals involved (e.g. the unstable set of a comb loop).
    pub signals: Vec<String>,
    /// Design path (file name or synthetic identifier), when known.
    pub path: Option<String>,
}

impl HwdbgError {
    /// Creates an error-severity diagnostic.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        HwdbgError {
            code,
            severity: Severity::Error,
            message: message.into(),
            span: None,
            signals: Vec::new(),
            path: None,
        }
    }

    /// Creates a warning-severity diagnostic (degraded output).
    pub fn warning(code: ErrorCode, message: impl Into<String>) -> Self {
        HwdbgError {
            severity: Severity::Warning,
            ..HwdbgError::new(code, message)
        }
    }

    /// Attaches a source span.
    #[must_use]
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }

    /// Adds an involved signal name.
    #[must_use]
    pub fn with_signal(mut self, signal: impl Into<String>) -> Self {
        self.signals.push(signal.into());
        self
    }

    /// Adds several involved signal names.
    #[must_use]
    pub fn with_signals<I, S>(mut self, signals: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.signals.extend(signals.into_iter().map(Into::into));
        self
    }

    /// Attaches the design path (file name) the diagnostic refers to.
    #[must_use]
    pub fn with_path(mut self, path: impl Into<String>) -> Self {
        self.path = Some(path.into());
        self
    }

    /// Renders the diagnostic in a rustc-like format. When `source` is
    /// given and the diagnostic has a span, the offending line is excerpted
    /// with a caret.
    pub fn render(&self, source: Option<&str>) -> String {
        let mut out = format!("{}[{}]: {}", self.severity, self.code, self.message);
        match (self.span, source) {
            (Some(span), Some(src)) => {
                let (line, col) = span.line_col(src);
                let loc = self.path.as_deref().unwrap_or("<design>");
                out.push_str(&format!("\n  --> {loc}:{line}:{col}"));
                if let Some(text) = src.lines().nth(line - 1) {
                    out.push_str(&format!(
                        "\n   |\n   | {text}\n   | {}^",
                        " ".repeat(col.saturating_sub(1))
                    ));
                }
            }
            (Some(span), None) => {
                let loc = self.path.as_deref().unwrap_or("<design>");
                out.push_str(&format!("\n  --> {loc} (bytes {}..{})", span.start, span.end));
            }
            (None, _) => {
                if let Some(p) = &self.path {
                    out.push_str(&format!("\n  --> {p}"));
                }
            }
        }
        if !self.signals.is_empty() {
            let list: Vec<String> = self.signals.iter().map(|s| format!("`{s}`")).collect();
            out.push_str(&format!("\n  = signals: {}", list.join(", ")));
        }
        out
    }
}

impl fmt::Display for HwdbgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if !self.signals.is_empty() {
            let list: Vec<String> = self.signals.iter().map(|s| format!("`{s}`")).collect();
            write!(f, " ({})", list.join(", "))?;
        }
        Ok(())
    }
}

impl std::error::Error for HwdbgError {}

impl From<ParseError> for HwdbgError {
    fn from(e: ParseError) -> Self {
        HwdbgError::new(ErrorCode::ParseFailed, e.message).with_span(e.span)
    }
}

impl From<std::io::Error> for HwdbgError {
    fn from(e: std::io::Error) -> Self {
        HwdbgError::new(ErrorCode::Io, e.to_string())
    }
}

/// A value that may be accompanied by non-fatal diagnostics.
///
/// Tools use this to return a *degraded-but-valid* report instead of
/// aborting when a run was perturbed (fault injection, truncated buffers):
/// the report is in `value`, and every deviation from a clean run is a
/// [`Severity::Warning`] entry in `diags`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checked<T> {
    /// The (possibly degraded) result.
    pub value: T,
    /// Warnings describing how the result deviates from a clean run.
    pub diags: Vec<HwdbgError>,
}

impl<T> Checked<T> {
    /// Wraps a clean value with no diagnostics.
    pub fn clean(value: T) -> Self {
        Checked {
            value,
            diags: Vec::new(),
        }
    }

    /// True when the value carries no degradation warnings.
    pub fn is_clean(&self) -> bool {
        self.diags.is_empty()
    }

    /// Marks the value degraded with a warning diagnostic.
    #[must_use]
    pub fn degraded(mut self, warning: HwdbgError) -> Self {
        self.diags.push(warning);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        use ErrorCode::*;
        let all = [
            ParseFailed, NotConstant, BadRange, UnknownModule, UnknownPort,
            UnknownParam, DuplicateName, UnknownSignal, UnconnectedInput,
            BadOutputConnection, ConflictingDrivers, DuplicateDriver,
            UndrivenSignal, RecursionLimit, Unsupported, NoModel,
            WidthMismatch, NonConstSelect, CombLoop, LoopCap, Watchdog,
            OutOfBounds, EarlyFinish, DeadlineExceeded, ReversedRange, NoClock,
            NothingToInstrument, ToolElaboration,
            NoPath, DegradedOutput, BadFaultTarget, BadFaultPlan, Io,
            Internal, CampaignSpec, CampaignDesign, CampaignWorker,
            JournalMismatch, JournalCorrupt, BaselineDrift,
            LintIncompleteCase, LintBlockingInSeq, LintNonblockingInComb,
            LintMultiProcWrite, LintCombLoop, LintWidthTruncation,
            LintUnreachableState, LintTrapState, LintUndeclaredState,
            LintDeadWrite, LintNeverRead, LintInputIgnored, LintStickyFlag,
            LintIncompleteReinit, LintMemIndexRange, LintTruncatedShift,
            LintValidWaitsReady, LintHandshakeDeadlock, LintUnqualifiedAdvance,
            LintConstantBackpressure, LintOccupancyOverflow, LintOccupancyMargin,
        ];
        let mut codes: Vec<&str> = all.iter().map(|c| c.as_str()).collect();
        codes.sort_unstable();
        let n = codes.len();
        codes.dedup();
        assert_eq!(codes.len(), n, "duplicate error codes");
        for c in &codes {
            assert!(
                (c.starts_with('E') || c.starts_with('L')) && c.len() == 5,
                "{c}"
            );
        }
    }

    #[test]
    fn lint_codes_are_marked_lint() {
        assert!(ErrorCode::LintMemIndexRange.is_lint());
        assert!(ErrorCode::LintHandshakeDeadlock.is_lint());
        assert!(!ErrorCode::CombLoop.is_lint());
    }

    #[test]
    fn render_with_source_excerpt() {
        let src = "module m;\nwire x\nendmodule";
        let err = HwdbgError::new(ErrorCode::ParseFailed, "expected `;`")
            .with_span(Span::new(15, 16))
            .with_path("m.v");
        let r = err.render(Some(src));
        assert!(r.contains("error[E0101]"), "{r}");
        assert!(r.contains("m.v:2:6"), "{r}");
        assert!(r.contains("wire x"), "{r}");
    }

    #[test]
    fn parse_error_converts() {
        let err = hwdbg_rtl::parse("module oops").unwrap_err();
        let diag: HwdbgError = err.into();
        assert_eq!(diag.code, ErrorCode::ParseFailed);
        assert!(diag.span.is_some());
    }

    #[test]
    fn checked_marks_degradation() {
        let c = Checked::clean(vec![1, 2, 3]);
        assert!(c.is_clean());
        let c = c.degraded(HwdbgError::warning(
            ErrorCode::DegradedOutput,
            "buffer truncated",
        ));
        assert!(!c.is_clean());
        assert_eq!(c.diags[0].severity, Severity::Warning);
    }
}
