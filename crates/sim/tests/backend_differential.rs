//! Differential proof that the bytecode and levelized backends are
//! observably identical to the tree-walking reference backend.
//!
//! All three [`Backend`]s execute the same compiled schedule; the
//! bytecode path additionally lowers each unit body to a flat
//! register-machine program at compile time, and the levelized path fuses
//! acyclic comb regions into straight-line programs with promoted
//! registers. Any divergence here isolates a lowering or scheduling bug:
//! a mis-masked narrow operation, a width table that disagrees with the
//! tree-walker's dynamic widths, a branch that skipped a store, a
//! wide/narrow boundary case at 63/64/65 bits, or a fused region whose
//! rank order disagrees with the worklist's fixpoint. Every bug in the
//! testbed runs its full workload under every backend and must produce
//! byte-identical `$display` logs, signal/memory state, and VCD
//! waveforms; a seeded width sweep then drives a mixed-operator design at
//! widths straddling the inline/spilled `Bits` boundary, and dedicated
//! designs prove cyclic SCCs route to the worklist fallback and either
//! converge or report `CombLoop` identically.

use hwdbg_bits::SplitMix64;
use hwdbg_ip::StdModels;
use hwdbg_sim::{Backend, RegInit, SimConfig, Simulator};
use hwdbg_testbed::{buggy_design, workloads, BugId};
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A `Write` sink the test can read back after the simulator takes
/// ownership of it.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn config(backend: Backend, init: RegInit) -> SimConfig {
    SimConfig {
        init,
        backend,
        ..SimConfig::default()
    }
}

/// Runs one bug's workload under a backend, returning the VCD bytes, the
/// simulator for state inspection, and the workload verdict.
fn run_backend(id: BugId, backend: Backend, init: RegInit) -> (Vec<u8>, Simulator, String) {
    let design = buggy_design(id).unwrap();
    let mut sim = Simulator::new(design, &StdModels, config(backend, init)).unwrap();
    let vcd = SharedBuf::default();
    sim.attach_vcd(vcd.clone()).unwrap();
    let outcome = workloads::run(id, &mut sim).unwrap();
    let bytes = vcd.0.lock().unwrap().clone();
    (bytes, sim, format!("{outcome:?}"))
}

fn assert_equivalent(id: BugId, init: RegInit) {
    let (vcd_t, sim_t, out_t) = run_backend(id, Backend::Tree, init);
    for backend in [Backend::Bytecode, Backend::Levelized] {
        let (vcd_b, sim_b, out_b) = run_backend(id, backend, init);

        assert_eq!(out_b, out_t, "{id}/{backend:?}: workload outcome diverged");
        assert_eq!(
            sim_b.logs(),
            sim_t.logs(),
            "{id}/{backend:?}: $display logs diverged"
        );
        assert_eq!(
            sim_b.dropped_logs(),
            sim_t.dropped_logs(),
            "{id}/{backend:?}: dropped-log count diverged"
        );
        assert_eq!(
            sim_b.finished(),
            sim_t.finished(),
            "{id}/{backend:?}: $finish state diverged"
        );

        // Every scalar signal, by name, must peek identically…
        for (name, value) in sim_b.state().iter_values() {
            assert_eq!(
                Some(value),
                sim_t.state().get(name),
                "{id}/{backend:?}: signal `{name}` diverged"
            );
        }
        // …and every memory, element for element.
        for (name, info) in &sim_b.design().signals {
            if info.mem_depth.is_some() {
                assert_eq!(
                    sim_b.state().mem(name),
                    sim_t.state().mem(name),
                    "{id}/{backend:?}: memory `{name}` diverged"
                );
            }
        }

        assert_eq!(vcd_b, vcd_t, "{id}/{backend:?}: VCD waveforms diverged");
    }
}

#[test]
fn all_bugs_zero_init() {
    for id in BugId::ALL {
        assert_equivalent(id, RegInit::Zero);
    }
}

#[test]
fn all_bugs_random_init() {
    // Random register images exercise paths a zeroed design never takes
    // (missing-reset bugs, X-ish FSM states).
    for id in BugId::ALL {
        assert_equivalent(id, RegInit::Random(0xB17E_C0DE));
    }
}

/// A mixed-operator design at width `w`: arithmetic, comparisons (signed
/// and unsigned), shifts (including `>>>`), reductions, mux, replication
/// crossing `2w` bits, and a clocked accumulator pair (one signed). For
/// `w >= 4` it adds part-selects, a concat, a memory, a `for` loop, and a
/// `case` over blocking temporaries.
fn sweep_src(w: u32) -> String {
    let mut s = format!(
        "module m(input clk, input [{top}:0] a, input [{top}:0] b, output reg [{top}:0] q);
           reg [{top}:0] acc;
           reg signed [{top}:0] sacc;
           wire [{top}:0] sum; assign sum = a + b;
           wire [{top}:0] dif; assign dif = a - b;
           wire [{top}:0] pro; assign pro = a * b;
           wire [{top}:0] quo; assign quo = a / b;
           wire [{top}:0] rem; assign rem = a % b;
           wire [{top}:0] sh1; assign sh1 = a << 1;
           wire [{top}:0] sh2; assign sh2 = a >> 1;
           wire [{top}:0] sh3; assign sh3 = $signed(a) >>> 2;
           wire cmp1; assign cmp1 = a < b;
           wire cmp2; assign cmp2 = $signed(a) < $signed(b);
           wire red; assign red = (^a) ^ (|b) ^ (&a) ^ (!b);
           wire [{top}:0] mux; assign mux = cmp1 ? sum : (dif ^ sh3);
           wire [{rtop}:0] rep; assign rep = {{2{{a}}}};
           wire [{top}:0] fold; assign fold = rep[{rtop}:{w}] ^ (~pro) ^ (-quo);
",
        top = w - 1,
        rtop = 2 * w - 1,
        w = w,
    );
    if w >= 4 {
        let h = w / 2;
        s.push_str(&format!(
            "  wire [{htop}:0] lo; assign lo = a[{htop}:0];
               wire [{top}:0] cat; assign cat = {{lo, b[{bh}:0]}};
               reg [{top}:0] mem [0:7];
               integer i;
               reg [{top}:0] tmp;
               always @(posedge clk) begin
                 mem[b[2:0]] <= cat ^ mux;
                 tmp = fold;
                 for (i = 0; i < 4; i = i + 1) tmp = tmp + sum;
                 case (b[1:0])
                   2'd0: acc <= tmp;
                   2'd1: acc <= tmp ^ mem[a[2:0]];
                   default: acc <= tmp + rem;
                 endcase
               end
",
            htop = h - 1,
            bh = w - h - 1,
            top = w - 1,
        ));
    } else {
        s.push_str("  always @(posedge clk) acc <= (acc ^ fold) + sum;\n");
    }
    s.push_str(&format!(
        "  always @(posedge clk) begin
             sacc <= sacc - $signed(mux);
             if (a == b) q <= ~acc;
             else q <= acc ^ mux ^ {{{w}{{red}}}} ^ {{{w}{{cmp2}}}};
             $display(\"a=%d sacc=%d red=%b\", a, sacc, red);
           end
         endmodule",
        w = w,
    ));
    s
}

fn run_sweep(w: u32, backend: Backend) -> (Vec<(String, String)>, Vec<String>) {
    let design = hwdbg_dataflow::elaborate(
        &hwdbg_rtl::parse(&sweep_src(w)).unwrap(),
        "m",
        &hwdbg_dataflow::NoBlackboxes,
    )
    .unwrap();
    let mut sim = Simulator::new(
        design,
        &hwdbg_sim::NoModels,
        config(backend, RegInit::Random(0x5EED ^ u64::from(w))),
    )
    .unwrap();
    if backend == Backend::Bytecode {
        // The sweep exists to exercise the lowered programs: prove the
        // lowering engaged rather than silently falling back everywhere.
        let (lowered, total) = sim.compiled_design().lowering_coverage();
        assert_eq!(lowered, total, "width {w}: {lowered}/{total} units lowered");
    }
    let mut rng = SplitMix64::new(0xD1FF_5EED ^ u64::from(w));
    for _ in 0..64 {
        sim.poke_u64("a", rng.next_u64()).unwrap();
        sim.poke_u64("b", rng.next_u64()).unwrap();
        sim.step("clk").unwrap();
    }
    let state = sim
        .state()
        .iter_values()
        .map(|(n, v)| (n.to_owned(), v.to_bin_string()))
        .collect();
    let logs = sim.logs().iter().map(|l| l.to_string()).collect();
    (state, logs)
}

#[test]
fn seeded_width_sweep_matches_tree() {
    // Widths straddling every interesting boundary: the 1-bit edge, the
    // 63/64/65 inline-vs-spilled `Bits` crossover (and 31/32/33 for the
    // 2w-bit replication wire), and multi-limb widths.
    for w in [1u32, 2, 3, 7, 8, 31, 32, 33, 63, 64, 65, 96, 127, 128, 160] {
        let tree = run_sweep(w, Backend::Tree);
        for backend in [Backend::Bytecode, Backend::Levelized] {
            let other = run_sweep(w, backend);
            assert_eq!(other.0, tree.0, "width {w}/{backend:?}: state diverged");
            assert_eq!(other.1, tree.1, "width {w}/{backend:?}: logs diverged");
        }
    }
}

/// A design mixing a fused acyclic chain with a convergent cyclic SCC (a
/// latch-shaped cross-coupled pair). The chain must form a region with a
/// promoted internal signal, the SCC must stay on the worklist fallback,
/// and all three backends must agree on every observable.
#[test]
fn mixed_region_and_scc_fallback_match() {
    let src = "module m(input clk, input [7:0] d, input en, output [7:0] q);
                 wire [7:0] c1; assign c1 = d + 8'd3;
                 wire [7:0] c2; assign c2 = c1 ^ 8'h0F;
                 wire [7:0] la; wire [7:0] lb;
                 assign la = en ? c2 : lb;
                 assign lb = la;
                 assign q = lb;
               endmodule";
    let design = hwdbg_dataflow::elaborate(
        &hwdbg_rtl::parse(src).unwrap(),
        "m",
        &hwdbg_dataflow::NoBlackboxes,
    )
    .unwrap();
    let run = |backend| {
        let mut sim = Simulator::new(
            design.clone(),
            &hwdbg_sim::NoModels,
            config(backend, RegInit::Zero),
        )
        .unwrap();
        if backend == Backend::Levelized {
            // The latch pair (la/lb) must be excluded from fusion; the
            // d→c1→c2 chain and the q tail must be fused with at least
            // c1 promoted to a region register.
            let (regions, _, fused) = sim.compiled_design().region_stats();
            assert!(regions >= 1, "expected a fused region, got none");
            assert!(fused >= 1, "expected a promoted signal, got none");
        }
        let mut trace = Vec::new();
        for (cycle, (d, en)) in
            [(7u64, 1u64), (7, 0), (200, 0), (200, 1), (13, 1), (13, 0)].iter().enumerate()
        {
            sim.poke_u64("d", *d).unwrap();
            sim.poke_u64("en", *en).unwrap();
            sim.settle().unwrap();
            trace.push((cycle, sim.peek("q").unwrap().to_u64()));
            sim.step("clk").unwrap();
        }
        let state: Vec<(String, String)> = sim
            .state()
            .iter_values()
            .map(|(n, v)| (n.to_owned(), v.to_bin_string()))
            .collect();
        (trace, state)
    };
    let tree = run(Backend::Tree);
    // The latch must actually latch: q holds c2's value after en drops.
    assert_eq!(tree.0[0].1, (7 + 3) ^ 0x0F);
    assert_eq!(tree.0[2].1, (7 + 3) ^ 0x0F, "latch failed to hold while en=0");
    for backend in [Backend::Bytecode, Backend::Levelized] {
        let other = run(backend);
        assert_eq!(other.0, tree.0, "{backend:?}: q trace diverged");
        assert_eq!(other.1, tree.1, "{backend:?}: state diverged");
    }
}

/// An oscillating combinational loop must fail settle with the same
/// `CombLoop { unstable }` report — same signal names, same order —
/// under all three backends: the SCC routes to the worklist fallback,
/// whose budget and tail-collection semantics the levelized dispatcher
/// shares.
#[test]
fn comb_loop_reports_identically() {
    let src = "module m(input clk, input [3:0] d, output [3:0] q);
                 wire [3:0] x; assign x = ~x;
                 assign q = x ^ d;
               endmodule";
    let design = hwdbg_dataflow::elaborate(
        &hwdbg_rtl::parse(src).unwrap(),
        "m",
        &hwdbg_dataflow::NoBlackboxes,
    )
    .unwrap();
    let run = |backend| {
        let mut sim = Simulator::new(
            design.clone(),
            &hwdbg_sim::NoModels,
            config(backend, RegInit::Zero),
        )
        .unwrap();
        sim.poke_u64("d", 5).unwrap();
        sim.settle().unwrap_err()
    };
    let tree = run(Backend::Tree);
    assert!(
        matches!(&tree, hwdbg_sim::SimError::CombLoop { unstable } if !unstable.is_empty()),
        "expected CombLoop, got {tree:?}"
    );
    for backend in [Backend::Bytecode, Backend::Levelized] {
        assert_eq!(run(backend), tree, "{backend:?}: CombLoop report diverged");
    }
}

/// Satellite regression: `$display("%d")` of a `reg signed` renders
/// two's-complement negatives — identically under both backends. An
/// 8-bit signed counter stepping down from zero used to print `255`
/// instead of `-1`.
#[test]
fn signed_display_renders_negative_under_both_backends() {
    let src = "module m(input clk);
                 reg signed [7:0] c;
                 always @(posedge clk) begin
                   $display(\"c=%0d u=%h\", c, c);
                   c <= c - 8'd1;
                 end
               endmodule";
    let design = hwdbg_dataflow::elaborate(
        &hwdbg_rtl::parse(src).unwrap(),
        "m",
        &hwdbg_dataflow::NoBlackboxes,
    )
    .unwrap();
    let run = |backend| {
        let mut sim = Simulator::new(
            design.clone(),
            &hwdbg_sim::NoModels,
            config(backend, RegInit::Zero),
        )
        .unwrap();
        sim.run("clk", 3).unwrap();
        sim.logs()
            .iter()
            .map(|l| l.message.clone())
            .collect::<Vec<_>>()
    };
    let bytecode = run(Backend::Bytecode);
    assert_eq!(
        bytecode,
        vec!["c=0 u=00", "c=-1 u=ff", "c=-2 u=fe"],
        "signed %d must render two's complement"
    );
    assert_eq!(bytecode, run(Backend::Tree), "backends diverged");
}

/// Satellite regression: reversed constant part-select bounds are a typed
/// `ReversedRange` error (E0408), not the catch-all `NonConstSelect`.
#[test]
fn reversed_range_is_typed_error() {
    let src = "module m(input clk, input [7:0] a, output [7:0] q);
                 assign q = a;
               endmodule";
    let design = hwdbg_dataflow::elaborate(
        &hwdbg_rtl::parse(src).unwrap(),
        "m",
        &hwdbg_dataflow::NoBlackboxes,
    )
    .unwrap();
    let expr = hwdbg_rtl::Expr::Range(
        "a".into(),
        Box::new(hwdbg_rtl::Expr::number(0)),
        Box::new(hwdbg_rtl::Expr::number(7)),
    );
    let err = hwdbg_sim::expr_width(&expr, &design).unwrap_err();
    assert_eq!(
        err,
        hwdbg_sim::SimError::ReversedRange { msb: 0, lsb: 7 },
        "reversed bounds must be the typed error"
    );
    let diag: hwdbg_diag::HwdbgError = err.into();
    assert_eq!(diag.code.as_str(), "E0408");
}
