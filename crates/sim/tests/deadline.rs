//! Wall-clock deadline (cooperative watchdog) tests.
//!
//! Campaign fleets run thousands of deliberately buggy designs; a job
//! that livelocks must surface as a typed `DeadlineExceeded` error
//! instead of wedging its worker thread forever. The deadline is checked
//! once per `step` and periodically inside long settles, so both failure
//! shapes — a run loop that never ends and a single settle that never
//! converges — are caught.

use hwdbg_dataflow::{elaborate, NoBlackboxes};
use hwdbg_sim::{NoModels, SimConfig, SimError, Simulator};
use std::time::{Duration, Instant};

fn build(src: &str, top: &str, config: SimConfig) -> Simulator {
    let file = hwdbg_rtl::parse(src).expect("parses");
    let design = elaborate(&file, top, &NoBlackboxes).expect("elaborates");
    Simulator::new(design, &NoModels, config).expect("builds")
}

const COUNTER: &str = "module counter(input clk, output reg [15:0] q);
    always @(posedge clk) q <= q + 16'd1;
endmodule";

/// A combinational loop that never settles: `a = ~a` oscillates forever.
/// With the default iteration budget this is a `CombLoop` finding; with a
/// huge budget it is a genuine livelock only a wall-clock deadline stops.
const LIVELOCK: &str = "module livelock(input clk, output a);
    assign a = ~a;
endmodule";

#[test]
fn deadline_stops_an_endless_run_loop() {
    let config = SimConfig::default().with_timeout(Duration::from_millis(50));
    let mut sim = build(COUNTER, "counter", config);
    let t0 = Instant::now();
    let err = sim.run("clk", u64::MAX).unwrap_err();
    assert!(
        matches!(err, SimError::DeadlineExceeded { .. }),
        "expected DeadlineExceeded, got {err:?}"
    );
    // The probe runs once per step, so the overshoot is tiny; allow a wide
    // margin for loaded CI machines.
    assert!(t0.elapsed() < Duration::from_secs(30), "took {:?}", t0.elapsed());
    // The design made real progress before the deadline fired.
    assert!(sim.cycle("clk") > 0);
}

#[test]
fn deadline_fires_inside_a_livelocked_settle() {
    // An effectively unbounded settle budget: the CombLoop guard would
    // take ages to trip, so only the deadline probe (every 1024 unit
    // executions) can end the settle.
    let config = SimConfig {
        max_comb_iters: usize::MAX,
        ..SimConfig::default()
    }
    .with_timeout(Duration::from_millis(50));
    let mut sim = build(LIVELOCK, "livelock", config);
    let t0 = Instant::now();
    let err = sim.settle().unwrap_err();
    assert!(
        matches!(err, SimError::DeadlineExceeded { .. }),
        "expected DeadlineExceeded, got {err:?}"
    );
    assert!(t0.elapsed() < Duration::from_secs(30), "took {:?}", t0.elapsed());
}

#[test]
fn full_pass_settle_honors_the_deadline_too() {
    let config = SimConfig {
        max_comb_iters: usize::MAX,
        settle_mode: hwdbg_sim::SettleMode::FullPass,
        ..SimConfig::default()
    }
    .with_timeout(Duration::from_millis(50));
    let mut sim = build(LIVELOCK, "livelock", config);
    let err = sim.settle().unwrap_err();
    assert!(matches!(err, SimError::DeadlineExceeded { .. }), "{err:?}");
}

#[test]
fn no_deadline_keeps_legacy_semantics() {
    // Default config: the livelock is still a CombLoop finding (the
    // bounded-iteration guard), not a deadline error.
    let mut sim = build(LIVELOCK, "livelock", SimConfig::default());
    let err = sim.settle().unwrap_err();
    assert!(matches!(err, SimError::CombLoop { .. }), "{err:?}");

    // And a finite run completes exactly as before.
    let mut sim = build(COUNTER, "counter", SimConfig::default());
    sim.run("clk", 100).unwrap();
    assert_eq!(sim.peek("q").unwrap().to_u64(), 100);
}

#[test]
fn generous_deadline_never_interferes() {
    let config = SimConfig::default().with_timeout(Duration::from_secs(3600));
    let mut sim = build(COUNTER, "counter", config);
    sim.run("clk", 500).unwrap();
    assert_eq!(sim.peek("q").unwrap().to_u64(), 500);
}

#[test]
fn expired_deadline_fails_the_very_first_step() {
    let config = SimConfig::default().with_deadline(Instant::now());
    let mut sim = build(COUNTER, "counter", config);
    let err = sim.step("clk").unwrap_err();
    assert!(matches!(err, SimError::DeadlineExceeded { steps: 0 }), "{err:?}");
    // The diagnostic carries the stable deadline code.
    let diag: hwdbg_diag::HwdbgError = err.into();
    assert_eq!(diag.code.as_str(), "E0407");
}
