//! Zero-allocation regression tests for the simulator hot path.
//!
//! The value plane is built so that steady-state simulation — poke,
//! settle, step — makes *zero* heap allocations per cycle: `Bits` values
//! up to 64 bits are inline, eval writes into pooled scratch buffers, and
//! commits overwrite dense state slots instead of cloning. These tests
//! install a counting global allocator, warm each workload up until every
//! internal buffer has reached steady capacity, then assert that a long
//! measured window allocates nothing at all.
//!
//! A failure here means a `clone()`, `to_vec()`, `format!`, or growing
//! collection crept back into the per-cycle path. Find it with
//! `ltrace`-style bisection: shrink the measured window and diff
//! [`thread_allocs`] around individual calls.

use hwdbg_obs::{thread_allocs, CountingAlloc};
use hwdbg_sim::{SimConfig, Simulator};
use hwdbg_testbed::{buggy_design, BugId};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The perfsuite grayscale workload: 24-bit pixels through the D2 pipeline
/// with its FIFO/RAM blackbox-free datapath. Exercises clocked processes,
/// memories, and non-blocking commit every cycle.
#[test]
fn grayscale_steady_state_allocates_nothing() {
    let design = buggy_design(BugId::D2).unwrap();
    let mut sim = Simulator::new(design, &hwdbg_ip::StdModels, SimConfig::default()).unwrap();
    sim.poke_u64("pix_in_valid", 1).unwrap();
    // Warmup: fill the scratch pool, worklist, and per-cycle buffers to
    // their steady-state capacities.
    for i in 0..200u64 {
        sim.poke_u64("pix_in", i).unwrap();
        sim.step("clk").unwrap();
    }
    let before = thread_allocs();
    for i in 200..1200u64 {
        sim.poke_u64("pix_in", i).unwrap();
        sim.step("clk").unwrap();
    }
    let allocs = thread_allocs() - before;
    assert_eq!(
        allocs, 0,
        "grayscale steady state allocated {allocs} times over 1000 cycles"
    );
}

/// Wide datapaths: a 192-bit add/xor/shift/sub ALU. The values are
/// spilled (heap-backed), but every slot and scratch buffer is allocated
/// at compile time and reused, and `poke_u64` writes straight into the
/// dense state slot — so settling stays allocation-free past 64 bits.
#[test]
fn wide_alu_settle_allocates_nothing() {
    let src = "module m(input clk, input [191:0] a, input [191:0] b, output [191:0] q);
                 wire [191:0] s; assign s = a + b;
                 wire [191:0] x; assign x = s ^ a;
                 wire [191:0] sh; assign sh = x >> 5;
                 wire [191:0] d; assign d = sh - b;
                 assign q = d;
               endmodule";
    let design = hwdbg_dataflow::elaborate(
        &hwdbg_rtl::parse(src).unwrap(),
        "m",
        &hwdbg_dataflow::NoBlackboxes,
    )
    .unwrap();
    let mut sim = Simulator::new(design, &hwdbg_sim::NoModels, SimConfig::default()).unwrap();
    sim.poke_u64("b", 0x0BAD_F00D).unwrap();
    for t in 0..16u64 {
        sim.poke_u64("a", 0x00C0_FFEE ^ (t & 1)).unwrap();
        sim.settle().unwrap();
    }
    let before = thread_allocs();
    for t in 0..1000u64 {
        sim.poke_u64("a", 0x00C0_FFEE ^ (t & 1)).unwrap();
        sim.settle().unwrap();
        std::hint::black_box(sim.peek("q").unwrap());
    }
    let allocs = thread_allocs() - before;
    assert_eq!(
        allocs, 0,
        "wide-ALU settle allocated {allocs} times over 1000 settles"
    );
}

/// Wide division: a 192-bit `/` and `%` re-settled every cycle. Above 128
/// bits these run the restoring divider, which historically allocated
/// quotient/remainder temporaries per evaluation; `Bits::divmod_into`
/// shifts and subtracts directly in pooled scratch, so even the wide
/// divide path stays allocation-free in steady state.
#[test]
fn wide_divide_settle_allocates_nothing() {
    let src = "module m(input clk, input [191:0] a, input [191:0] b,
                        output [191:0] q, output [191:0] r);
                 assign q = a / b;
                 assign r = a % b;
               endmodule";
    let design = hwdbg_dataflow::elaborate(
        &hwdbg_rtl::parse(src).unwrap(),
        "m",
        &hwdbg_dataflow::NoBlackboxes,
    )
    .unwrap();
    let mut sim = Simulator::new(design, &hwdbg_sim::NoModels, SimConfig::default()).unwrap();
    sim.poke_u64("b", 0x1234_5678).unwrap();
    for t in 0..16u64 {
        sim.poke_u64("a", 0xDEAD_BEEF_CAFE ^ (t & 1)).unwrap();
        sim.settle().unwrap();
    }
    let before = thread_allocs();
    for t in 0..1000u64 {
        sim.poke_u64("a", 0xDEAD_BEEF_CAFE ^ (t & 1)).unwrap();
        sim.settle().unwrap();
        std::hint::black_box(sim.peek("q").unwrap());
        std::hint::black_box(sim.peek("r").unwrap());
    }
    let allocs = thread_allocs() - before;
    assert_eq!(
        allocs, 0,
        "wide-divide settle allocated {allocs} times over 1000 settles"
    );
}

/// The comb-chain settle ablation: 256 chained 32-bit adders re-settled
/// with a toggling input. Exercises the event-driven settle worklist and
/// combinational eval with zero clocked state.
#[test]
fn comb_chain_settle_allocates_nothing() {
    let mut src = String::from("module m(input clk, input [31:0] d, output [31:0] q);\n");
    for i in 0..256 {
        let prev = if i == 0 {
            "d".to_string()
        } else {
            format!("w{}", i - 1)
        };
        src.push_str(&format!("wire [31:0] w{i}; assign w{i} = {prev} + 32'd1;\n"));
    }
    src.push_str("assign q = w255;\nendmodule");
    let design = hwdbg_dataflow::elaborate(
        &hwdbg_rtl::parse(&src).unwrap(),
        "m",
        &hwdbg_dataflow::NoBlackboxes,
    )
    .unwrap();
    let mut sim = Simulator::new(design, &hwdbg_sim::NoModels, SimConfig::default()).unwrap();
    for t in 0..16u64 {
        sim.poke_u64("d", 7 + (t & 1)).unwrap();
        sim.settle().unwrap();
    }
    let before = thread_allocs();
    for t in 0..1000u64 {
        sim.poke_u64("d", 7 + (t & 1)).unwrap();
        sim.settle().unwrap();
    }
    let allocs = thread_allocs() - before;
    assert_eq!(
        allocs, 0,
        "comb-chain settle allocated {allocs} times over 1000 settles"
    );
}

/// Satellite of the pre-spilled scratch pool: with every pooled buffer
/// allocated to the design's maximum write width at compile time, the
/// *first* settle after construction — historically the warmup that grew
/// the pool — allocates nothing either. No warmup loop here on purpose.
#[test]
fn first_settle_after_build_allocates_nothing() {
    let src = "module m(input clk, input [191:0] a, input [191:0] b, output [191:0] q);
                 wire [191:0] s; assign s = a + b;
                 wire [191:0] x; assign x = s ^ a;
                 wire [191:0] d; assign d = x - b;
                 assign q = d;
               endmodule";
    let design = hwdbg_dataflow::elaborate(
        &hwdbg_rtl::parse(src).unwrap(),
        "m",
        &hwdbg_dataflow::NoBlackboxes,
    )
    .unwrap();
    let mut sim = Simulator::new(design, &hwdbg_sim::NoModels, SimConfig::default()).unwrap();
    let before = thread_allocs();
    sim.poke_u64("a", 0x00C0_FFEE).unwrap();
    sim.poke_u64("b", 0x0BAD_F00D).unwrap();
    sim.settle().unwrap();
    std::hint::black_box(sim.peek("q").unwrap());
    let allocs = thread_allocs() - before;
    assert_eq!(
        allocs, 0,
        "first settle after construction allocated {allocs} times"
    );
}

/// Watchdog-armed campaign jobs: the same grayscale steady state with a
/// wall-clock deadline set. `Instant::now()` reads the vDSO clock and the
/// probe is a branch plus a comparison — arming the per-job watchdog must
/// not cost an allocation per cycle.
#[test]
fn deadline_enabled_steady_state_allocates_nothing() {
    let design = buggy_design(BugId::D2).unwrap();
    let config = SimConfig::default().with_timeout(std::time::Duration::from_secs(3600));
    let mut sim = Simulator::new(design, &hwdbg_ip::StdModels, config).unwrap();
    sim.poke_u64("pix_in_valid", 1).unwrap();
    for i in 0..200u64 {
        sim.poke_u64("pix_in", i).unwrap();
        sim.step("clk").unwrap();
    }
    let before = thread_allocs();
    for i in 200..1200u64 {
        sim.poke_u64("pix_in", i).unwrap();
        sim.step("clk").unwrap();
    }
    let allocs = thread_allocs() - before;
    assert_eq!(
        allocs, 0,
        "deadline-armed steady state allocated {allocs} times over 1000 cycles"
    );
}

/// The campaign-engine configuration: many simulators built from one
/// shared `Arc<CompiledDesign>` via `Simulator::from_compiled`. The
/// shared compile artifact must not reintroduce per-cycle allocations —
/// this is the same steady-state invariant as above, on the shared path.
#[test]
fn shared_compiled_design_steady_state_allocates_nothing() {
    use std::sync::Arc;
    let design = buggy_design(BugId::D2).unwrap();
    let shared = Arc::new(hwdbg_sim::CompiledDesign::new(design).unwrap());
    let mut sim = Simulator::from_compiled(
        Arc::clone(&shared),
        &hwdbg_ip::StdModels,
        SimConfig::default(),
    )
    .unwrap();
    sim.poke_u64("pix_in_valid", 1).unwrap();
    for i in 0..200u64 {
        sim.poke_u64("pix_in", i).unwrap();
        sim.step("clk").unwrap();
    }
    let before = thread_allocs();
    for i in 200..1200u64 {
        sim.poke_u64("pix_in", i).unwrap();
        sim.step("clk").unwrap();
    }
    let allocs = thread_allocs() - before;
    assert_eq!(
        allocs, 0,
        "shared-design steady state allocated {allocs} times over 1000 cycles"
    );
}

/// Every execution backend, explicitly: the bytecode interpreter's
/// register files (narrow `u64`s and pre-spilled wide `Bits`) are sized
/// once at build time, its `$display` path is only reached when a log
/// sink is attached, wide-register moves recycle the same heap buffers,
/// and the levelized dispatcher's node heap and region programs are all
/// compile-time artifacts — so per-cycle allocations stay at zero under
/// any backend. (The other tests in this file run the default backend;
/// this one pins all of them down even if the default changes.)
#[test]
fn all_backends_steady_state_allocate_nothing() {
    use hwdbg_sim::Backend;
    for backend in [Backend::Tree, Backend::Bytecode, Backend::Levelized] {
        let design = buggy_design(BugId::D2).unwrap();
        let config = SimConfig::default().with_backend(backend);
        let mut sim = Simulator::new(design, &hwdbg_ip::StdModels, config).unwrap();
        sim.poke_u64("pix_in_valid", 1).unwrap();
        for i in 0..200u64 {
            sim.poke_u64("pix_in", i).unwrap();
            sim.step("clk").unwrap();
        }
        let before = thread_allocs();
        for i in 200..1200u64 {
            sim.poke_u64("pix_in", i).unwrap();
            sim.step("clk").unwrap();
        }
        let allocs = thread_allocs() - before;
        assert_eq!(
            allocs, 0,
            "{backend:?} steady state allocated {allocs} times over 1000 cycles"
        );
    }
}

/// The fused-region fast path: the 256-stage comb chain under the
/// levelized backend, with the schedule asserted non-trivial (one region,
/// promoted internal links) so an accidentally-empty schedule cannot pass
/// by falling back to the worklist. Region programs, pinned registers,
/// and the node heap are all sized at compile time; running a region is a
/// single straight-line interpreter pass with blind flushes — nothing in
/// it may allocate.
#[test]
fn levelized_fused_region_settle_allocates_nothing() {
    let mut src = String::from("module m(input clk, input [31:0] d, output [31:0] q);\n");
    for i in 0..256 {
        let prev = if i == 0 {
            "d".to_string()
        } else {
            format!("w{}", i - 1)
        };
        src.push_str(&format!("wire [31:0] w{i}; assign w{i} = {prev} + 32'd1;\n"));
    }
    src.push_str("assign q = w255;\nendmodule");
    let design = hwdbg_dataflow::elaborate(
        &hwdbg_rtl::parse(&src).unwrap(),
        "m",
        &hwdbg_dataflow::NoBlackboxes,
    )
    .unwrap();
    let config = SimConfig::default().with_backend(hwdbg_sim::Backend::Levelized);
    let mut sim = Simulator::new(design, &hwdbg_sim::NoModels, config).unwrap();
    let (regions, max_level, fused) = sim.compiled_design().region_stats();
    assert_eq!(regions, 1, "chain must fuse into one region");
    assert!(max_level >= 255, "chain must levelize deep, got {max_level}");
    assert!(fused >= 255, "chain links must be promoted, got {fused}");
    for t in 0..16u64 {
        sim.poke_u64("d", 7 + (t & 1)).unwrap();
        sim.settle().unwrap();
    }
    let before = thread_allocs();
    for t in 0..1000u64 {
        sim.poke_u64("d", 7 + (t & 1)).unwrap();
        sim.settle().unwrap();
        std::hint::black_box(sim.peek("q").unwrap());
    }
    let allocs = thread_allocs() - before;
    assert_eq!(
        allocs, 0,
        "levelized fused settle allocated {allocs} times over 1000 settles"
    );
}

/// The bytecode spill path: a 192-bit mixed ALU (adds, xors, shifts, a
/// mux, and a 384-bit replication) re-settled every cycle under the
/// bytecode backend. Wide registers are pre-spilled at build time and
/// `std::mem::take`-cycled by the interpreter; `store_small` keeps their
/// heap capacity, so not even the narrow-in-wide transitions allocate.
#[test]
fn bytecode_wide_settle_allocates_nothing() {
    let src = "module m(input clk, input [191:0] a, input [191:0] b, output [191:0] q);
                 wire [191:0] s; assign s = a + b;
                 wire [191:0] x; assign x = s ^ a;
                 wire [383:0] r; assign r = {2{x}};
                 wire [191:0] m2; assign m2 = (a < b) ? r[383:192] : (s >> 3);
                 assign q = m2 - b;
               endmodule";
    let design = hwdbg_dataflow::elaborate(
        &hwdbg_rtl::parse(src).unwrap(),
        "m",
        &hwdbg_dataflow::NoBlackboxes,
    )
    .unwrap();
    let config = SimConfig::default().with_backend(hwdbg_sim::Backend::Bytecode);
    let mut sim = Simulator::new(design, &hwdbg_sim::NoModels, config).unwrap();
    let (lowered, total) = sim.compiled_design().lowering_coverage();
    assert_eq!(lowered, total, "wide ALU must lower fully");
    sim.poke_u64("b", 0x0BAD_F00D).unwrap();
    for t in 0..16u64 {
        sim.poke_u64("a", 0x00C0_FFEE ^ (t & 1)).unwrap();
        sim.settle().unwrap();
    }
    let before = thread_allocs();
    for t in 0..1000u64 {
        sim.poke_u64("a", 0x00C0_FFEE ^ (t & 1)).unwrap();
        sim.settle().unwrap();
        std::hint::black_box(sim.peek("q").unwrap());
    }
    let allocs = thread_allocs() - before;
    assert_eq!(
        allocs, 0,
        "bytecode wide settle allocated {allocs} times over 1000 settles"
    );
}
