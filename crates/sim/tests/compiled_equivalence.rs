//! Differential proof that the dependency-driven scheduler is observably
//! identical to full-pass settling.
//!
//! Both [`SettleMode`]s execute the same compiled schedule, so any
//! divergence here isolates a scheduling bug: a driver that should have
//! re-run and didn't (stale read-set), a missed poke/tick wake-up, or an
//! ordering difference that leaks through multiply-driven signals. Every
//! bug in the testbed runs its full workload under both modes and must
//! produce byte-identical `$display` logs, signal/memory state, and VCD
//! waveforms.

use hwdbg_ip::StdModels;
use hwdbg_sim::{RegInit, SettleMode, SimConfig, Simulator};
use hwdbg_testbed::{buggy_design, workloads, BugId};
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A `Write` sink the test can read back after the simulator takes
/// ownership of it.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn config(mode: SettleMode, init: RegInit) -> SimConfig {
    SimConfig {
        init,
        settle_mode: mode,
        ..SimConfig::default()
    }
}

/// Runs one bug's workload under a settle mode, returning the VCD bytes
/// and the simulator for state inspection.
fn run_mode(id: BugId, mode: SettleMode, init: RegInit) -> (Vec<u8>, Simulator, String) {
    let design = buggy_design(id).unwrap();
    let mut sim = Simulator::new(design, &StdModels, config(mode, init)).unwrap();
    let vcd = SharedBuf::default();
    sim.attach_vcd(vcd.clone()).unwrap();
    let outcome = workloads::run(id, &mut sim).unwrap();
    let bytes = vcd.0.lock().unwrap().clone();
    (bytes, sim, format!("{outcome:?}"))
}

fn assert_equivalent(id: BugId, init: RegInit) {
    let (vcd_e, sim_e, out_e) = run_mode(id, SettleMode::EventDriven, init);
    let (vcd_f, sim_f, out_f) = run_mode(id, SettleMode::FullPass, init);

    assert_eq!(out_e, out_f, "{id}: workload outcome diverged");
    assert_eq!(sim_e.logs(), sim_f.logs(), "{id}: $display logs diverged");
    assert_eq!(
        sim_e.dropped_logs(),
        sim_f.dropped_logs(),
        "{id}: dropped-log count diverged"
    );
    assert_eq!(
        sim_e.finished(),
        sim_f.finished(),
        "{id}: $finish state diverged"
    );

    // Every scalar signal, by name, must peek identically…
    for (name, value) in sim_e.state().iter_values() {
        assert_eq!(
            Some(value),
            sim_f.state().get(name),
            "{id}: signal `{name}` diverged"
        );
    }
    // …and every memory, element for element.
    for (name, info) in &sim_e.design().signals {
        if info.mem_depth.is_some() {
            assert_eq!(
                sim_e.state().mem(name),
                sim_f.state().mem(name),
                "{id}: memory `{name}` diverged"
            );
        }
    }

    assert_eq!(vcd_e, vcd_f, "{id}: VCD waveforms diverged");
}

#[test]
fn all_bugs_zero_init() {
    for id in BugId::ALL {
        assert_equivalent(id, RegInit::Zero);
    }
}

#[test]
fn all_bugs_random_init() {
    // Random register images exercise paths a zeroed design never takes
    // (missing-reset bugs, X-ish FSM states).
    for id in BugId::ALL {
        assert_equivalent(id, RegInit::Random(0xD1FF_2026));
    }
}

#[test]
fn checkpoint_restore_stays_equivalent() {
    // After a restore the event-driven scheduler must rebuild its dirty
    // sets from scratch; replaying the same stimulus under both modes must
    // still agree.
    let design = buggy_design(BugId::D2).unwrap();
    let run = |mode| {
        let mut sim = Simulator::new(
            design.clone(),
            &StdModels,
            config(mode, RegInit::Zero),
        )
        .unwrap();
        sim.poke_u64("pix_in_valid", 1).unwrap();
        sim.poke_u64("pix_in", 17).unwrap();
        sim.run("clk", 20).unwrap();
        let cp = sim.checkpoint().unwrap();
        sim.poke_u64("pix_in", 99).unwrap();
        sim.run("clk", 30).unwrap();
        sim.restore(&cp).unwrap();
        sim.poke_u64("pix_in", 42).unwrap();
        sim.run("clk", 10).unwrap();
        let state: Vec<(String, String)> = sim
            .state()
            .iter_values()
            .map(|(n, v)| (n.to_owned(), v.to_bin_string()))
            .collect();
        (state, sim.logs().to_vec())
    };
    assert_eq!(run(SettleMode::EventDriven), run(SettleMode::FullPass));
}
