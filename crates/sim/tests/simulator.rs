//! End-to-end simulator tests over small designs.

use hwdbg_bits::Bits;
use hwdbg_dataflow::{elaborate, NoBlackboxes};
use hwdbg_rtl::parse;
use hwdbg_sim::{NoModels, RegInit, SimConfig, SimError, Simulator};

fn sim(src: &str, top: &str) -> Simulator {
    let design = elaborate(&parse(src).unwrap(), top, &NoBlackboxes).unwrap();
    Simulator::new(design, &NoModels, SimConfig::default()).unwrap()
}

#[test]
fn counter_counts() {
    let mut s = sim(
        "module m(input clk, input rst, output reg [7:0] q);
            always @(posedge clk) begin
                if (rst) q <= 8'd0;
                else q <= q + 8'd1;
            end
         endmodule",
        "m",
    );
    s.poke_u64("rst", 1).unwrap();
    s.step("clk").unwrap();
    s.poke_u64("rst", 0).unwrap();
    s.run("clk", 5).unwrap();
    assert_eq!(s.peek("q").unwrap().to_u64(), 5);
}

#[test]
fn nonblocking_swap() {
    // The classic: nonblocking assignments swap; blocking would not.
    let mut s = sim(
        "module m(input clk, input load, output reg [3:0] a, output reg [3:0] b);
            always @(posedge clk) begin
                if (load) begin
                    a <= 4'd1;
                    b <= 4'd2;
                end else begin
                    a <= b;
                    b <= a;
                end
            end
         endmodule",
        "m",
    );
    s.poke_u64("load", 1).unwrap();
    s.step("clk").unwrap();
    s.poke_u64("load", 0).unwrap();
    s.step("clk").unwrap();
    assert_eq!(s.peek("a").unwrap().to_u64(), 2);
    assert_eq!(s.peek("b").unwrap().to_u64(), 1);
    s.step("clk").unwrap();
    assert_eq!(s.peek("a").unwrap().to_u64(), 1);
    assert_eq!(s.peek("b").unwrap().to_u64(), 2);
}

#[test]
fn blocking_in_clocked_block_is_sequential() {
    let mut s = sim(
        "module m(input clk, output reg [3:0] y);
            reg [3:0] t;
            always @(posedge clk) begin
                t = 4'd3;
                y <= t + 4'd1;
            end
         endmodule",
        "m",
    );
    s.step("clk").unwrap();
    assert_eq!(s.peek("y").unwrap().to_u64(), 4);
}

#[test]
fn comb_chain_settles() {
    let mut s = sim(
        "module m(input [3:0] a, output [3:0] d);
            wire [3:0] b;
            wire [3:0] c;
            assign b = a + 4'd1;
            assign c = b + 4'd1;
            assign d = c + 4'd1;
         endmodule",
        "m",
    );
    s.poke_u64("a", 2).unwrap();
    s.settle().unwrap();
    assert_eq!(s.peek("d").unwrap().to_u64(), 5);
}

#[test]
fn comb_loop_detected() {
    let mut s = sim(
        "module m(input a, output x);
            wire y;
            assign x = y ^ a;
            assign y = ~x;
         endmodule",
        "m",
    );
    // x = ~x ^ a oscillates for a = 0.
    s.poke_u64("a", 0).unwrap();
    match s.settle() {
        Err(SimError::CombLoop { unstable }) => {
            // The diagnostic names the signals still changing in the final
            // settle window — both nets of the cycle oscillate here.
            assert!(
                unstable.contains(&"x".to_string()) || unstable.contains(&"y".to_string()),
                "unstable set should name the loop: {unstable:?}"
            );
        }
        other => panic!("expected CombLoop, got {other:?}"),
    }
}

#[test]
fn always_comb_block_with_case() {
    let mut s = sim(
        "module m(input [1:0] sel, input [7:0] a, input [7:0] b, output reg [7:0] y);
            always @(*) begin
                case (sel)
                    2'd0: y = a;
                    2'd1: y = b;
                    default: y = 8'hFF;
                endcase
            end
         endmodule",
        "m",
    );
    s.poke_u64("a", 10).unwrap();
    s.poke_u64("b", 20).unwrap();
    s.poke_u64("sel", 1).unwrap();
    s.settle().unwrap();
    assert_eq!(s.peek("y").unwrap().to_u64(), 20);
    s.poke_u64("sel", 3).unwrap();
    s.settle().unwrap();
    assert_eq!(s.peek("y").unwrap().to_u64(), 0xFF);
}

#[test]
fn memory_write_read() {
    let mut s = sim(
        "module m(input clk, input we, input [3:0] wa, input [3:0] ra,
                  input [7:0] din, output [7:0] dout);
            reg [7:0] mem [0:15];
            assign dout = mem[ra];
            always @(posedge clk) if (we) mem[wa] <= din;
         endmodule",
        "m",
    );
    s.poke_u64("we", 1).unwrap();
    s.poke_u64("wa", 7).unwrap();
    s.poke_u64("din", 0xAB).unwrap();
    s.step("clk").unwrap();
    s.poke_u64("we", 0).unwrap();
    s.poke_u64("ra", 7).unwrap();
    s.settle().unwrap();
    assert_eq!(s.peek("dout").unwrap().to_u64(), 0xAB);
}

#[test]
fn buffer_overflow_semantics_pow2() {
    // Power-of-two memory: overflowing index truncates to a wrong slot
    // (paper §3.2.1 outcome 1).
    let mut s = sim(
        "module m(input clk, input [4:0] wa, input [7:0] din);
            reg [7:0] mem [0:7];
            always @(posedge clk) mem[wa] <= din;
         endmodule",
        "m",
    );
    s.poke_u64("wa", 9).unwrap(); // 9 & 7 = 1
    s.poke_u64("din", 0x55).unwrap();
    s.step("clk").unwrap();
    assert_eq!(s.peek_mem("mem", 1).unwrap().to_u64(), 0x55);
    assert_eq!(s.peek_mem("mem", 9).unwrap().to_u64(), 0);
}

#[test]
fn buffer_overflow_semantics_non_pow2() {
    // Non-power-of-two: out-of-range write is dropped (outcome 2).
    let mut s = sim(
        "module m(input clk, input [4:0] wa, input [7:0] din);
            reg [7:0] mem [0:9];
            always @(posedge clk) mem[wa] <= din;
         endmodule",
        "m",
    );
    s.poke_u64("wa", 12).unwrap();
    s.poke_u64("din", 0x77).unwrap();
    s.step("clk").unwrap();
    for i in 0..10 {
        assert_eq!(s.peek_mem("mem", i).unwrap().to_u64(), 0, "slot {i}");
    }
}

#[test]
fn display_capture_and_finish() {
    let mut s = sim(
        r#"module m(input clk, output reg [3:0] n);
            always @(posedge clk) begin
                n <= n + 4'd1;
                $display("n=%0d", n);
                if (n == 4'd2) $finish;
            end
         endmodule"#,
        "m",
    );
    s.run("clk", 100).unwrap();
    assert!(s.finished());
    let msgs: Vec<_> = s.logs().iter().map(|l| l.message.clone()).collect();
    assert_eq!(msgs, vec!["n=0", "n=1", "n=2"]);
    assert_eq!(s.cycle("clk"), 3);
}

#[test]
fn watchdog_detects_stuck() {
    let mut s = sim(
        "module m(input clk, output reg done);
            always @(posedge clk) done <= done; // never completes
         endmodule",
        "m",
    );
    let err = s
        .run_until("clk", 50, |s| s.peek("done").unwrap().to_bool())
        .unwrap_err();
    assert!(matches!(err, SimError::Watchdog { cycles: 50 }));
}

#[test]
fn run_until_succeeds() {
    let mut s = sim(
        "module m(input clk, output reg [3:0] q, output done);
            assign done = q == 4'd9;
            always @(posedge clk) q <= q + 4'd1;
         endmodule",
        "m",
    );
    let n = s
        .run_until("clk", 100, |s| s.peek("done").unwrap().to_bool())
        .unwrap();
    assert_eq!(n, 9);
}

#[test]
fn random_init_exposes_missing_reset() {
    // Failure-to-update pattern from §3.2.5: output_counter is never reset.
    let src = "module m(input clk, input rst,
                        output reg [7:0] input_counter, output reg [7:0] output_counter);
        always @(posedge clk) begin
            input_counter <= input_counter + 8'd1;
            output_counter <= output_counter + 8'd1;
            if (rst) input_counter <= 8'd0;
        end
     endmodule";
    let design = elaborate(&parse(src).unwrap(), "m", &NoBlackboxes).unwrap();
    let mut s = Simulator::new(
        design,
        &NoModels,
        SimConfig {
            init: RegInit::Random(7),
            ..SimConfig::default()
        },
    )
    .unwrap();
    s.poke_u64("rst", 1).unwrap();
    s.step("clk").unwrap();
    s.poke_u64("rst", 0).unwrap();
    s.run("clk", 3).unwrap();
    assert_eq!(s.peek("input_counter").unwrap().to_u64(), 3);
    // With seed 7 the uninitialized register is nonzero, so the counters
    // disagree — the bug's symptom.
    assert_ne!(
        s.peek("output_counter").unwrap().to_u64(),
        s.peek("input_counter").unwrap().to_u64()
    );
}

#[test]
fn dynamic_bit_write_out_of_range_ignored() {
    let mut s = sim(
        "module m(input clk, input [3:0] idx, input v);
            reg [7:0] bits;
            always @(posedge clk) bits[idx] <= v;
         endmodule",
        "m",
    );
    s.poke_u64("idx", 12).unwrap();
    s.poke_u64("v", 1).unwrap();
    s.step("clk").unwrap();
    assert_eq!(s.peek("bits").unwrap().to_u64(), 0);
    s.poke_u64("idx", 3).unwrap();
    s.step("clk").unwrap();
    assert_eq!(s.peek("bits").unwrap().to_u64(), 8);
}

#[test]
fn part_select_and_concat_lhs() {
    let mut s = sim(
        "module m(input clk, input [7:0] d, output reg [15:0] w, output reg [3:0] hi, output reg [3:0] lo);
            always @(posedge clk) begin
                w[7:0] <= d;
                w[15:8] <= 8'hA5;
                {hi, lo} <= d;
            end
         endmodule",
        "m",
    );
    s.poke_u64("d", 0x3C).unwrap();
    s.step("clk").unwrap();
    assert_eq!(s.peek("w").unwrap().to_u64(), 0xA53C);
    assert_eq!(s.peek("hi").unwrap().to_u64(), 0x3);
    assert_eq!(s.peek("lo").unwrap().to_u64(), 0xC);
}

#[test]
fn for_loop_executes() {
    let mut s = sim(
        "module m(input clk, output reg [7:0] sum);
            integer i;
            always @(posedge clk) begin
                sum = 8'd0;
                for (i = 0; i < 5; i = i + 1) sum = sum + 8'd2;
            end
         endmodule",
        "m",
    );
    s.step("clk").unwrap();
    assert_eq!(s.peek("sum").unwrap().to_u64(), 10);
}

#[test]
fn hierarchical_design_simulates() {
    let mut s = sim(
        "module stage(input clk, input [7:0] d, output reg [7:0] q);
            always @(posedge clk) q <= d + 8'd1;
         endmodule
         module top(input clk, input [7:0] d, output [7:0] q);
            wire [7:0] mid;
            stage s1 (.clk(clk), .d(d), .q(mid));
            stage s2 (.clk(clk), .d(mid), .q(q));
         endmodule",
        "top",
    );
    s.poke_u64("d", 10).unwrap();
    s.run("clk", 3).unwrap();
    assert_eq!(s.peek("q").unwrap().to_u64(), 12);
}

#[test]
fn two_clock_domains() {
    let mut s = sim(
        "module m(input clka, input clkb, output reg [3:0] ca, output reg [3:0] cb);
            always @(posedge clka) ca <= ca + 4'd1;
            always @(posedge clkb) cb <= cb + 4'd1;
         endmodule",
        "m",
    );
    s.step("clka").unwrap();
    s.step("clka").unwrap();
    s.step("clkb").unwrap();
    assert_eq!(s.peek("ca").unwrap().to_u64(), 2);
    assert_eq!(s.peek("cb").unwrap().to_u64(), 1);
}

#[test]
fn signed_comparison() {
    let mut s = sim(
        "module m(input clk, input signed [7:0] a, input signed [7:0] b, output reg lt);
            always @(posedge clk) lt <= a < b;
         endmodule",
        "m",
    );
    s.poke("a", Bits::from_u64(8, 0xFE)).unwrap(); // -2
    s.poke_u64("b", 1).unwrap();
    s.step("clk").unwrap();
    assert!(s.peek("lt").unwrap().to_bool());
}

#[test]
fn width_cast_truncates_like_the_paper() {
    // §3.2.2: left <= 42'(right) >> 6 loses bits [47:42].
    let mut s = sim(
        "module m(input clk, input [63:0] right, output reg [41:0] left);
            always @(posedge clk) left <= 42'(right) >> 6;
         endmodule",
        "m",
    );
    // Meaningful data in bits [47:6].
    let val = 0xFFF0_0000_0040u64; // bits 46..43 set plus bit 6
    s.poke("right", Bits::from_u64(64, val)).unwrap();
    s.step("clk").unwrap();
    let got = s.peek("left").unwrap().to_u64();
    let correct = (val & ((1u64 << 48) - 1)) >> 6;
    assert_ne!(got, correct, "truncation must corrupt the value");
    let truncated = (val & ((1u64 << 42) - 1)) >> 6;
    assert_eq!(got, truncated);
}

#[test]
fn checkpoint_and_restore_rewind_time() {
    let mut s = sim(
        "module m(input clk, output reg [7:0] q);
            always @(posedge clk) begin
                q <= q + 8'd1;
                $display(\"q=%0d\", q);
            end
         endmodule",
        "m",
    );
    s.run("clk", 5).unwrap();
    let cp = s.checkpoint().unwrap();
    let logs_at_cp = s.logs().len();
    s.run("clk", 5).unwrap();
    assert_eq!(s.peek("q").unwrap().to_u64(), 10);
    s.restore(&cp).unwrap();
    assert_eq!(s.peek("q").unwrap().to_u64(), 5);
    assert_eq!(s.cycle("clk"), 5);
    assert_eq!(s.logs().len(), logs_at_cp);
    // Re-execution after restore is deterministic.
    s.run("clk", 5).unwrap();
    assert_eq!(s.peek("q").unwrap().to_u64(), 10);
}

#[test]
fn vcd_attachment_captures_waveform() {
    use std::sync::{Arc, Mutex};

    #[derive(Clone)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);
    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
    let mut s = sim(
        "module m(input clk, output reg [3:0] q);
            always @(posedge clk) q <= q + 4'd1;
         endmodule",
        "m",
    );
    s.attach_vcd(buf.clone()).unwrap();
    s.run("clk", 4).unwrap();
    let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    assert!(text.contains("$enddefinitions"));
    assert!(text.contains("#1"));
    assert!(text.contains("b0011"), "{text}");
}

#[test]
fn for_loop_cap_is_an_error() {
    let mut s = sim(
        "module m(input clk, output reg [7:0] x);
            integer i;
            always @(posedge clk) begin
                for (i = 0; i < 200000; i = i + 1) x = x + 8'd1;
            end
         endmodule",
        "m",
    );
    assert!(matches!(s.step("clk"), Err(SimError::LoopCap(_))));
}

#[test]
fn log_capacity_drops_oldest() {
    use hwdbg_sim::SimConfig;
    let design = elaborate(
        &parse(
            r#"module m(input clk, output reg [7:0] n);
                always @(posedge clk) begin
                    n <= n + 8'd1;
                    $display("n=%0d", n);
                end
             endmodule"#,
        )
        .unwrap(),
        "m",
        &NoBlackboxes,
    )
    .unwrap();
    let mut s = Simulator::new(
        design,
        &NoModels,
        SimConfig {
            log_capacity: 3,
            ..SimConfig::default()
        },
    )
    .unwrap();
    s.run("clk", 10).unwrap();
    assert_eq!(s.logs().len(), 3);
    assert_eq!(s.dropped_logs(), 7);
    assert_eq!(s.logs()[0].message, "n=7");
}

#[test]
fn poke_and_peek_unknown_signal_error() {
    let mut s = sim(
        "module m(input clk, output reg q);
            always @(posedge clk) q <= ~q;
         endmodule",
        "m",
    );
    assert!(matches!(
        s.poke_u64("ghost", 1),
        Err(SimError::UnknownSignal(_))
    ));
    assert!(matches!(s.peek("ghost"), Err(SimError::UnknownSignal(_))));
    assert!(s.peek_mem("q", 0).is_err(), "q is not a memory");
}

#[test]
fn restore_unpins_forces_applied_after_checkpoint() {
    // Regression: `Checkpoint` used to omit the force map, so a stuck-at
    // applied after the checkpoint kept pinning the signal after rewind.
    let mut s = sim(
        "module m(input clk, output reg [7:0] q);
            always @(posedge clk) q <= q + 8'd1;
         endmodule",
        "m",
    );
    s.run("clk", 3).unwrap();
    let cp = s.checkpoint().unwrap();
    s.force("q", Bits::from_u64(8, 0xAA)).unwrap();
    s.run("clk", 2).unwrap();
    assert_eq!(s.peek("q").unwrap().to_u64(), 0xAA, "pinned while forced");
    s.restore(&cp).unwrap();
    assert!(
        s.forced_signals().is_empty(),
        "restore must rewind the force set"
    );
    assert_eq!(s.peek("q").unwrap().to_u64(), 3);
    s.run("clk", 2).unwrap();
    assert_eq!(s.peek("q").unwrap().to_u64(), 5, "q must advance, not stay pinned");
}

#[test]
fn checkpoint_preserves_forces_active_at_capture() {
    // The dual direction: a force active when the checkpoint was taken
    // must still be active after restore.
    let mut s = sim(
        "module m(input clk, output reg [7:0] q);
            always @(posedge clk) q <= q + 8'd1;
         endmodule",
        "m",
    );
    s.force("q", Bits::from_u64(8, 7)).unwrap();
    s.run("clk", 2).unwrap();
    let cp = s.checkpoint().unwrap();
    s.release("q").unwrap();
    s.run("clk", 2).unwrap();
    assert_eq!(s.peek("q").unwrap().to_u64(), 9);
    s.restore(&cp).unwrap();
    assert_eq!(s.forced_signals(), vec!["q".to_string()]);
    s.run("clk", 2).unwrap();
    assert_eq!(s.peek("q").unwrap().to_u64(), 7, "restored force still pins");
}

#[test]
fn force_on_promoted_signal_demotes_its_region() {
    // Under the levelized backend the a→b→q chain fuses into one region
    // with `a` and `b` promoted to pinned registers — which normally skip
    // the force map entirely. A force on a promoted signal must demote
    // the region to its per-unit programs (which honor forces) and a
    // release must restore the fused fast path, with correct values
    // throughout.
    let mut s = sim(
        "module m(input clk, input [7:0] d, output [7:0] q);
            wire [7:0] a; assign a = d + 8'd1;
            wire [7:0] b; assign b = a + 8'd1;
            assign q = b + 8'd1;
         endmodule",
        "m",
    );
    let (regions, _, fused) = s.compiled_design().region_stats();
    assert!(regions >= 1 && fused >= 2, "chain must fuse with a/b promoted");
    s.poke_u64("d", 10).unwrap();
    s.settle().unwrap();
    assert_eq!(s.peek("q").unwrap().to_u64(), 13);
    s.force("a", Bits::from_u64(8, 0x40)).unwrap();
    s.poke_u64("d", 20).unwrap();
    s.settle().unwrap();
    assert_eq!(s.peek("a").unwrap().to_u64(), 0x40, "force must pin a");
    assert_eq!(
        s.peek("q").unwrap().to_u64(),
        0x42,
        "downstream of a forced promoted signal must see the forced value"
    );
    s.release("a").unwrap();
    s.settle().unwrap();
    assert_eq!(s.peek("q").unwrap().to_u64(), 23, "release must recompute the chain");
}

#[test]
fn run_until_reports_early_finish() {
    // Regression: `$finish` before the condition used to return Ok, so a
    // watchdog for the "Stuck" symptom silently passed on premature
    // termination.
    let mut s = sim(
        "module m(input clk, output reg [3:0] n, output done);
            assign done = n == 4'd9;
            always @(posedge clk) begin
                n <= n + 4'd1;
                if (n == 4'd2) $finish;
            end
         endmodule",
        "m",
    );
    let err = s
        .run_until("clk", 50, |s| s.peek("done").unwrap().to_bool())
        .unwrap_err();
    assert!(
        matches!(err, SimError::EarlyFinish { cycles: 3 }),
        "expected EarlyFinish after 3 cycles, got {err:?}"
    );
    // And it maps to the stable diagnostic code.
    let diag: hwdbg_diag::HwdbgError = err.into();
    assert_eq!(diag.code.as_str(), "E0406");
}

#[test]
fn metrics_counters_track_hot_path() {
    let src = "module m(input clk, input rst, output reg [7:0] q, output [7:0] y);
            assign y = q ^ 8'h5A;
            always @(posedge clk) begin
                if (rst) q <= 8'd0;
                else q <= q + 8'd1;
            end
         endmodule";
    let design = elaborate(&parse(src).unwrap(), "m", &NoBlackboxes).unwrap();
    let mut s = Simulator::new(
        design,
        &NoModels,
        SimConfig::default().with_metrics(true),
    )
    .unwrap();
    s.poke_u64("rst", 0).unwrap();
    s.run("clk", 10).unwrap();
    s.force("q", Bits::from_u64(8, 3)).unwrap();
    s.run("clk", 2).unwrap();
    let c = *s.counters().expect("metrics enabled");
    assert_eq!(c.steps, 12);
    assert!(c.settles >= 24, "two settles per step: {c:?}");
    assert!(c.full_settles >= 1, "initial settle is a full pass: {c:?}");
    assert!(c.units_executed > 0, "{c:?}");
    assert!(c.worklist_pushes > 0, "{c:?}");
    assert_eq!(c.proc_runs, 12);
    assert!(c.nb_commits >= 12, "{c:?}");
    assert!(c.pokes > 0, "{c:?}");
    assert!(c.force_hits > 0, "forced q swallows clocked writes: {c:?}");
    s.reset_counters();
    assert_eq!(*s.counters().unwrap(), Default::default());

    // Metrics off (the default): no registry is allocated at all.
    let mut off = sim(src, "m");
    off.run("clk", 2).unwrap();
    assert!(off.counters().is_none());
}

#[test]
fn step_after_finish_is_a_no_op() {
    let mut s = sim(
        "module m(input clk, output reg [3:0] n);
            always @(posedge clk) begin
                n <= n + 4'd1;
                if (n == 4'd1) $finish;
            end
         endmodule",
        "m",
    );
    s.run("clk", 10).unwrap();
    let n = s.peek("n").unwrap().to_u64();
    s.step("clk").unwrap();
    assert_eq!(s.peek("n").unwrap().to_u64(), n, "frozen after $finish");
}

#[test]
fn stimulus_plan_pokes_through_interned_ids() {
    let mut s = sim(
        "module m(input clk, input [7:0] d, input en, output reg [7:0] q);
            always @(posedge clk) if (en) q <= d;
         endmodule",
        "m",
    );
    let plan = s.stimulus_plan(&["d", "en"]).unwrap();
    let (d, en) = (plan.id(0), plan.id(1));
    s.poke_id(d, &Bits::from_u64(8, 0x5A)).unwrap();
    s.poke_id_u64(en, 1);
    s.step("clk").unwrap();
    assert_eq!(s.peek("q").unwrap().to_u64(), 0x5A);
    // Interned pokes behave exactly like named ones: gated off, q holds.
    s.poke_id_u64(en, 0);
    s.poke_id_u64(d, 0x77);
    s.step("clk").unwrap();
    assert_eq!(s.peek("q").unwrap().to_u64(), 0x5A);
}

#[test]
fn interned_poke_rejects_width_mismatch_and_mems() {
    let mut s = sim(
        "module m(input clk, input [7:0] d, input [1:0] wa, output reg [7:0] q);
            reg [7:0] ram [0:3];
            always @(posedge clk) begin
                ram[wa] <= d;
                q <= ram[0];
            end
         endmodule",
        "m",
    );
    let d = s.stimulus_plan(&["d"]).unwrap().id(0);
    assert!(matches!(
        s.poke_id(d, &Bits::from_u64(4, 1)),
        Err(SimError::WidthMismatch { expected: 8, got: 4, .. })
    ));
    // Memories have no scalar slot: both the plan and the poke refuse them.
    assert!(s.stimulus_plan(&["ram"]).is_err());
    assert!(s.stimulus_plan(&["nope"]).is_err());
}
