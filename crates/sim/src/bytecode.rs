//! Bytecode backend: flat register-machine programs lowered from the
//! compiled schedule.
//!
//! The tree-walker in [`crate::compile`] pays a match dispatch and a `Box`
//! pointer chase per AST node on every settle. This module lowers each
//! comb unit / clocked process **once**, at [`CompiledDesign`]
//! (`crate::CompiledDesign`) build time, into a flat `Vec<Op>` whose
//! operands are pre-resolved register indices and [`SigId`] state slots,
//! then executes it with a single dispatch loop.
//!
//! Two register files live in the per-simulator [`EvalScratch`]:
//!
//! * **narrow** (`u64`): every value whose static width is ≤ 64 bits —
//!   the dominant path. Values are *canonical* (bits above the static
//!   width are zero), so comparisons and stores need no re-masking.
//! * **wide** ([`Bits`], pre-spilled to the design max width): the spill
//!   path for ≥ 65-bit values, which reuses the exact `*_into` limb ops
//!   the tree-walker calls — bit-identical by construction.
//!
//! Register allocation is a per-statement watermark over the files: each
//! statement's temporaries are released when it completes, so program
//! register counts stay proportional to the deepest expression, not the
//! unit size. Superops fuse the hot shapes: constant-bound slices
//! ([`Op::SliceSig`]), two-part concats ([`Op::Concat2`]), eager muxes
//! ([`Op::Mux`]), compare+branch ([`Op::JCmpF`], [`Op::JImmEq`]), and
//! add/sub with the result mask baked in.
//!
//! Lowering is **total-or-nothing per unit**: any construct whose static
//! width cannot be proven (non-constant part-select bounds, non-constant
//! replication counts, empty concats, nested concat lvalues) returns
//! `None` and the whole unit keeps the tree-walker — the differential
//! suite (`crates/sim/tests/backend_differential.rs`) proves the two
//! backends byte-identical either way.

use crate::compile::{CCaseArm, CExec, CExpr, CLValue, CNbWrite, CStmt, EvalScratch, Flow};
use crate::eval::{apply_binary_signed_into, effective_mem_addr};
use crate::state::SimState;
use crate::{LogRecord, SimError};
use hwdbg_bits::{fixed, Bits};
use hwdbg_dataflow::{apply_binary_into, SigId};
use hwdbg_rtl::{BinaryOp, UnaryOp};

/// A value source: a narrow (`u64`) or wide ([`Bits`]) register index.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Src {
    N(u16),
    W(u16),
}

/// Comparison kind for the fused narrow compare ops.
#[derive(Debug, Clone, Copy)]
pub(crate) enum CmpKind {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl CmpKind {
    fn of(op: BinaryOp) -> Option<CmpKind> {
        Some(match op {
            BinaryOp::Lt => CmpKind::Lt,
            BinaryOp::Le => CmpKind::Le,
            BinaryOp::Gt => CmpKind::Gt,
            BinaryOp::Ge => CmpKind::Ge,
            BinaryOp::Eq => CmpKind::Eq,
            BinaryOp::Ne => CmpKind::Ne,
            _ => return None,
        })
    }
}

/// One register-machine instruction. All operands are pre-resolved at
/// lowering time; the interpreter never inspects widths or reprs on the
/// narrow path.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Op {
    // ---- narrow loads ----
    /// `n[dst] = imm`.
    LdConst { dst: u16, imm: u64 },
    /// `n[dst] = state[sig]` (slot width ≤ 64, canonical).
    LdSig { dst: u16, sig: SigId },
    /// `n[dst] = i < width && state[sig].bit(i)` where `i = n[idx]`.
    LdBitIdx { dst: u16, sig: SigId, width: u32, idx: u16 },
    /// `n[dst] = mem[slot][n[idx]]` (≤ 64-bit elements; OOR reads zero).
    LdMem { dst: u16, slot: u32, idx: u16 },
    /// Constant-bound slice of a (possibly wide) state signal:
    /// `n[dst] = (state[sig] >> lo) & mask`.
    SliceSig { dst: u16, sig: SigId, lo: u32, mask: u64 },
    /// Constant-bound slice of a narrow register (`lo < 64`).
    SliceReg { dst: u16, src: u16, lo: u32, mask: u64 },
    /// Constant-bound narrow slice of a wide register.
    SliceWideReg { dst: u16, src: u16, lo: u32, mask: u64 },
    // ---- narrow ALU (canonical in, canonical out) ----
    Add { dst: u16, a: u16, b: u16, mask: u64 },
    Sub { dst: u16, a: u16, b: u16, mask: u64 },
    Mul { dst: u16, a: u16, b: u16, mask: u64 },
    /// Unsigned division; division by zero yields 0 (tree semantics).
    Div { dst: u16, a: u16, b: u16 },
    Mod { dst: u16, a: u16, b: u16 },
    And { dst: u16, a: u16, b: u16 },
    Or { dst: u16, a: u16, b: u16 },
    Xor { dst: u16, a: u16, b: u16 },
    Xnor { dst: u16, a: u16, b: u16, mask: u64 },
    Not { dst: u16, src: u16, mask: u64 },
    Neg { dst: u16, src: u16, mask: u64 },
    LogNot { dst: u16, src: u16 },
    RedAnd { dst: u16, src: u16, mask: u64 },
    RedOr { dst: u16, src: u16 },
    RedXor { dst: u16, src: u16 },
    RedXnor { dst: u16, src: u16 },
    /// Sign-extend from a narrower width then re-truncate:
    /// `n[dst] = (((n[src] << shift) as i64 >> shift) as u64) & mask`.
    Sext { dst: u16, src: u16, shift: u32, mask: u64 },
    /// Unsigned comparison of canonical values.
    Cmp { dst: u16, a: u16, b: u16, kind: CmpKind },
    /// Signed comparison: each operand sign-extended by its own shift.
    Scmp { dst: u16, a: u16, b: u16, sa: u32, sb: u32, kind: CmpKind },
    LogAnd { dst: u16, a: u16, b: u16 },
    LogOr { dst: u16, a: u16, b: u16 },
    /// `n[dst] = n[a] << n[amt]` at result width `w` (≥ w shifts to 0).
    Shl { dst: u16, a: u16, amt: u16, w: u32 },
    Shr { dst: u16, a: u16, amt: u16, w: u32 },
    /// Arithmetic shift right at width `w` (sign bit is bit `w-1`).
    AShr { dst: u16, a: u16, amt: u16, w: u32 },
    /// Eager mux: `n[dst] = (n[cond] != 0 ? n[t] : n[f]) & mask`.
    Mux { dst: u16, cond: u16, t: u16, f: u16, mask: u64 },
    /// Two-part concat: `n[dst] = (n[hi] << lo_w) | n[lo]`.
    Concat2 { dst: u16, hi: u16, lo: u16, lo_w: u32 },
    /// `{n{v}}` replication, total ≤ 64 bits.
    RepeatN { dst: u16, src: u16, src_w: u32, n: u32 },
    /// Resize/move: `n[dst] = n[src] & mask`.
    MaskTo { dst: u16, src: u16, mask: u64 },
    /// Truncate a wide register into a narrow one.
    NarrowFromWide { dst: u16, src: u16, mask: u64 },
    // ---- wide ops (Bits registers; reuse the tree-walker's limb ops) ----
    /// `w[dst] = consts[cidx]`.
    WLdConst { dst: u16, cidx: u16 },
    WLdSig { dst: u16, sig: SigId },
    WLdMem { dst: u16, slot: u32, idx: u16 },
    /// Zero-extend a narrow register into a wide one at width `w`.
    Widen { dst: u16, src: u16, w: u32 },
    /// `w[dst] = w[src]` resized to `w` (zero-extend / truncate).
    WResizeFrom { dst: u16, src: u16, w: u32 },
    /// Full binary dispatch at the operands' natural widths — exactly the
    /// tree-walker's `CExpr::Binary` arm, including the pooled-buffer
    /// `divmod_into` path for > 128-bit `/` and `%`.
    WBin { dst: u16, a: u16, b: u16, op: BinaryOp, signed: bool },
    /// Fixed-limb unrolled wide binary ([`hwdbg_bits::fixed`]): unsigned
    /// add/sub/and/or/xor over equal-width operands of exactly `limbs`
    /// (2 or 4) limbs, skipping the generic limb loop.
    WBinF { dst: u16, a: u16, b: u16, op: BinaryOp, limbs: u8 },
    /// Boolean-result binary over wide operands; result lands narrow.
    WCmp { dst: u16, a: u16, b: u16, op: BinaryOp, signed: bool },
    /// Fixed-limb unsigned wide compare; result lands narrow.
    WCmpF { dst: u16, a: u16, b: u16, kind: CmpKind, limbs: u8 },
    WNot { dst: u16, src: u16 },
    WNeg { dst: u16, src: u16 },
    /// Reduction / logical-not over a wide register; result lands narrow.
    WReduce { dst: u16, src: u16, op: UnaryOp },
    /// Truthiness of a wide register into a narrow one.
    WTest { dst: u16, src: u16 },
    /// Constant-bound wide slice of a state signal.
    WSliceSig { dst: u16, sig: SigId, lo: u32, w: u32 },
    /// Constant-bound wide slice of a wide register.
    WSliceReg { dst: u16, src: u16, lo: u32, w: u32 },
    /// Concat append: `w[dst] = {w[dst], n[src] at width w}`.
    WPushN { dst: u16, src: u16, w: u32 },
    /// Concat append: `w[dst] = {w[dst], w[src]}`.
    WPushW { dst: u16, src: u16 },
    WRepeat { dst: u16, src: u16, n: u32 },
    WMov { dst: u16, src: u16 },
    // ---- control flow ----
    Jmp { target: u32 },
    /// Jump when `n[src] == 0`.
    Jz { src: u16, target: u32 },
    Jnz { src: u16, target: u32 },
    /// Fused `if (a ==/!= b)`: jump to `target` when the condition is
    /// FALSE (`eq` records whether the source op was `==`).
    JCmpF { a: u16, b: u16, eq: bool, target: u32 },
    /// Case dispatch against a constant label: jump when equal.
    JImmEq { src: u16, imm: u64, target: u32 },
    /// Case dispatch against a computed label: jump when equal.
    JEq { a: u16, b: u16, target: u32 },
    // ---- stores ----
    /// Hot path: blocking whole-signal store of a narrow value (the slot
    /// itself may be wide; `update_u64` zero-fills the upper limbs).
    StSigN { sig: SigId, src: u16 },
    /// Blind flush of a pinned (promoted) register to its signal slot: no
    /// force check, no compare, no changed-list push. Only emitted inside
    /// fused region programs, where the promoted signal's readers are all
    /// in-region and a force on the signal demotes the whole region.
    StFlushN { sig: SigId, src: u16 },
    /// General whole-signal store (wide value and/or nonblocking).
    StSig { sig: SigId, w: u32, src: Src, nb: bool },
    /// Single-bit store; OOB drops (or errors under strict bounds).
    StBit { sig: SigId, width: u32, idx: u16, src: u16, nb: bool },
    /// Constant-bound part-select store.
    StSlice { sig: SigId, lo: u32, w: u32, src: Src, nb: bool },
    /// Memory-element store through the §3.2.1 effective-address rule.
    StMem { sig: SigId, slot: u32, depth: u64, width: u32, idx: u16, src: Src, nb: bool },
    /// Strict-bounds pre-check for concat-lvalue parts: raises the same
    /// error resolve would, *before* any part commits.
    CkBit { sig: SigId, width: u32, idx: u16 },
    CkMem { sig: SigId, depth: u64, idx: u16 },
    // ---- statements ----
    /// `for`-loop iteration guard: `++n[ctr] > for_cap` raises `LoopCap`.
    IncCheckCap { ctr: u16, var: SigId },
    /// `$display` via `displays[spec]` (no-op when logging is off).
    Display { spec: u16 },
    Finish,
}

/// A lowered `$display`: the format string plus each argument's register,
/// natural width, and declared signedness.
#[derive(Debug, Clone)]
pub(crate) struct DisplaySpec {
    pub format: String,
    pub args: Vec<(Src, u32, bool)>,
}

/// One unit's lowered program plus its register-file requirements.
#[derive(Debug)]
pub(crate) struct BcProgram {
    pub ops: Vec<Op>,
    pub displays: Vec<DisplaySpec>,
    pub wconsts: Vec<Bits>,
    pub n_narrow: usize,
    pub n_wide: usize,
}

impl BcProgram {
    /// Whether the program can raise `Flow::Finished`. Units that can
    /// finish are excluded from region fusion so `$finish` ordering stays
    /// identical to per-unit dispatch.
    pub(crate) fn has_finish(&self) -> bool {
        self.ops.iter().any(|op| matches!(op, Op::Finish))
    }
}

/// Fixed-limb kernel eligibility: unsigned, equal operand widths, and a
/// limb count with an unrolled kernel (2 = 65..=128 bits, 4 = 193..=256).
/// Equal static widths also guarantee the generic path's in-place operand
/// resize is a no-op, so the kernels see canonical operands.
#[inline]
fn fixed_limbs(signed: bool, aw: u32, bw: u32) -> Option<u8> {
    if signed || aw != bw || aw <= 64 {
        return None;
    }
    match aw.div_ceil(64) {
        2 => Some(2),
        4 => Some(4),
        _ => None,
    }
}

#[inline]
fn mask_of(w: u32) -> u64 {
    debug_assert!((1..=64).contains(&w));
    if w >= 64 {
        u64::MAX
    } else {
        (1u64 << w) - 1
    }
}

/// Sign-extends the low `64 - shift` bits of `v` across the full u64.
#[inline]
fn sext64(v: u64, shift: u32) -> i64 {
    ((v << shift) as i64) >> shift
}

/// Extracts up to 64 bits at bit offset `lo` from a limb slice, masking to
/// the slice width. Bits beyond the source read as zero (limbs are
/// canonical, so the final partial limb's high bits are already zero).
#[inline]
fn extract64(limbs: &[u64], lo: u32, mask: u64) -> u64 {
    let li = (lo / 64) as usize;
    let off = lo % 64;
    let lo64 = limbs.get(li).copied().unwrap_or(0);
    let v = if off == 0 {
        lo64
    } else {
        let hi64 = limbs.get(li + 1).copied().unwrap_or(0);
        (lo64 >> off) | (hi64 << (64 - off))
    };
    v & mask
}

// ---------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------

/// Lowers one unit body. `sig_width` is indexed by `SigId`, `mem_width`
/// by memory slot. Returns `None` when any construct cannot be statically
/// resolved — the unit then keeps the tree-walker.
pub(crate) fn lower_unit(
    body: &CStmt,
    sig_width: &[u32],
    mem_width: &[u32],
) -> Option<BcProgram> {
    let mut l = Lower {
        sig_width,
        mem_width,
        promoted: &[],
        ops: Vec::new(),
        displays: Vec::new(),
        wconsts: Vec::new(),
        next_n: 0,
        max_n: 0,
        next_w: 0,
        max_w: 0,
    };
    l.stmt(body)?;
    Some(BcProgram {
        ops: l.ops,
        displays: l.displays,
        wconsts: l.wconsts,
        n_narrow: l.max_n as usize,
        n_wide: l.max_w as usize,
    })
}

/// Sentinel for "not promoted" in a promotion map.
pub(crate) const NO_PROMOTION: u32 = u32::MAX;

/// Lowers the member bodies of one fused acyclic region into a single
/// straight-line program, in topological rank order. `promoted` maps a
/// signal index to a pinned narrow register (or [`NO_PROMOTION`]); the
/// first `n_promoted` narrow registers are reserved for those pins and
/// survive across member bodies — each promoted signal is written by an
/// unconditional plain assignment in an earlier-ranked member than any
/// reader, so no seeding from state is needed. Returns `None` when any
/// member fails to lower; the caller then falls back to per-unit
/// execution for the whole region.
pub(crate) fn lower_region(
    bodies: &[&CStmt],
    n_promoted: u16,
    promoted: &[u32],
    sig_width: &[u32],
    mem_width: &[u32],
) -> Option<BcProgram> {
    let mut l = Lower {
        sig_width,
        mem_width,
        promoted,
        ops: Vec::new(),
        displays: Vec::new(),
        wconsts: Vec::new(),
        next_n: n_promoted,
        max_n: n_promoted,
        next_w: 0,
        max_w: 0,
    };
    for body in bodies {
        l.stmt(body)?;
    }
    Some(BcProgram {
        ops: l.ops,
        displays: l.displays,
        wconsts: l.wconsts,
        n_narrow: l.max_n as usize,
        n_wide: l.max_w as usize,
    })
}

struct Lower<'a> {
    sig_width: &'a [u32],
    mem_width: &'a [u32],
    /// Signal index → pinned narrow register, [`NO_PROMOTION`] otherwise.
    /// Empty for per-unit lowering.
    promoted: &'a [u32],
    ops: Vec<Op>,
    displays: Vec<DisplaySpec>,
    wconsts: Vec<Bits>,
    next_n: u16,
    max_n: u16,
    next_w: u16,
    max_w: u16,
}

impl Lower<'_> {
    /// The pinned narrow register holding `id`'s value, if promoted.
    fn promoted_reg(&self, id: SigId) -> Option<u16> {
        match self.promoted.get(id.index()) {
            Some(&r) if r != NO_PROMOTION => Some(r as u16),
            _ => None,
        }
    }

    fn alloc_n(&mut self) -> Option<u16> {
        if self.next_n == u16::MAX {
            return None;
        }
        let r = self.next_n;
        self.next_n += 1;
        self.max_n = self.max_n.max(self.next_n);
        Some(r)
    }

    fn alloc_w(&mut self) -> Option<u16> {
        if self.next_w == u16::MAX {
            return None;
        }
        let r = self.next_w;
        self.next_w += 1;
        self.max_w = self.max_w.max(self.next_w);
        Some(r)
    }

    fn emit(&mut self, op: Op) -> usize {
        self.ops.push(op);
        self.ops.len() - 1
    }

    fn here(&self) -> u32 {
        self.ops.len() as u32
    }

    /// Points the jump at `at` to the current end of the program.
    fn patch(&mut self, at: usize) {
        let t = self.here();
        self.patch_to(at, t);
    }

    fn patch_to(&mut self, at: usize, t: u32) {
        match &mut self.ops[at] {
            Op::Jmp { target }
            | Op::Jz { target, .. }
            | Op::Jnz { target, .. }
            | Op::JCmpF { target, .. }
            | Op::JImmEq { target, .. }
            | Op::JEq { target, .. } => *target = t,
            _ => unreachable!("patch target is not a jump"),
        }
    }

    /// Static result width of `e`, mirroring the tree-walker's *dynamic*
    /// widths exactly. `None` means "not statically known" → fallback.
    fn width_of(&self, e: &CExpr) -> Option<u32> {
        Some(match e {
            CExpr::Const(v) => v.width(),
            CExpr::Sig(id) => *self.sig_width.get(id.index())?,
            CExpr::Unary(op, inner) => match op {
                UnaryOp::Not | UnaryOp::Neg => self.width_of(inner)?,
                _ => 1,
            },
            CExpr::Binary { op, signed, a, b } => {
                if op.is_boolean() {
                    1
                } else if matches!(op, BinaryOp::Shl | BinaryOp::Shr | BinaryOp::AShr)
                    && !*signed
                {
                    // Unsigned shifts keep the left operand's width; the
                    // signed path extends both operands to the common
                    // width first, so the result is `max` there.
                    self.width_of(a)?
                } else {
                    self.width_of(a)?.max(self.width_of(b)?)
                }
            }
            CExpr::Ternary { width, .. } => *width,
            CExpr::BitIndex { .. } => 1,
            CExpr::MemIndex { slot, .. } => *self.mem_width.get(*slot as usize)?,
            CExpr::RangeSig { msb, lsb, .. } | CExpr::RangeConst { msb, lsb, .. } => {
                let (m, l) = (const_u64(msb)?, const_u64(lsb)?);
                if l > m || m - l + 1 > u64::from(u32::MAX) {
                    return None;
                }
                (m - l + 1) as u32
            }
            CExpr::Concat(parts) => {
                if parts.is_empty() {
                    return None;
                }
                let mut sum = 0u32;
                for p in parts {
                    sum = sum.checked_add(self.width_of(p)?)?;
                }
                sum
            }
            CExpr::Repeat { count, body } => {
                let n = const_u64(count)? as u32;
                if n == 0 {
                    return None;
                }
                n.checked_mul(self.width_of(body)?)?
            }
            CExpr::Resize(w, _) => *w,
        })
    }

    /// Lowers `e` into a register of the class its static width demands.
    fn expr(&mut self, e: &CExpr) -> Option<Src> {
        let w = self.width_of(e)?;
        if w <= 64 {
            self.expr_n(e, w).map(Src::N)
        } else {
            self.expr_w(e, w).map(Src::W)
        }
    }

    /// Lowers `e` into a wide register at its natural width `w` (narrow
    /// values are zero-extended in — `resize_in_place` semantics).
    fn wide_reg(&mut self, e: &CExpr, w: u32) -> Option<u16> {
        if w <= 64 {
            let r = self.expr_n(e, w)?;
            let d = self.alloc_w()?;
            self.emit(Op::Widen { dst: d, src: r, w });
            Some(d)
        } else {
            self.expr_w(e, w)
        }
    }

    /// Lowers `e` and leaves its low 64 bits in a narrow register (index /
    /// shift-amount consumption: `Bits::to_u64` semantics).
    fn u64_reg(&mut self, e: &CExpr) -> Option<u16> {
        let w = self.width_of(e)?;
        if w <= 64 {
            self.expr_n(e, w)
        } else {
            let s = self.expr_w(e, w)?;
            let d = self.alloc_n()?;
            self.emit(Op::NarrowFromWide { dst: d, src: s, mask: u64::MAX });
            Some(d)
        }
    }

    /// Lowers `e` into a narrow register whose truthiness equals
    /// `Bits::to_bool` of the tree-walker's value.
    fn truth_reg(&mut self, e: &CExpr) -> Option<u16> {
        let w = self.width_of(e)?;
        if w <= 64 {
            self.expr_n(e, w)
        } else {
            let s = self.expr_w(e, w)?;
            let d = self.alloc_n()?;
            self.emit(Op::WTest { dst: d, src: s });
            Some(d)
        }
    }

    /// Emits a sign-extension from `from_w` up to `to_w` (both ≤ 64);
    /// identity widths are skipped.
    fn sext_to(&mut self, r: u16, from_w: u32, to_w: u32) -> Option<u16> {
        if from_w == to_w {
            return Some(r);
        }
        let d = self.alloc_n()?;
        self.emit(Op::Sext {
            dst: d,
            src: r,
            shift: 64 - from_w,
            mask: mask_of(to_w),
        });
        Some(d)
    }

    /// Lowers a narrow-width (≤ 64) expression; `w` is `width_of(e)`.
    fn expr_n(&mut self, e: &CExpr, w: u32) -> Option<u16> {
        debug_assert_eq!(self.width_of(e), Some(w));
        match e {
            CExpr::Const(v) => {
                let d = self.alloc_n()?;
                self.emit(Op::LdConst { dst: d, imm: v.to_u64() });
                Some(d)
            }
            CExpr::Sig(id) => {
                // Promoted signals live in a pinned register; the read is
                // free (the register always holds the flushed value).
                if let Some(p) = self.promoted_reg(*id) {
                    return Some(p);
                }
                let d = self.alloc_n()?;
                self.emit(Op::LdSig { dst: d, sig: *id });
                Some(d)
            }
            CExpr::Unary(op, inner) => match op {
                UnaryOp::Not | UnaryOp::Neg => {
                    let r = self.expr_n(inner, w)?;
                    let d = self.alloc_n()?;
                    let m = mask_of(w);
                    self.emit(if matches!(op, UnaryOp::Not) {
                        Op::Not { dst: d, src: r, mask: m }
                    } else {
                        Op::Neg { dst: d, src: r, mask: m }
                    });
                    Some(d)
                }
                _ => {
                    let iw = self.width_of(inner)?;
                    let d = self.alloc_n()?;
                    if iw <= 64 {
                        let r = self.expr_n(inner, iw)?;
                        self.emit(match op {
                            UnaryOp::LogNot => Op::LogNot { dst: d, src: r },
                            UnaryOp::RedAnd => Op::RedAnd { dst: d, src: r, mask: mask_of(iw) },
                            UnaryOp::RedOr => Op::RedOr { dst: d, src: r },
                            UnaryOp::RedXor => Op::RedXor { dst: d, src: r },
                            _ => Op::RedXnor { dst: d, src: r },
                        });
                    } else {
                        let r = self.expr_w(inner, iw)?;
                        self.emit(Op::WReduce { dst: d, src: r, op: *op });
                    }
                    Some(d)
                }
            },
            CExpr::Binary { op, signed, a, b } => self.binary_n(*op, *signed, a, b, w),
            CExpr::Ternary { cond, t, f, width } => {
                let tw = self.width_of(t)?;
                let fw = self.width_of(f)?;
                let c = self.truth_reg(cond)?;
                if tw <= 64 && fw <= 64 {
                    // All-narrow: evaluate both arms eagerly (expression
                    // ops are pure and infallible) and fuse into a mux.
                    let rt = self.expr_n(t, tw)?;
                    let rf = self.expr_n(f, fw)?;
                    let d = self.alloc_n()?;
                    self.emit(Op::Mux {
                        dst: d,
                        cond: c,
                        t: rt,
                        f: rf,
                        mask: mask_of(*width),
                    });
                    Some(d)
                } else {
                    // A wide arm: branch, then truncate into the narrow
                    // result register (the taken branch resizes to
                    // `width`, tree semantics).
                    let d = self.alloc_n()?;
                    let jz = self.emit(Op::Jz { src: c, target: u32::MAX });
                    self.arm_into_n(t, tw, d, *width)?;
                    let jend = self.emit(Op::Jmp { target: u32::MAX });
                    self.patch(jz);
                    self.arm_into_n(f, fw, d, *width)?;
                    self.patch(jend);
                    Some(d)
                }
            }
            CExpr::BitIndex { sig, width, idx } => {
                let i = self.u64_reg(idx)?;
                let d = self.alloc_n()?;
                self.emit(Op::LdBitIdx { dst: d, sig: *sig, width: *width, idx: i });
                Some(d)
            }
            CExpr::MemIndex { slot, idx } => {
                let i = self.u64_reg(idx)?;
                let d = self.alloc_n()?;
                self.emit(Op::LdMem { dst: d, slot: *slot, idx: i });
                Some(d)
            }
            CExpr::RangeSig { sig, msb, lsb } => {
                let (m, l) = (const_u64(msb)?, const_u64(lsb)?);
                debug_assert!(l <= m && m - l + 1 == u64::from(w));
                let d = self.alloc_n()?;
                self.emit(Op::SliceSig {
                    dst: d,
                    sig: *sig,
                    lo: l as u32,
                    mask: mask_of(w),
                });
                Some(d)
            }
            CExpr::RangeConst { value, msb, lsb } => {
                // Constant bounds on a constant fold at lowering time.
                let l = const_u64(lsb)?;
                let _ = const_u64(msb)?;
                let mut sl = Bits::zero(w);
                value.slice_into(l as u32, w, &mut sl);
                let d = self.alloc_n()?;
                self.emit(Op::LdConst { dst: d, imm: sl.to_u64() });
                Some(d)
            }
            CExpr::Concat(parts) => {
                let mut it = parts.iter();
                let first = it.next()?;
                let fw = self.width_of(first)?;
                let mut acc = self.expr_n(first, fw)?;
                for p in it {
                    let pw = self.width_of(p)?;
                    let rp = self.expr_n(p, pw)?;
                    let d = self.alloc_n()?;
                    self.emit(Op::Concat2 { dst: d, hi: acc, lo: rp, lo_w: pw });
                    acc = d;
                }
                Some(acc)
            }
            CExpr::Repeat { count, body } => {
                let n = const_u64(count)? as u32;
                let bw = self.width_of(body)?;
                let r = self.expr_n(body, bw)?;
                let d = self.alloc_n()?;
                self.emit(Op::RepeatN { dst: d, src: r, src_w: bw, n });
                Some(d)
            }
            CExpr::Resize(_, inner) => {
                let iw = self.width_of(inner)?;
                if iw <= 64 {
                    let r = self.expr_n(inner, iw)?;
                    if iw == w {
                        return Some(r);
                    }
                    let d = self.alloc_n()?;
                    self.emit(Op::MaskTo { dst: d, src: r, mask: mask_of(w) });
                    Some(d)
                } else {
                    let r = self.expr_w(inner, iw)?;
                    let d = self.alloc_n()?;
                    self.emit(Op::NarrowFromWide { dst: d, src: r, mask: mask_of(w) });
                    Some(d)
                }
            }
        }
    }

    /// Lowers a ternary arm into an already-allocated narrow destination,
    /// truncating from the arm's natural width to the ternary width.
    fn arm_into_n(&mut self, arm: &CExpr, aw: u32, dst: u16, w: u32) -> Option<()> {
        if aw <= 64 {
            let r = self.expr_n(arm, aw)?;
            self.emit(Op::MaskTo { dst, src: r, mask: mask_of(w) });
        } else {
            let r = self.expr_w(arm, aw)?;
            self.emit(Op::NarrowFromWide { dst, src: r, mask: mask_of(w) });
        }
        Some(())
    }

    /// Narrow binary operators, mirroring `apply_binary_into` /
    /// `apply_binary_signed_into` over canonical u64 values.
    fn binary_n(
        &mut self,
        op: BinaryOp,
        signed: bool,
        a: &CExpr,
        b: &CExpr,
        w: u32,
    ) -> Option<u16> {
        use BinaryOp::*;
        let aw = self.width_of(a)?;
        let bw = self.width_of(b)?;
        if op.is_boolean() {
            if aw > 64 || bw > 64 {
                let wa = self.wide_reg(a, aw)?;
                let wb = self.wide_reg(b, bw)?;
                let d = self.alloc_n()?;
                // Equal-width unsigned comparisons (including Eq/Ne, whose
                // zero-extending semantics coincide at equal widths) take
                // the fixed-limb kernel; LogAnd/LogOr and signed/mixed
                // widths keep the generic dispatch.
                match (fixed_limbs(signed, aw, bw), CmpKind::of(op)) {
                    (Some(limbs), Some(kind)) => {
                        self.emit(Op::WCmpF { dst: d, a: wa, b: wb, kind, limbs });
                    }
                    _ => {
                        self.emit(Op::WCmp { dst: d, a: wa, b: wb, op, signed });
                    }
                }
                return Some(d);
            }
            let ra = self.expr_n(a, aw)?;
            let rb = self.expr_n(b, bw)?;
            let d = self.alloc_n()?;
            match op {
                LogAnd => {
                    // Truthiness is sign-extension-invariant.
                    self.emit(Op::LogAnd { dst: d, a: ra, b: rb });
                }
                LogOr => {
                    self.emit(Op::LogOr { dst: d, a: ra, b: rb });
                }
                _ => {
                    let kind = CmpKind::of(op)?;
                    if signed {
                        self.emit(Op::Scmp {
                            dst: d,
                            a: ra,
                            b: rb,
                            sa: 64 - aw,
                            sb: 64 - bw,
                            kind,
                        });
                    } else {
                        self.emit(Op::Cmp { dst: d, a: ra, b: rb, kind });
                    }
                }
            }
            return Some(d);
        }
        // Non-boolean narrow result (w ≤ 64 means both operand widths that
        // feed the result are ≤ 64: unsigned shifts use only `aw`, all
        // other ops have w = max(aw, bw)).
        if matches!(op, Shl | Shr | AShr) && !signed {
            debug_assert_eq!(w, aw);
            let ra = self.expr_n(a, aw)?;
            let amt = self.u64_reg(b)?;
            let d = self.alloc_n()?;
            self.emit(match op {
                Shl => Op::Shl { dst: d, a: ra, amt, w },
                Shr => Op::Shr { dst: d, a: ra, amt, w },
                _ => Op::AShr { dst: d, a: ra, amt, w },
            });
            return Some(d);
        }
        let ra = self.expr_n(a, aw)?;
        if signed && matches!(op, AShr) {
            // Signed `>>>`: the amount reads the *unextended* right
            // operand; the left operand sign-extends to the common width.
            let amt = self.u64_reg(b)?;
            let xa = self.sext_to(ra, aw, w)?;
            let d = self.alloc_n()?;
            self.emit(Op::AShr { dst: d, a: xa, amt, w });
            return Some(d);
        }
        let rb = self.expr_n(b, bw)?;
        let (xa, xb) = if signed {
            (self.sext_to(ra, aw, w)?, self.sext_to(rb, bw, w)?)
        } else {
            (ra, rb)
        };
        let d = self.alloc_n()?;
        let m = mask_of(w);
        self.emit(match op {
            Add => Op::Add { dst: d, a: xa, b: xb, mask: m },
            Sub => Op::Sub { dst: d, a: xa, b: xb, mask: m },
            Mul => Op::Mul { dst: d, a: xa, b: xb, mask: m },
            Div => Op::Div { dst: d, a: xa, b: xb },
            Mod => Op::Mod { dst: d, a: xa, b: xb },
            And => Op::And { dst: d, a: xa, b: xb },
            Or => Op::Or { dst: d, a: xa, b: xb },
            Xor => Op::Xor { dst: d, a: xa, b: xb },
            Xnor => Op::Xnor { dst: d, a: xa, b: xb, mask: m },
            // Signed shifts go through the `_` arm of
            // `apply_binary_signed_into`: both operands sign-extended to
            // `w`, then a plain shift whose amount reads the *extended*
            // right operand.
            Shl => Op::Shl { dst: d, a: xa, amt: xb, w },
            Shr => Op::Shr { dst: d, a: xa, amt: xb, w },
            _ => return None,
        });
        Some(d)
    }

    /// Lowers a wide-width (> 64) expression; `w` is `width_of(e)`.
    fn expr_w(&mut self, e: &CExpr, w: u32) -> Option<u16> {
        debug_assert_eq!(self.width_of(e), Some(w));
        match e {
            CExpr::Const(v) => {
                let cidx = u16::try_from(self.wconsts.len()).ok()?;
                self.wconsts.push(v.clone());
                let d = self.alloc_w()?;
                self.emit(Op::WLdConst { dst: d, cidx });
                Some(d)
            }
            CExpr::Sig(id) => {
                let d = self.alloc_w()?;
                self.emit(Op::WLdSig { dst: d, sig: *id });
                Some(d)
            }
            CExpr::Unary(op, inner) => {
                // Only Not/Neg can be wide; reductions land narrow.
                let r = self.expr_w(inner, w)?;
                let d = self.alloc_w()?;
                self.emit(if matches!(op, UnaryOp::Not) {
                    Op::WNot { dst: d, src: r }
                } else {
                    Op::WNeg { dst: d, src: r }
                });
                Some(d)
            }
            CExpr::Binary { op, signed, a, b } => {
                let aw = self.width_of(a)?;
                let bw = self.width_of(b)?;
                let wa = self.wide_reg(a, aw)?;
                let wb = self.wide_reg(b, bw)?;
                let d = self.alloc_w()?;
                let fixed = matches!(
                    op,
                    BinaryOp::Add | BinaryOp::Sub | BinaryOp::And | BinaryOp::Or | BinaryOp::Xor
                )
                .then(|| fixed_limbs(*signed, aw, bw))
                .flatten();
                if let Some(limbs) = fixed {
                    self.emit(Op::WBinF { dst: d, a: wa, b: wb, op: *op, limbs });
                } else {
                    self.emit(Op::WBin { dst: d, a: wa, b: wb, op: *op, signed: *signed });
                }
                Some(d)
            }
            CExpr::Ternary { cond, t, f, width } => {
                let tw = self.width_of(t)?;
                let fw = self.width_of(f)?;
                let c = self.truth_reg(cond)?;
                let d = self.alloc_w()?;
                let jz = self.emit(Op::Jz { src: c, target: u32::MAX });
                self.arm_into_w(t, tw, d, *width)?;
                let jend = self.emit(Op::Jmp { target: u32::MAX });
                self.patch(jz);
                self.arm_into_w(f, fw, d, *width)?;
                self.patch(jend);
                Some(d)
            }
            CExpr::MemIndex { slot, idx } => {
                let i = self.u64_reg(idx)?;
                let d = self.alloc_w()?;
                self.emit(Op::WLdMem { dst: d, slot: *slot, idx: i });
                Some(d)
            }
            CExpr::RangeSig { sig, msb: _, lsb } => {
                let l = const_u64(lsb)?;
                let d = self.alloc_w()?;
                self.emit(Op::WSliceSig { dst: d, sig: *sig, lo: l as u32, w });
                Some(d)
            }
            CExpr::RangeConst { value, msb: _, lsb } => {
                let l = const_u64(lsb)?;
                let mut sl = Bits::zero(w);
                value.slice_into(l as u32, w, &mut sl);
                let cidx = u16::try_from(self.wconsts.len()).ok()?;
                self.wconsts.push(sl);
                let d = self.alloc_w()?;
                self.emit(Op::WLdConst { dst: d, cidx });
                Some(d)
            }
            CExpr::Concat(parts) => {
                let mut it = parts.iter();
                let first = it.next()?;
                let fw = self.width_of(first)?;
                let d = self.alloc_w()?;
                if fw <= 64 {
                    let r = self.expr_n(first, fw)?;
                    self.emit(Op::Widen { dst: d, src: r, w: fw });
                } else {
                    let r = self.expr_w(first, fw)?;
                    self.emit(Op::WMov { dst: d, src: r });
                }
                for p in it {
                    let pw = self.width_of(p)?;
                    if pw <= 64 {
                        let r = self.expr_n(p, pw)?;
                        self.emit(Op::WPushN { dst: d, src: r, w: pw });
                    } else {
                        let r = self.expr_w(p, pw)?;
                        self.emit(Op::WPushW { dst: d, src: r });
                    }
                }
                Some(d)
            }
            CExpr::Repeat { count, body } => {
                let n = const_u64(count)? as u32;
                let bw = self.width_of(body)?;
                let r = self.wide_reg(body, bw)?;
                let d = self.alloc_w()?;
                self.emit(Op::WRepeat { dst: d, src: r, n });
                Some(d)
            }
            CExpr::Resize(_, inner) => {
                let iw = self.width_of(inner)?;
                let d = self.alloc_w()?;
                if iw <= 64 {
                    let r = self.expr_n(inner, iw)?;
                    self.emit(Op::Widen { dst: d, src: r, w });
                } else {
                    let r = self.expr_w(inner, iw)?;
                    self.emit(Op::WResizeFrom { dst: d, src: r, w });
                }
                Some(d)
            }
            // Width-1 constructs can never be wide.
            CExpr::BitIndex { .. } => None,
        }
    }

    /// Lowers a ternary arm into an already-allocated wide destination at
    /// the ternary width `w` (resize semantics of the taken branch).
    fn arm_into_w(&mut self, arm: &CExpr, aw: u32, dst: u16, w: u32) -> Option<()> {
        if aw <= 64 {
            let r = self.expr_n(arm, aw)?;
            // set_u64 at `w` zero-extends, exactly resize_in_place(w) of
            // a ≤64-bit value.
            self.emit(Op::Widen { dst, src: r, w });
        } else {
            let r = self.expr_w(arm, aw)?;
            self.emit(Op::WResizeFrom { dst, src: r, w });
        }
        Some(())
    }

    /// Lowers one statement; register watermarks reset afterwards so each
    /// statement's temporaries are reused by the next.
    fn stmt(&mut self, s: &CStmt) -> Option<()> {
        let (save_n, save_w) = (self.next_n, self.next_w);
        self.stmt_inner(s)?;
        self.next_n = save_n;
        self.next_w = save_w;
        Some(())
    }

    fn stmt_inner(&mut self, s: &CStmt) -> Option<()> {
        match s {
            CStmt::Block(stmts) => {
                for st in stmts {
                    self.stmt(st)?;
                }
                Some(())
            }
            CStmt::If { cond, then, els } => {
                // Fuse `if (a == b)` / `if (a != b)` over narrow unsigned
                // operands into a single compare-and-branch.
                let jfalse = if let CExpr::Binary { op, signed: false, a, b } = cond {
                    let (aw, bw) = (self.width_of(a)?, self.width_of(b)?);
                    if matches!(op, BinaryOp::Eq | BinaryOp::Ne) && aw <= 64 && bw <= 64 {
                        let ra = self.expr_n(a, aw)?;
                        let rb = self.expr_n(b, bw)?;
                        self.emit(Op::JCmpF {
                            a: ra,
                            b: rb,
                            eq: matches!(op, BinaryOp::Eq),
                            target: u32::MAX,
                        })
                    } else {
                        let c = self.truth_reg(cond)?;
                        self.emit(Op::Jz { src: c, target: u32::MAX })
                    }
                } else {
                    let c = self.truth_reg(cond)?;
                    self.emit(Op::Jz { src: c, target: u32::MAX })
                };
                self.stmt(then)?;
                if let Some(e) = els {
                    let jend = self.emit(Op::Jmp { target: u32::MAX });
                    self.patch(jfalse);
                    self.stmt(e)?;
                    self.patch(jend);
                } else {
                    self.patch(jfalse);
                }
                Some(())
            }
            CStmt::Case { sel, arms, default } => self.case(sel, arms, default.as_deref()),
            CStmt::Assign { lhs, nonblocking, rhs } => self.store(lhs, rhs, *nonblocking),
            CStmt::For { var, var_width, init, cond, step, body } => {
                if *var_width > 64 {
                    return None;
                }
                self.assign_loop_var(*var, init)?;
                let ctr = self.alloc_n()?;
                self.emit(Op::LdConst { dst: ctr, imm: 0 });
                let head = self.here();
                let (sn, sw) = (self.next_n, self.next_w);
                let c = self.truth_reg(cond)?;
                let jend = self.emit(Op::Jz { src: c, target: u32::MAX });
                self.next_n = sn;
                self.next_w = sw;
                self.stmt(body)?;
                self.assign_loop_var(*var, step)?;
                self.emit(Op::IncCheckCap { ctr, var: *var });
                self.emit(Op::Jmp { target: head });
                self.patch(jend);
                Some(())
            }
            CStmt::Display { format, args, signs } => {
                // Argument registers are evaluated unconditionally (pure,
                // infallible); the Display op itself is a no-op when the
                // unit runs without a log sink.
                let mut spec_args = Vec::with_capacity(args.len());
                for (i, a) in args.iter().enumerate() {
                    let w = self.width_of(a)?;
                    let src = self.expr(a)?;
                    let signed = signs.get(i).copied().unwrap_or(false);
                    spec_args.push((src, w, signed));
                }
                let spec = u16::try_from(self.displays.len()).ok()?;
                self.displays.push(DisplaySpec {
                    format: format.clone(),
                    args: spec_args,
                });
                self.emit(Op::Display { spec });
                Some(())
            }
            CStmt::Finish => {
                self.emit(Op::Finish);
                Some(())
            }
            CStmt::Empty => Some(()),
        }
    }

    /// `for`-loop variable assignment: evaluate, resize to the variable
    /// width, store (tree semantics; `update_u64` masks to the slot).
    fn assign_loop_var(&mut self, var: SigId, e: &CExpr) -> Option<()> {
        let (sn, sw) = (self.next_n, self.next_w);
        let src = match self.expr(e)? {
            Src::N(r) => r,
            Src::W(r) => {
                let d = self.alloc_n()?;
                self.emit(Op::NarrowFromWide { dst: d, src: r, mask: u64::MAX });
                d
            }
        };
        self.emit(Op::StSigN { sig: var, src });
        self.next_n = sn;
        self.next_w = sw;
        Some(())
    }

    fn case(&mut self, sel: &CExpr, arms: &[CCaseArm], default: Option<&CStmt>) -> Option<()> {
        let sel_w = self.width_of(sel)?;
        let all_narrow = sel_w <= 64
            && arms.iter().all(|arm| {
                arm.labels
                    .iter()
                    .all(|l| matches!(self.width_of(l), Some(w) if w <= 64))
            });
        // Dispatch chain: per arm, per label (in order — first match
        // wins, preserving the tree-walker's lazy label evaluation order
        // for the side-effect-free label expressions), a jump to the arm
        // body; fall-through goes to the default (or the end).
        let mut arm_holes: Vec<Vec<usize>> = Vec::with_capacity(arms.len());
        if all_narrow {
            let sreg = self.expr_n(sel, sel_w)?;
            for arm in arms {
                let mut holes = Vec::with_capacity(arm.labels.len());
                for label in &arm.labels {
                    // Comparison is eq_zero_ext: u64 equality of
                    // canonical values regardless of width.
                    if let CExpr::Const(v) = label {
                        holes.push(self.emit(Op::JImmEq {
                            src: sreg,
                            imm: v.to_u64(),
                            target: u32::MAX,
                        }));
                    } else {
                        let (sn, sw) = (self.next_n, self.next_w);
                        let lw = self.width_of(label)?;
                        let lr = self.expr_n(label, lw)?;
                        holes.push(self.emit(Op::JEq {
                            a: sreg,
                            b: lr,
                            target: u32::MAX,
                        }));
                        self.next_n = sn;
                        self.next_w = sw;
                    }
                }
                arm_holes.push(holes);
            }
        } else {
            let ws = self.wide_reg(sel, sel_w)?;
            for arm in arms {
                let mut holes = Vec::with_capacity(arm.labels.len());
                for label in &arm.labels {
                    let (sn, sw) = (self.next_n, self.next_w);
                    let lw = self.width_of(label)?;
                    let wl = self.wide_reg(label, lw)?;
                    let t = self.alloc_n()?;
                    // Eq is non-mutating (eq_zero_ext), so the sel
                    // register survives across labels.
                    self.emit(Op::WCmp {
                        dst: t,
                        a: ws,
                        b: wl,
                        op: BinaryOp::Eq,
                        signed: false,
                    });
                    holes.push(self.emit(Op::Jnz { src: t, target: u32::MAX }));
                    self.next_n = sn;
                    self.next_w = sw;
                }
                arm_holes.push(holes);
            }
        }
        let jdefault = self.emit(Op::Jmp { target: u32::MAX });
        let mut end_holes = Vec::with_capacity(arms.len());
        for (arm, holes) in arms.iter().zip(arm_holes) {
            let at = self.here();
            for h in holes {
                self.patch_to(h, at);
            }
            self.stmt(&arm.body)?;
            end_holes.push(self.emit(Op::Jmp { target: u32::MAX }));
        }
        self.patch(jdefault);
        if let Some(d) = default {
            self.stmt(d)?;
        }
        for h in end_holes {
            self.patch(h);
        }
        Some(())
    }

    /// Lowers one assignment. The rhs evaluates first (tree order), then
    /// index expressions, then bounds checks, then the commit — identical
    /// observable ordering to resolve-all-then-commit since expression
    /// evaluation is pure.
    fn store(&mut self, lhs: &CLValue, rhs: &CExpr, nb: bool) -> Option<()> {
        match lhs {
            CLValue::Sig { id, width } => {
                // Promoted target: land the truncated value in the pinned
                // register, then blind-flush it to state (no compare, no
                // changed-list push — intra-region readers use the
                // register; partial-access reads and VCD see the flush).
                if !nb {
                    if let Some(p) = self.promoted_reg(*id) {
                        let m = mask_of(*width);
                        match self.expr(rhs)? {
                            Src::N(r) => {
                                self.emit(Op::MaskTo { dst: p, src: r, mask: m });
                            }
                            Src::W(r) => {
                                self.emit(Op::NarrowFromWide { dst: p, src: r, mask: m });
                            }
                        }
                        self.emit(Op::StFlushN { sig: *id, src: p });
                        return Some(());
                    }
                }
                let val = self.expr(rhs)?;
                match val {
                    Src::N(r) if !nb => {
                        self.emit(Op::StSigN { sig: *id, src: r });
                    }
                    _ => {
                        self.emit(Op::StSig { sig: *id, w: *width, src: val, nb });
                    }
                }
                Some(())
            }
            CLValue::BitIndex { id, width, idx } => {
                let src = self.rhs_low64(rhs)?;
                let i = self.u64_reg(idx)?;
                self.emit(Op::StBit { sig: *id, width: *width, idx: i, src, nb });
                Some(())
            }
            CLValue::MemIndex { id, slot, depth, width, idx } => {
                let val = self.expr(rhs)?;
                let i = self.u64_reg(idx)?;
                self.emit(Op::StMem {
                    sig: *id,
                    slot: *slot,
                    depth: *depth,
                    width: *width,
                    idx: i,
                    src: val,
                    nb,
                });
                Some(())
            }
            CLValue::Range { id, msb, lsb } => {
                let (m, l) = (const_u64(msb)?, const_u64(lsb)?);
                if l > m || m - l + 1 > u64::from(u32::MAX) {
                    return None; // reversed/huge bounds keep tree semantics
                }
                let val = self.expr(rhs)?;
                self.emit(Op::StSlice {
                    sig: *id,
                    lo: l as u32,
                    w: (m - l + 1) as u32,
                    src: val,
                    nb,
                });
                Some(())
            }
            CLValue::Concat { parts, widths, total } => {
                self.store_concat(parts, widths, *total, rhs, nb)
            }
        }
    }

    /// The rhs reduced to its low 64 bits (single-bit targets; the store
    /// op masks to one bit).
    fn rhs_low64(&mut self, rhs: &CExpr) -> Option<u16> {
        match self.expr(rhs)? {
            Src::N(r) => Some(r),
            Src::W(r) => {
                let d = self.alloc_n()?;
                self.emit(Op::NarrowFromWide { dst: d, src: r, mask: u64::MAX });
                Some(d)
            }
        }
    }

    fn store_concat(
        &mut self,
        parts: &[CLValue],
        widths: &[u32],
        total: u32,
        rhs: &CExpr,
        nb: bool,
    ) -> Option<()> {
        // Pre-plan each part: nested concats keep the tree-walker.
        enum Plan {
            Sig { id: SigId, width: u32 },
            Bit { id: SigId, width: u32, idx: u16 },
            Mem { id: SigId, slot: u32, depth: u64, width: u32, idx: u16 },
            Slice { id: SigId, lo: u32, w: u32 },
        }
        // Rhs first (tree order), resized to the concat total.
        let rw = self.width_of(rhs)?;
        let rt = if total <= 64 {
            match self.expr(rhs)? {
                Src::N(r) => {
                    if rw == total {
                        Src::N(r)
                    } else {
                        let d = self.alloc_n()?;
                        self.emit(Op::MaskTo { dst: d, src: r, mask: mask_of(total) });
                        Src::N(d)
                    }
                }
                Src::W(r) => {
                    let d = self.alloc_n()?;
                    self.emit(Op::NarrowFromWide { dst: d, src: r, mask: mask_of(total) });
                    Src::N(d)
                }
            }
        } else {
            match self.expr(rhs)? {
                Src::N(r) => {
                    let d = self.alloc_w()?;
                    self.emit(Op::Widen { dst: d, src: r, w: total });
                    Src::W(d)
                }
                Src::W(r) => {
                    if rw == total {
                        Src::W(r)
                    } else {
                        let d = self.alloc_w()?;
                        self.emit(Op::WResizeFrom { dst: d, src: r, w: total });
                        Src::W(d)
                    }
                }
            }
        };
        // Index expressions evaluate MSB-first (tree resolve order; pure,
        // so interleaving with the slicing below is unobservable).
        let mut plans = Vec::with_capacity(parts.len());
        for part in parts {
            plans.push(match part {
                CLValue::Sig { id, width } => Plan::Sig { id: *id, width: *width },
                CLValue::BitIndex { id, width, idx } => {
                    let i = self.u64_reg(idx)?;
                    Plan::Bit { id: *id, width: *width, idx: i }
                }
                CLValue::MemIndex { id, slot, depth, width, idx } => {
                    let i = self.u64_reg(idx)?;
                    Plan::Mem {
                        id: *id,
                        slot: *slot,
                        depth: *depth,
                        width: *width,
                        idx: i,
                    }
                }
                CLValue::Range { id, msb, lsb } => {
                    let (m, l) = (const_u64(msb)?, const_u64(lsb)?);
                    if l > m || m - l + 1 > u64::from(u32::MAX) {
                        return None;
                    }
                    Plan::Slice { id: *id, lo: l as u32, w: (m - l + 1) as u32 }
                }
                CLValue::Concat { .. } => return None,
            });
        }
        // Strict-bounds pre-checks in MSB-first part order: resolve
        // raises before anything commits, and the first violating part
        // (MSB-most) names the error.
        for plan in &plans {
            match plan {
                Plan::Bit { id, width, idx } => {
                    self.emit(Op::CkBit { sig: *id, width: *width, idx: *idx });
                }
                Plan::Mem { id, depth, idx, .. } => {
                    self.emit(Op::CkMem { sig: *id, depth: *depth, idx: *idx });
                }
                _ => {}
            }
        }
        // Slice each part's bits out of the resized rhs and store,
        // MSB-first.
        let mut hi = total;
        for (plan, &pw) in plans.iter().zip(widths) {
            hi -= pw;
            let part_val: Src = if pw <= 64 {
                let d = self.alloc_n()?;
                match rt {
                    Src::N(r) => {
                        self.emit(Op::SliceReg { dst: d, src: r, lo: hi, mask: mask_of(pw) });
                    }
                    Src::W(r) => {
                        self.emit(Op::SliceWideReg {
                            dst: d,
                            src: r,
                            lo: hi,
                            mask: mask_of(pw),
                        });
                    }
                }
                Src::N(d)
            } else {
                let d = self.alloc_w()?;
                match rt {
                    // A > 64-bit part can only come from a wide rhs.
                    Src::N(_) => return None,
                    Src::W(r) => {
                        self.emit(Op::WSliceReg { dst: d, src: r, lo: hi, w: pw });
                    }
                }
                Src::W(d)
            };
            match *plan {
                Plan::Sig { id, width } => match part_val {
                    Src::N(r) if !nb => {
                        self.emit(Op::StSigN { sig: id, src: r });
                    }
                    _ => {
                        self.emit(Op::StSig { sig: id, w: width, src: part_val, nb });
                    }
                },
                Plan::Bit { id, width, idx } => {
                    let src = match part_val {
                        Src::N(r) => r,
                        Src::W(_) => return None, // width-1 part is narrow
                    };
                    self.emit(Op::StBit { sig: id, width, idx, src, nb });
                }
                Plan::Mem { id, slot, depth, width, idx } => {
                    self.emit(Op::StMem {
                        sig: id,
                        slot,
                        depth,
                        width,
                        idx,
                        src: part_val,
                        nb,
                    });
                }
                Plan::Slice { id, lo, w } => {
                    self.emit(Op::StSlice { sig: id, lo, w, src: part_val, nb });
                }
            }
        }
        Some(())
    }
}

/// Constant-folds an expression used as a bound/count, like `eval_u64` on
/// a `CExpr::Const` (low 64 bits).
fn const_u64(e: &CExpr) -> Option<u64> {
    match e {
        CExpr::Const(v) => Some(v.to_u64()),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Interpreter
// ---------------------------------------------------------------------

#[inline]
fn nr(exec: &CExec<'_>, i: u16) -> u64 {
    exec.scratch.nregs[i as usize]
}

#[inline]
fn set_nr(exec: &mut CExec<'_>, i: u16, v: u64) {
    exec.scratch.nregs[i as usize] = v;
}

#[inline]
fn take_w(exec: &mut CExec<'_>, i: u16) -> Bits {
    std::mem::take(&mut exec.scratch.wregs[i as usize])
}

#[inline]
fn put_w(exec: &mut CExec<'_>, i: u16, b: Bits) {
    exec.scratch.wregs[i as usize] = b;
}

/// Routes a resolved write to the nonblocking queue (clocked context with
/// `nb` set) or commits it immediately — `write_nb`'s degrade-to-blocking
/// semantics.
#[inline]
fn sink_write(exec: &mut CExec<'_>, nb: bool, w: CNbWrite) {
    if nb {
        if let Some(q) = exec.nb.as_mut() {
            q.push(w);
            return;
        }
    }
    exec.commit(w);
}

/// The tree-walker's `CExpr::Binary` evaluation over already-loaded wide
/// operands, including the pooled-buffer wide-divide path. Operands are
/// scratch (resized in place), matching `eval_into`.
fn wide_binary(
    scratch: &mut EvalScratch,
    op: BinaryOp,
    signed: bool,
    x: &mut Bits,
    y: &mut Bits,
    out: &mut Bits,
) {
    if matches!(op, BinaryOp::Div | BinaryOp::Mod) && x.width().max(y.width()) > 128 {
        let w = x.width().max(y.width());
        if signed {
            x.resize_signed_in_place(w);
            y.resize_signed_in_place(w);
        } else {
            x.resize_in_place(w);
            y.resize_in_place(w);
        }
        let mut spare = scratch.take();
        if matches!(op, BinaryOp::Div) {
            x.divmod_into(y, out, &mut spare);
        } else {
            x.divmod_into(y, &mut spare, out);
        }
        scratch.put(spare);
    } else if signed {
        apply_binary_signed_into(op, x, y, out);
    } else {
        apply_binary_into(op, x, y, out);
    }
}

/// Dispatch to the fixed-limb unrolled kernels ([`hwdbg_bits::fixed`]).
/// Lowering guarantees equal unsigned operand widths of exactly `limbs`
/// (2 or 4) limbs and `op` ∈ {Add, Sub, And, Or, Xor}.
fn fixed_binary(op: BinaryOp, limbs: u8, a: &Bits, b: &Bits, out: &mut Bits) {
    macro_rules! dispatch {
        ($kernel:ident) => {
            if limbs == 2 {
                fixed::$kernel::<2>(a, b, out)
            } else {
                fixed::$kernel::<4>(a, b, out)
            }
        };
    }
    match op {
        BinaryOp::Add => dispatch!(add_into),
        BinaryOp::Sub => dispatch!(sub_into),
        BinaryOp::And => dispatch!(and_into),
        BinaryOp::Or => dispatch!(or_into),
        BinaryOp::Xor => dispatch!(xor_into),
        _ => unreachable!("fixed_binary op outside the unrolled set"),
    }
}

#[inline]
fn cmp_u(a: u64, b: u64, kind: CmpKind) -> bool {
    match kind {
        CmpKind::Lt => a < b,
        CmpKind::Le => a <= b,
        CmpKind::Gt => a > b,
        CmpKind::Ge => a >= b,
        CmpKind::Eq => a == b,
        CmpKind::Ne => a != b,
    }
}

#[inline]
fn cmp_i(a: i64, b: i64, kind: CmpKind) -> bool {
    match kind {
        CmpKind::Lt => a < b,
        CmpKind::Le => a <= b,
        CmpKind::Gt => a > b,
        CmpKind::Ge => a >= b,
        CmpKind::Eq => a == b,
        CmpKind::Ne => a != b,
    }
}

fn oob(state: &SimState, sig: SigId, index: u64, depth: u64) -> SimError {
    SimError::OutOfBounds {
        signal: state.table().name(sig).to_owned(),
        index,
        depth,
    }
}

/// Executes one lowered program against the unit-execution context.
///
/// Only two errors are reachable — `LoopCap` and strict-bounds
/// `OutOfBounds` — matching the tree-walker on lowerable bodies (anything
/// that could raise `NonConstSelect` at runtime was never lowered).
pub(crate) fn run(prog: &BcProgram, exec: &mut CExec<'_>) -> Result<Flow, SimError> {
    let mut pc = 0usize;
    let ops = &prog.ops[..];
    while let Some(op) = ops.get(pc) {
        pc += 1;
        match *op {
            // ---- narrow loads ----
            Op::LdConst { dst, imm } => set_nr(exec, dst, imm),
            Op::LdSig { dst, sig } => {
                let v = exec.state.get_id(sig).to_u64();
                set_nr(exec, dst, v);
            }
            Op::LdBitIdx { dst, sig, width, idx } => {
                let i = nr(exec, idx);
                let v = exec.state.get_id(sig);
                let bit = i < u64::from(width) && v.bit(i as u32);
                set_nr(exec, dst, u64::from(bit));
            }
            Op::LdMem { dst, slot, idx } => {
                let i = nr(exec, idx);
                let v = exec.state.read_mem_slot_u64(slot, i);
                set_nr(exec, dst, v);
            }
            Op::SliceSig { dst, sig, lo, mask } => {
                let v = extract64(exec.state.get_id(sig).limbs(), lo, mask);
                set_nr(exec, dst, v);
            }
            Op::SliceReg { dst, src, lo, mask } => {
                let v = if lo >= 64 { 0 } else { (nr(exec, src) >> lo) & mask };
                set_nr(exec, dst, v);
            }
            Op::SliceWideReg { dst, src, lo, mask } => {
                let v = extract64(exec.scratch.wregs[src as usize].limbs(), lo, mask);
                set_nr(exec, dst, v);
            }
            // ---- narrow ALU ----
            Op::Add { dst, a, b, mask } => {
                let v = nr(exec, a).wrapping_add(nr(exec, b)) & mask;
                set_nr(exec, dst, v);
            }
            Op::Sub { dst, a, b, mask } => {
                let v = nr(exec, a).wrapping_sub(nr(exec, b)) & mask;
                set_nr(exec, dst, v);
            }
            Op::Mul { dst, a, b, mask } => {
                let v = nr(exec, a).wrapping_mul(nr(exec, b)) & mask;
                set_nr(exec, dst, v);
            }
            Op::Div { dst, a, b } => {
                let d = nr(exec, b);
                let v = nr(exec, a).checked_div(d).unwrap_or(0);
                set_nr(exec, dst, v);
            }
            Op::Mod { dst, a, b } => {
                let d = nr(exec, b);
                let v = nr(exec, a).checked_rem(d).unwrap_or(0);
                set_nr(exec, dst, v);
            }
            Op::And { dst, a, b } => {
                let v = nr(exec, a) & nr(exec, b);
                set_nr(exec, dst, v);
            }
            Op::Or { dst, a, b } => {
                let v = nr(exec, a) | nr(exec, b);
                set_nr(exec, dst, v);
            }
            Op::Xor { dst, a, b } => {
                let v = nr(exec, a) ^ nr(exec, b);
                set_nr(exec, dst, v);
            }
            Op::Xnor { dst, a, b, mask } => {
                let v = !(nr(exec, a) ^ nr(exec, b)) & mask;
                set_nr(exec, dst, v);
            }
            Op::Not { dst, src, mask } => {
                let v = !nr(exec, src) & mask;
                set_nr(exec, dst, v);
            }
            Op::Neg { dst, src, mask } => {
                let v = nr(exec, src).wrapping_neg() & mask;
                set_nr(exec, dst, v);
            }
            Op::LogNot { dst, src } => {
                let v = u64::from(nr(exec, src) == 0);
                set_nr(exec, dst, v);
            }
            Op::RedAnd { dst, src, mask } => {
                let v = u64::from(nr(exec, src) == mask);
                set_nr(exec, dst, v);
            }
            Op::RedOr { dst, src } => {
                let v = u64::from(nr(exec, src) != 0);
                set_nr(exec, dst, v);
            }
            Op::RedXor { dst, src } => {
                let v = u64::from(nr(exec, src).count_ones() & 1 == 1);
                set_nr(exec, dst, v);
            }
            Op::RedXnor { dst, src } => {
                let v = u64::from(nr(exec, src).count_ones() & 1 == 0);
                set_nr(exec, dst, v);
            }
            Op::Sext { dst, src, shift, mask } => {
                let v = sext64(nr(exec, src), shift) as u64 & mask;
                set_nr(exec, dst, v);
            }
            Op::Cmp { dst, a, b, kind } => {
                let v = u64::from(cmp_u(nr(exec, a), nr(exec, b), kind));
                set_nr(exec, dst, v);
            }
            Op::Scmp { dst, a, b, sa, sb, kind } => {
                let x = sext64(nr(exec, a), sa);
                let y = sext64(nr(exec, b), sb);
                set_nr(exec, dst, u64::from(cmp_i(x, y, kind)));
            }
            Op::LogAnd { dst, a, b } => {
                let v = u64::from(nr(exec, a) != 0 && nr(exec, b) != 0);
                set_nr(exec, dst, v);
            }
            Op::LogOr { dst, a, b } => {
                let v = u64::from(nr(exec, a) != 0 || nr(exec, b) != 0);
                set_nr(exec, dst, v);
            }
            Op::Shl { dst, a, amt, w } => {
                let n = nr(exec, amt);
                let v = if n >= u64::from(w) {
                    0
                } else {
                    (nr(exec, a) << n) & mask_of(w)
                };
                set_nr(exec, dst, v);
            }
            Op::Shr { dst, a, amt, w } => {
                let n = nr(exec, amt);
                let v = if n >= u64::from(w) { 0 } else { nr(exec, a) >> n };
                set_nr(exec, dst, v);
            }
            Op::AShr { dst, a, amt, w } => {
                // Sign-extend at `w`, shift arithmetically (≥ 63 saturates
                // to the sign fill), re-truncate.
                let n = nr(exec, amt).min(63) as u32;
                let ia = sext64(nr(exec, a), 64 - w);
                set_nr(exec, dst, (ia >> n) as u64 & mask_of(w));
            }
            Op::Mux { dst, cond, t, f, mask } => {
                let v = if nr(exec, cond) != 0 { nr(exec, t) } else { nr(exec, f) };
                set_nr(exec, dst, v & mask);
            }
            Op::Concat2 { dst, hi, lo, lo_w } => {
                let v = (nr(exec, hi) << lo_w) | nr(exec, lo);
                set_nr(exec, dst, v);
            }
            Op::RepeatN { dst, src, src_w, n } => {
                let r = nr(exec, src);
                let mut acc = r;
                for _ in 1..n {
                    acc = (acc << src_w) | r;
                }
                set_nr(exec, dst, acc);
            }
            Op::MaskTo { dst, src, mask } => {
                let v = nr(exec, src) & mask;
                set_nr(exec, dst, v);
            }
            Op::NarrowFromWide { dst, src, mask } => {
                let v = exec.scratch.wregs[src as usize].to_u64() & mask;
                set_nr(exec, dst, v);
            }
            // ---- wide ops ----
            Op::WLdConst { dst, cidx } => {
                let mut d = take_w(exec, dst);
                d.assign_from(&prog.wconsts[cidx as usize]);
                put_w(exec, dst, d);
            }
            Op::WLdSig { dst, sig } => {
                let mut d = take_w(exec, dst);
                d.assign_from(exec.state.get_id(sig));
                put_w(exec, dst, d);
            }
            Op::WLdMem { dst, slot, idx } => {
                let i = nr(exec, idx);
                let mut d = take_w(exec, dst);
                exec.state.read_mem_slot_into(slot, i, &mut d);
                put_w(exec, dst, d);
            }
            Op::Widen { dst, src, w } => {
                let v = nr(exec, src);
                let mut d = take_w(exec, dst);
                d.set_u64(w, v);
                put_w(exec, dst, d);
            }
            Op::WResizeFrom { dst, src, w } => {
                let s = take_w(exec, src);
                let mut d = take_w(exec, dst);
                d.assign_resized(&s, w);
                put_w(exec, dst, d);
                put_w(exec, src, s);
            }
            Op::WBin { dst, a, b, op, signed } => {
                let mut x = take_w(exec, a);
                let mut y = take_w(exec, b);
                let mut out = take_w(exec, dst);
                wide_binary(exec.scratch, op, signed, &mut x, &mut y, &mut out);
                put_w(exec, dst, out);
                put_w(exec, b, y);
                put_w(exec, a, x);
            }
            Op::WCmp { dst, a, b, op, signed } => {
                let mut x = take_w(exec, a);
                let mut y = take_w(exec, b);
                let mut t = exec.scratch.take();
                wide_binary(exec.scratch, op, signed, &mut x, &mut y, &mut t);
                let v = t.to_u64();
                exec.scratch.put(t);
                put_w(exec, b, y);
                put_w(exec, a, x);
                set_nr(exec, dst, v);
            }
            Op::WBinF { dst, a, b, op, limbs } => {
                let x = take_w(exec, a);
                let y = take_w(exec, b);
                let mut out = take_w(exec, dst);
                fixed_binary(op, limbs, &x, &y, &mut out);
                put_w(exec, dst, out);
                put_w(exec, b, y);
                put_w(exec, a, x);
            }
            Op::WCmpF { dst, a, b, kind, limbs } => {
                let ord = {
                    let x = &exec.scratch.wregs[a as usize];
                    let y = &exec.scratch.wregs[b as usize];
                    if limbs == 2 {
                        fixed::cmp_unsigned::<2>(x, y)
                    } else {
                        fixed::cmp_unsigned::<4>(x, y)
                    }
                };
                let v = match kind {
                    CmpKind::Lt => ord.is_lt(),
                    CmpKind::Le => ord.is_le(),
                    CmpKind::Gt => ord.is_gt(),
                    CmpKind::Ge => ord.is_ge(),
                    CmpKind::Eq => ord.is_eq(),
                    CmpKind::Ne => ord.is_ne(),
                };
                set_nr(exec, dst, v as u64);
            }
            Op::WNot { dst, src } => {
                let s = take_w(exec, src);
                let mut d = take_w(exec, dst);
                d.assign_from(&s);
                d.not_in_place();
                put_w(exec, dst, d);
                put_w(exec, src, s);
            }
            Op::WNeg { dst, src } => {
                let s = take_w(exec, src);
                let mut d = take_w(exec, dst);
                d.assign_from(&s);
                d.neg_in_place();
                put_w(exec, dst, d);
                put_w(exec, src, s);
            }
            Op::WReduce { dst, src, op } => {
                let v = &exec.scratch.wregs[src as usize];
                let b = match op {
                    UnaryOp::LogNot => v.is_zero(),
                    UnaryOp::RedAnd => v.reduce_and(),
                    UnaryOp::RedOr => v.reduce_or(),
                    UnaryOp::RedXor => v.reduce_xor(),
                    _ => !v.reduce_xor(),
                };
                set_nr(exec, dst, u64::from(b));
            }
            Op::WTest { dst, src } => {
                let b = exec.scratch.wregs[src as usize].to_bool();
                set_nr(exec, dst, u64::from(b));
            }
            Op::WSliceSig { dst, sig, lo, w } => {
                let mut d = take_w(exec, dst);
                exec.state.get_id(sig).slice_into(lo, w, &mut d);
                put_w(exec, dst, d);
            }
            Op::WSliceReg { dst, src, lo, w } => {
                let s = take_w(exec, src);
                let mut d = take_w(exec, dst);
                s.slice_into(lo, w, &mut d);
                put_w(exec, dst, d);
                put_w(exec, src, s);
            }
            Op::WPushN { dst, src, w } => {
                let v = nr(exec, src);
                let mut t = exec.scratch.take();
                t.set_u64(w, v);
                let mut d = take_w(exec, dst);
                d.push_low(&t);
                put_w(exec, dst, d);
                exec.scratch.put(t);
            }
            Op::WPushW { dst, src } => {
                let s = take_w(exec, src);
                let mut d = take_w(exec, dst);
                d.push_low(&s);
                put_w(exec, dst, d);
                put_w(exec, src, s);
            }
            Op::WRepeat { dst, src, n } => {
                let s = take_w(exec, src);
                let mut d = take_w(exec, dst);
                s.repeat_into(n, &mut d);
                put_w(exec, dst, d);
                put_w(exec, src, s);
            }
            Op::WMov { dst, src } => {
                let s = take_w(exec, src);
                let mut d = take_w(exec, dst);
                d.assign_from(&s);
                put_w(exec, dst, d);
                put_w(exec, src, s);
            }
            // ---- control flow ----
            Op::Jmp { target } => pc = target as usize,
            Op::Jz { src, target } => {
                if nr(exec, src) == 0 {
                    pc = target as usize;
                }
            }
            Op::Jnz { src, target } => {
                if nr(exec, src) != 0 {
                    pc = target as usize;
                }
            }
            Op::JCmpF { a, b, eq, target } => {
                if (nr(exec, a) == nr(exec, b)) != eq {
                    pc = target as usize;
                }
            }
            Op::JImmEq { src, imm, target } => {
                if nr(exec, src) == imm {
                    pc = target as usize;
                }
            }
            Op::JEq { a, b, target } => {
                if nr(exec, a) == nr(exec, b) {
                    pc = target as usize;
                }
            }
            // ---- stores ----
            Op::StSigN { sig, src } => {
                if let Some(f) = exec.forced {
                    if f.contains_key(&sig) {
                        if let Some(c) = exec.counters.as_deref_mut() {
                            c.force_hits += 1;
                        }
                        continue;
                    }
                }
                let v = nr(exec, src);
                if exec.state.set_id_u64(sig, v) {
                    exec.changed.push(sig);
                }
            }
            Op::StFlushN { sig, src } => {
                exec.state.store_id_u64(sig, nr(exec, src));
            }
            Op::StSig { sig, w, src, nb } => {
                let mut t = exec.scratch.take();
                match src {
                    Src::N(r) => t.set_u64(w, nr(exec, r)),
                    Src::W(r) => {
                        let s = take_w(exec, r);
                        t.assign_resized(&s, w);
                        put_w(exec, r, s);
                    }
                }
                sink_write(exec, nb, CNbWrite::Sig(sig, t));
            }
            Op::StBit { sig, width, idx, src, nb } => {
                let i = nr(exec, idx);
                if i < u64::from(width) {
                    let v = nr(exec, src);
                    let mut t = exec.scratch.take();
                    t.set_u64(1, v);
                    sink_write(exec, nb, CNbWrite::Slice(sig, i as u32, t));
                } else if exec.strict_bounds {
                    return Err(oob(exec.state, sig, i, u64::from(width)));
                }
            }
            Op::StSlice { sig, lo, w, src, nb } => {
                let mut t = exec.scratch.take();
                match src {
                    Src::N(r) => t.set_u64(w, nr(exec, r)),
                    Src::W(r) => {
                        let s = take_w(exec, r);
                        t.assign_resized(&s, w);
                        put_w(exec, r, s);
                    }
                }
                sink_write(exec, nb, CNbWrite::Slice(sig, lo, t));
            }
            Op::StMem { sig, slot, depth, width, idx, src, nb } => {
                let i = nr(exec, idx);
                match effective_mem_addr(i, depth) {
                    Some(addr) => {
                        let mut t = exec.scratch.take();
                        match src {
                            Src::N(r) => t.set_u64(width, nr(exec, r)),
                            Src::W(r) => {
                                let s = take_w(exec, r);
                                t.assign_resized(&s, width);
                                put_w(exec, r, s);
                            }
                        }
                        sink_write(
                            exec,
                            nb,
                            CNbWrite::Mem { id: sig, slot, addr, value: t },
                        );
                    }
                    None if exec.strict_bounds => {
                        return Err(oob(exec.state, sig, i, depth));
                    }
                    None => {}
                }
            }
            Op::CkBit { sig, width, idx } => {
                if exec.strict_bounds {
                    let i = nr(exec, idx);
                    if i >= u64::from(width) {
                        return Err(oob(exec.state, sig, i, u64::from(width)));
                    }
                }
            }
            Op::CkMem { sig, depth, idx } => {
                if exec.strict_bounds {
                    let i = nr(exec, idx);
                    if effective_mem_addr(i, depth).is_none() {
                        return Err(oob(exec.state, sig, i, depth));
                    }
                }
            }
            // ---- statements ----
            Op::IncCheckCap { ctr, var } => {
                let c = nr(exec, ctr) + 1;
                set_nr(exec, ctr, c);
                if c > exec.for_cap {
                    let name = exec.state.table().name(var).to_owned();
                    return Err(SimError::LoopCap(name));
                }
            }
            Op::Display { spec } => {
                if let Some((sink, time, cycle)) = &mut exec.logs {
                    let spec = &prog.displays[spec as usize];
                    let mut vals = Vec::with_capacity(spec.args.len());
                    let mut signs = Vec::with_capacity(spec.args.len());
                    for &(src, w, signed) in &spec.args {
                        vals.push(match src {
                            Src::N(r) => {
                                Bits::from_u64(w, exec.scratch.nregs[r as usize])
                            }
                            Src::W(r) => exec.scratch.wregs[r as usize].clone(),
                        });
                        signs.push(signed);
                    }
                    let message = crate::format::render_signed(&spec.format, &vals, &signs);
                    sink.push(LogRecord {
                        time: *time,
                        cycle: *cycle,
                        message,
                    });
                }
            }
            Op::Finish => return Ok(Flow::Finished),
        }
    }
    Ok(Flow::Continue)
}
