//! Fault injection: perturbing a running simulation the way real
//! reconfigurable hardware misbehaves.
//!
//! The paper's bug study (§3) catalogs failures whose *symptoms* appear far
//! from their causes: corrupted datapaths, dropped handshakes, registers
//! stuck after reset. This module reproduces those perturbations on demand
//! so the debugging tools can be exercised against designs that are
//! misbehaving *mid-run*, not just designs with static source-level bugs:
//!
//! * [`FaultKind::StuckAt`] — a signal pinned to a constant (stuck-at
//!   fault, or a net shorted by a routing defect);
//! * [`FaultKind::BitFlip`] — a one-shot single-event upset in a register;
//! * [`FaultKind::HandshakeDrop`] — a valid/ready wire forced low for a
//!   window, dropping or delaying transfers on an interface;
//! * [`FaultKind::ForceRandom`] — a signal re-forced to pseudo-random
//!   values each cycle, the two-state stand-in for an X-driven net (e.g. a
//!   flop that missed reset).
//!
//! A [`FaultPlan`] is a list of [`Fault`]s with activation windows in
//! cycles. [`step_with_faults`] applies due transitions before each clock
//! edge; [`run_with_faults`] drives a whole run. Plans can be written in a
//! small text grammar (see [`FaultPlan::parse`]) so the CLI can load them
//! from a file.

use crate::{SimError, Simulator};
use hwdbg_bits::Bits;

/// What a fault does to its target signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Pin the signal to a constant for the window (value resized to the
    /// signal's width).
    StuckAt(Bits),
    /// Invert one bit of the signal's current value, once, at the start
    /// cycle. Persistent on registers; transient on driven wires (the
    /// driver recomputes them, exactly as real logic would).
    BitFlip {
        /// Which bit to invert.
        bit: u32,
    },
    /// Force the signal low for the window — models a dropped or delayed
    /// valid/ready handshake.
    HandshakeDrop,
    /// Re-force a pseudo-random value (seeded, deterministic) every cycle
    /// of the window — the two-state analogue of an X-driven net.
    ForceRandom {
        /// PRNG seed; the same seed reproduces the same value sequence.
        seed: u64,
    },
}

/// One fault: a target signal, a kind, and an activation window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// Flat name of the target signal.
    pub signal: String,
    /// The perturbation applied.
    pub kind: FaultKind,
    /// Cycle (completed posedges of the stepped clock) at which the fault
    /// activates.
    pub from: u64,
    /// Cycle at which a windowed fault releases (exclusive). `None` keeps
    /// it active for the rest of the run. Ignored by [`FaultKind::BitFlip`].
    pub until: Option<u64>,
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let window = match self.until {
            Some(u) => format!("@ {}..{}", self.from, u),
            None => format!("@ {}..", self.from),
        };
        match &self.kind {
            FaultKind::StuckAt(v) => {
                write!(f, "stuck {} {} {}", self.signal, v.to_u64(), window)
            }
            FaultKind::BitFlip { bit } => {
                write!(f, "flip {} {} @ {}", self.signal, bit, self.from)
            }
            FaultKind::HandshakeDrop => write!(f, "drop {} {}", self.signal, window),
            FaultKind::ForceRandom { seed } => {
                write!(f, "rand {} {} {}", self.signal, seed, window)
            }
        }
    }
}

/// An ordered set of faults to inject over a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The faults, applied in order each cycle.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a stuck-at fault active for `[from, until)`.
    #[must_use]
    pub fn stuck_at(mut self, signal: &str, value: Bits, from: u64, until: Option<u64>) -> Self {
        self.faults.push(Fault {
            signal: signal.to_owned(),
            kind: FaultKind::StuckAt(value),
            from,
            until,
        });
        self
    }

    /// Adds a one-shot bit flip at `cycle`.
    #[must_use]
    pub fn bit_flip(mut self, signal: &str, bit: u32, cycle: u64) -> Self {
        self.faults.push(Fault {
            signal: signal.to_owned(),
            kind: FaultKind::BitFlip { bit },
            from: cycle,
            until: None,
        });
        self
    }

    /// Adds a handshake-drop fault active for `[from, until)`.
    #[must_use]
    pub fn handshake_drop(mut self, signal: &str, from: u64, until: Option<u64>) -> Self {
        self.faults.push(Fault {
            signal: signal.to_owned(),
            kind: FaultKind::HandshakeDrop,
            from,
            until,
        });
        self
    }

    /// Adds a forced-random (X-like) fault active for `[from, until)`.
    #[must_use]
    pub fn force_random(mut self, signal: &str, seed: u64, from: u64, until: Option<u64>) -> Self {
        self.faults.push(Fault {
            signal: signal.to_owned(),
            kind: FaultKind::ForceRandom { seed },
            from,
            until,
        });
        self
    }

    /// Parses the textual plan grammar, one fault per line:
    ///
    /// ```text
    /// # comments and blank lines are skipped
    /// stuck <signal> <value> @ <from>[..<until>]
    /// flip  <signal> <bit>   @ <cycle>
    /// drop  <signal>         @ <from>[..<until>]
    /// rand  <signal> <seed>  @ <from>[..<until>]
    /// ```
    ///
    /// Values accept decimal or `0x` hexadecimal.
    ///
    /// # Errors
    ///
    /// [`SimError::BadFault`] naming the offending line on any syntax
    /// error.
    pub fn parse(text: &str) -> Result<FaultPlan, SimError> {
        let mut plan = FaultPlan::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let bad = |what: &str| {
                SimError::BadFault(format!("line {}: {what}: `{line}`", lineno + 1))
            };
            let (head, window) = line
                .split_once('@')
                .ok_or_else(|| bad("missing `@ <cycle>` clause"))?;
            let mut fields = head.split_whitespace();
            let verb = fields.next().ok_or_else(|| bad("missing fault kind"))?;
            let signal = fields
                .next()
                .ok_or_else(|| bad("missing target signal"))?
                .to_owned();
            let arg = fields.next();
            if fields.next().is_some() {
                return Err(bad("too many fields"));
            }
            let (from, until) = parse_window(window.trim()).ok_or_else(|| bad("bad window"))?;
            let num = |s: Option<&str>, what: &str| -> Result<u64, SimError> {
                parse_u64(s.ok_or_else(|| bad(what))?).ok_or_else(|| bad(what))
            };
            let fault = match verb {
                "stuck" => Fault {
                    signal,
                    kind: FaultKind::StuckAt(Bits::from_u64(64, num(arg, "bad value")?)),
                    from,
                    until,
                },
                "flip" => Fault {
                    signal,
                    kind: FaultKind::BitFlip {
                        bit: num(arg, "bad bit index")? as u32,
                    },
                    from,
                    until: None,
                },
                "drop" => {
                    if arg.is_some() {
                        return Err(bad("drop takes no value"));
                    }
                    Fault {
                        signal,
                        kind: FaultKind::HandshakeDrop,
                        from,
                        until,
                    }
                }
                "rand" => Fault {
                    signal,
                    kind: FaultKind::ForceRandom {
                        seed: num(arg, "bad seed")?,
                    },
                    from,
                    until,
                },
                _ => return Err(bad("unknown fault kind")),
            };
            plan.faults.push(fault);
        }
        Ok(plan)
    }

    /// Checks every fault against a design: targets must be declared
    /// scalar signals, bit indices in range.
    ///
    /// # Errors
    ///
    /// [`SimError::BadFault`] describing the first impossible fault.
    pub fn validate(&self, design: &hwdbg_dataflow::Design) -> Result<(), SimError> {
        for f in &self.faults {
            let Some(sig) = design.signal(&f.signal) else {
                return Err(SimError::BadFault(format!(
                    "target `{}` is not a signal of `{}`",
                    f.signal, design.name
                )));
            };
            if sig.mem_depth.is_some() {
                return Err(SimError::BadFault(format!(
                    "target `{}` is a memory; fault injection targets scalars",
                    f.signal
                )));
            }
            if let FaultKind::BitFlip { bit } = f.kind {
                if bit >= sig.width {
                    return Err(SimError::BadFault(format!(
                        "bit {bit} out of range for `{}` ({} bits)",
                        f.signal, sig.width
                    )));
                }
            }
            if let Some(until) = f.until {
                if until <= f.from {
                    return Err(SimError::BadFault(format!(
                        "empty window {}..{until} on `{}`",
                        f.from, f.signal
                    )));
                }
            }
        }
        Ok(())
    }
}

/// `<from>`, `<from>..`, or `<from>..<until>`.
fn parse_window(s: &str) -> Option<(u64, Option<u64>)> {
    match s.split_once("..") {
        None => Some((parse_u64(s)?, None)),
        Some((a, "")) => Some((parse_u64(a)?, None)),
        Some((a, b)) => Some((parse_u64(a)?, Some(parse_u64(b)?))),
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Deterministic value stream for [`FaultKind::ForceRandom`].
fn scramble(seed: u64, cycle: u64) -> u64 {
    let mut x =
        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ cycle.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    if x == 0 {
        x = 0x2545_F491_4F6C_DD1D;
    }
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

/// Applies the plan's transitions due at the simulator's current cycle of
/// `clock`, then advances one cycle.
///
/// # Errors
///
/// [`SimError::BadFault`] for impossible targets (surface them early with
/// [`FaultPlan::validate`]); otherwise propagates [`Simulator::step`]
/// errors.
pub fn step_with_faults(
    sim: &mut Simulator,
    clock: &str,
    plan: &FaultPlan,
) -> Result<(), SimError> {
    let now = sim.cycle(clock);
    for f in &plan.faults {
        let width = sim
            .design()
            .signal(&f.signal)
            .filter(|s| s.mem_depth.is_none())
            .map(|s| s.width)
            .ok_or_else(|| {
                SimError::BadFault(format!("target `{}` is not a scalar signal", f.signal))
            })?;
        match &f.kind {
            FaultKind::StuckAt(v) => {
                if now == f.from {
                    sim.force(&f.signal, v.resize(width))?;
                    sim.count_fault_event();
                }
                if f.until == Some(now) {
                    sim.release(&f.signal)?;
                    sim.count_fault_event();
                }
            }
            FaultKind::BitFlip { bit } => {
                if now == f.from && *bit < width {
                    let mut v = sim.peek(&f.signal)?.clone();
                    let old = v.bit(*bit);
                    v.splice(*bit, &Bits::from_bool(!old));
                    sim.poke(&f.signal, v)?;
                    sim.count_fault_event();
                }
            }
            FaultKind::HandshakeDrop => {
                if now == f.from {
                    sim.force(&f.signal, Bits::from_u64(width, 0))?;
                    sim.count_fault_event();
                }
                if f.until == Some(now) {
                    sim.release(&f.signal)?;
                    sim.count_fault_event();
                }
            }
            FaultKind::ForceRandom { seed } => {
                let active = now >= f.from && f.until.is_none_or(|u| now < u);
                if active {
                    let v = Bits::from_u64(width.min(64), scramble(*seed, now)).resize(width);
                    // Re-force each cycle: the value must change while
                    // pinned, so release the old pin first.
                    sim.release(&f.signal)?;
                    sim.force(&f.signal, v)?;
                    sim.count_fault_event();
                } else if f.until == Some(now) {
                    sim.release(&f.signal)?;
                    sim.count_fault_event();
                }
            }
        }
    }
    sim.step(clock)
}

/// Runs `n` cycles of `clock`, injecting `plan`. Stops early at `$finish`.
/// Returns the number of cycles actually stepped.
///
/// # Errors
///
/// Propagates [`step_with_faults`] errors.
pub fn run_with_faults(
    sim: &mut Simulator,
    clock: &str,
    n: u64,
    plan: &FaultPlan,
) -> Result<u64, SimError> {
    let mut stepped = 0;
    for _ in 0..n {
        if sim.finished() {
            break;
        }
        step_with_faults(sim, clock, plan)?;
        stepped += 1;
    }
    Ok(stepped)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_each_kind() {
        let plan = FaultPlan::parse(
            "# a comment\n\
             stuck top_v 1 @ 3..9\n\
             flip q 2 @ 5\n\
             drop s_valid @ 4..\n\
             rand d 0xBEEF @ 0..2\n",
        )
        .unwrap();
        assert_eq!(plan.faults.len(), 4);
        assert_eq!(
            plan.faults[0].kind,
            FaultKind::StuckAt(Bits::from_u64(64, 1))
        );
        assert_eq!(plan.faults[0].until, Some(9));
        assert_eq!(plan.faults[1].kind, FaultKind::BitFlip { bit: 2 });
        assert_eq!(plan.faults[2].kind, FaultKind::HandshakeDrop);
        assert_eq!(plan.faults[2].until, None);
        assert_eq!(
            plan.faults[3].kind,
            FaultKind::ForceRandom { seed: 0xBEEF }
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "stuck x 1",          // no window
            "wobble x @ 1",       // unknown verb
            "flip x @ 1",         // missing bit
            "drop x 1 @ 2",       // drop takes no value
            "stuck x y @ 1",      // non-numeric value
            "stuck x 1 2 3 @ 1",  // too many fields
        ] {
            let err = FaultPlan::parse(bad).unwrap_err();
            assert!(
                matches!(err, SimError::BadFault(_)),
                "`{bad}` should be rejected, got {err:?}"
            );
        }
    }

    #[test]
    fn scramble_is_deterministic() {
        assert_eq!(scramble(7, 3), scramble(7, 3));
        assert_ne!(scramble(7, 3), scramble(7, 4));
    }
}
