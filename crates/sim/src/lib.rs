//! Cycle-accurate simulator for elaborated RTL designs.
//!
//! This crate plays Verilator's role in the paper: it executes the flat
//! [`Design`](hwdbg_dataflow::Design) produced by `hwdbg-dataflow` with
//! two-phase synchronous semantics (combinational settle, clocked processes
//! reading pre-edge state, nonblocking commit), captures `$display` output
//! as structured [`LogRecord`]s, detects infinite stalls via a watchdog,
//! and can dump VCD waveforms.
//!
//! Blackbox IPs (FIFOs, RAMs, the SignalCat trace buffer) plug in through
//! the [`Blackbox`] / [`BlackboxFactory`] traits; `hwdbg-ip` provides the
//! standard library of models.
//!
//! # Examples
//!
//! ```
//! use hwdbg_sim::{Simulator, SimConfig, NoModels};
//! use hwdbg_dataflow::{elaborate, NoBlackboxes};
//!
//! let file = hwdbg_rtl::parse(
//!     "module counter(input clk, output reg [7:0] q);
//!        always @(posedge clk) q <= q + 8'd1;
//!      endmodule",
//! )?;
//! let design = elaborate(&file, "counter", &NoBlackboxes)?;
//! let mut sim = Simulator::new(design, &NoModels, SimConfig::default())?;
//! sim.run("clk", 10)?;
//! assert_eq!(sim.peek("q")?.to_u64(), 10);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod bytecode;
mod compile;
mod engine;
mod eval;
pub mod fault;
pub mod format;
mod sched;
mod state;
pub mod vcd;

pub use engine::{
    Backend, CompiledDesign, Checkpoint, SettleMode, SimConfig, Simulator, StimulusPlan,
    DEADLINE_CHECK_MASK,
};
pub use fault::{run_with_faults, step_with_faults, Fault, FaultKind, FaultPlan};
pub use eval::{effective_mem_addr, eval_expr, expr_width, is_signed};
pub use state::{RegInit, SimState};
pub use vcd::VcdWriter;

use hwdbg_bits::Bits;
use hwdbg_dataflow::BbInst;
use std::collections::BTreeMap;
use std::fmt;

/// One captured `$display` record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Global step counter when the record was produced.
    pub time: u64,
    /// Cycle number of the clock whose edge produced it.
    pub cycle: u64,
    /// The rendered message.
    pub message: String,
}

impl fmt::Display for LogRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>6}] {}", self.cycle, self.message)
    }
}

/// A behavioral model of a blackbox IP instance.
pub trait Blackbox {
    /// Combinational outputs as a function of internal state and current
    /// inputs. Called repeatedly while the design settles, so it must be
    /// idempotent for a given input map.
    fn eval(&mut self, inputs: &BTreeMap<String, Bits>) -> BTreeMap<String, Bits>;

    /// Evaluates a single combinational output `port` into `out`, reusing
    /// its storage; returns false when the model does not drive the port.
    /// This is the simulator's hot-path entry point — it may be called once
    /// per connected output port per settle. The default delegates to
    /// [`eval`](Self::eval) (allocating a full output map each call);
    /// models override it to keep settling allocation-free.
    fn eval_port(&mut self, port: &str, inputs: &BTreeMap<String, Bits>, out: &mut Bits) -> bool {
        let mut m = self.eval(inputs);
        match m.remove(port) {
            Some(v) => {
                out.assign_from(&v);
                true
            }
            None => false,
        }
    }

    /// State update on a rising edge of the clock connected to `clock_port`,
    /// observing the pre-edge `inputs`.
    fn tick(&mut self, clock_port: &str, inputs: &BTreeMap<String, Bits>);

    /// Downcast hook so post-run tooling (e.g. SignalCat's log
    /// reconstruction) can read captured state out of a model.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Captures the model's internal state for checkpointing. Models that
    /// do not support checkpointing return `None` (the default), which
    /// makes [`Simulator::checkpoint`] fail rather than silently produce
    /// a partial snapshot. The payload is `Send` so checkpoints can move
    /// between campaign worker threads with the simulators they rewind.
    fn snapshot(&self) -> Option<Box<dyn std::any::Any + Send>> {
        None
    }

    /// Restores state captured by [`snapshot`](Self::snapshot). Returns
    /// false when the payload is not recognized.
    fn restore(&mut self, _state: &dyn std::any::Any) -> bool {
        false
    }
}

/// Creates behavioral models for blackbox instances. Models are `Send`
/// so a simulator (and everything it owns) can run on a worker thread.
pub trait BlackboxFactory {
    /// Returns a model for `inst`, or `None` if the IP is unknown.
    fn create(&self, inst: &BbInst) -> Option<Box<dyn Blackbox + Send>>;
}

/// A factory with no models (pure-RTL designs).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoModels;

impl BlackboxFactory for NoModels {
    fn create(&self, _inst: &BbInst) -> Option<Box<dyn Blackbox + Send>> {
        None
    }
}

/// Errors produced by simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// Reference to a signal the design does not declare.
    UnknownSignal(String),
    /// A part-select or replication whose bounds are not constant.
    NonConstSelect,
    /// A part-select whose constant bounds are reversed (`[lsb:msb]` with
    /// `lsb > msb`). Distinct from [`SimError::NonConstSelect`]: the
    /// bounds *are* constant, they are just in the wrong order.
    ReversedRange {
        /// The (smaller) value written in the msb position.
        msb: u64,
        /// The (larger) value written in the lsb position.
        lsb: u64,
    },
    /// Combinational logic failed to reach a fixpoint.
    CombLoop {
        /// Signals still changing value in the final settle iterations —
        /// the cycle to break is among these.
        unstable: Vec<String>,
    },
    /// A procedural `for` loop exceeded the iteration cap.
    LoopCap(String),
    /// `run_until` hit its cycle budget — the design appears stuck.
    Watchdog {
        /// How many cycles were executed before giving up.
        cycles: u64,
    },
    /// The design executed `$finish` before the `run_until` condition ever
    /// held — the testbench terminated early rather than reaching the
    /// awaited state.
    EarlyFinish {
        /// How many cycles were executed before `$finish`.
        cycles: u64,
    },
    /// The wall-clock deadline ([`SimConfig::deadline`]) expired before
    /// the run finished. This is the cooperative per-job watchdog campaign
    /// runners use to surface hung jobs as `timed-out` records instead of
    /// wedging a worker forever; checked once per step and periodically
    /// inside long combinational settles.
    DeadlineExceeded {
        /// Global step count when the deadline fired.
        steps: u64,
    },
    /// A blackbox instance has no behavioral model.
    NoModel(String),
    /// A poke or connection whose value width does not match the signal.
    WidthMismatch {
        /// The signal being written.
        signal: String,
        /// The signal's declared width.
        expected: u32,
        /// The width actually supplied.
        got: u32,
    },
    /// Strict-mode out-of-bounds memory or bit access.
    OutOfBounds {
        /// The memory or vector signal accessed.
        signal: String,
        /// The offending index.
        index: u64,
        /// The legal depth (memories) or width (vectors).
        depth: u64,
    },
    /// A fault plan names an impossible target (unknown signal, bit out of
    /// range, value wider than the signal).
    BadFault(String),
    /// An internal invariant broke; a bug in the simulator, not the design.
    Internal(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownSignal(n) => write!(f, "unknown signal `{n}`"),
            SimError::NonConstSelect => write!(f, "non-constant select bounds"),
            SimError::ReversedRange { msb, lsb } => write!(
                f,
                "reversed part-select bounds [{msb}:{lsb}] (msb < lsb)"
            ),
            SimError::CombLoop { unstable } => {
                write!(f, "combinational loop: settle did not converge")?;
                if !unstable.is_empty() {
                    write!(f, " (unstable: {})", unstable.join(", "))?;
                }
                Ok(())
            }
            SimError::LoopCap(v) => write!(f, "for-loop over `{v}` exceeded iteration cap"),
            SimError::Watchdog { cycles } => {
                write!(f, "watchdog: design stuck after {cycles} cycles")
            }
            SimError::EarlyFinish { cycles } => write!(
                f,
                "$finish after {cycles} cycles before the awaited condition held"
            ),
            SimError::DeadlineExceeded { steps } => write!(
                f,
                "wall-clock deadline exceeded after {steps} steps"
            ),
            SimError::NoModel(m) => write!(f, "no behavioral model for blackbox `{m}`"),
            SimError::WidthMismatch {
                signal,
                expected,
                got,
            } => write!(
                f,
                "width mismatch on `{signal}`: expected {expected} bits, got {got}"
            ),
            SimError::OutOfBounds {
                signal,
                index,
                depth,
            } => write!(
                f,
                "out-of-bounds access to `{signal}`: index {index}, depth {depth}"
            ),
            SimError::BadFault(m) => write!(f, "invalid fault: {m}"),
            SimError::Internal(m) => write!(f, "internal simulator error: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<SimError> for hwdbg_diag::HwdbgError {
    fn from(e: SimError) -> Self {
        use hwdbg_diag::{ErrorCode, HwdbgError};
        let message = e.to_string();
        let (code, signals): (ErrorCode, Vec<String>) = match &e {
            SimError::UnknownSignal(n) => (ErrorCode::UnknownSignal, vec![n.clone()]),
            SimError::NonConstSelect => (ErrorCode::NonConstSelect, vec![]),
            SimError::ReversedRange { .. } => (ErrorCode::ReversedRange, vec![]),
            SimError::CombLoop { unstable } => (ErrorCode::CombLoop, unstable.clone()),
            SimError::LoopCap(v) => (ErrorCode::LoopCap, vec![v.clone()]),
            SimError::Watchdog { .. } => (ErrorCode::Watchdog, vec![]),
            SimError::EarlyFinish { .. } => (ErrorCode::EarlyFinish, vec![]),
            SimError::DeadlineExceeded { .. } => (ErrorCode::DeadlineExceeded, vec![]),
            SimError::NoModel(m) => (ErrorCode::NoModel, vec![m.clone()]),
            SimError::WidthMismatch { signal, .. } => {
                (ErrorCode::WidthMismatch, vec![signal.clone()])
            }
            SimError::OutOfBounds { signal, .. } => {
                (ErrorCode::OutOfBounds, vec![signal.clone()])
            }
            SimError::BadFault(_) => (ErrorCode::BadFaultPlan, vec![]),
            SimError::Internal(_) => (ErrorCode::Internal, vec![]),
        };
        HwdbgError::new(code, message).with_signals(signals)
    }
}
