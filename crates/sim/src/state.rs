//! Simulation state: current value of every signal and memory.

use hwdbg_bits::Bits;
use hwdbg_dataflow::Design;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Register/memory initialization policy.
///
/// FPGAs power up with deterministic register contents, but a
/// failure-to-initialize bug shows up only when the "previous contents"
/// differ from the value the developer assumed; `Random` reproduces that
/// deterministically from a seed (Verilator's `+verilator+rand+reset`
/// plays the same role for the paper's testbed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegInit {
    /// Everything starts at zero.
    Zero,
    /// Registers and memories start at seeded-random values.
    Random(u64),
}

/// The mutable value store of a running simulation.
#[derive(Debug, Clone)]
pub struct SimState {
    values: BTreeMap<String, Bits>,
    mems: BTreeMap<String, Vec<Bits>>,
}

impl SimState {
    /// Creates state for `design` with the given init policy.
    pub fn new(design: &Design, init: RegInit) -> Self {
        let mut rng = match init {
            RegInit::Zero => None,
            RegInit::Random(seed) => Some(StdRng::seed_from_u64(seed)),
        };
        let mut values = BTreeMap::new();
        let mut mems = BTreeMap::new();
        for sig in design.signals.values() {
            let mut make = |width: u32| -> Bits {
                match (&mut rng, sig.is_state()) {
                    (Some(rng), true) => {
                        let mut b = Bits::zero(width);
                        for i in 0..width {
                            b.set_bit(i, rng.gen_bool(0.5));
                        }
                        b
                    }
                    _ => Bits::zero(width),
                }
            };
            if let Some(depth) = sig.mem_depth {
                let elems = (0..depth).map(|_| make(sig.width)).collect();
                mems.insert(sig.name.clone(), elems);
            } else {
                let v = make(sig.width);
                values.insert(sig.name.clone(), v);
            }
        }
        SimState { values, mems }
    }

    /// Current value of a (non-memory) signal.
    pub fn get(&self, name: &str) -> Option<&Bits> {
        self.values.get(name)
    }

    /// Overwrites a signal's value, resizing to the stored width.
    /// Returns true if the value changed.
    pub fn set(&mut self, name: &str, value: Bits) -> bool {
        match self.values.get_mut(name) {
            Some(slot) => {
                let resized = value.resize(slot.width());
                if *slot != resized {
                    *slot = resized;
                    true
                } else {
                    false
                }
            }
            None => false,
        }
    }

    /// Reads a memory element; out-of-range addresses read as zero.
    pub fn read_mem(&self, name: &str, idx: u64) -> Bits {
        match self.mems.get(name) {
            Some(elems) => elems
                .get(idx as usize)
                .cloned()
                .unwrap_or_else(|| Bits::zero(elems.first().map_or(1, |e| e.width()))),
            None => Bits::zero(1),
        }
    }

    /// Writes a memory element at an already-validated address.
    pub fn write_mem(&mut self, name: &str, idx: u64, value: Bits) {
        if let Some(elems) = self.mems.get_mut(name) {
            if let Some(slot) = elems.get_mut(idx as usize) {
                let w = slot.width();
                *slot = value.resize(w);
            }
        }
    }

    /// Whole contents of a memory (for testbench assertions).
    pub fn mem(&self, name: &str) -> Option<&[Bits]> {
        self.mems.get(name).map(|v| v.as_slice())
    }

    /// Names and values of all scalar signals (for VCD dumping).
    pub fn iter_values(&self) -> impl Iterator<Item = (&String, &Bits)> {
        self.values.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwdbg_dataflow::{elaborate, NoBlackboxes};
    use hwdbg_rtl::parse;

    fn d(src: &str) -> Design {
        elaborate(&parse(src).unwrap(), "m", &NoBlackboxes).unwrap()
    }

    #[test]
    fn zero_init() {
        let design = d("module m(input clk, output reg [7:0] q);
            reg [7:0] mem [0:3];
            always @(posedge clk) q <= mem[0];
        endmodule");
        let st = SimState::new(&design, RegInit::Zero);
        assert!(st.get("q").unwrap().is_zero());
        assert!(st.read_mem("mem", 2).is_zero());
    }

    #[test]
    fn random_init_is_deterministic_and_only_for_state() {
        let design = d("module m(input clk, input [7:0] d, output reg [7:0] q);
            always @(posedge clk) q <= d;
        endmodule");
        let a = SimState::new(&design, RegInit::Random(42));
        let b = SimState::new(&design, RegInit::Random(42));
        assert_eq!(a.get("q"), b.get("q"));
        // Inputs are not state: always zero-initialized.
        assert!(a.get("d").unwrap().is_zero());
        let c = SimState::new(&design, RegInit::Random(43));
        // Seeds differ → (very likely) different register image; if equal,
        // the 8-bit register collided, which both seeds permit — just check
        // determinism elsewhere.
        let _ = c;
    }

    #[test]
    fn set_resizes() {
        let design = d("module m(input clk, output reg [3:0] q);
            always @(posedge clk) q <= 4'd0;
        endmodule");
        let mut st = SimState::new(&design, RegInit::Zero);
        assert!(st.set("q", Bits::from_u64(8, 0xFF)));
        assert_eq!(st.get("q").unwrap().to_u64(), 0xF);
        assert!(!st.set("q", Bits::from_u64(4, 0xF))); // unchanged
    }

    #[test]
    fn mem_out_of_range_reads_zero() {
        let design = d("module m(input clk);
            reg [7:0] mem [0:3];
            always @(posedge clk) mem[0] <= 8'd1;
        endmodule");
        let st = SimState::new(&design, RegInit::Zero);
        assert!(st.read_mem("mem", 99).is_zero());
        assert_eq!(st.read_mem("mem", 99).width(), 8);
    }
}
