//! Simulation state: current value of every signal and memory.
//!
//! Storage is dense: one `Vec<Bits>` slot per interned [`SigId`], plus one
//! array per memory. The string-keyed accessors (`get`/`set`/`read_mem`/…)
//! are thin shims over the dense layout so testbenches and tools keep
//! working unchanged; the compiled simulator hot path uses the `_id`/`_slot`
//! variants and never touches a name.

use hwdbg_bits::{Bits, SplitMix64};
use hwdbg_dataflow::{Design, SigId, SignalTable};
use std::sync::Arc;

/// Register/memory initialization policy.
///
/// FPGAs power up with deterministic register contents, but a
/// failure-to-initialize bug shows up only when the "previous contents"
/// differ from the value the developer assumed; `Random` reproduces that
/// deterministically from a seed (Verilator's `+verilator+rand+reset`
/// plays the same role for the paper's testbed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegInit {
    /// Everything starts at zero.
    Zero,
    /// Registers and memories start at seeded-random values.
    Random(u64),
}

/// Marker for "this signal is not a memory" in the slot map.
const NOT_A_MEM: u32 = u32::MAX;

/// The mutable value store of a running simulation.
#[derive(Debug, Clone)]
pub struct SimState {
    /// Shared interner (IDs are in sorted-name order).
    table: Arc<SignalTable>,
    /// One value per signal ID; memory IDs hold a 1-bit placeholder.
    values: Vec<Bits>,
    /// Memory arrays, indexed by the slot in `mem_slot`.
    mems: Vec<Vec<Bits>>,
    /// Per signal ID: index into `mems`, or `NOT_A_MEM` for scalars.
    mem_slot: Vec<u32>,
}

impl SimState {
    /// Creates state for `design` with the given init policy.
    pub fn new(design: &Design, init: RegInit) -> Self {
        let mut rng = match init {
            RegInit::Zero => None,
            RegInit::Random(seed) => Some(SplitMix64::new(seed)),
        };
        let n = design.table.len();
        let mut values = Vec::with_capacity(n);
        let mut mems = Vec::new();
        let mut mem_slot = vec![NOT_A_MEM; n];
        // `design.signals` iterates in name order, which is also ID order.
        for (id, sig) in design.signals.values().enumerate() {
            let mut make = |width: u32| -> Bits {
                match (&mut rng, sig.is_state()) {
                    (Some(rng), true) => {
                        let mut b = Bits::zero(width);
                        for i in 0..width {
                            b.set_bit(i, rng.next_bool());
                        }
                        b
                    }
                    _ => Bits::zero(width),
                }
            };
            if let Some(depth) = sig.mem_depth {
                let elems: Vec<Bits> = (0..depth).map(|_| make(sig.width)).collect();
                mem_slot[id] = mems.len() as u32;
                mems.push(elems);
                values.push(Bits::zero(1));
            } else {
                values.push(make(sig.width));
            }
        }
        SimState {
            table: Arc::new(design.table.clone()),
            values,
            mems,
            mem_slot,
        }
    }

    /// Resets every signal and memory to the exact image
    /// [`SimState::new`]`(design, init)` would produce, reusing existing
    /// storage. The RNG is consumed in precisely the same order as `new`,
    /// so a reset state is byte-identical to a freshly built one — that is
    /// what lets campaign workers recycle one simulator across jobs.
    pub fn reset(&mut self, design: &Design, init: RegInit) {
        let mut rng = match init {
            RegInit::Zero => None,
            RegInit::Random(seed) => Some(SplitMix64::new(seed)),
        };
        for (id, sig) in design.signals.values().enumerate() {
            let mut fill = |slot: &mut Bits, width: u32| match (&mut rng, sig.is_state()) {
                (Some(rng), true) => {
                    slot.set_zero(width);
                    for i in 0..width {
                        slot.set_bit(i, rng.next_bool());
                    }
                }
                _ => slot.set_zero(width),
            };
            if sig.mem_depth.is_some() {
                let slot = self.mem_slot[id] as usize;
                let width = sig.width;
                for el in &mut self.mems[slot] {
                    fill(el, width);
                }
                self.values[id].set_zero(1);
            } else {
                fill(&mut self.values[id], sig.width);
            }
        }
    }

    /// The interner this state was built against.
    pub fn table(&self) -> &SignalTable {
        &self.table
    }

    /// The memory slot for a signal ID, if it is a memory.
    #[inline]
    pub fn mem_slot_of(&self, id: SigId) -> Option<u32> {
        match self.mem_slot[id.index()] {
            NOT_A_MEM => None,
            s => Some(s),
        }
    }

    /// Current value of an interned scalar signal (hot path; no lookup).
    #[inline]
    pub fn get_id(&self, id: SigId) -> &Bits {
        &self.values[id.index()]
    }

    /// Overwrites an interned scalar's value, resizing to the stored width.
    /// Returns true if the value changed. Compares and copies in place:
    /// the dense slot's storage is reused, never reallocated for `<= 64`-bit
    /// signals.
    #[inline]
    pub fn set_id(&mut self, id: SigId, value: &Bits) -> bool {
        let slot = &mut self.values[id.index()];
        if slot.eq_truncated(value) {
            return false;
        }
        let w = slot.width();
        slot.assign_resized(value, w);
        true
    }

    /// Overwrites an interned scalar with `value` truncated to the stored
    /// width, in place and allocation-free at any width. Returns true if
    /// the value changed.
    #[inline]
    pub fn set_id_u64(&mut self, id: SigId, value: u64) -> bool {
        self.values[id.index()].update_u64(value)
    }

    /// Overwrites an interned scalar with `value` truncated to the stored
    /// width, skipping the change-detection compare that
    /// [`set_id_u64`](SimState::set_id_u64) pays. Fused-region flushes of
    /// register-promoted signals use this: the scheduler already knows the
    /// region ran, so the compare buys nothing.
    #[inline]
    pub fn store_id_u64(&mut self, id: SigId, value: u64) {
        let slot = &mut self.values[id.index()];
        let w = slot.width();
        slot.set_u64(w, value);
    }

    /// Wide counterpart of [`store_id_u64`](SimState::store_id_u64):
    /// overwrites an interned scalar from `value`, resized to the stored
    /// width, with no compare and no allocation.
    #[inline]
    pub fn store_id(&mut self, id: SigId, value: &Bits) {
        let slot = &mut self.values[id.index()];
        let w = slot.width();
        slot.assign_resized(value, w);
    }

    /// Writes `value` into bits `[lo +: value.width]` of an interned
    /// scalar, in place. Returns true if the stored value changed.
    #[inline]
    pub fn splice_id(&mut self, id: SigId, lo: u32, value: &Bits) -> bool {
        let slot = &mut self.values[id.index()];
        if slot.slice_eq(lo, value) {
            return false;
        }
        slot.splice(lo, value);
        true
    }

    /// Reads one element of the memory in `slot`; out-of-range addresses
    /// read as zero.
    #[inline]
    pub fn read_mem_slot(&self, slot: u32, idx: u64) -> Bits {
        let mut out = Bits::default();
        self.read_mem_slot_into(slot, idx, &mut out);
        out
    }

    /// In-place [`read_mem_slot`](SimState::read_mem_slot), reusing `out`'s
    /// storage.
    #[inline]
    pub fn read_mem_slot_into(&self, slot: u32, idx: u64, out: &mut Bits) {
        let elems = &self.mems[slot as usize];
        match elems.get(idx as usize) {
            Some(el) => out.assign_from(el),
            None => out.set_zero(elems.first().map_or(1, Bits::width)),
        }
    }

    /// One memory element as a `u64` (low limb): the bytecode backend's
    /// narrow-element load. Out-of-range reads are zero, matching
    /// [`read_mem_slot_into`](SimState::read_mem_slot_into).
    #[inline]
    pub fn read_mem_slot_u64(&self, slot: u32, idx: u64) -> u64 {
        self.mems[slot as usize]
            .get(idx as usize)
            .map_or(0, Bits::to_u64)
    }

    /// Writes one element of the memory in `slot` at an already-validated
    /// address, in place. Returns true if the stored value changed.
    #[inline]
    pub fn write_mem_slot(&mut self, slot: u32, idx: u64, value: &Bits) -> bool {
        let elems = &mut self.mems[slot as usize];
        if let Some(el) = elems.get_mut(idx as usize) {
            if !el.eq_truncated(value) {
                let w = el.width();
                el.assign_resized(value, w);
                return true;
            }
        }
        false
    }

    /// Current value of a (non-memory) signal.
    pub fn get(&self, name: &str) -> Option<&Bits> {
        let id = self.table.id(name)?;
        if self.mem_slot[id.index()] != NOT_A_MEM {
            return None;
        }
        Some(&self.values[id.index()])
    }

    /// Overwrites a signal's value, resizing to the stored width.
    /// Returns true if the value changed.
    pub fn set(&mut self, name: &str, value: Bits) -> bool {
        match self.table.id(name) {
            Some(id) if self.mem_slot[id.index()] == NOT_A_MEM => self.set_id(id, &value),
            _ => false,
        }
    }

    /// Reads a memory element; out-of-range addresses read as zero.
    pub fn read_mem(&self, name: &str, idx: u64) -> Bits {
        match self.table.id(name).and_then(|id| self.mem_slot_of(id)) {
            Some(slot) => self.read_mem_slot(slot, idx),
            None => Bits::zero(1),
        }
    }

    /// Writes a memory element at an already-validated address.
    pub fn write_mem(&mut self, name: &str, idx: u64, value: Bits) {
        if let Some(slot) = self.table.id(name).and_then(|id| self.mem_slot_of(id)) {
            self.write_mem_slot(slot, idx, &value);
        }
    }

    /// Whole contents of a memory (for testbench assertions).
    pub fn mem(&self, name: &str) -> Option<&[Bits]> {
        let slot = self.table.id(name).and_then(|id| self.mem_slot_of(id))?;
        Some(&self.mems[slot as usize])
    }

    /// Names and values of all scalar signals, in name order (for VCD
    /// dumping).
    pub fn iter_values(&self) -> impl Iterator<Item = (&str, &Bits)> {
        self.table
            .iter()
            .filter(|(id, _)| self.mem_slot[id.index()] == NOT_A_MEM)
            .map(|(id, name)| (name, &self.values[id.index()]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwdbg_dataflow::{elaborate, NoBlackboxes};
    use hwdbg_rtl::parse;

    fn d(src: &str) -> Design {
        elaborate(&parse(src).unwrap(), "m", &NoBlackboxes).unwrap()
    }

    #[test]
    fn zero_init() {
        let design = d("module m(input clk, output reg [7:0] q);
            reg [7:0] mem [0:3];
            always @(posedge clk) q <= mem[0];
        endmodule");
        let st = SimState::new(&design, RegInit::Zero);
        assert!(st.get("q").unwrap().is_zero());
        assert!(st.read_mem("mem", 2).is_zero());
    }

    #[test]
    fn random_init_is_deterministic_and_only_for_state() {
        let design = d("module m(input clk, input [7:0] d, output reg [7:0] q);
            always @(posedge clk) q <= d;
        endmodule");
        let a = SimState::new(&design, RegInit::Random(42));
        let b = SimState::new(&design, RegInit::Random(42));
        assert_eq!(a.get("q"), b.get("q"));
        // Inputs are not state: always zero-initialized.
        assert!(a.get("d").unwrap().is_zero());
        let c = SimState::new(&design, RegInit::Random(43));
        // Seeds differ → (very likely) different register image; if equal,
        // the 8-bit register collided, which both seeds permit — just check
        // determinism elsewhere.
        let _ = c;
    }

    #[test]
    fn set_resizes() {
        let design = d("module m(input clk, output reg [3:0] q);
            always @(posedge clk) q <= 4'd0;
        endmodule");
        let mut st = SimState::new(&design, RegInit::Zero);
        assert!(st.set("q", Bits::from_u64(8, 0xFF)));
        assert_eq!(st.get("q").unwrap().to_u64(), 0xF);
        assert!(!st.set("q", Bits::from_u64(4, 0xF))); // unchanged
    }

    #[test]
    fn mem_out_of_range_reads_zero() {
        let design = d("module m(input clk);
            reg [7:0] mem [0:3];
            always @(posedge clk) mem[0] <= 8'd1;
        endmodule");
        let st = SimState::new(&design, RegInit::Zero);
        assert!(st.read_mem("mem", 99).is_zero());
        assert_eq!(st.read_mem("mem", 99).width(), 8);
    }

    #[test]
    fn dense_accessors_match_name_shims() {
        let design = d("module m(input clk, input [7:0] d, output reg [7:0] q);
            reg [7:0] mem [0:3];
            always @(posedge clk) begin q <= d; mem[0] <= d; end
        endmodule");
        let mut st = SimState::new(&design, RegInit::Zero);
        let q = design.sig_id("q").unwrap();
        assert!(st.set_id(q, &Bits::from_u64(8, 0xAB)));
        assert_eq!(st.get("q").unwrap().to_u64(), 0xAB);
        let mem = design.sig_id("mem").unwrap();
        let slot = st.mem_slot_of(mem).unwrap();
        assert!(st.write_mem_slot(slot, 1, &Bits::from_u64(8, 7)));
        assert_eq!(st.read_mem("mem", 1).to_u64(), 7);
        // A memory name is not a scalar: the scalar shims refuse it.
        assert!(st.get("mem").is_none());
        assert!(!st.set("mem", Bits::from_u64(8, 1)));
    }
}
