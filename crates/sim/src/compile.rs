//! Compile-then-run support: the one-time translation of an elaborated
//! [`Design`] into an interned, pre-resolved form the simulator executes.
//!
//! The seed interpreter walked the RTL AST directly, performing a
//! `BTreeMap<String, _>` lookup (and a `String` clone on every error path)
//! for each signal reference, re-deriving static facts (widths, signedness,
//! memory-ness) on every evaluation. [`Compiled::build`] does all of that
//! exactly once at [`Simulator::new`](crate::Simulator::new) time:
//!
//! * every `Expr::Ident` / `LValue` becomes a dense [`SigId`] (or an inline
//!   constant, for parameters),
//! * ternary result widths, operator signedness, memory slots/depths, and
//!   concat split widths are precomputed,
//! * each combinational driver and blackbox instance becomes a schedulable
//!   *unit* with a static read-set, from which the per-signal `readers` /
//!   `writers` tables that power dependency-driven settling are built.
//!
//! Execution semantics ([`CExec`]) are byte-for-byte those of the seed
//! interpreter; `crates/sim/tests/compiled_equivalence.rs` holds the
//! differential proof against full-pass settling.

use crate::eval::{apply_binary_signed_into, effective_mem_addr, expr_width, is_signed};
use crate::state::SimState;
use crate::{LogRecord, SimError};
use hwdbg_bits::Bits;
use hwdbg_dataflow::{apply_binary_into, Design, SigId};
use hwdbg_rtl::{BinaryOp, Expr, LValue, Stmt, UnaryOp};

/// A compiled expression: all names resolved, all static facts inlined.
#[derive(Debug, Clone)]
pub(crate) enum CExpr {
    /// A literal or folded parameter value.
    Const(Bits),
    /// An interned scalar signal read.
    Sig(SigId),
    Unary(UnaryOp, Box<CExpr>),
    Binary {
        op: BinaryOp,
        /// Precomputed: both operands are signed in the source design.
        signed: bool,
        a: Box<CExpr>,
        b: Box<CExpr>,
    },
    Ternary {
        cond: Box<CExpr>,
        t: Box<CExpr>,
        f: Box<CExpr>,
        /// Precomputed static width of the whole ternary.
        width: u32,
    },
    /// Single-bit select of a scalar signal.
    BitIndex {
        sig: SigId,
        width: u32,
        idx: Box<CExpr>,
    },
    /// Memory element read (slot pre-resolved).
    MemIndex { slot: u32, idx: Box<CExpr> },
    /// Part select of a scalar signal; bounds evaluated at runtime to keep
    /// the interpreter's semantics for (rare) non-constant bounds.
    RangeSig {
        sig: SigId,
        msb: Box<CExpr>,
        lsb: Box<CExpr>,
    },
    /// Part select of a constant (parameter).
    RangeConst {
        value: Bits,
        msb: Box<CExpr>,
        lsb: Box<CExpr>,
    },
    Concat(Vec<CExpr>),
    Repeat { count: Box<CExpr>, body: Box<CExpr> },
    /// Width cast (`W'(expr)`).
    Resize(u32, Box<CExpr>),
}

/// A compiled assignment destination.
#[derive(Debug, Clone)]
pub(crate) enum CLValue {
    /// Whole scalar signal.
    Sig { id: SigId, width: u32 },
    /// One bit of a scalar signal.
    BitIndex {
        id: SigId,
        width: u32,
        idx: Box<CExpr>,
    },
    /// One memory element.
    MemIndex {
        id: SigId,
        slot: u32,
        depth: u64,
        width: u32,
        idx: Box<CExpr>,
    },
    /// Part select with runtime-evaluated bounds.
    Range {
        id: SigId,
        msb: Box<CExpr>,
        lsb: Box<CExpr>,
    },
    /// Concatenation target; split widths precomputed (MSB-first).
    Concat {
        parts: Vec<CLValue>,
        widths: Vec<u32>,
        total: u32,
    },
}

/// A compiled statement tree.
#[derive(Debug, Clone)]
pub(crate) enum CStmt {
    Block(Vec<CStmt>),
    If {
        cond: CExpr,
        then: Box<CStmt>,
        els: Option<Box<CStmt>>,
    },
    Case {
        sel: CExpr,
        arms: Vec<CCaseArm>,
        default: Option<Box<CStmt>>,
    },
    Assign {
        lhs: CLValue,
        nonblocking: bool,
        rhs: CExpr,
    },
    For {
        var: SigId,
        var_width: u32,
        init: CExpr,
        cond: CExpr,
        step: CExpr,
        body: Box<CStmt>,
    },
    Display {
        format: String,
        args: Vec<CExpr>,
        /// Per-argument declared signedness (via [`crate::eval::is_signed`]
        /// at compile time), so `%d` renders two's-complement values.
        signs: Vec<bool>,
    },
    Finish,
    Empty,
}

/// One arm of a compiled `case`.
#[derive(Debug, Clone)]
pub(crate) struct CCaseArm {
    pub labels: Vec<CExpr>,
    pub body: CStmt,
}

/// One schedulable combinational driver.
#[derive(Debug, Clone)]
pub(crate) struct CombUnit {
    pub body: CStmt,
}

/// One schedulable blackbox instance: pre-resolved port connections.
#[derive(Debug, Clone)]
pub(crate) struct BbUnit {
    /// Input port name, resolved width, compiled connection expression
    /// (BTreeMap order of the design, i.e. sorted by port name).
    pub ins: Vec<(String, u32, CExpr)>,
    /// Output port name and compiled destination.
    pub outs: Vec<(String, CLValue)>,
    /// Per clock port: alias-rooted IDs of the signals feeding it.
    pub clock_conns: Vec<(String, Vec<SigId>)>,
}

/// One compiled clocked process.
#[derive(Debug, Clone)]
pub(crate) struct ProcUnit {
    pub body: CStmt,
    /// Alias-rooted IDs of the sensitivity-list signals.
    pub edge_roots: Vec<SigId>,
}

/// The full compiled schedule of a design.
///
/// Unit indices: `0..combs.len()` are combinational drivers,
/// `combs.len()..combs.len()+bbs.len()` are blackbox instances.
#[derive(Debug, Clone)]
pub(crate) struct Compiled {
    pub combs: Vec<CombUnit>,
    pub bbs: Vec<BbUnit>,
    pub procs: Vec<ProcUnit>,
    /// Per signal ID: unit indices whose read-set contains it.
    pub readers: Vec<Vec<u32>>,
    /// Per signal ID: unit indices that (may) write it. Used so poking a
    /// comb-driven signal re-runs its driver, as a full pass would.
    pub writers: Vec<Vec<u32>>,
    /// Identity-assign alias links (`assign dst = src;`): `dst → src`.
    pub aliases: Vec<Option<SigId>>,
}

impl Compiled {
    /// Total number of schedulable settle units.
    pub fn n_units(&self) -> usize {
        self.combs.len() + self.bbs.len()
    }

    /// Resolves a signal through identity-assign aliases to its root.
    pub fn alias_root(&self, mut id: SigId) -> SigId {
        let mut hops = 0;
        while let Some(next) = self.aliases[id.index()] {
            id = next;
            hops += 1;
            if hops > self.aliases.len() {
                break; // alias cycle: give up, treat as its own root
            }
        }
        id
    }

    /// Compiles `design` against `state`'s memory layout.
    pub fn build(design: &Design, state: &SimState) -> Result<Compiled, SimError> {
        let cc = Ctx { design, state };
        let n_sigs = design.table.len();

        // Identity-assign aliases, mirroring the interpreter's clock-root
        // resolution for flattened clock names.
        let mut aliases: Vec<Option<SigId>> = vec![None; n_sigs];
        for comb in &design.combs {
            if let Stmt::Assign {
                lhs: LValue::Id(dst),
                rhs: Expr::Ident(src),
                nonblocking: false,
                ..
            } = &comb.body
            {
                if let (Some(d), Some(s)) = (design.sig_id(dst), design.sig_id(src)) {
                    aliases[d.index()] = Some(s);
                }
            }
        }
        let root = |mut id: SigId| -> SigId {
            let mut hops = 0;
            while let Some(next) = aliases[id.index()] {
                id = next;
                hops += 1;
                if hops > aliases.len() {
                    break; // alias cycle: give up, treat as its own root
                }
            }
            id
        };

        let mut combs = Vec::with_capacity(design.combs.len());
        for comb in &design.combs {
            combs.push(CombUnit {
                body: cc.stmt(&comb.body)?,
            });
        }
        let mut bbs = Vec::with_capacity(design.blackboxes.len());
        for inst in &design.blackboxes {
            let mut ins = Vec::new();
            for (port, e) in &inst.in_conns {
                let w = inst.port_widths.get(port).copied().unwrap_or(1);
                ins.push((port.clone(), w, cc.expr(e)?));
            }
            let mut outs = Vec::new();
            for (port, lv) in &inst.out_conns {
                outs.push((port.clone(), cc.lvalue(lv)?));
            }
            let mut clock_conns = Vec::new();
            for cp in &inst.clock_ports {
                let roots = inst.in_conns.get(cp).map_or_else(Vec::new, |e| {
                    e.idents()
                        .iter()
                        .filter_map(|n| design.sig_id(n))
                        .map(root)
                        .collect()
                });
                clock_conns.push((cp.clone(), roots));
            }
            bbs.push(BbUnit {
                ins,
                outs,
                clock_conns,
            });
        }

        let mut procs = Vec::with_capacity(design.procs.len());
        for proc in &design.procs {
            let edge_roots = proc
                .edges
                .iter()
                .filter_map(|e| design.sig_id(&e.signal))
                .map(root)
                .collect();
            procs.push(ProcUnit {
                body: cc.stmt(&proc.body)?,
                edge_roots,
            });
        }
        let mut compiled = Compiled {
            combs,
            bbs,
            procs,
            readers: Vec::new(),
            writers: Vec::new(),
            aliases,
        };

        // Dependency tables: which units read / write each signal. Read and
        // write sets come from elaboration and are conservative (they cover
        // every branch), so dependency-driven settling can never miss work.
        let mut readers: Vec<Vec<u32>> = vec![Vec::new(); n_sigs];
        let mut writers: Vec<Vec<u32>> = vec![Vec::new(); n_sigs];
        for (ci, comb) in design.combs.iter().enumerate() {
            for r in &comb.reads {
                if let Some(id) = design.sig_id(r) {
                    readers[id.index()].push(ci as u32);
                }
            }
            for w in &comb.writes {
                if let Some(id) = design.sig_id(w) {
                    writers[id.index()].push(ci as u32);
                }
            }
        }
        let n_combs = design.combs.len();
        for (bi, inst) in design.blackboxes.iter().enumerate() {
            let unit = (n_combs + bi) as u32;
            for e in inst.in_conns.values() {
                for n in e.idents() {
                    if let Some(id) = design.sig_id(n) {
                        if !readers[id.index()].contains(&unit) {
                            readers[id.index()].push(unit);
                        }
                    }
                }
            }
            for lv in inst.out_conns.values() {
                for n in lv.target_names() {
                    if let Some(id) = design.sig_id(n) {
                        if !writers[id.index()].contains(&unit) {
                            writers[id.index()].push(unit);
                        }
                    }
                }
            }
        }
        compiled.readers = readers;
        compiled.writers = writers;
        Ok(compiled)
    }
}

/// Compilation context.
struct Ctx<'a> {
    design: &'a Design,
    state: &'a SimState,
}

impl Ctx<'_> {
    fn sig(&self, name: &str) -> Result<SigId, SimError> {
        self.design
            .sig_id(name)
            .ok_or_else(|| SimError::UnknownSignal(name.to_owned()))
    }

    fn expr(&self, e: &Expr) -> Result<CExpr, SimError> {
        Ok(match e {
            Expr::Literal { value, .. } => CExpr::Const(value.clone()),
            Expr::Ident(n) => {
                if let Some(sig) = self.design.signals.get(n) {
                    if sig.mem_depth.is_some() {
                        // Whole-memory reads were a runtime error in the
                        // interpreter; reject them at compile time.
                        return Err(SimError::UnknownSignal(n.clone()));
                    }
                    CExpr::Sig(self.sig(n)?)
                } else if let Some(c) = self.design.consts.get(n) {
                    CExpr::Const(c.clone())
                } else {
                    return Err(SimError::UnknownSignal(n.clone()));
                }
            }
            Expr::Unary(op, inner) => CExpr::Unary(*op, Box::new(self.expr(inner)?)),
            Expr::Binary(op, l, r) => CExpr::Binary {
                op: *op,
                signed: is_signed(l, self.design) && is_signed(r, self.design),
                a: Box::new(self.expr(l)?),
                b: Box::new(self.expr(r)?),
            },
            Expr::Ternary(c, t, f) => CExpr::Ternary {
                cond: Box::new(self.expr(c)?),
                t: Box::new(self.expr(t)?),
                f: Box::new(self.expr(f)?),
                width: expr_width(e, self.design)?,
            },
            Expr::Index(n, idx) => {
                let sig = self
                    .design
                    .signals
                    .get(n)
                    .ok_or_else(|| SimError::UnknownSignal(n.clone()))?;
                let id = self.sig(n)?;
                if sig.mem_depth.is_some() {
                    let slot = self.state.mem_slot_of(id).ok_or_else(|| {
                        SimError::Internal(format!("memory `{n}` has no backing slot"))
                    })?;
                    CExpr::MemIndex {
                        slot,
                        idx: Box::new(self.expr(idx)?),
                    }
                } else {
                    CExpr::BitIndex {
                        sig: id,
                        width: sig.width,
                        idx: Box::new(self.expr(idx)?),
                    }
                }
            }
            Expr::Range(n, msb, lsb) => {
                let msb = Box::new(self.expr(msb)?);
                let lsb = Box::new(self.expr(lsb)?);
                if let Some(sig) = self.design.signals.get(n) {
                    if sig.mem_depth.is_some() {
                        return Err(SimError::UnknownSignal(n.clone()));
                    }
                    CExpr::RangeSig {
                        sig: self.sig(n)?,
                        msb,
                        lsb,
                    }
                } else if let Some(c) = self.design.consts.get(n) {
                    CExpr::RangeConst {
                        value: c.clone(),
                        msb,
                        lsb,
                    }
                } else {
                    return Err(SimError::UnknownSignal(n.clone()));
                }
            }
            Expr::Concat(parts) => CExpr::Concat(
                parts
                    .iter()
                    .map(|p| self.expr(p))
                    .collect::<Result<_, _>>()?,
            ),
            Expr::Repeat(n, body) => CExpr::Repeat {
                count: Box::new(self.expr(n)?),
                body: Box::new(self.expr(body)?),
            },
            Expr::WidthCast(w, inner) => CExpr::Resize(*w, Box::new(self.expr(inner)?)),
            // Signedness is resolved statically (on Binary), so the cast
            // itself is a no-op at runtime.
            Expr::SignCast(_, inner) => self.expr(inner)?,
        })
    }

    fn lvalue(&self, lv: &LValue) -> Result<CLValue, SimError> {
        Ok(match lv {
            LValue::Id(n) => {
                let sig = self
                    .design
                    .signals
                    .get(n)
                    .ok_or_else(|| SimError::UnknownSignal(n.clone()))?;
                if sig.mem_depth.is_some() {
                    return Err(SimError::UnknownSignal(format!(
                        "cannot assign whole memory `{n}`"
                    )));
                }
                CLValue::Sig {
                    id: self.sig(n)?,
                    width: sig.width,
                }
            }
            LValue::Index(n, idx) => {
                let sig = self
                    .design
                    .signals
                    .get(n)
                    .ok_or_else(|| SimError::UnknownSignal(n.clone()))?;
                let id = self.sig(n)?;
                let idx = Box::new(self.expr(idx)?);
                if let Some(depth) = sig.mem_depth {
                    CLValue::MemIndex {
                        id,
                        slot: self.state.mem_slot_of(id).ok_or_else(|| {
                            SimError::Internal(format!("memory `{n}` has no backing slot"))
                        })?,
                        depth,
                        width: sig.width,
                        idx,
                    }
                } else {
                    CLValue::BitIndex {
                        id,
                        width: sig.width,
                        idx,
                    }
                }
            }
            LValue::Range(n, msb, lsb) => CLValue::Range {
                id: self.sig(n)?,
                msb: Box::new(self.expr(msb)?),
                lsb: Box::new(self.expr(lsb)?),
            },
            LValue::Concat(parts) => {
                let mut cparts = Vec::with_capacity(parts.len());
                let mut widths = Vec::with_capacity(parts.len());
                let mut total = 0u32;
                for p in parts {
                    let w = self
                        .design
                        .lvalue_width(p)
                        .ok_or(SimError::NonConstSelect)?;
                    widths.push(w);
                    total += w;
                    cparts.push(self.lvalue(p)?);
                }
                CLValue::Concat {
                    parts: cparts,
                    widths,
                    total,
                }
            }
        })
    }

    fn stmt(&self, s: &Stmt) -> Result<CStmt, SimError> {
        Ok(match s {
            Stmt::Block(stmts) => CStmt::Block(
                stmts
                    .iter()
                    .map(|st| self.stmt(st))
                    .collect::<Result<_, _>>()?,
            ),
            Stmt::If { cond, then, els } => CStmt::If {
                cond: self.expr(cond)?,
                then: Box::new(self.stmt(then)?),
                els: match els {
                    Some(e) => Some(Box::new(self.stmt(e)?)),
                    None => None,
                },
            },
            Stmt::Case {
                expr,
                arms,
                default,
                ..
            } => CStmt::Case {
                sel: self.expr(expr)?,
                arms: arms
                    .iter()
                    .map(|arm| {
                        Ok(CCaseArm {
                            labels: arm
                                .labels
                                .iter()
                                .map(|l| self.expr(l))
                                .collect::<Result<_, _>>()?,
                            body: self.stmt(&arm.body)?,
                        })
                    })
                    .collect::<Result<Vec<_>, SimError>>()?,
                default: match default {
                    Some(d) => Some(Box::new(self.stmt(d)?)),
                    None => None,
                },
            },
            Stmt::Assign {
                lhs,
                nonblocking,
                rhs,
                ..
            } => CStmt::Assign {
                lhs: self.lvalue(lhs)?,
                nonblocking: *nonblocking,
                rhs: self.expr(rhs)?,
            },
            Stmt::For {
                var,
                init,
                cond,
                step,
                body,
            } => {
                let sig = self
                    .design
                    .signals
                    .get(var)
                    .ok_or_else(|| SimError::UnknownSignal(var.clone()))?;
                CStmt::For {
                    var: self.sig(var)?,
                    var_width: sig.width,
                    init: self.expr(init)?,
                    cond: self.expr(cond)?,
                    step: self.expr(step)?,
                    body: Box::new(self.stmt(body)?),
                }
            }
            Stmt::Display { format, args, .. } => CStmt::Display {
                format: format.clone(),
                args: args
                    .iter()
                    .map(|a| self.expr(a))
                    .collect::<Result<_, _>>()?,
                signs: args
                    .iter()
                    .map(|a| crate::eval::is_signed(a, self.design))
                    .collect(),
            },
            Stmt::Finish => CStmt::Finish,
            Stmt::Empty => CStmt::Empty,
        })
    }
}

/// Reusable evaluation storage: a pool of `Bits` temporaries plus the
/// resolved-write buffer for blocking assignments. One per simulator,
/// allocated at compile time; in steady state every temporary an
/// expression needs comes from here, so evaluation never allocates for
/// `<= 64`-bit values (and, once the pool entries have spilled to the
/// design's maximum width, not for wide values either).
pub(crate) struct EvalScratch {
    pool: Vec<Bits>,
    /// Resolved-write buffer reused across blocking assignments.
    writes: Vec<CNbWrite>,
    /// Narrow (≤ 64-bit) register file for the bytecode backend. Values
    /// are canonical: bits above a register's static width are zero.
    pub(crate) nregs: Vec<u64>,
    /// Wide (> 64-bit) register file for the bytecode backend, pre-spilled
    /// to the design's maximum width so steady state never allocates.
    pub(crate) wregs: Vec<Bits>,
}

/// Pool entries kept alive; extras returned beyond this are dropped.
const POOL_CAP: usize = 64;

impl EvalScratch {
    /// A pool pre-sized to `max_width` so even wide designs reach
    /// steady-state without allocating. Every retainable entry (the full
    /// `POOL_CAP`) is pre-spilled to the design's maximum write width at
    /// compile time: a half-filled pool used to leave the remaining
    /// entries to spill lazily during warmup, which showed up as one-time
    /// allocations on the first settles.
    pub fn with_max_width(max_width: u32) -> Self {
        let w = max_width.max(1);
        EvalScratch {
            pool: (0..POOL_CAP).map(|_| Bits::zero(w)).collect(),
            writes: Vec::with_capacity(16),
            nregs: Vec::new(),
            wregs: Vec::new(),
        }
    }

    /// An empty pool (cold paths; temporaries start 1-bit and grow).
    pub fn empty() -> Self {
        EvalScratch {
            pool: Vec::new(),
            writes: Vec::new(),
            nregs: Vec::new(),
            wregs: Vec::new(),
        }
    }

    /// Sizes the bytecode register files to the compiled programs' maxima.
    /// Wide registers are pre-spilled to `max_width` up front, preserving
    /// the zero-allocations-per-cycle invariant under the bytecode backend.
    pub(crate) fn size_registers(&mut self, n_narrow: usize, n_wide: usize, max_width: u32) {
        self.nregs = vec![0; n_narrow];
        let w = max_width.max(65); // force the spilled representation
        self.wregs = (0..n_wide).map(|_| Bits::zero(w)).collect();
    }

    #[inline]
    pub(crate) fn take(&mut self) -> Bits {
        // `Bits::default()` is an inline 1-bit zero: refilling an exhausted
        // pool costs nothing.
        self.pool.pop().unwrap_or_default()
    }

    #[inline]
    pub(crate) fn put(&mut self, b: Bits) {
        if self.pool.len() < POOL_CAP {
            self.pool.push(b);
        }
    }
}

/// Evaluates a compiled expression against simulation state (cold-path
/// convenience wrapper over [`eval_into`]).
pub(crate) fn eval(state: &SimState, e: &CExpr) -> Result<Bits, SimError> {
    let mut scratch = EvalScratch::empty();
    let mut out = Bits::default();
    eval_into(state, &mut scratch, e, &mut out)?;
    Ok(out)
}

/// Evaluates a sub-expression that is consumed as a `u64` (indices, range
/// bounds, replication counts).
#[inline]
fn eval_u64(state: &SimState, scratch: &mut EvalScratch, e: &CExpr) -> Result<u64, SimError> {
    let mut t = scratch.take();
    let res = eval_into(state, scratch, e, &mut t);
    let v = t.to_u64();
    scratch.put(t);
    res.map(|()| v)
}

/// Evaluates a compiled expression into `out`, reusing its storage.
///
/// Temporaries for sub-expressions come from `scratch` and are returned to
/// it on success; error paths may leak pool entries back to the allocator,
/// which is fine — errors abort the run.
pub(crate) fn eval_into(
    state: &SimState,
    scratch: &mut EvalScratch,
    e: &CExpr,
    out: &mut Bits,
) -> Result<(), SimError> {
    match e {
        CExpr::Const(v) => out.assign_from(v),
        CExpr::Sig(id) => out.assign_from(state.get_id(*id)),
        CExpr::Unary(op, inner) => match op {
            UnaryOp::Not => {
                eval_into(state, scratch, inner, out)?;
                out.not_in_place();
            }
            UnaryOp::Neg => {
                eval_into(state, scratch, inner, out)?;
                out.neg_in_place();
            }
            UnaryOp::LogNot
            | UnaryOp::RedAnd
            | UnaryOp::RedOr
            | UnaryOp::RedXor
            | UnaryOp::RedXnor => {
                let mut t = scratch.take();
                eval_into(state, scratch, inner, &mut t)?;
                out.set_bool(match op {
                    UnaryOp::LogNot => t.is_zero(),
                    UnaryOp::RedAnd => t.reduce_and(),
                    UnaryOp::RedOr => t.reduce_or(),
                    UnaryOp::RedXor => t.reduce_xor(),
                    _ => !t.reduce_xor(),
                });
                scratch.put(t);
            }
        },
        CExpr::Binary { op, signed, a, b } => {
            let mut x = scratch.take();
            let mut y = scratch.take();
            eval_into(state, scratch, a, &mut x)?;
            eval_into(state, scratch, b, &mut y)?;
            // Wide `/`/`%` go through `divmod_into` with a pooled buffer
            // for the half we discard: `div_into`/`rem_into` would allocate
            // their scratch per evaluation above 128 bits.
            if matches!(op, BinaryOp::Div | BinaryOp::Mod) && x.width().max(y.width()) > 128 {
                let w = x.width().max(y.width());
                if *signed {
                    x.resize_signed_in_place(w);
                    y.resize_signed_in_place(w);
                } else {
                    x.resize_in_place(w);
                    y.resize_in_place(w);
                }
                let mut spare = scratch.take();
                if matches!(op, BinaryOp::Div) {
                    x.divmod_into(&y, out, &mut spare);
                } else {
                    x.divmod_into(&y, &mut spare, out);
                }
                scratch.put(spare);
            } else if *signed {
                apply_binary_signed_into(*op, &mut x, &mut y, out);
            } else {
                apply_binary_into(*op, &mut x, &mut y, out);
            }
            scratch.put(y);
            scratch.put(x);
        }
        CExpr::Ternary { cond, t, f, width } => {
            let mut c = scratch.take();
            eval_into(state, scratch, cond, &mut c)?;
            let take_then = c.to_bool();
            scratch.put(c);
            eval_into(state, scratch, if take_then { t } else { f }, out)?;
            out.resize_in_place(*width);
        }
        CExpr::BitIndex { sig, width, idx } => {
            let i = eval_u64(state, scratch, idx)?;
            let v = state.get_id(*sig);
            out.set_bool(i < u64::from(*width) && v.bit(i as u32));
        }
        CExpr::MemIndex { slot, idx } => {
            let i = eval_u64(state, scratch, idx)?;
            state.read_mem_slot_into(*slot, i, out);
        }
        CExpr::RangeSig { sig, msb, lsb } => {
            let m = eval_u64(state, scratch, msb)?;
            let l = eval_u64(state, scratch, lsb)?;
            if l > m {
                return Err(SimError::NonConstSelect);
            }
            state.get_id(*sig).slice_into(l as u32, (m - l + 1) as u32, out);
        }
        CExpr::RangeConst { value, msb, lsb } => {
            let m = eval_u64(state, scratch, msb)?;
            let l = eval_u64(state, scratch, lsb)?;
            if l > m {
                return Err(SimError::NonConstSelect);
            }
            value.slice_into(l as u32, (m - l + 1) as u32, out);
        }
        CExpr::Concat(parts) => {
            let mut t = scratch.take();
            let mut first = true;
            for p in parts {
                eval_into(state, scratch, p, &mut t)?;
                if first {
                    out.assign_from(&t);
                    first = false;
                } else {
                    out.push_low(&t);
                }
            }
            scratch.put(t);
            if first {
                return Err(SimError::NonConstSelect);
            }
        }
        CExpr::Repeat { count, body } => {
            let n = eval_u64(state, scratch, count)? as u32;
            if n == 0 {
                return Err(SimError::NonConstSelect);
            }
            let mut t = scratch.take();
            eval_into(state, scratch, body, &mut t)?;
            t.repeat_into(n, out);
            scratch.put(t);
        }
        CExpr::Resize(w, inner) => {
            eval_into(state, scratch, inner, out)?;
            out.resize_in_place(*w);
        }
    }
    Ok(())
}

/// A deferred (nonblocking) write, resolved to a concrete target at the
/// time the assignment executed.
#[derive(Debug, Clone)]
pub(crate) enum CNbWrite {
    /// Whole signal.
    Sig(SigId, Bits),
    /// Bit range `[lo +: width]` of a signal.
    Slice(SigId, u32, Bits),
    /// One memory element.
    Mem {
        id: SigId,
        slot: u32,
        addr: u64,
        value: Bits,
    },
}

/// Control flow result of executing statements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Flow {
    Continue,
    Finished,
}

/// One statement-execution context (a settle unit run or one clocked
/// process). Signals whose stored value actually changed are appended to
/// `changed`, which drives the dirty-set scheduler.
pub(crate) struct CExec<'a> {
    pub state: &'a mut SimState,
    /// Reusable temporaries + resolved-write buffer (owned by the
    /// simulator, threaded through every unit run).
    pub scratch: &'a mut EvalScratch,
    /// `Some` in clocked context: nonblocking writes defer here.
    pub nb: Option<&'a mut Vec<CNbWrite>>,
    /// `Some((sink, time, cycle))` in clocked context: `$display` records.
    pub logs: Option<(&'a mut Vec<LogRecord>, u64, u64)>,
    pub for_cap: u64,
    pub changed: &'a mut Vec<SigId>,
    /// Fault-injection pins: writes to these signals are discarded.
    /// `None` (fault-free) keeps the hot path to a single branch.
    pub forced: Option<&'a std::collections::BTreeMap<SigId, Bits>>,
    /// Turn silently-dropped out-of-bounds writes into typed errors.
    pub strict_bounds: bool,
    /// Hot-path metrics sink; `None` (metrics off) costs nothing here
    /// because counter bumps live on paths already gated by `forced`.
    pub counters: Option<&'a mut hwdbg_obs::SimCounters>,
}

impl CExec<'_> {
    pub fn stmt(&mut self, stmt: &CStmt) -> Result<Flow, SimError> {
        match stmt {
            CStmt::Block(stmts) => {
                for s in stmts {
                    if self.stmt(s)? == Flow::Finished {
                        return Ok(Flow::Finished);
                    }
                }
                Ok(Flow::Continue)
            }
            CStmt::If { cond, then, els } => {
                let mut c = self.scratch.take();
                eval_into(self.state, self.scratch, cond, &mut c)?;
                let taken = c.to_bool();
                self.scratch.put(c);
                if taken {
                    self.stmt(then)
                } else if let Some(e) = els {
                    self.stmt(e)
                } else {
                    Ok(Flow::Continue)
                }
            }
            CStmt::Case { sel, arms, default } => {
                let mut sv = self.scratch.take();
                eval_into(self.state, self.scratch, sel, &mut sv)?;
                let mut lv = self.scratch.take();
                let mut target: Option<&CStmt> = None;
                'arms: for arm in arms {
                    for l in &arm.labels {
                        eval_into(self.state, self.scratch, l, &mut lv)?;
                        // Zero-extended equality at the common width.
                        if sv.eq_zero_ext(&lv) {
                            target = Some(&arm.body);
                            break 'arms;
                        }
                    }
                }
                self.scratch.put(lv);
                self.scratch.put(sv);
                match (target, default) {
                    (Some(body), _) => self.stmt(body),
                    (None, Some(d)) => self.stmt(d),
                    (None, None) => Ok(Flow::Continue),
                }
            }
            CStmt::Assign {
                lhs,
                nonblocking,
                rhs,
            } => {
                let mut v = self.scratch.take();
                eval_into(self.state, self.scratch, rhs, &mut v)?;
                if *nonblocking && self.nb.is_some() {
                    self.write_nb(lhs, v)?;
                } else {
                    self.write(lhs, v)?;
                }
                Ok(Flow::Continue)
            }
            CStmt::For {
                var,
                var_width,
                init,
                cond,
                step,
                body,
            } => {
                let mut v = self.scratch.take();
                eval_into(self.state, self.scratch, init, &mut v)?;
                v.resize_in_place(*var_width);
                self.set_sig(*var, &v);
                let mut iters = 0u64;
                loop {
                    eval_into(self.state, self.scratch, cond, &mut v)?;
                    if !v.to_bool() {
                        break;
                    }
                    if self.stmt(body)? == Flow::Finished {
                        self.scratch.put(v);
                        return Ok(Flow::Finished);
                    }
                    eval_into(self.state, self.scratch, step, &mut v)?;
                    v.resize_in_place(*var_width);
                    self.set_sig(*var, &v);
                    iters += 1;
                    if iters > self.for_cap {
                        let name = self.state.table().name(*var).to_owned();
                        return Err(SimError::LoopCap(name));
                    }
                }
                self.scratch.put(v);
                Ok(Flow::Continue)
            }
            CStmt::Display {
                format,
                args,
                signs,
            } => {
                if let Some((sink, time, cycle)) = &mut self.logs {
                    let mut vals = Vec::new();
                    for a in args {
                        vals.push(eval(self.state, a)?);
                    }
                    let message = crate::format::render_signed(format, &vals, signs);
                    sink.push(LogRecord {
                        time: *time,
                        cycle: *cycle,
                        message,
                    });
                }
                Ok(Flow::Continue)
            }
            CStmt::Finish => Ok(Flow::Finished),
            CStmt::Empty => Ok(Flow::Continue),
        }
    }

    /// Sets a scalar, recording the change for the scheduler. Writes to
    /// forced (fault-pinned) signals are discarded.
    fn set_sig(&mut self, id: SigId, value: &Bits) {
        if let Some(f) = self.forced {
            if f.contains_key(&id) {
                if let Some(c) = self.counters.as_deref_mut() {
                    c.force_hits += 1;
                }
                return;
            }
        }
        if self.state.set_id(id, value) {
            self.changed.push(id);
        }
    }

    /// Immediate (blocking) write. All targets are resolved (lvalue index
    /// expressions evaluated) before any commit mutates state, matching the
    /// nonblocking path's ordering for concat lvalues.
    pub fn write(&mut self, lhs: &CLValue, value: Bits) -> Result<(), SimError> {
        let mut writes = std::mem::take(&mut self.scratch.writes);
        debug_assert!(writes.is_empty());
        let res = self.resolve(lhs, value, &mut writes);
        if res.is_ok() {
            for w in writes.drain(..) {
                self.commit(w);
            }
        } else {
            writes.clear(); // error: nothing committed (cold path)
        }
        self.scratch.writes = writes;
        res
    }

    /// Applies one resolved write, tracking value changes. The carried
    /// value returns to the scratch pool.
    pub fn commit(&mut self, w: CNbWrite) {
        match w {
            CNbWrite::Sig(id, v) => {
                self.set_sig(id, &v);
                self.scratch.put(v);
            }
            CNbWrite::Slice(id, lo, v) => {
                if let Some(f) = self.forced {
                    if f.contains_key(&id) {
                        if let Some(c) = self.counters.as_deref_mut() {
                            c.force_hits += 1;
                        }
                        self.scratch.put(v);
                        return;
                    }
                }
                if self.state.splice_id(id, lo, &v) {
                    self.changed.push(id);
                }
                self.scratch.put(v);
            }
            CNbWrite::Mem {
                id,
                slot,
                addr,
                value,
            } => {
                if self.state.write_mem_slot(slot, addr, &value) {
                    self.changed.push(id);
                }
                self.scratch.put(value);
            }
        }
    }

    /// Deferred (nonblocking) write. Outside a clocked context (no `nb`
    /// sink) the write degrades to blocking, matching how a combinational
    /// `<=` behaves in the interpreter.
    fn write_nb(&mut self, lhs: &CLValue, value: Bits) -> Result<(), SimError> {
        if self.nb.is_none() {
            return self.write(lhs, value);
        }
        let mut writes = std::mem::take(&mut self.scratch.writes);
        debug_assert!(writes.is_empty());
        let res = self.resolve(lhs, value, &mut writes);
        match (self.nb.as_mut(), res.is_ok()) {
            (Some(nb), true) => nb.append(&mut writes),
            _ => writes.clear(),
        }
        self.scratch.writes = writes;
        res
    }

    /// Resolves an lvalue + value into concrete write operations, applying
    /// the paper's overflow semantics; dropped writes push nothing.
    fn resolve(
        &mut self,
        lhs: &CLValue,
        mut value: Bits,
        out: &mut Vec<CNbWrite>,
    ) -> Result<(), SimError> {
        match lhs {
            CLValue::Sig { id, width } => {
                value.resize_in_place(*width);
                out.push(CNbWrite::Sig(*id, value));
            }
            CLValue::BitIndex { id, width, idx } => {
                let i = eval_u64(self.state, self.scratch, idx)?;
                if i < u64::from(*width) {
                    value.resize_in_place(1);
                    out.push(CNbWrite::Slice(*id, i as u32, value));
                } else if self.strict_bounds {
                    return Err(SimError::OutOfBounds {
                        signal: self.state.table().name(*id).to_owned(),
                        index: i,
                        depth: u64::from(*width),
                    });
                } else {
                    self.scratch.put(value); // out-of-range bit write ignored
                }
            }
            CLValue::MemIndex {
                id,
                slot,
                depth,
                width,
                idx,
            } => {
                let i = eval_u64(self.state, self.scratch, idx)?;
                // A None address is a dropped write: paper §3.2.1 outcome 2.
                match effective_mem_addr(i, *depth) {
                    Some(addr) => {
                        value.resize_in_place(*width);
                        out.push(CNbWrite::Mem {
                            id: *id,
                            slot: *slot,
                            addr,
                            value,
                        });
                    }
                    None if self.strict_bounds => {
                        return Err(SimError::OutOfBounds {
                            signal: self.state.table().name(*id).to_owned(),
                            index: i,
                            depth: *depth,
                        });
                    }
                    None => self.scratch.put(value),
                }
            }
            CLValue::Range { id, msb, lsb } => {
                let m = eval_u64(self.state, self.scratch, msb)?;
                let l = eval_u64(self.state, self.scratch, lsb)?;
                if l > m {
                    return Err(SimError::NonConstSelect);
                }
                value.resize_in_place((m - l + 1) as u32);
                out.push(CNbWrite::Slice(*id, l as u32, value));
            }
            CLValue::Concat {
                parts,
                widths,
                total,
            } => {
                // First part is most significant.
                value.resize_in_place(*total);
                let mut hi = *total;
                for (p, w) in parts.iter().zip(widths) {
                    let mut part_val = self.scratch.take();
                    value.slice_into(hi - w, *w, &mut part_val);
                    hi -= w;
                    self.resolve(p, part_val, out)?;
                }
                self.scratch.put(value);
            }
        }
        Ok(())
    }
}
