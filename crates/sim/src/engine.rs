//! The cycle-accurate simulation engine.
//!
//! The engine is compile-then-run: [`Simulator::new`] lowers the elaborated
//! design into the interned, pre-resolved schedule of [`crate::compile`],
//! and the per-cycle hot path executes only that form — no name lookups, no
//! AST cloning. Combinational settling is dependency-driven by default (see
//! [`SettleMode`]): after the initial full evaluation, only drivers whose
//! read-set intersects the signals written since their last run are
//! re-executed.

use crate::bytecode::{lower_unit, BcProgram, NO_PROMOTION};
use crate::compile::{eval_into, CExec, CNbWrite, Compiled, EvalScratch, Flow};
use crate::eval::eval_expr;
use crate::sched::{build_schedule, Schedule};
use crate::state::{RegInit, SimState};
use crate::{Blackbox, BlackboxFactory, LogRecord, SimError};
use hwdbg_bits::Bits;
use hwdbg_dataflow::{Design, SigId};
use hwdbg_obs::SimCounters;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::sync::Arc;

/// Combinational settling strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SettleMode {
    /// Dependency-driven work-list: after the first full pass, a driver
    /// re-runs only when a signal in its static read-set changed. This is
    /// the production scheduler.
    #[default]
    EventDriven,
    /// Re-run every combinational driver and blackbox each iteration until
    /// a fixpoint, like the original interpreter. Kept for differential
    /// testing (`compiled_equivalence.rs`) and as a debugging fallback.
    FullPass,
}

/// Execution backend for compiled unit bodies.
///
/// Both backends run the same compiled schedule and are observably
/// identical (the differential suite in
/// `crates/sim/tests/backend_differential.rs` holds them to byte-identical
/// verdicts, logs, and waveforms); they differ only in how a unit body
/// executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Walk the `CStmt`/`CExpr` tree directly. The reference
    /// implementation — simplest possible execution, kept for
    /// differential testing and as a fallback.
    Tree,
    /// Execute flat register-machine bytecode lowered from the tree at
    /// compile time (see [`crate::bytecode`]). Unit bodies that cannot be
    /// statically lowered (non-constant part-select bounds and the like)
    /// transparently keep the tree-walker. Settling runs the per-unit
    /// worklist.
    Bytecode,
    /// Bytecode execution under the levelized static schedule (see
    /// [`crate::sched`]): acyclic comb regions run as fused straight-line
    /// programs in topological rank order — no worklist inside a region,
    /// region-internal signals promoted to registers — while cyclic
    /// regions and un-lowerable units keep the worklist fallback. This is
    /// the production backend.
    #[default]
    Levelized,
}

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Register/memory initialization policy.
    pub init: RegInit,
    /// Maximum settle iterations before declaring a combinational loop.
    /// In [`SettleMode::EventDriven`] the work-list is bounded by
    /// `max_comb_iters × number of drivers` unit executions, the same
    /// budget a full pass would spend.
    pub max_comb_iters: usize,
    /// Maximum iterations of a procedural `for` loop.
    pub for_cap: u64,
    /// Maximum `$display` records retained (oldest dropped beyond this).
    pub log_capacity: usize,
    /// Combinational scheduling strategy.
    pub settle_mode: SettleMode,
    /// Unit-body execution backend (bytecode by default; see [`Backend`]).
    pub backend: Backend,
    /// When true, out-of-bounds memory and bit writes raise
    /// [`SimError::OutOfBounds`] instead of being silently dropped.
    /// Off by default: the drop semantics are the paper's §3.2.1
    /// outcome 2, which several testbed bugs rely on reproducing.
    pub strict_bounds: bool,
    /// When true, blackbox port connections whose resolved widths differ
    /// from the port spec are rejected at build time with
    /// [`SimError::WidthMismatch`] instead of being resized on the fly.
    pub strict_width: bool,
    /// When true, the simulator maintains a [`SimCounters`] registry of
    /// hot-path event counts, readable via [`Simulator::counters`]. Off by
    /// default: the disabled path pays one branch per settle/step, the
    /// same pattern the `forces` map uses.
    pub metrics: bool,
    /// Wall-clock deadline for the whole run. `None` (the default) pays
    /// one branch per check site — the same one-branch-when-disabled
    /// pattern as `forces` — and never calls the clock. When set, the
    /// deadline is checked cooperatively once per [`Simulator::step`] and
    /// every [`DEADLINE_CHECK_MASK`]+1 unit executions inside a settle, so
    /// even a livelocked combinational loop with an enormous
    /// `max_comb_iters` budget surfaces as
    /// [`SimError::DeadlineExceeded`] instead of wedging the thread.
    pub deadline: Option<std::time::Instant>,
}

/// A settle checks the deadline whenever `runs & DEADLINE_CHECK_MASK == 0`:
/// every 1024 unit executions, a few microseconds of work even in debug
/// builds, so deadline precision stays far below any sane budget.
pub const DEADLINE_CHECK_MASK: u64 = 0x3FF;

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            init: RegInit::Zero,
            max_comb_iters: 100,
            for_cap: 65_536,
            log_capacity: 1_000_000,
            settle_mode: SettleMode::EventDriven,
            backend: Backend::default(),
            strict_bounds: false,
            strict_width: false,
            metrics: false,
            deadline: None,
        }
    }
}

impl SimConfig {
    /// Builder-style setter for [`SimConfig::backend`].
    #[must_use]
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Builder-style toggle for [`SimConfig::metrics`].
    #[must_use]
    pub fn with_metrics(mut self, on: bool) -> Self {
        self.metrics = on;
        self
    }

    /// Builder-style setter for [`SimConfig::deadline`].
    #[must_use]
    pub fn with_deadline(mut self, deadline: std::time::Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the deadline to `budget` from now — the per-job wall-clock
    /// watchdog campaign runners configure via `--job-timeout`.
    #[must_use]
    pub fn with_timeout(mut self, budget: std::time::Duration) -> Self {
        self.deadline = std::time::Instant::now().checked_add(budget);
        self
    }
}

/// Pre-resolved per-clock stepping info, built once per scalar signal at
/// compile time (see [`CompiledDesign`]).
#[derive(Debug)]
struct ClockPlan {
    /// The clock's signal ID, if it names a declared scalar.
    clock_id: Option<SigId>,
    /// Indices of clocked processes triggered by this clock.
    procs: Vec<usize>,
    /// `(blackbox index, clock port)` pairs ticked by this clock.
    ticks: Vec<(usize, String)>,
}

/// A design compiled once into the immutable schedule the hot path
/// executes: the elaborated [`Design`], the interned unit schedule with
/// its per-signal reader/writer tables, and the pre-resolved per-clock
/// stepping plans.
///
/// A `CompiledDesign` is `Send + Sync` and carries no mutable state, so a
/// single `Arc<CompiledDesign>` can back any number of [`Simulator`]s —
/// including simulators running concurrently on worker threads. Compiling
/// is the expensive part of [`Simulator::new`]; campaign runners compile
/// once and spin up cheap per-job engines with
/// [`Simulator::from_compiled`].
pub struct CompiledDesign {
    design: Design,
    compiled: Compiled,
    /// Widest scalar/memory-element width, for pre-sizing scratch pools.
    max_width: u32,
    /// Per comb unit: its lowered bytecode, or `None` when the body could
    /// not be statically lowered (that unit keeps the tree-walker).
    comb_progs: Vec<Option<BcProgram>>,
    /// Per clocked process: its lowered bytecode (same fallback rule).
    proc_progs: Vec<Option<BcProgram>>,
    /// Register-file sizes needed by the largest lowered program, for
    /// pre-sizing each simulator's [`EvalScratch`] once at build time.
    bc_narrow: usize,
    bc_wide: usize,
    /// The levelized static schedule (fused regions + node maps).
    sched: Schedule,
    /// Register-file maxima including the fused region programs, which
    /// can exceed any single unit's requirements.
    lv_narrow: usize,
    lv_wide: usize,
    /// Per-clock stepping plans, one per declared scalar signal.
    plans: BTreeMap<String, Arc<ClockPlan>>,
    /// Plan returned for names that are not declared scalars: no edge
    /// toggles, no processes — stepping such a "clock" just settles.
    empty_plan: Arc<ClockPlan>,
}

impl std::fmt::Debug for CompiledDesign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledDesign")
            .field("design", &self.design.name)
            .field("units", &self.compiled.n_units())
            .finish()
    }
}

impl CompiledDesign {
    /// Compiles `design` into the immutable, shareable schedule.
    ///
    /// # Errors
    ///
    /// Fails if the design references signals that cannot be resolved at
    /// compile time.
    pub fn new(design: Design) -> Result<Self, SimError> {
        // Layout (signal IDs, memory slots) is a pure function of the
        // design, so a throwaway zero-initialized state is enough to
        // compile against; per-job states built later line up exactly.
        let layout = SimState::new(&design, RegInit::Zero);
        let compiled = Compiled::build(&design, &layout)?;
        let max_width = design.signals.values().map(|s| s.width).max().unwrap_or(1);
        // Static width tables for bytecode lowering: one entry per signal
        // ID (memories hold their 1-bit placeholder slot width, matching
        // what `get_id` returns for them) and one per memory slot
        // (element width; what `read_mem_slot_into` yields in range).
        // `design.signals` iterates in name order, which is ID order.
        let mut sig_width = vec![1u32; design.table.len()];
        let mut mem_width = Vec::new();
        for (id, sig) in design.signals.values().enumerate() {
            sig_width[id] = if sig.mem_depth.is_some() { 1 } else { sig.width };
            if let Some(depth) = sig.mem_depth {
                // A zero-depth memory reads back 1-bit zeros.
                mem_width.push(if depth == 0 { 1 } else { sig.width });
            }
        }
        let comb_progs: Vec<Option<BcProgram>> = compiled
            .combs
            .iter()
            .map(|c| lower_unit(&c.body, &sig_width, &mem_width))
            .collect();
        let proc_progs: Vec<Option<BcProgram>> = compiled
            .procs
            .iter()
            .map(|p| lower_unit(&p.body, &sig_width, &mem_width))
            .collect();
        let (mut bc_narrow, mut bc_wide) = (0, 0);
        for prog in comb_progs.iter().chain(&proc_progs).flatten() {
            bc_narrow = bc_narrow.max(prog.n_narrow);
            bc_wide = bc_wide.max(prog.n_wide);
        }
        let sched = build_schedule(&compiled, &comb_progs, &sig_width, &mem_width);
        let (mut lv_narrow, mut lv_wide) = (bc_narrow, bc_wide);
        for region in &sched.regions {
            lv_narrow = lv_narrow.max(region.prog.n_narrow);
            lv_wide = lv_wide.max(region.prog.n_wide);
        }
        let mut plans = BTreeMap::new();
        for (name, sig) in &design.signals {
            if sig.mem_depth.is_some() {
                continue;
            }
            let Some(clock_id) = design.sig_id(name) else {
                continue;
            };
            let root = compiled.alias_root(clock_id);
            let procs = compiled
                .procs
                .iter()
                .enumerate()
                .filter(|(_, p)| p.edge_roots.contains(&root))
                .map(|(i, _)| i)
                .collect();
            let mut ticks = Vec::new();
            for (bi, bb) in compiled.bbs.iter().enumerate() {
                for (port, roots) in &bb.clock_conns {
                    if roots.contains(&root) {
                        ticks.push((bi, port.clone()));
                    }
                }
            }
            plans.insert(
                name.clone(),
                Arc::new(ClockPlan {
                    clock_id: Some(clock_id),
                    procs,
                    ticks,
                }),
            );
        }
        Ok(CompiledDesign {
            design,
            compiled,
            max_width,
            comb_progs,
            proc_progs,
            bc_narrow,
            bc_wide,
            sched,
            lv_narrow,
            lv_wide,
            plans,
            empty_plan: Arc::new(ClockPlan {
                clock_id: None,
                procs: Vec::new(),
                ticks: Vec::new(),
            }),
        })
    }

    /// The elaborated design this schedule was compiled from.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// `(lowered, total)` unit-body counts: how many comb units and
    /// clocked processes execute bytecode under [`Backend::Bytecode`]
    /// (the rest keep the tree-walker). Diagnostics and tests use this to
    /// prove lowering actually engages on a design.
    pub fn lowering_coverage(&self) -> (usize, usize) {
        let all = self.comb_progs.iter().chain(&self.proc_progs);
        let total = self.comb_progs.len() + self.proc_progs.len();
        (all.filter(|p| p.is_some()).count(), total)
    }

    /// Levelized-schedule shape: `(regions, max_level, fused_signals)` —
    /// how many acyclic regions fused, the deepest topological level, and
    /// how many signals were promoted to registers. Surfaced by
    /// `hwdbg profile` / `hwdbg sim --json` so scheduling regressions are
    /// visible rather than silent.
    pub fn region_stats(&self) -> (usize, u32, usize) {
        (
            self.sched.regions.len(),
            self.sched.max_level,
            self.sched.fused_signals(),
        )
    }

    /// The pre-resolved stepping plan for `clock` (the empty plan for
    /// names that are not declared scalar signals).
    fn clock_plan(&self, clock: &str) -> Arc<ClockPlan> {
        self.plans
            .get(clock)
            .cloned()
            .unwrap_or_else(|| Arc::clone(&self.empty_plan))
    }
}

/// A cycle-accurate simulator for an elaborated [`Design`].
///
/// Semantics follow the two-phase synchronous model: combinational logic
/// settles to a fixpoint between clock edges, `always @(posedge clk)`
/// processes read pre-edge values, and nonblocking assignments commit after
/// every process has run.
pub struct Simulator {
    /// The immutable compiled schedule, shareable across simulators (and
    /// threads — see [`CompiledDesign`]).
    shared: Arc<CompiledDesign>,
    state: SimState,
    config: SimConfig,
    blackboxes: Vec<Box<dyn Blackbox + Send>>,
    logs: Vec<LogRecord>,
    dropped_logs: u64,
    time: u64,
    cycles: BTreeMap<String, u64>,
    finished: bool,
    vcd: Option<crate::vcd::VcdWriter<Box<dyn std::io::Write + Send>>>,
    /// Signals written since the last settle (pokes, clocked-process writes,
    /// nonblocking commits). Consumed to seed the settle work-list.
    dirty_sigs: Vec<SigId>,
    /// Settle-unit indices made dirty directly (poked driven signals,
    /// ticked blackboxes whose outputs may change without an input edge).
    dirty_units: Vec<u32>,
    /// Run every unit on the next settle (initial state, after restore).
    force_full: bool,
    /// Scratch for unit execution (reused to avoid per-run allocation).
    changed_scratch: Vec<SigId>,
    /// Reusable `Bits` temporaries + resolved-write buffer for evaluation.
    scratch: EvalScratch,
    /// Settle work-list: a min-heap of unit indices (lowest first, matching
    /// full-pass sweep order) with `queued` dedup flags — together they
    /// behave like an ordered set without per-settle allocation.
    settle_heap: BinaryHeap<Reverse<u32>>,
    /// Per unit: currently sitting in `settle_heap`.
    queued: Vec<bool>,
    /// Nonblocking-write queue reused across steps.
    nb_scratch: Vec<CNbWrite>,
    /// `$display` record buffer reused across steps.
    logs_scratch: Vec<LogRecord>,
    /// Per blackbox: its input port map, keys prebuilt at compile time and
    /// values refreshed in place before each eval/tick.
    bb_input_scratch: Vec<BTreeMap<String, Bits>>,
    /// Signals pinned by [`Simulator::force`]: drivers and pokes cannot
    /// change them until released. Empty in fault-free runs, so the hot
    /// path pays one `is_empty` check.
    forces: BTreeMap<SigId, Bits>,
    /// Per fused region: number of active forces pinning one of its
    /// promoted signals. Non-zero demotes the region to per-unit
    /// execution (whose stores honor the force map); zero in fault-free
    /// runs, so the fused path pays one load.
    region_demoted: Vec<u32>,
    /// Hot-path event counters, allocated only when [`SimConfig::metrics`]
    /// is set. `None` keeps the disabled path to one branch per site.
    counters: Option<Box<SimCounters>>,
}

/// A batch of stimulus signals resolved to interned IDs once, via
/// [`Simulator::stimulus_plan`]. Workload hot loops poke through the
/// plan's IDs instead of repeating a name lookup every cycle.
#[derive(Debug, Clone)]
pub struct StimulusPlan {
    ids: Vec<SigId>,
}

impl StimulusPlan {
    /// The interned ID of the `i`-th name given to
    /// [`Simulator::stimulus_plan`].
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range — plans are indexed by the same
    /// positions the caller built them with.
    pub fn id(&self, i: usize) -> SigId {
        self.ids[i]
    }

    /// All interned IDs, positionally matched to the resolved names.
    pub fn ids(&self) -> &[SigId] {
        &self.ids
    }
}

/// A full simulation snapshot produced by [`Simulator::checkpoint`].
pub struct Checkpoint {
    state: SimState,
    time: u64,
    cycles: BTreeMap<String, u64>,
    finished: bool,
    logs_len: usize,
    bb_states: Vec<Box<dyn std::any::Any + Send>>,
    /// Active [`Simulator::force`] pins at capture time. Restoring puts the
    /// pin set back exactly: forces applied after the checkpoint (e.g. a
    /// fault plan's stuck-at) must not survive a rewind.
    forces: BTreeMap<SigId, Bits>,
}

impl std::fmt::Debug for Checkpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Checkpoint")
            .field("time", &self.time)
            .field("finished", &self.finished)
            .finish()
    }
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("design", &self.shared.design.name)
            .field("time", &self.time)
            .field("finished", &self.finished)
            .finish()
    }
}

impl Simulator {
    /// Builds a simulator; `factory` supplies behavioral models for each
    /// blackbox instance of the design. Compiles the design's drivers,
    /// processes, and blackbox connections into the interned schedule that
    /// the hot path executes.
    ///
    /// # Errors
    ///
    /// Fails if a blackbox instance has no model in `factory`, or if the
    /// design references signals that cannot be resolved at compile time.
    pub fn new(
        design: Design,
        factory: &dyn BlackboxFactory,
        config: SimConfig,
    ) -> Result<Self, SimError> {
        let shared = Arc::new(CompiledDesign::new(design)?);
        Simulator::from_compiled(shared, factory, config)
    }

    /// Builds a simulator over an already-compiled design. This is the
    /// cheap path: no elaboration or schedule construction happens here,
    /// only per-engine mutable state (value store, scratch pools, blackbox
    /// models). Campaign runners share one `Arc<CompiledDesign>` across
    /// every job — and every worker thread — and call this per job.
    ///
    /// # Errors
    ///
    /// Fails if a blackbox instance has no model in `factory`, or if
    /// `config.strict_width` rejects a blackbox connection width.
    pub fn from_compiled(
        shared: Arc<CompiledDesign>,
        factory: &dyn BlackboxFactory,
        config: SimConfig,
    ) -> Result<Self, SimError> {
        let design = &shared.design;
        let mut blackboxes = Vec::with_capacity(design.blackboxes.len());
        for bb in &design.blackboxes {
            let model = factory
                .create(bb)
                .ok_or_else(|| SimError::NoModel(bb.module.clone()))?;
            blackboxes.push(model);
        }
        if config.strict_width {
            check_connection_widths(design)?;
        }
        let state = SimState::new(design, config.init);
        let config_metrics = config.metrics;
        let mut scratch = EvalScratch::with_max_width(shared.max_width);
        match config.backend {
            Backend::Tree => {}
            Backend::Bytecode => {
                scratch.size_registers(shared.bc_narrow, shared.bc_wide, shared.max_width);
            }
            Backend::Levelized => {
                scratch.size_registers(shared.lv_narrow, shared.lv_wide, shared.max_width);
            }
        }
        let n_units = shared.compiled.n_units();
        let n_regions = shared.sched.regions.len();
        let n_sigs = design.table.len();
        let bb_input_scratch = shared
            .compiled
            .bbs
            .iter()
            .map(|bb| {
                bb.ins
                    .iter()
                    .map(|(port, w, _)| (port.clone(), Bits::zero(*w)))
                    .collect()
            })
            .collect();
        Ok(Simulator {
            shared,
            state,
            config,
            blackboxes,
            logs: Vec::new(),
            dropped_logs: 0,
            time: 0,
            cycles: BTreeMap::new(),
            finished: false,
            vcd: None,
            // Dirty sets are pre-sized so first-cycle pushes do not
            // allocate; duplicates can exceed these caps, but growth is
            // one-time and amortized.
            dirty_sigs: Vec::with_capacity(n_sigs),
            dirty_units: Vec::with_capacity(n_units),
            force_full: true,
            changed_scratch: Vec::with_capacity(n_sigs),
            scratch,
            settle_heap: BinaryHeap::with_capacity(n_units),
            queued: vec![false; n_units],
            nb_scratch: Vec::with_capacity(16),
            logs_scratch: Vec::new(),
            bb_input_scratch,
            forces: BTreeMap::new(),
            region_demoted: vec![0; n_regions],
            counters: if config_metrics {
                Some(Box::default())
            } else {
                None
            },
        })
    }

    /// The elaborated design under simulation.
    pub fn design(&self) -> &Design {
        &self.shared.design
    }

    /// The shared compiled schedule backing this simulator. Clone the
    /// `Arc` to build sibling simulators with
    /// [`from_compiled`](Self::from_compiled).
    pub fn compiled_design(&self) -> &Arc<CompiledDesign> {
        &self.shared
    }

    /// Access a blackbox model by flat instance name (e.g. to read a trace
    /// buffer's captured entries after a run).
    pub fn blackbox(&self, name: &str) -> Option<&dyn Blackbox> {
        self.shared.design
            .blackboxes
            .iter()
            .position(|b| b.name == name)
            .map(|i| self.blackboxes[i].as_ref() as &dyn Blackbox)
    }

    /// Names of all blackbox instances of a given IP module.
    pub fn blackbox_instances(&self, module: &str) -> Vec<String> {
        self.shared.design
            .blackboxes
            .iter()
            .filter(|b| b.module == module)
            .map(|b| b.name.clone())
            .collect()
    }

    /// Direct access to simulation state (for checkpoint-style tooling).
    pub fn state(&self) -> &SimState {
        &self.state
    }

    /// True once `$finish` has executed.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Number of completed posedges of `clock`.
    pub fn cycle(&self, clock: &str) -> u64 {
        self.cycles.get(clock).copied().unwrap_or(0)
    }

    /// Captured `$display` records.
    pub fn logs(&self) -> &[LogRecord] {
        &self.logs
    }

    /// How many log records were dropped due to `log_capacity`.
    pub fn dropped_logs(&self) -> u64 {
        self.dropped_logs
    }

    /// Hot-path event counters; `None` unless [`SimConfig::metrics`] was
    /// set when the simulator was built.
    pub fn counters(&self) -> Option<&SimCounters> {
        self.counters.as_deref()
    }

    /// Zeroes the counters (e.g. to measure only a window of interest).
    /// No-op when metrics are disabled.
    pub fn reset_counters(&mut self) {
        if let Some(c) = &mut self.counters {
            **c = SimCounters::default();
        }
    }

    /// One fault-plan transition (force/flip/release/random poke) was
    /// applied; called by [`crate::fault`].
    pub(crate) fn count_fault_event(&mut self) {
        if let Some(c) = &mut self.counters {
            c.fault_events += 1;
        }
    }

    /// Sets a signal's value (normally a top-level input). The value's
    /// width must match the signal's declared width; a mismatch would
    /// silently corrupt every downstream expression width, so it is a
    /// typed error instead. Writes to [`force`](Self::force)d signals are
    /// discarded.
    ///
    /// # Errors
    ///
    /// Fails for unknown signals and width mismatches.
    pub fn poke(&mut self, name: &str, value: Bits) -> Result<(), SimError> {
        let sig = self
            .shared
            .design
            .signals
            .get(name)
            .filter(|s| s.mem_depth.is_none())
            .ok_or_else(|| SimError::UnknownSignal(name.to_owned()))?;
        if value.width() != sig.width {
            return Err(SimError::WidthMismatch {
                signal: name.to_owned(),
                expected: sig.width,
                got: value.width(),
            });
        }
        let id = self
            .shared
            .design
            .sig_id(name)
            .ok_or_else(|| SimError::UnknownSignal(name.to_owned()))?;
        self.apply_poke(id, &value);
        Ok(())
    }

    /// Interned [`poke`](Self::poke): same semantics, no name lookup. Pair
    /// with [`stimulus_plan`](Self::stimulus_plan) to resolve the names
    /// once and drive the hot loop entirely through [`SigId`]s.
    ///
    /// # Errors
    ///
    /// Fails on width mismatches and on memory signals (a memory has no
    /// scalar slot to poke).
    pub fn poke_id(&mut self, id: SigId, value: &Bits) -> Result<(), SimError> {
        if self.state.mem_slot_of(id).is_some() {
            return Err(SimError::UnknownSignal(
                self.shared.design.table.name(id).to_owned(),
            ));
        }
        let expected = self.state.get_id(id).width();
        if value.width() != expected {
            return Err(SimError::WidthMismatch {
                signal: self.shared.design.table.name(id).to_owned(),
                expected,
                got: value.width(),
            });
        }
        self.apply_poke(id, value);
        Ok(())
    }

    /// Interned [`poke_u64`](Self::poke_u64): the value is truncated to
    /// the signal's width and lands directly in the dense state slot —
    /// allocation-free at any width, with no name lookup.
    pub fn poke_id_u64(&mut self, id: SigId, value: u64) {
        if !self.forces.is_empty() && self.forces.contains_key(&id) {
            if let Some(c) = &mut self.counters {
                c.force_hits += 1;
            }
            return;
        }
        if self.state.set_id_u64(id, value) {
            if let Some(c) = &mut self.counters {
                c.pokes += 1;
            }
            self.dirty_sigs.push(id);
            self.dirty_units
                .extend_from_slice(&self.shared.compiled.writers[id.index()]);
        }
    }

    /// Resolves a batch of stimulus signals to interned IDs, validating
    /// each name once. The returned plan's IDs are positionally matched to
    /// `names`, for use with [`poke_id`](Self::poke_id) /
    /// [`poke_id_u64`](Self::poke_id_u64) in per-cycle loops.
    ///
    /// # Errors
    ///
    /// Fails if any name is unknown or refers to a memory.
    pub fn stimulus_plan(&self, names: &[&str]) -> Result<StimulusPlan, SimError> {
        let ids = names
            .iter()
            .map(|name| {
                self.shared.design
                    .signals
                    .get(*name)
                    .filter(|s| s.mem_depth.is_none())
                    .and_then(|_| self.shared.design.sig_id(name))
                    .ok_or_else(|| SimError::UnknownSignal((*name).to_owned()))
            })
            .collect::<Result<Vec<SigId>, SimError>>()?;
        Ok(StimulusPlan { ids })
    }

    /// Interned poke: marks readers dirty, and — because a full pass would
    /// re-derive a driven signal from its driver — also re-schedules any
    /// unit that writes the signal. Forced signals swallow the write.
    fn apply_poke(&mut self, id: SigId, value: &Bits) {
        if !self.forces.is_empty() && self.forces.contains_key(&id) {
            if let Some(c) = &mut self.counters {
                c.force_hits += 1;
            }
            return;
        }
        if self.state.set_id(id, value) {
            if let Some(c) = &mut self.counters {
                c.pokes += 1;
            }
            self.dirty_sigs.push(id);
            self.dirty_units
                .extend_from_slice(&self.shared.compiled.writers[id.index()]);
        }
    }

    /// Pins a signal to `value`: drivers, clocked processes, and pokes can
    /// no longer change it until [`release`](Self::release). This is the
    /// fault-injection primitive (stuck-at faults, forced resets, dropped
    /// handshakes); see [`crate::fault`].
    ///
    /// # Errors
    ///
    /// Fails for unknown signals and width mismatches.
    pub fn force(&mut self, name: &str, value: Bits) -> Result<(), SimError> {
        let sig = self
            .shared
            .design
            .signals
            .get(name)
            .filter(|s| s.mem_depth.is_none())
            .ok_or_else(|| SimError::UnknownSignal(name.to_owned()))?;
        if value.width() != sig.width {
            return Err(SimError::WidthMismatch {
                signal: name.to_owned(),
                expected: sig.width,
                got: value.width(),
            });
        }
        let id = self
            .shared
            .design
            .sig_id(name)
            .ok_or_else(|| SimError::UnknownSignal(name.to_owned()))?;
        // Apply the pinned value first (while not yet forced), then pin.
        self.apply_poke(id, &value);
        if self.forces.insert(id, value).is_none() {
            // Pinning a register-promoted signal demotes its fused region
            // to per-unit execution, whose stores honor the force map.
            let rid = self.shared.sched.promoted_region[id.index()];
            if rid != NO_PROMOTION {
                self.region_demoted[rid as usize] += 1;
            }
        }
        Ok(())
    }

    /// Releases a [`force`](Self::force), letting the signal's normal
    /// drivers take over again on the next settle. Releasing a signal
    /// that is not forced is a no-op.
    ///
    /// # Errors
    ///
    /// Fails for unknown signals.
    pub fn release(&mut self, name: &str) -> Result<(), SimError> {
        let id = self
            .shared
            .design
            .sig_id(name)
            .ok_or_else(|| SimError::UnknownSignal(name.to_owned()))?;
        if self.forces.remove(&id).is_some() {
            let rid = self.shared.sched.promoted_region[id.index()];
            if rid != NO_PROMOTION {
                self.region_demoted[rid as usize] -= 1;
            }
            // Re-run the drivers of the released signal so it recomputes,
            // and its readers so the recomputed value propagates.
            self.dirty_sigs.push(id);
            self.dirty_units
                .extend_from_slice(&self.shared.compiled.writers[id.index()]);
        }
        Ok(())
    }

    /// Names of currently forced signals.
    pub fn forced_signals(&self) -> Vec<String> {
        self.forces
            .keys()
            .map(|id| self.shared.design.table.name(*id).to_owned())
            .collect()
    }

    /// Convenience: poke from a `u64`, truncated to the signal's width.
    /// Allocation-free at any width — the value lands directly in the
    /// dense state slot, so stimulus loops over wide buses stay on the
    /// zero-allocation path.
    ///
    /// # Errors
    ///
    /// Fails for unknown signals.
    pub fn poke_u64(&mut self, name: &str, value: u64) -> Result<(), SimError> {
        let id = self
            .shared
            .design
            .signals
            .get(name)
            .filter(|s| s.mem_depth.is_none())
            .and_then(|_| self.shared.design.sig_id(name))
            .ok_or_else(|| SimError::UnknownSignal(name.to_owned()))?;
        if !self.forces.is_empty() && self.forces.contains_key(&id) {
            if let Some(c) = &mut self.counters {
                c.force_hits += 1;
            }
            return Ok(());
        }
        if self.state.set_id_u64(id, value) {
            if let Some(c) = &mut self.counters {
                c.pokes += 1;
            }
            self.dirty_sigs.push(id);
            self.dirty_units
                .extend_from_slice(&self.shared.compiled.writers[id.index()]);
        }
        Ok(())
    }

    /// Reads a signal's current value.
    ///
    /// # Errors
    ///
    /// Fails for unknown signals.
    pub fn peek(&self, name: &str) -> Result<&Bits, SimError> {
        self.state
            .get(name)
            .ok_or_else(|| SimError::UnknownSignal(name.to_owned()))
    }

    /// Reads a memory element.
    ///
    /// # Errors
    ///
    /// Fails if `name` is not a memory.
    pub fn peek_mem(&self, name: &str, idx: u64) -> Result<Bits, SimError> {
        let sig = self
            .shared
            .design
            .signals
            .get(name)
            .ok_or_else(|| SimError::UnknownSignal(name.to_owned()))?;
        if sig.mem_depth.is_none() {
            return Err(SimError::UnknownSignal(format!("{name} is not a memory")));
        }
        Ok(self.state.read_mem(name, idx))
    }

    /// Runs one settle unit (comb driver or blackbox), appending the IDs of
    /// signals whose value changed to `self.changed_scratch`.
    fn run_unit(&mut self, unit: u32) -> Result<(), SimError> {
        let n_combs = self.shared.compiled.combs.len();
        let u = unit as usize;
        if u < n_combs {
            let body = &self.shared.compiled.combs[u].body;
            let prog = match self.config.backend {
                Backend::Tree => None,
                // Levelized fallback units (and demoted regions, and the
                // FullPass sweep) execute the per-unit programs.
                _ => self.shared.comb_progs[u].as_ref(),
            };
            let mut exec = CExec {
                state: &mut self.state,
                scratch: &mut self.scratch,
                nb: None,
                logs: None,
                for_cap: self.config.for_cap,
                changed: &mut self.changed_scratch,
                forced: forced_view(&self.forces),
                strict_bounds: self.config.strict_bounds,
                counters: self.counters.as_deref_mut(),
            };
            match prog {
                Some(p) => {
                    crate::bytecode::run(p, &mut exec)?;
                }
                None => {
                    exec.stmt(body)?;
                }
            }
        } else {
            let bi = u - n_combs;
            self.refresh_bb_inputs(bi)?;
            let bb = &self.shared.compiled.bbs[bi];
            for (port, lv) in &bb.outs {
                let mut v = self.scratch.take();
                let produced = self.blackboxes[bi].eval_port(
                    port,
                    &self.bb_input_scratch[bi],
                    &mut v,
                );
                if produced {
                    let mut exec = CExec {
                        state: &mut self.state,
                        scratch: &mut self.scratch,
                        nb: None,
                        logs: None,
                        for_cap: self.config.for_cap,
                        changed: &mut self.changed_scratch,
                        forced: forced_view(&self.forces),
                        strict_bounds: self.config.strict_bounds,
                        counters: self.counters.as_deref_mut(),
                    };
                    exec.write(lv, v)?;
                } else {
                    self.scratch.put(v);
                }
            }
        }
        Ok(())
    }

    /// Re-evaluates a blackbox's input connections into its prebuilt port
    /// map, in place. `ins` and the map iterate in the same (sorted port
    /// name) order, so the two zip up.
    fn refresh_bb_inputs(&mut self, bi: usize) -> Result<(), SimError> {
        let bb = &self.shared.compiled.bbs[bi];
        let inputs = &mut self.bb_input_scratch[bi];
        debug_assert_eq!(inputs.len(), bb.ins.len());
        for ((port, w, ce), (key, slot)) in bb.ins.iter().zip(inputs.iter_mut()) {
            debug_assert_eq!(port, key);
            let _ = key;
            eval_into(&self.state, &mut self.scratch, ce, slot)?;
            slot.resize_in_place(*w);
        }
        Ok(())
    }

    /// One cooperative deadline probe: an error once the wall clock has
    /// passed [`SimConfig::deadline`], `Ok` otherwise — and always `Ok`,
    /// without touching the clock, when no deadline is configured.
    #[inline]
    fn check_deadline(&self) -> Result<(), SimError> {
        match self.config.deadline {
            Some(d) if std::time::Instant::now() >= d => {
                Err(SimError::DeadlineExceeded { steps: self.time })
            }
            _ => Ok(()),
        }
    }

    /// Settles combinational logic (and blackbox outputs) to a fixpoint.
    ///
    /// # Errors
    ///
    /// [`SimError::CombLoop`] if no fixpoint is reached within the
    /// configured iteration budget.
    pub fn settle(&mut self) -> Result<(), SimError> {
        match (self.config.settle_mode, self.config.backend) {
            // FullPass sweeps per-unit regardless of backend, so its
            // differential semantics are untouched by region fusion.
            (SettleMode::FullPass, _) => self.settle_full(),
            (SettleMode::EventDriven, Backend::Levelized) => self.settle_levelized(),
            (SettleMode::EventDriven, _) => self.settle_event(),
        }
    }

    /// Interpreter-equivalent full-pass fixpoint: every unit, every
    /// iteration, in declaration order.
    fn settle_full(&mut self) -> Result<(), SimError> {
        let n_units = self.shared.compiled.n_units() as u32;
        let mut iters = 0u64;
        for _ in 0..self.config.max_comb_iters {
            iters += 1;
            if self.config.deadline.is_some() {
                self.check_deadline()?;
            }
            self.changed_scratch.clear();
            for u in 0..n_units {
                self.run_unit(u)?;
            }
            if self.changed_scratch.is_empty() {
                self.dirty_sigs.clear();
                self.dirty_units.clear();
                self.force_full = false;
                if let Some(c) = &mut self.counters {
                    c.settles += 1;
                    c.full_settles += iters;
                    c.units_executed += iters * u64::from(n_units);
                }
                return Ok(());
            }
        }
        // The signals that changed during the final iteration are exactly
        // those still oscillating — name them in the diagnostic.
        let unstable: BTreeSet<SigId> = self.changed_scratch.iter().copied().collect();
        Err(self.comb_loop_error(unstable))
    }

    /// Maps an unstable ID set to a sorted-name [`SimError::CombLoop`].
    fn comb_loop_error(&self, unstable: BTreeSet<SigId>) -> SimError {
        SimError::CombLoop {
            unstable: unstable
                .into_iter()
                .map(|id| self.shared.design.table.name(id).to_owned())
                .collect(),
        }
    }

    /// Dependency-driven settling: a work-list keyed by unit index (lowest
    /// first, matching full-pass sweep order). A unit is (re)queued when a
    /// signal in its read-set changes; total unit executions are bounded by
    /// `max_comb_iters × n_units`, so combinational loops are still caught.
    fn settle_event(&mut self) -> Result<(), SimError> {
        let n_units = self.shared.compiled.n_units() as u32;
        // The heap + `queued` flags act as an ordered set of unit indices:
        // a unit sits in the heap at most once, and pops come lowest-first.
        // Both live on the simulator, so settling allocates nothing. The
        // reset guards against stale entries left by an aborted settle.
        self.settle_heap.clear();
        self.queued.fill(false);
        // Push counts accumulate in a local and flush to the counters once
        // at the end, so the loop itself carries no metrics branch.
        let mut pushes = 0u64;
        let was_full = self.force_full;
        if self.force_full {
            for u in 0..n_units {
                self.settle_heap.push(Reverse(u));
                self.queued[u as usize] = true;
            }
            pushes += u64::from(n_units);
        } else {
            let dirty = std::mem::take(&mut self.dirty_sigs);
            for &id in &dirty {
                let readers = &self.shared.compiled.readers[id.index()];
                pushes += readers.len() as u64;
                for &u in readers {
                    if !self.queued[u as usize] {
                        self.queued[u as usize] = true;
                        self.settle_heap.push(Reverse(u));
                    }
                }
            }
            self.dirty_sigs = dirty;
            pushes += self.dirty_units.len() as u64;
            let units = std::mem::take(&mut self.dirty_units);
            for &u in &units {
                if !self.queued[u as usize] {
                    self.queued[u as usize] = true;
                    self.settle_heap.push(Reverse(u));
                }
            }
            self.dirty_units = units;
        }
        self.dirty_sigs.clear();
        self.dirty_units.clear();
        self.force_full = false;

        let budget = (self.config.max_comb_iters as u64)
            .saturating_mul(u64::from(n_units.max(1)));
        // Once the run count enters the final full-pass-equivalent window,
        // start recording which signals are still flipping so the eventual
        // CombLoop error can name the oscillating set.
        let tail_start = budget.saturating_sub(u64::from(n_units.max(1)));
        let mut unstable: BTreeSet<SigId> = BTreeSet::new();
        let mut runs = 0u64;
        while let Some(Reverse(u)) = self.settle_heap.pop() {
            self.queued[u as usize] = false;
            runs += 1;
            if runs > budget {
                return Err(self.comb_loop_error(unstable));
            }
            // The disabled path pays the `is_some` load only; enabled, the
            // clock is consulted once per 1024 unit executions.
            if self.config.deadline.is_some() && runs & DEADLINE_CHECK_MASK == 0 {
                self.check_deadline()?;
            }
            self.changed_scratch.clear();
            self.run_unit(u)?;
            if runs > tail_start {
                unstable.extend(self.changed_scratch.iter().copied());
            }
            let changed = std::mem::take(&mut self.changed_scratch);
            for &id in &changed {
                let readers = &self.shared.compiled.readers[id.index()];
                pushes += readers.len() as u64;
                for &ru in readers {
                    if !self.queued[ru as usize] {
                        self.queued[ru as usize] = true;
                        self.settle_heap.push(Reverse(ru));
                    }
                }
            }
            self.changed_scratch = changed;
        }
        if let Some(c) = &mut self.counters {
            c.settles += 1;
            c.units_executed += runs;
            c.worklist_pushes += pushes;
            if was_full {
                c.full_settles += 1;
            }
        }
        Ok(())
    }

    /// Two-tier levelized settling (see [`crate::sched`]): the worklist
    /// ranges over *nodes* — fused acyclic regions first, then fallback
    /// units. A dirty region executes straight-line in topological rank
    /// order (one pass is its fixpoint, so its own writes never requeue
    /// it); cyclic SCCs, un-lowerable units, and blackboxes pop exactly
    /// like [`settle_event`](Self::settle_event). The budget still counts
    /// *unit* executions (a region pop charges its member count), so
    /// `CombLoop` detection and the deadline cadence match the worklist
    /// backends.
    fn settle_levelized(&mut self) -> Result<(), SimError> {
        let shared = Arc::clone(&self.shared);
        let sched = &shared.sched;
        let n_units = shared.compiled.n_units() as u32;
        let n_regions = sched.regions.len() as u32;
        let n_nodes = sched.n_nodes() as u32;
        self.settle_heap.clear();
        self.queued.fill(false);
        let mut pushes = 0u64;
        let was_full = self.force_full;
        if self.force_full {
            for nd in 0..n_nodes {
                self.settle_heap.push(Reverse(nd));
                self.queued[nd as usize] = true;
            }
            pushes += u64::from(n_nodes);
        } else {
            let dirty = std::mem::take(&mut self.dirty_sigs);
            for &id in &dirty {
                let readers = &sched.node_readers[id.index()];
                pushes += readers.len() as u64;
                for &nd in readers {
                    if !self.queued[nd as usize] {
                        self.queued[nd as usize] = true;
                        self.settle_heap.push(Reverse(nd));
                    }
                }
            }
            self.dirty_sigs = dirty;
            pushes += self.dirty_units.len() as u64;
            let units = std::mem::take(&mut self.dirty_units);
            for &u in &units {
                let nd = sched.unit_node[u as usize];
                if !self.queued[nd as usize] {
                    self.queued[nd as usize] = true;
                    self.settle_heap.push(Reverse(nd));
                }
            }
            self.dirty_units = units;
        }
        self.dirty_sigs.clear();
        self.dirty_units.clear();
        self.force_full = false;

        let budget = (self.config.max_comb_iters as u64)
            .saturating_mul(u64::from(n_units.max(1)));
        let tail_start = budget.saturating_sub(u64::from(n_units.max(1)));
        let mut unstable: BTreeSet<SigId> = BTreeSet::new();
        let mut runs = 0u64;
        let mut region_pops = 0u64;
        while let Some(Reverse(nd)) = self.settle_heap.pop() {
            self.queued[nd as usize] = false;
            let is_region = nd < n_regions;
            let prev_runs = runs;
            runs += if is_region {
                sched.regions[nd as usize].members.len() as u64
            } else {
                1
            };
            if runs > budget {
                return Err(self.comb_loop_error(unstable));
            }
            // Same ~1024-unit deadline cadence as the worklist: a region
            // pop advances `runs` by its member count, so probe whenever
            // the count crosses a 1024 boundary.
            if self.config.deadline.is_some()
                && (prev_runs >> 10) != (runs >> 10)
            {
                self.check_deadline()?;
            }
            self.changed_scratch.clear();
            if is_region {
                region_pops += 1;
                self.run_region(nd as usize, sched)?;
            } else {
                self.run_unit(sched.node_unit[(nd - n_regions) as usize])?;
            }
            if runs > tail_start {
                unstable.extend(self.changed_scratch.iter().copied());
            }
            let changed = std::mem::take(&mut self.changed_scratch);
            for &id in &changed {
                let readers = &sched.node_readers[id.index()];
                pushes += readers.len() as u64;
                for &rn in readers {
                    // A region's pass is its fixpoint: its own outputs
                    // never re-dirty it.
                    if is_region && rn == nd {
                        continue;
                    }
                    if !self.queued[rn as usize] {
                        self.queued[rn as usize] = true;
                        self.settle_heap.push(Reverse(rn));
                    }
                }
            }
            self.changed_scratch = changed;
        }
        if let Some(c) = &mut self.counters {
            c.settles += 1;
            c.units_executed += runs;
            c.worklist_pushes += pushes;
            c.regions_executed += region_pops;
            c.region_skips += u64::from(n_regions).saturating_sub(region_pops);
            if was_full {
                c.full_settles += 1;
            }
        }
        Ok(())
    }

    /// Executes one fused region: the straight-line program when clean, or
    /// the members' per-unit programs in rank order when a force pins one
    /// of its promoted signals (per-unit stores honor the force map; one
    /// ordered pass still reaches the region's fixpoint).
    fn run_region(&mut self, r: usize, sched: &Schedule) -> Result<(), SimError> {
        if self.region_demoted[r] == 0 {
            let mut exec = CExec {
                state: &mut self.state,
                scratch: &mut self.scratch,
                nb: None,
                logs: None,
                for_cap: self.config.for_cap,
                changed: &mut self.changed_scratch,
                forced: forced_view(&self.forces),
                strict_bounds: self.config.strict_bounds,
                counters: self.counters.as_deref_mut(),
            };
            // Fused programs contain no `Finish` (excluded at build time).
            crate::bytecode::run(&sched.regions[r].prog, &mut exec)?;
        } else {
            for &u in &sched.regions[r].members {
                self.run_unit(u)?;
            }
        }
        Ok(())
    }

    /// Recomputes `region_demoted` from the force map (after a wholesale
    /// force replacement, e.g. checkpoint restore or engine reset).
    fn recount_region_demotions(&mut self) {
        self.region_demoted.fill(0);
        if self.forces.is_empty() {
            return;
        }
        for id in self.forces.keys() {
            let rid = self.shared.sched.promoted_region[id.index()];
            if rid != NO_PROMOTION {
                self.region_demoted[rid as usize] += 1;
            }
        }
    }

    /// Advances one full cycle of `clock`: settle, rising edge (clocked
    /// processes + blackbox ticks + nonblocking commit), settle again.
    ///
    /// # Errors
    ///
    /// Propagates settle/evaluation errors. Does nothing after `$finish`.
    pub fn step(&mut self, clock: &str) -> Result<(), SimError> {
        if self.finished {
            return Ok(());
        }
        if self.config.deadline.is_some() {
            self.check_deadline()?;
        }
        let plan = self.shared.clock_plan(clock);
        if let Some(cid) = plan.clock_id {
            self.poke_id_u64(cid, 0);
        }
        self.settle()?;

        // Snapshot blackbox inputs at the pre-edge instant, refreshing the
        // prebuilt port maps in place. Nothing between here and the ticks
        // touches the maps (clocked processes run through `CExec` only).
        for bi in 0..self.shared.compiled.bbs.len() {
            self.refresh_bb_inputs(bi)?;
        }

        if let Some(cid) = plan.clock_id {
            self.poke_id_u64(cid, 1);
        }
        let cycle = match self.cycles.get_mut(clock) {
            Some(c) => {
                *c += 1;
                *c
            }
            None => {
                self.cycles.insert(clock.to_owned(), 1);
                1
            }
        };

        let mut nb = std::mem::take(&mut self.nb_scratch);
        let mut new_logs = std::mem::take(&mut self.logs_scratch);
        debug_assert!(nb.is_empty() && new_logs.is_empty());
        let mut finished = false;
        for &pi in &plan.procs {
            let body = &self.shared.compiled.procs[pi].body;
            let prog = match self.config.backend {
                Backend::Tree => None,
                _ => self.shared.proc_progs[pi].as_ref(),
            };
            let mut exec = CExec {
                state: &mut self.state,
                scratch: &mut self.scratch,
                nb: Some(&mut nb),
                logs: Some((&mut new_logs, self.time, cycle)),
                for_cap: self.config.for_cap,
                changed: &mut self.dirty_sigs,
                forced: forced_view(&self.forces),
                strict_bounds: self.config.strict_bounds,
                counters: self.counters.as_deref_mut(),
            };
            let flow = match prog {
                Some(p) => crate::bytecode::run(p, &mut exec)?,
                None => exec.stmt(body)?,
            };
            if flow == Flow::Finished {
                finished = true;
            }
        }

        // Tick blackboxes clocked by this signal, with pre-edge inputs.
        // A ticked model's outputs may change with no input edge, so its
        // unit is re-scheduled explicitly.
        let n_combs = self.shared.compiled.combs.len() as u32;
        for (bi, port) in &plan.ticks {
            self.blackboxes[*bi].tick(port, &self.bb_input_scratch[*bi]);
            self.dirty_units.push(n_combs + *bi as u32);
        }

        // Commit nonblocking writes in program order.
        let nb_len = nb.len() as u64;
        {
            let mut exec = CExec {
                state: &mut self.state,
                scratch: &mut self.scratch,
                nb: None,
                logs: None,
                for_cap: self.config.for_cap,
                changed: &mut self.dirty_sigs,
                forced: forced_view(&self.forces),
                strict_bounds: self.config.strict_bounds,
                counters: self.counters.as_deref_mut(),
            };
            for w in nb.drain(..) {
                exec.commit(w);
            }
        }
        self.nb_scratch = nb;

        for rec in new_logs.drain(..) {
            if self.logs.len() >= self.config.log_capacity {
                self.dropped_logs += 1;
                self.logs.remove(0);
            }
            self.logs.push(rec);
        }
        self.logs_scratch = new_logs;
        if finished {
            self.finished = true;
        }
        if let Some(c) = &mut self.counters {
            c.steps += 1;
            c.proc_runs += plan.procs.len() as u64;
            c.nb_commits += nb_len;
        }
        self.time += 1;
        self.settle()?;
        if let Some(vcd) = &mut self.vcd {
            // Waveform capture is best-effort; an I/O error stops sampling.
            if vcd.sample(self.time, &self.state).is_err() {
                self.vcd = None;
            }
        }
        Ok(())
    }

    /// Runs `n` cycles of `clock` (stops early at `$finish`).
    ///
    /// # Errors
    ///
    /// Propagates [`step`](Self::step) errors.
    pub fn run(&mut self, clock: &str, n: u64) -> Result<(), SimError> {
        for _ in 0..n {
            if self.finished {
                break;
            }
            self.step(clock)?;
        }
        Ok(())
    }

    /// Captures a full checkpoint of the simulation: signal values,
    /// memories, log position, cycle counters, and blackbox state. This is
    /// the checkpoint-based functionality the paper's §7 names as a
    /// natural extension of the debugging infrastructure.
    ///
    /// # Errors
    ///
    /// [`SimError::NoModel`] if a blackbox model does not support
    /// snapshotting.
    pub fn checkpoint(&self) -> Result<Checkpoint, SimError> {
        let mut bb_states = Vec::new();
        for (i, bb) in self.blackboxes.iter().enumerate() {
            match bb.snapshot() {
                Some(st) => bb_states.push(st),
                None => {
                    return Err(SimError::NoModel(
                        self.shared.design.blackboxes[i].module.clone(),
                    ))
                }
            }
        }
        Ok(Checkpoint {
            state: self.state.clone(),
            time: self.time,
            cycles: self.cycles.clone(),
            finished: self.finished,
            logs_len: self.logs.len(),
            bb_states,
            forces: self.forces.clone(),
        })
    }

    /// Rewinds the simulation to a previously captured checkpoint.
    /// Log records emitted after the checkpoint are discarded.
    ///
    /// # Errors
    ///
    /// [`SimError::NoModel`] if a blackbox refuses the snapshot payload
    /// (checkpoint from a different simulator).
    pub fn restore(&mut self, cp: &Checkpoint) -> Result<(), SimError> {
        if cp.bb_states.len() != self.blackboxes.len() {
            return Err(SimError::NoModel("checkpoint shape mismatch".into()));
        }
        for (i, bb) in self.blackboxes.iter_mut().enumerate() {
            if !bb.restore(cp.bb_states[i].as_ref()) {
                return Err(SimError::NoModel(
                    self.shared.design.blackboxes[i].module.clone(),
                ));
            }
        }
        self.state = cp.state.clone();
        self.time = cp.time;
        self.cycles = cp.cycles.clone();
        self.finished = cp.finished;
        self.logs.truncate(cp.logs_len);
        // Force pins are simulation state too: a stuck-at applied after the
        // checkpoint would otherwise keep pinning the signal after rewind.
        self.forces = cp.forces.clone();
        self.recount_region_demotions();
        // The whole value store was replaced: rebuild from scratch on the
        // next settle rather than trusting stale dirty sets.
        self.dirty_sigs.clear();
        self.dirty_units.clear();
        self.force_full = true;
        Ok(())
    }

    /// Returns this simulator to the state a fresh
    /// [`from_compiled`](Self::from_compiled) with `config` would produce,
    /// without rebuilding the value store or scratch pools. Blackbox
    /// models are recreated from `factory`, signal/memory values are
    /// re-initialized per `config.init` (consuming the deterministic
    /// init RNG in exactly `SimState::new`'s order, so randomized runs
    /// are byte-identical to a rebuilt engine), and logs, time, cycle
    /// counts, forces, and dirty sets are cleared. Campaign workers pool
    /// one engine per (worker, design) and reset it between jobs instead
    /// of paying per-job construction.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`from_compiled`](Self::from_compiled):
    /// missing blackbox models, strict-width violations.
    pub fn reset(
        &mut self,
        factory: &dyn BlackboxFactory,
        config: SimConfig,
    ) -> Result<(), SimError> {
        let shared = Arc::clone(&self.shared);
        let design = &shared.design;
        let mut blackboxes = Vec::with_capacity(design.blackboxes.len());
        for bb in &design.blackboxes {
            let model = factory
                .create(bb)
                .ok_or_else(|| SimError::NoModel(bb.module.clone()))?;
            blackboxes.push(model);
        }
        if config.strict_width {
            check_connection_widths(design)?;
        }
        self.blackboxes = blackboxes;
        self.state.reset(design, config.init);
        match config.backend {
            Backend::Tree => {}
            Backend::Bytecode => {
                self.scratch
                    .size_registers(shared.bc_narrow, shared.bc_wide, shared.max_width);
            }
            Backend::Levelized => {
                self.scratch
                    .size_registers(shared.lv_narrow, shared.lv_wide, shared.max_width);
            }
        }
        self.counters = if config.metrics {
            Some(Box::default())
        } else {
            None
        };
        self.config = config;
        self.logs.clear();
        self.logs_scratch.clear();
        self.nb_scratch.clear();
        self.dropped_logs = 0;
        self.time = 0;
        self.cycles.clear();
        self.finished = false;
        self.vcd = None;
        self.dirty_sigs.clear();
        self.dirty_units.clear();
        self.changed_scratch.clear();
        self.forces.clear();
        self.region_demoted.fill(0);
        self.force_full = true;
        Ok(())
    }

    /// Attaches a VCD waveform writer; every subsequent [`step`](Self::step)
    /// appends a sample of all scalar signals.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the VCD header.
    pub fn attach_vcd<W: std::io::Write + Send + 'static>(
        &mut self,
        sink: W,
    ) -> std::io::Result<()> {
        let writer = crate::vcd::VcdWriter::new(
            Box::new(sink) as Box<dyn std::io::Write + Send>,
            &self.shared.design,
        )?;
        self.vcd = Some(writer);
        Ok(())
    }

    /// Steps `clock` until `cond` holds, up to `max_cycles`.
    /// Returns the number of cycles stepped.
    ///
    /// # Errors
    ///
    /// [`SimError::Watchdog`] on timeout — the "Stuck" symptom of the
    /// paper's bug study. [`SimError::EarlyFinish`] if the design executed
    /// `$finish` while `cond` still did not hold: success used to be
    /// reported here, masking testbenches that terminated before reaching
    /// the awaited condition.
    pub fn run_until(
        &mut self,
        clock: &str,
        max_cycles: u64,
        mut cond: impl FnMut(&Simulator) -> bool,
    ) -> Result<u64, SimError> {
        for i in 0..max_cycles {
            if cond(self) {
                return Ok(i);
            }
            if self.finished {
                return Err(SimError::EarlyFinish { cycles: i });
            }
            self.step(clock)?;
        }
        if cond(self) {
            return Ok(max_cycles);
        }
        if self.finished {
            return Err(SimError::EarlyFinish { cycles: max_cycles });
        }
        Err(SimError::Watchdog {
            cycles: max_cycles,
        })
    }
}

/// `None` when no faults are active, so the hot path stays branch-cheap.
fn forced_view(forces: &BTreeMap<SigId, Bits>) -> Option<&BTreeMap<SigId, Bits>> {
    if forces.is_empty() {
        None
    } else {
        Some(forces)
    }
}

/// Strict-mode check: every blackbox port connection's resolved RTL width
/// must equal the port's spec width. The default (lenient) behavior
/// resizes on the fly, which silently truncates wide connections.
fn check_connection_widths(design: &Design) -> Result<(), SimError> {
    for inst in &design.blackboxes {
        for (port, e) in &inst.in_conns {
            let Some(&pw) = inst.port_widths.get(port) else {
                continue;
            };
            if let Some(ew) = design.expr_width(e) {
                if ew != pw {
                    return Err(SimError::WidthMismatch {
                        signal: format!("{}.{}", inst.name, port),
                        expected: pw,
                        got: ew,
                    });
                }
            }
        }
        for (port, lv) in &inst.out_conns {
            let Some(&pw) = inst.port_widths.get(port) else {
                continue;
            };
            if let Some(lw) = design.lvalue_width(lv) {
                if lw != pw {
                    return Err(SimError::WidthMismatch {
                        signal: format!("{}.{}", inst.name, port),
                        expected: pw,
                        got: lw,
                    });
                }
            }
        }
    }
    Ok(())
}

// `Simulator: Send` holds by construction (no `Rc`, no `RefCell`, `Send`
// blackbox models, `Send` VCD sinks), and `CompiledDesign` is additionally
// `Sync` so one `Arc` can back simulators on many threads. Campaign
// sharding depends on both; a field change that silently loses either
// fails to compile here.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send::<Simulator>();
    assert_send_sync::<CompiledDesign>();
    assert_send_sync::<SimConfig>();
    assert_send::<Checkpoint>();
};

#[allow(dead_code)]
fn _assert_name_based_eval_stays_public(design: &Design, state: &SimState) {
    // `eval_expr` remains part of the public API for tools that evaluate
    // ad-hoc expressions outside the compiled hot path.
    let _ = eval_expr(&hwdbg_rtl::Expr::number(0), design, state);
}
