//! The cycle-accurate simulation engine.

use crate::eval::{effective_mem_addr, eval_expr, expr_width};
use crate::state::{RegInit, SimState};
use crate::{Blackbox, BlackboxFactory, LogRecord, SimError};
use hwdbg_bits::Bits;
use hwdbg_dataflow::Design;
use hwdbg_rtl::{Expr, LValue, Stmt};
use std::collections::BTreeMap;

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Register/memory initialization policy.
    pub init: RegInit,
    /// Maximum settle iterations before declaring a combinational loop.
    pub max_comb_iters: usize,
    /// Maximum iterations of a procedural `for` loop.
    pub for_cap: u64,
    /// Maximum `$display` records retained (oldest dropped beyond this).
    pub log_capacity: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            init: RegInit::Zero,
            max_comb_iters: 100,
            for_cap: 65_536,
            log_capacity: 1_000_000,
        }
    }
}

/// A deferred (nonblocking) write, resolved to a concrete target at the
/// time the assignment executed.
#[derive(Debug, Clone)]
enum NbWrite {
    /// Whole signal.
    Sig(String, Bits),
    /// Bit range `[lo +: width]` of a signal.
    Slice(String, u32, Bits),
    /// One memory element.
    Mem(String, u64, Bits),
}

/// Control flow result of executing statements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flow {
    Continue,
    Finished,
}

/// A cycle-accurate simulator for an elaborated [`Design`].
///
/// Semantics follow the two-phase synchronous model: combinational logic
/// settles to a fixpoint between clock edges, `always @(posedge clk)`
/// processes read pre-edge values, and nonblocking assignments commit after
/// every process has run.
pub struct Simulator {
    design: Design,
    state: SimState,
    config: SimConfig,
    blackboxes: Vec<Box<dyn Blackbox>>,
    logs: Vec<LogRecord>,
    dropped_logs: u64,
    time: u64,
    cycles: BTreeMap<String, u64>,
    finished: bool,
    /// Identity-assign aliases (`assign s1__clk = clk;`), used so a process
    /// sensitive to a flattened clock name still triggers on the top clock.
    aliases: BTreeMap<String, String>,
    vcd: Option<crate::vcd::VcdWriter<Box<dyn std::io::Write>>>,
}

/// A full simulation snapshot produced by [`Simulator::checkpoint`].
pub struct Checkpoint {
    state: SimState,
    time: u64,
    cycles: BTreeMap<String, u64>,
    finished: bool,
    logs_len: usize,
    bb_states: Vec<Box<dyn std::any::Any>>,
}

impl std::fmt::Debug for Checkpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Checkpoint")
            .field("time", &self.time)
            .field("finished", &self.finished)
            .finish()
    }
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("design", &self.design.name)
            .field("time", &self.time)
            .field("finished", &self.finished)
            .finish()
    }
}

impl Simulator {
    /// Builds a simulator; `factory` supplies behavioral models for each
    /// blackbox instance of the design.
    ///
    /// # Errors
    ///
    /// Fails if a blackbox instance has no model in `factory`.
    pub fn new(
        design: Design,
        factory: &dyn BlackboxFactory,
        config: SimConfig,
    ) -> Result<Self, SimError> {
        let mut blackboxes = Vec::new();
        for bb in &design.blackboxes {
            let model = factory
                .create(bb)
                .ok_or_else(|| SimError::NoModel(bb.module.clone()))?;
            blackboxes.push(model);
        }
        let state = SimState::new(&design, config.init);
        let mut aliases = BTreeMap::new();
        for comb in &design.combs {
            if let Stmt::Assign {
                lhs: LValue::Id(dst),
                rhs: Expr::Ident(src),
                nonblocking: false,
                ..
            } = &comb.body
            {
                aliases.insert(dst.clone(), src.clone());
            }
        }
        Ok(Simulator {
            design,
            state,
            config,
            blackboxes,
            logs: Vec::new(),
            dropped_logs: 0,
            time: 0,
            cycles: BTreeMap::new(),
            finished: false,
            aliases,
            vcd: None,
        })
    }

    /// Resolves a signal through identity-assign aliases to its root driver.
    fn alias_root<'s>(&'s self, mut name: &'s str) -> &'s str {
        let mut hops = 0;
        while let Some(next) = self.aliases.get(name) {
            name = next;
            hops += 1;
            if hops > self.aliases.len() {
                break; // alias cycle: give up, treat as its own root
            }
        }
        name
    }

    /// The elaborated design under simulation.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// Access a blackbox model by flat instance name (e.g. to read a trace
    /// buffer's captured entries after a run).
    pub fn blackbox(&self, name: &str) -> Option<&dyn Blackbox> {
        self.design
            .blackboxes
            .iter()
            .position(|b| b.name == name)
            .map(|i| self.blackboxes[i].as_ref())
    }

    /// Names of all blackbox instances of a given IP module.
    pub fn blackbox_instances(&self, module: &str) -> Vec<String> {
        self.design
            .blackboxes
            .iter()
            .filter(|b| b.module == module)
            .map(|b| b.name.clone())
            .collect()
    }

    /// Direct access to simulation state (for checkpoint-style tooling).
    pub fn state(&self) -> &SimState {
        &self.state
    }

    /// True once `$finish` has executed.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Number of completed posedges of `clock`.
    pub fn cycle(&self, clock: &str) -> u64 {
        self.cycles.get(clock).copied().unwrap_or(0)
    }

    /// Captured `$display` records.
    pub fn logs(&self) -> &[LogRecord] {
        &self.logs
    }

    /// How many log records were dropped due to `log_capacity`.
    pub fn dropped_logs(&self) -> u64 {
        self.dropped_logs
    }

    /// Sets a signal's value (normally a top-level input).
    ///
    /// # Errors
    ///
    /// Fails for unknown signals.
    pub fn poke(&mut self, name: &str, value: Bits) -> Result<(), SimError> {
        if self.state.get(name).is_none() {
            return Err(SimError::UnknownSignal(name.to_owned()));
        }
        self.state.set(name, value);
        Ok(())
    }

    /// Convenience: poke from a `u64`.
    ///
    /// # Errors
    ///
    /// Fails for unknown signals.
    pub fn poke_u64(&mut self, name: &str, value: u64) -> Result<(), SimError> {
        let width = self
            .design
            .signals
            .get(name)
            .ok_or_else(|| SimError::UnknownSignal(name.to_owned()))?
            .width;
        self.poke(name, Bits::from_u64(width, value))
    }

    /// Reads a signal's current value.
    ///
    /// # Errors
    ///
    /// Fails for unknown signals.
    pub fn peek(&self, name: &str) -> Result<&Bits, SimError> {
        self.state
            .get(name)
            .ok_or_else(|| SimError::UnknownSignal(name.to_owned()))
    }

    /// Reads a memory element.
    ///
    /// # Errors
    ///
    /// Fails if `name` is not a memory.
    pub fn peek_mem(&self, name: &str, idx: u64) -> Result<Bits, SimError> {
        let sig = self
            .design
            .signals
            .get(name)
            .ok_or_else(|| SimError::UnknownSignal(name.to_owned()))?;
        if sig.mem_depth.is_none() {
            return Err(SimError::UnknownSignal(format!("{name} is not a memory")));
        }
        Ok(self.state.read_mem(name, idx))
    }

    /// Settles combinational logic (and blackbox outputs) to a fixpoint.
    ///
    /// # Errors
    ///
    /// [`SimError::CombLoop`] if no fixpoint is reached within the
    /// configured iteration budget.
    pub fn settle(&mut self) -> Result<(), SimError> {
        for _ in 0..self.config.max_comb_iters {
            let mut changed = false;
            for ci in 0..self.design.combs.len() {
                let body = self.design.combs[ci].body.clone();
                let mut exec = Exec {
                    design: &self.design,
                    state: &mut self.state,
                    nb: None,
                    logs: None,
                    changed: false,
                    for_cap: self.config.for_cap,
                };
                exec.stmt(&body)?;
                changed |= exec.changed;
            }
            for bi in 0..self.blackboxes.len() {
                let inst = &self.design.blackboxes[bi];
                let mut inputs = BTreeMap::new();
                for (port, e) in &inst.in_conns {
                    let w = inst.port_widths.get(port).copied().unwrap_or(1);
                    inputs.insert(port.clone(), eval_expr(e, &self.design, &self.state)?.resize(w));
                }
                let outputs = self.blackboxes[bi].eval(&inputs);
                for (port, lv) in inst.out_conns.clone() {
                    if let Some(v) = outputs.get(&port) {
                        let mut exec = Exec {
                            design: &self.design,
                            state: &mut self.state,
                            nb: None,
                            logs: None,
                            changed: false,
                            for_cap: self.config.for_cap,
                        };
                        exec.write(&lv, v.clone())?;
                        changed |= exec.changed;
                    }
                }
            }
            if !changed {
                return Ok(());
            }
        }
        Err(SimError::CombLoop)
    }

    /// Advances one full cycle of `clock`: settle, rising edge (clocked
    /// processes + blackbox ticks + nonblocking commit), settle again.
    ///
    /// # Errors
    ///
    /// Propagates settle/evaluation errors. Does nothing after `$finish`.
    pub fn step(&mut self, clock: &str) -> Result<(), SimError> {
        if self.finished {
            return Ok(());
        }
        self.poke(clock, Bits::from_u64(1, 0)).ok();
        self.settle()?;

        // Snapshot blackbox inputs at the pre-edge instant.
        let mut bb_inputs: Vec<BTreeMap<String, Bits>> = Vec::new();
        for inst in &self.design.blackboxes {
            let mut inputs = BTreeMap::new();
            for (port, e) in &inst.in_conns {
                let w = inst.port_widths.get(port).copied().unwrap_or(1);
                inputs.insert(port.clone(), eval_expr(e, &self.design, &self.state)?.resize(w));
            }
            bb_inputs.push(inputs);
        }

        self.poke(clock, Bits::from_u64(1, 1)).ok();
        let cycle = self.cycles.entry(clock.to_owned()).or_insert(0);
        *cycle += 1;
        let cycle = *cycle;

        let mut nb: Vec<NbWrite> = Vec::new();
        let mut new_logs: Vec<LogRecord> = Vec::new();
        let mut finished = false;
        let clock_root = self.alias_root(clock).to_owned();
        for pi in 0..self.design.procs.len() {
            let proc_edges = self.design.procs[pi].edges.clone();
            let triggered = proc_edges
                .iter()
                .any(|e| self.alias_root(&e.signal) == clock_root);
            if !triggered {
                continue;
            }
            let body = self.design.procs[pi].body.clone();
            let mut exec = Exec {
                design: &self.design,
                state: &mut self.state,
                nb: Some(&mut nb),
                logs: Some((&mut new_logs, self.time, cycle)),
                changed: false,
                for_cap: self.config.for_cap,
            };
            if exec.stmt(&body)? == Flow::Finished {
                finished = true;
            }
        }

        // Tick blackboxes clocked by this signal, with pre-edge inputs.
        for (bi, inst) in self.design.blackboxes.iter().enumerate() {
            for cp in &inst.clock_ports {
                let conn_reads_clock = inst.in_conns.get(cp).map_or(false, |e| {
                    e.idents()
                        .iter()
                        .any(|n| self.alias_root(n) == clock_root)
                });
                if conn_reads_clock {
                    self.blackboxes[bi].tick(cp, &bb_inputs[bi]);
                }
            }
        }

        // Commit nonblocking writes in program order.
        for w in nb {
            match w {
                NbWrite::Sig(n, v) => {
                    self.state.set(&n, v);
                }
                NbWrite::Slice(n, lo, v) => {
                    if let Some(cur) = self.state.get(&n) {
                        let mut cur = cur.clone();
                        cur.splice(lo, &v);
                        self.state.set(&n, cur);
                    }
                }
                NbWrite::Mem(n, addr, v) => {
                    self.state.write_mem(&n, addr, v);
                }
            }
        }

        for rec in new_logs {
            if self.logs.len() >= self.config.log_capacity {
                self.dropped_logs += 1;
                self.logs.remove(0);
            }
            self.logs.push(rec);
        }
        if finished {
            self.finished = true;
        }
        self.time += 1;
        self.settle()?;
        if let Some(vcd) = &mut self.vcd {
            // Waveform capture is best-effort; an I/O error stops sampling.
            if vcd.sample(self.time, &self.state).is_err() {
                self.vcd = None;
            }
        }
        Ok(())
    }

    /// Runs `n` cycles of `clock` (stops early at `$finish`).
    ///
    /// # Errors
    ///
    /// Propagates [`step`](Self::step) errors.
    pub fn run(&mut self, clock: &str, n: u64) -> Result<(), SimError> {
        for _ in 0..n {
            if self.finished {
                break;
            }
            self.step(clock)?;
        }
        Ok(())
    }

    /// Captures a full checkpoint of the simulation: signal values,
    /// memories, log position, cycle counters, and blackbox state. This is
    /// the checkpoint-based functionality the paper's §7 names as a
    /// natural extension of the debugging infrastructure.
    ///
    /// # Errors
    ///
    /// [`SimError::NoModel`] if a blackbox model does not support
    /// snapshotting.
    pub fn checkpoint(&self) -> Result<Checkpoint, SimError> {
        let mut bb_states = Vec::new();
        for (i, bb) in self.blackboxes.iter().enumerate() {
            match bb.snapshot() {
                Some(st) => bb_states.push(st),
                None => {
                    return Err(SimError::NoModel(
                        self.design.blackboxes[i].module.clone(),
                    ))
                }
            }
        }
        Ok(Checkpoint {
            state: self.state.clone(),
            time: self.time,
            cycles: self.cycles.clone(),
            finished: self.finished,
            logs_len: self.logs.len(),
            bb_states,
        })
    }

    /// Rewinds the simulation to a previously captured checkpoint.
    /// Log records emitted after the checkpoint are discarded.
    ///
    /// # Errors
    ///
    /// [`SimError::NoModel`] if a blackbox refuses the snapshot payload
    /// (checkpoint from a different simulator).
    pub fn restore(&mut self, cp: &Checkpoint) -> Result<(), SimError> {
        if cp.bb_states.len() != self.blackboxes.len() {
            return Err(SimError::NoModel("checkpoint shape mismatch".into()));
        }
        for (i, bb) in self.blackboxes.iter_mut().enumerate() {
            if !bb.restore(cp.bb_states[i].as_ref()) {
                return Err(SimError::NoModel(
                    self.design.blackboxes[i].module.clone(),
                ));
            }
        }
        self.state = cp.state.clone();
        self.time = cp.time;
        self.cycles = cp.cycles.clone();
        self.finished = cp.finished;
        self.logs.truncate(cp.logs_len);
        Ok(())
    }

    /// Attaches a VCD waveform writer; every subsequent [`step`](Self::step)
    /// appends a sample of all scalar signals.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the VCD header.
    pub fn attach_vcd<W: std::io::Write + 'static>(
        &mut self,
        sink: W,
    ) -> std::io::Result<()> {
        let writer = crate::vcd::VcdWriter::new(Box::new(sink) as Box<dyn std::io::Write>, &self.design)?;
        self.vcd = Some(writer);
        Ok(())
    }

    /// Steps `clock` until `cond` holds, up to `max_cycles`.
    /// Returns the number of cycles stepped.
    ///
    /// # Errors
    ///
    /// [`SimError::Watchdog`] on timeout — the "Stuck" symptom of the
    /// paper's bug study.
    pub fn run_until(
        &mut self,
        clock: &str,
        max_cycles: u64,
        mut cond: impl FnMut(&Simulator) -> bool,
    ) -> Result<u64, SimError> {
        for i in 0..max_cycles {
            if cond(self) {
                return Ok(i);
            }
            if self.finished {
                return Ok(i);
            }
            self.step(clock)?;
        }
        if cond(self) {
            return Ok(max_cycles);
        }
        Err(SimError::Watchdog {
            cycles: max_cycles,
        })
    }
}

/// One statement-execution context (a settle pass or one clocked process).
struct Exec<'a> {
    design: &'a Design,
    state: &'a mut SimState,
    /// `Some` in clocked context: nonblocking writes defer here.
    nb: Option<&'a mut Vec<NbWrite>>,
    /// `Some((sink, time, cycle))` in clocked context: `$display` records.
    logs: Option<(&'a mut Vec<LogRecord>, u64, u64)>,
    changed: bool,
    for_cap: u64,
}

impl<'a> Exec<'a> {
    fn stmt(&mut self, stmt: &Stmt) -> Result<Flow, SimError> {
        match stmt {
            Stmt::Block(stmts) => {
                for s in stmts {
                    if self.stmt(s)? == Flow::Finished {
                        return Ok(Flow::Finished);
                    }
                }
                Ok(Flow::Continue)
            }
            Stmt::If { cond, then, els } => {
                let c = eval_expr(cond, self.design, self.state)?;
                if c.to_bool() {
                    self.stmt(then)
                } else if let Some(e) = els {
                    self.stmt(e)
                } else {
                    Ok(Flow::Continue)
                }
            }
            Stmt::Case {
                expr,
                arms,
                default,
                kind,
            } => {
                let sel = eval_expr(expr, self.design, self.state)?;
                let _ = kind; // casez labels in our subset are literal
                for arm in arms {
                    for l in &arm.labels {
                        let lv = eval_expr(l, self.design, self.state)?;
                        let w = sel.width().max(lv.width());
                        if sel.resize(w) == lv.resize(w) {
                            return self.stmt(&arm.body);
                        }
                    }
                }
                match default {
                    Some(d) => self.stmt(d),
                    None => Ok(Flow::Continue),
                }
            }
            Stmt::Assign {
                lhs,
                nonblocking,
                rhs,
                ..
            } => {
                let v = eval_expr(rhs, self.design, self.state)?;
                if *nonblocking && self.nb.is_some() {
                    self.write_nb(lhs, v)?;
                } else {
                    self.write(lhs, v)?;
                }
                Ok(Flow::Continue)
            }
            Stmt::For {
                var,
                init,
                cond,
                step,
                body,
            } => {
                let v = eval_expr(init, self.design, self.state)?;
                self.write(&LValue::Id(var.clone()), v)?;
                let mut iters = 0u64;
                loop {
                    let c = eval_expr(cond, self.design, self.state)?;
                    if !c.to_bool() {
                        break;
                    }
                    if self.stmt(body)? == Flow::Finished {
                        return Ok(Flow::Finished);
                    }
                    let s = eval_expr(step, self.design, self.state)?;
                    self.write(&LValue::Id(var.clone()), s)?;
                    iters += 1;
                    if iters > self.for_cap {
                        return Err(SimError::LoopCap(var.clone()));
                    }
                }
                Ok(Flow::Continue)
            }
            Stmt::Display { format, args, .. } => {
                if let Some((sink, time, cycle)) = &mut self.logs {
                    let mut vals = Vec::new();
                    for a in args {
                        vals.push(eval_expr(a, self.design, self.state)?);
                    }
                    let message = crate::format::render(format, &vals);
                    sink.push(LogRecord {
                        time: *time,
                        cycle: *cycle,
                        message,
                    });
                }
                Ok(Flow::Continue)
            }
            Stmt::Finish => Ok(Flow::Finished),
            Stmt::Empty => Ok(Flow::Continue),
        }
    }

    /// Immediate (blocking) write.
    fn write(&mut self, lhs: &LValue, value: Bits) -> Result<(), SimError> {
        match self.resolve(lhs, value)? {
            None => Ok(()),
            Some(writes) => {
                for w in writes {
                    match w {
                        NbWrite::Sig(n, v) => {
                            self.changed |= self.state.set(&n, v);
                        }
                        NbWrite::Slice(n, lo, v) => {
                            if let Some(cur) = self.state.get(&n) {
                                let mut cur = cur.clone();
                                cur.splice(lo, &v);
                                self.changed |= self.state.set(&n, cur);
                            }
                        }
                        NbWrite::Mem(n, addr, v) => {
                            let old = self.state.read_mem(&n, addr);
                            let vw = v.resize(old.width());
                            if old != vw {
                                self.changed = true;
                            }
                            self.state.write_mem(&n, addr, vw);
                        }
                    }
                }
                Ok(())
            }
        }
    }

    /// Deferred (nonblocking) write.
    fn write_nb(&mut self, lhs: &LValue, value: Bits) -> Result<(), SimError> {
        if let Some(writes) = self.resolve(lhs, value)? {
            let nb = self.nb.as_mut().expect("nonblocking outside clocked ctx");
            nb.extend(writes);
        }
        Ok(())
    }

    /// Resolves an lvalue + value into concrete write operations, applying
    /// the paper's overflow semantics; `None` means the write is dropped.
    fn resolve(&mut self, lhs: &LValue, value: Bits) -> Result<Option<Vec<NbWrite>>, SimError> {
        Ok(match lhs {
            LValue::Id(n) => {
                let sig = self
                    .design
                    .signals
                    .get(n)
                    .ok_or_else(|| SimError::UnknownSignal(n.clone()))?;
                if sig.mem_depth.is_some() {
                    return Err(SimError::UnknownSignal(format!(
                        "cannot assign whole memory `{n}`"
                    )));
                }
                Some(vec![NbWrite::Sig(n.clone(), value.resize(sig.width))])
            }
            LValue::Index(n, idx) => {
                let i = eval_expr(idx, self.design, self.state)?.to_u64();
                let sig = self
                    .design
                    .signals
                    .get(n)
                    .ok_or_else(|| SimError::UnknownSignal(n.clone()))?;
                if let Some(depth) = sig.mem_depth {
                    match effective_mem_addr(i, depth) {
                        Some(addr) => {
                            Some(vec![NbWrite::Mem(n.clone(), addr, value.resize(sig.width))])
                        }
                        None => None, // dropped write: paper §3.2.1 outcome 2
                    }
                } else if i < u64::from(sig.width) {
                    Some(vec![NbWrite::Slice(n.clone(), i as u32, value.resize(1))])
                } else {
                    None // out-of-range bit write ignored
                }
            }
            LValue::Range(n, msb, lsb) => {
                let m = eval_expr(msb, self.design, self.state)?.to_u64();
                let l = eval_expr(lsb, self.design, self.state)?.to_u64();
                if l > m {
                    return Err(SimError::NonConstSelect);
                }
                let w = (m - l + 1) as u32;
                Some(vec![NbWrite::Slice(n.clone(), l as u32, value.resize(w))])
            }
            LValue::Concat(parts) => {
                // First part is most significant.
                let mut widths = Vec::new();
                let mut total = 0u32;
                for p in parts {
                    let w = self.lvalue_width(p)?;
                    widths.push(w);
                    total += w;
                }
                let value = value.resize(total);
                let mut out = Vec::new();
                let mut hi = total;
                for (p, w) in parts.iter().zip(widths) {
                    let part_val = value.slice(hi - w, w);
                    hi -= w;
                    if let Some(ws) = self.resolve(p, part_val)? {
                        out.extend(ws);
                    }
                }
                Some(out)
            }
        })
    }

    fn lvalue_width(&self, lv: &LValue) -> Result<u32, SimError> {
        Ok(match lv {
            LValue::Id(n) => {
                self.design
                    .signals
                    .get(n)
                    .ok_or_else(|| SimError::UnknownSignal(n.clone()))?
                    .width
            }
            LValue::Index(n, _) => {
                let sig = self
                    .design
                    .signals
                    .get(n)
                    .ok_or_else(|| SimError::UnknownSignal(n.clone()))?;
                if sig.mem_depth.is_some() {
                    sig.width
                } else {
                    1
                }
            }
            LValue::Range(_, msb, lsb) => {
                let e = Expr::Range(
                    "_".into(),
                    Box::new(msb.clone()),
                    Box::new(lsb.clone()),
                );
                // Reuse expr_width's constant range logic via a dummy name.
                let _ = &e;
                let m = hwdbg_dataflow::eval_const(msb, &self.design.consts)
                    .map_err(|_| SimError::NonConstSelect)?
                    .to_u64();
                let l = hwdbg_dataflow::eval_const(lsb, &self.design.consts)
                    .map_err(|_| SimError::NonConstSelect)?
                    .to_u64();
                (m - l + 1) as u32
            }
            LValue::Concat(parts) => {
                let mut sum = 0;
                for p in parts {
                    sum += self.lvalue_width(p)?;
                }
                sum
            }
        })
    }
}


#[allow(dead_code)]
fn _assert_width_fn_exists(design: &Design) {
    let _ = expr_width(&Expr::number(0), design);
}
