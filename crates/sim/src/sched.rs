//! Levelized static scheduling for the settle loop.
//!
//! At compile time the combinational dependency graph is partitioned into
//! **acyclic regions**: Tarjan SCC finds the cyclic components, every unit
//! outside one is topologically levelized, and the weakly-connected
//! components of the remaining acyclic subgraph become regions. Each
//! region's member bodies are fused into one straight-line [`BcProgram`]
//! in rank order — no worklist, no per-unit dispatch — and signals that
//! are written by exactly one member (via an unconditional plain assign)
//! and read only inside the region are *promoted* to pinned bytecode
//! registers: reads cost nothing, writes skip change detection and only
//! blind-flush the slot so external observers (VCD, `peek`, partial-bit
//! reads) stay coherent.
//!
//! Cyclic SCCs, self-looping units, units the lowerer rejects, units that
//! can `$finish`, regions where promotion found no eligible signal (fusion
//! without promotion trades away change-detection early-outs for nothing),
//! and all blackboxes stay on the existing worklist
//! fallback; the engine's settle loop dispatches over **nodes** (regions
//! first, then fallback units) so both tiers share one budget, one
//! deadline probe, and one convergence argument. See DESIGN.md §7,
//! "Static scheduling and region fusion".

use crate::bytecode::{lower_region, BcProgram, NO_PROMOTION};
use crate::compile::{CLValue, CStmt, Compiled};
use hwdbg_dataflow::{tarjan_scc as tarjan, SigId};
use std::collections::BTreeSet;

/// One fused acyclic region.
#[derive(Debug)]
pub(crate) struct Region {
    /// The members' bodies lowered as one program, in rank order.
    pub prog: BcProgram,
    /// Member comb-unit indices, sorted by (level, unit id) — a
    /// topological order of the intra-region dependencies.
    pub members: Vec<u32>,
    /// Signals promoted to pinned registers (pin i ↔ `promoted[i]`).
    pub promoted: Vec<SigId>,
}

/// The static schedule: fused regions plus the node-space maps the
/// engine's two-tier dispatcher runs over. Node ids `0..regions.len()`
/// are regions; the rest are fallback units.
#[derive(Debug)]
pub(crate) struct Schedule {
    pub regions: Vec<Region>,
    /// Unit index → node id.
    pub unit_node: Vec<u32>,
    /// `node_unit[node - regions.len()]` → fallback unit index.
    pub node_unit: Vec<u32>,
    /// Signal index → deduped reader node ids.
    pub node_readers: Vec<Vec<u32>>,
    /// Signal index → region id whose pinned register holds it, or
    /// [`NO_PROMOTION`]. A force on such a signal demotes the region.
    pub promoted_region: Vec<u32>,
    /// Deepest level in the acyclic subgraph (0 when nothing fused).
    pub max_level: u32,
}

impl Schedule {
    pub fn n_nodes(&self) -> usize {
        self.regions.len() + self.node_unit.len()
    }

    /// Total signals promoted out of `SimState` slots.
    pub fn fused_signals(&self) -> usize {
        self.regions.iter().map(|r| r.promoted.len()).sum()
    }
}

/// If `body` is (a block of blocks around) a single unconditional
/// blocking whole-signal assign, the target signal. This is the shape a
/// comb driver must have for its output to be register-promotable: the
/// write always happens, exactly once, before any higher-ranked reader.
fn plain_assign_target(body: &CStmt) -> Option<SigId> {
    let mut s = body;
    loop {
        match s {
            CStmt::Block(inner) if inner.len() == 1 => s = &inner[0],
            CStmt::Assign { lhs: CLValue::Sig { id, .. }, nonblocking: false, .. } => {
                return Some(*id);
            }
            _ => return None,
        }
    }
}

/// Builds the static schedule for a compiled design. `comb_progs` holds
/// the per-unit lowered programs (index = comb unit); `sig_width` /
/// `mem_width` are the lowering width tables.
pub(crate) fn build_schedule(
    compiled: &Compiled,
    comb_progs: &[Option<BcProgram>],
    sig_width: &[u32],
    mem_width: &[u32],
) -> Schedule {
    let n_combs = compiled.combs.len();
    let n_units = compiled.n_units();
    let n_sigs = compiled.readers.len();

    // Comb-only dependency graph: writer → reader per shared signal.
    // (`readers`/`writers` entries for comb units may repeat; BTreeSet
    // dedups edges, and self-edges are tracked separately.)
    let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n_combs];
    let mut self_loop = vec![false; n_combs];
    for s in 0..n_sigs {
        for &w in &compiled.writers[s] {
            let w = w as usize;
            if w >= n_combs {
                continue;
            }
            for &r in &compiled.readers[s] {
                let r = r as usize;
                if r >= n_combs {
                    continue;
                }
                if w == r {
                    self_loop[w] = true;
                } else {
                    adj[w].insert(r);
                }
            }
        }
    }

    // A unit is fusable iff it sits outside every cycle and lowered to a
    // finish-free program.
    let mut fusable = vec![false; n_combs];
    for comp in tarjan(&adj) {
        if comp.len() > 1 {
            continue;
        }
        let u = comp[0];
        fusable[u] = !self_loop[u]
            && comb_progs[u].as_ref().is_some_and(|p| !p.has_finish());
    }
    // A multi-driven signal's final value depends on writer execution
    // order; fused rank order can differ from the worklist's unit-index
    // pop order, so every comb writer of such a signal stays on the
    // fallback (which pops in exactly the worklist's order).
    for s in 0..n_sigs {
        let mut ws: Vec<u32> = compiled.writers[s].clone();
        ws.sort_unstable();
        ws.dedup();
        if ws.len() > 1 {
            for &w in &ws {
                if (w as usize) < n_combs {
                    fusable[w as usize] = false;
                }
            }
        }
    }

    // Longest-path levels over the fusable subgraph (acyclic by
    // construction), via Kahn's algorithm.
    let mut level = vec![0u32; n_combs];
    let mut indeg = vec![0usize; n_combs];
    for u in 0..n_combs {
        if !fusable[u] {
            continue;
        }
        for &v in &adj[u] {
            if fusable[v] {
                indeg[v] += 1;
            }
        }
    }
    let mut queue: Vec<usize> = (0..n_combs).filter(|&u| fusable[u] && indeg[u] == 0).collect();
    let mut qi = 0;
    while qi < queue.len() {
        let u = queue[qi];
        qi += 1;
        for &v in &adj[u] {
            if !fusable[v] {
                continue;
            }
            level[v] = level[v].max(level[u] + 1);
            indeg[v] -= 1;
            if indeg[v] == 0 {
                queue.push(v);
            }
        }
    }
    let max_level = (0..n_combs).filter(|&u| fusable[u]).map(|u| level[u]).max().unwrap_or(0);

    // Regions = weakly-connected components of the fusable subgraph.
    let mut radj: Vec<Vec<usize>> = vec![Vec::new(); n_combs];
    for (u, next) in adj.iter().enumerate() {
        for &v in next {
            radj[v].push(u);
        }
    }
    let mut region_of = vec![usize::MAX; n_combs];
    let mut proto_regions: Vec<Vec<u32>> = Vec::new();
    for start in 0..n_combs {
        if !fusable[start] || region_of[start] != usize::MAX {
            continue;
        }
        let rid = proto_regions.len();
        let mut members = Vec::new();
        let mut bfs = vec![start];
        region_of[start] = rid;
        while let Some(u) = bfs.pop() {
            members.push(u as u32);
            let next = adj[u]
                .iter()
                .copied()
                .chain(radj[u].iter().copied())
                .filter(|&v| fusable[v] && region_of[v] == usize::MAX)
                .collect::<Vec<_>>();
            for v in next {
                region_of[v] = rid;
                bfs.push(v);
            }
        }
        members.sort_unstable_by_key(|&u| (level[u as usize], u));
        proto_regions.push(members);
    }

    // Register promotion: a signal moves into a pinned register iff it is
    // ≤ 64 bits, written by exactly one unit — an unconditional plain
    // whole-signal assign inside a region — and every reader is a comb
    // member of that same region. (Memories and concat/slice targets
    // never match the plain-assign shape; clocked processes read flushed
    // state, so they impose no constraint.)
    let mut promoted_region = vec![NO_PROMOTION; n_sigs];
    let mut region_promoted: Vec<Vec<SigId>> = vec![Vec::new(); proto_regions.len()];
    let mut scratch: Vec<u32> = Vec::new();
    let dedup = |v: &[u32], scratch: &mut Vec<u32>| {
        scratch.clear();
        scratch.extend_from_slice(v);
        scratch.sort_unstable();
        scratch.dedup();
    };
    for (s, sig_readers) in compiled.readers.iter().enumerate() {
        let w = sig_width.get(s).copied().unwrap_or(0);
        if w == 0 || w > 64 {
            continue;
        }
        dedup(&compiled.writers[s], &mut scratch);
        let &[u] = scratch.as_slice() else { continue };
        let u = u as usize;
        if u >= n_combs || !fusable[u] {
            continue;
        }
        if plain_assign_target(&compiled.combs[u].body) != Some(SigId::from_index(s)) {
            continue;
        }
        let rid = region_of[u];
        dedup(sig_readers, &mut scratch);
        let internal = scratch
            .iter()
            .all(|&r| (r as usize) < n_combs && fusable[r as usize] && region_of[r as usize] == rid);
        if !internal {
            continue;
        }
        // Pins must fit u16 registers with room left for temporaries.
        if region_promoted[rid].len() >= 4096 {
            continue;
        }
        promoted_region[s] = rid as u32;
        region_promoted[rid].push(SigId::from_index(s));
    }

    // Fuse each region; a region that fails to lower as a whole (register
    // or constant-table pressure) demotes all its members to the worklist
    // fallback and releases its promotions. Fusion is also a trade: it
    // removes per-unit dispatch and (via promotion) state traffic, but
    // gives up the worklist's intra-region change-detection early-out — a
    // fused region always runs every member. When promotion found nothing
    // (e.g. every signal is wider than 64 bits), the trade is a pure loss,
    // so zero-promotion regions stay on the fallback.
    let mut regions: Vec<Region> = Vec::new();
    let mut kept_rid = vec![usize::MAX; proto_regions.len()];
    let mut promo_map = vec![NO_PROMOTION; n_sigs];
    for (rid, members) in proto_regions.iter().enumerate() {
        let promoted = &region_promoted[rid];
        if promoted.is_empty() {
            for &u in members {
                fusable[u as usize] = false;
            }
            continue;
        }
        for (pin, sig) in promoted.iter().enumerate() {
            promo_map[sig.index()] = pin as u32;
        }
        let bodies: Vec<&CStmt> =
            members.iter().map(|&u| &compiled.combs[u as usize].body).collect();
        let prog = lower_region(&bodies, promoted.len() as u16, &promo_map, sig_width, mem_width);
        for sig in promoted {
            promo_map[sig.index()] = NO_PROMOTION;
        }
        match prog {
            Some(prog) => {
                kept_rid[rid] = regions.len();
                regions.push(Region {
                    prog,
                    members: members.clone(),
                    promoted: promoted.clone(),
                });
            }
            None => {
                for &u in members {
                    fusable[u as usize] = false;
                }
                for sig in promoted {
                    promoted_region[sig.index()] = NO_PROMOTION;
                }
            }
        }
    }
    // Rewrite promoted_region from proto ids to kept ids.
    for slot in &mut promoted_region {
        if *slot != NO_PROMOTION {
            *slot = kept_rid[*slot as usize] as u32;
        }
    }

    // Node numbering: regions first, then every fallback unit (non-fused
    // combs and all blackboxes) in unit order.
    let n_regions = regions.len();
    let mut unit_node = vec![0u32; n_units];
    let mut node_unit = Vec::new();
    for u in 0..n_units {
        if u < n_combs && fusable[u] {
            unit_node[u] = kept_rid[region_of[u]] as u32;
        } else {
            unit_node[u] = (n_regions + node_unit.len()) as u32;
            node_unit.push(u as u32);
        }
    }

    // Signal → reader nodes, deduped (a region appears once however many
    // members read the signal).
    let mut node_readers: Vec<Vec<u32>> = vec![Vec::new(); n_sigs];
    for (slot, sig_readers) in node_readers.iter_mut().zip(&compiled.readers) {
        dedup(sig_readers, &mut scratch);
        let mut nodes: Vec<u32> =
            scratch.iter().map(|&u| unit_node[u as usize]).collect();
        nodes.sort_unstable();
        nodes.dedup();
        *slot = nodes;
    }

    Schedule { regions, unit_node, node_unit, node_readers, promoted_region, max_level }
}
