//! Expression evaluation and static width computation.

use crate::{SimError, SimState};
use hwdbg_bits::Bits;
use hwdbg_dataflow::{apply_binary, clog2, Design};
use hwdbg_rtl::{BinaryOp, Expr, UnaryOp};

/// Computes the static width of an expression in the context of `design`.
///
/// # Errors
///
/// Fails on references to unknown signals or non-constant range bounds /
/// replication counts.
pub fn expr_width(expr: &Expr, design: &Design) -> Result<u32, SimError> {
    Ok(match expr {
        Expr::Literal { value, .. } => value.width(),
        Expr::Ident(n) => {
            if let Some(sig) = design.signals.get(n) {
                sig.width
            } else if let Some(c) = design.consts.get(n) {
                c.width()
            } else {
                return Err(SimError::UnknownSignal(n.clone()));
            }
        }
        Expr::Unary(op, inner) => match op {
            UnaryOp::Not | UnaryOp::Neg => expr_width(inner, design)?,
            _ => 1,
        },
        Expr::Binary(op, l, r) => {
            if op.is_boolean() {
                1
            } else if matches!(op, BinaryOp::Shl | BinaryOp::Shr | BinaryOp::AShr) {
                expr_width(l, design)?
            } else {
                expr_width(l, design)?.max(expr_width(r, design)?)
            }
        }
        Expr::Ternary(_, t, f) => expr_width(t, design)?.max(expr_width(f, design)?),
        Expr::Index(n, _) => {
            let sig = design
                .signals
                .get(n)
                .ok_or_else(|| SimError::UnknownSignal(n.clone()))?;
            if sig.mem_depth.is_some() {
                sig.width
            } else {
                1
            }
        }
        Expr::Range(_, msb, lsb) => {
            let m = hwdbg_dataflow::eval_const(msb, &design.consts)
                .map_err(|_| SimError::NonConstSelect)?
                .to_u64();
            let l = hwdbg_dataflow::eval_const(lsb, &design.consts)
                .map_err(|_| SimError::NonConstSelect)?
                .to_u64();
            if l > m {
                // The bounds *are* constant — they are reversed. Report
                // that precisely (matching the spanned reversed-part-select
                // diagnostic elaboration emits) instead of the misleading
                // `NonConstSelect`.
                return Err(SimError::ReversedRange { msb: m, lsb: l });
            }
            (m - l + 1) as u32
        }
        Expr::Concat(parts) => {
            let mut sum = 0;
            for p in parts {
                sum += expr_width(p, design)?;
            }
            sum
        }
        Expr::Repeat(n, body) => {
            let count = hwdbg_dataflow::eval_const(n, &design.consts)
                .map_err(|_| SimError::NonConstSelect)?
                .to_u64() as u32;
            count * expr_width(body, design)?
        }
        Expr::WidthCast(w, _) => *w,
        Expr::SignCast(_, inner) => expr_width(inner, design)?,
    })
}

/// True if the expression should be treated as signed (declared-signed
/// identifier or `$signed(...)`). Binary operations are signed only when
/// both operands are, per Verilog's rules.
pub fn is_signed(expr: &Expr, design: &Design) -> bool {
    match expr {
        Expr::Ident(n) => design.signals.get(n).is_some_and(|s| s.signed),
        Expr::SignCast(signed, _) => *signed,
        Expr::Unary(UnaryOp::Neg | UnaryOp::Not, e) => is_signed(e, design),
        Expr::Binary(op, l, r) if !op.is_boolean() => {
            is_signed(l, design) && is_signed(r, design)
        }
        Expr::Ternary(_, t, f) => is_signed(t, design) && is_signed(f, design),
        _ => false,
    }
}

/// Evaluates `expr` against simulation state.
///
/// # Errors
///
/// Fails on unknown signals or non-constant part-select bounds.
pub fn eval_expr(expr: &Expr, design: &Design, state: &SimState) -> Result<Bits, SimError> {
    Ok(match expr {
        Expr::Literal { value, .. } => value.clone(),
        Expr::Ident(n) => {
            if let Some(v) = state.get(n) {
                v.clone()
            } else if let Some(c) = design.consts.get(n) {
                c.clone()
            } else {
                return Err(SimError::UnknownSignal(n.clone()));
            }
        }
        Expr::Unary(op, inner) => {
            let v = eval_expr(inner, design, state)?;
            match op {
                UnaryOp::Not => !&v,
                UnaryOp::LogNot => Bits::from_bool(v.is_zero()),
                UnaryOp::Neg => v.neg(),
                UnaryOp::RedAnd => Bits::from_bool(v.reduce_and()),
                UnaryOp::RedOr => Bits::from_bool(v.reduce_or()),
                UnaryOp::RedXor => Bits::from_bool(v.reduce_xor()),
                UnaryOp::RedXnor => Bits::from_bool(!v.reduce_xor()),
            }
        }
        Expr::Binary(op, l, r) => {
            let a = eval_expr(l, design, state)?;
            let b = eval_expr(r, design, state)?;
            let signed = is_signed(l, design) && is_signed(r, design);
            if signed {
                apply_binary_signed(*op, &a, &b)
            } else {
                apply_binary(*op, &a, &b)
            }
        }
        Expr::Ternary(c, t, f) => {
            let cond = eval_expr(c, design, state)?;
            let width = expr_width(expr, design)?;
            let v = if cond.to_bool() {
                eval_expr(t, design, state)?
            } else {
                eval_expr(f, design, state)?
            };
            v.resize(width)
        }
        Expr::Index(n, idx) => {
            let i = eval_expr(idx, design, state)?.to_u64();
            let sig = design
                .signals
                .get(n)
                .ok_or_else(|| SimError::UnknownSignal(n.clone()))?;
            if sig.mem_depth.is_some() {
                state.read_mem(n, i)
            } else {
                let v = state
                    .get(n)
                    .ok_or_else(|| SimError::UnknownSignal(n.clone()))?;
                Bits::from_bool(i < u64::from(sig.width) && v.bit(i as u32))
            }
        }
        Expr::Range(n, msb, lsb) => {
            let m = eval_expr(msb, design, state)?.to_u64();
            let l = eval_expr(lsb, design, state)?.to_u64();
            if l > m {
                return Err(SimError::NonConstSelect);
            }
            let v = state
                .get(n)
                .cloned()
                .or_else(|| design.consts.get(n).cloned())
                .ok_or_else(|| SimError::UnknownSignal(n.clone()))?;
            v.slice(l as u32, (m - l + 1) as u32)
        }
        Expr::Concat(parts) => {
            let mut acc: Option<Bits> = None;
            for p in parts {
                let v = eval_expr(p, design, state)?;
                acc = Some(match acc {
                    None => v,
                    Some(hi) => hi.concat(&v),
                });
            }
            acc.ok_or(SimError::NonConstSelect)?
        }
        Expr::Repeat(n, body) => {
            let count = eval_expr(n, design, state)?.to_u64() as u32;
            if count == 0 {
                return Err(SimError::NonConstSelect);
            }
            eval_expr(body, design, state)?.repeat(count)
        }
        Expr::WidthCast(w, inner) => eval_expr(inner, design, state)?.resize(*w),
        Expr::SignCast(_, inner) => eval_expr(inner, design, state)?,
    })
}

/// Signed variant of the binary-operator semantics: comparisons compare in
/// two's complement, `>>>` shifts arithmetically, operands sign-extend.
pub(crate) fn apply_binary_signed(op: BinaryOp, a: &Bits, b: &Bits) -> Bits {
    let mut x = a.clone();
    let mut y = b.clone();
    let mut out = Bits::default();
    apply_binary_signed_into(op, &mut x, &mut y, &mut out);
    out
}

/// In-place [`apply_binary_signed`]. Like
/// [`hwdbg_dataflow::apply_binary_into`], the operands are scratch: they
/// are sign-extended in place to the common width.
pub(crate) fn apply_binary_signed_into(op: BinaryOp, a: &mut Bits, b: &mut Bits, out: &mut Bits) {
    use BinaryOp::*;
    let w = a.width().max(b.width());
    match op {
        AShr => {
            // The shift amount reads the *unextended* right operand.
            let n = hwdbg_dataflow::shift_amount(b);
            a.resize_signed_in_place(w);
            a.shr_arith_into(n, out);
        }
        Lt | Le | Gt | Ge => {
            a.resize_signed_in_place(w);
            b.resize_signed_in_place(w);
            let ord = a.cmp_signed(b);
            out.set_bool(match op {
                Lt => ord.is_lt(),
                Le => ord.is_le(),
                Gt => ord.is_gt(),
                _ => ord.is_ge(),
            });
        }
        // Add/sub/mul/logic are bit-identical for signed and unsigned, but
        // operands sign-extend to the common width first.
        _ => {
            a.resize_signed_in_place(w);
            b.resize_signed_in_place(w);
            hwdbg_dataflow::apply_binary_into(op, a, b, out);
        }
    }
}

/// Effective memory write address per the paper's buffer-overflow semantics
/// (§3.2.1): the index is truncated to `clog2(depth)` address bits; if the
/// truncated address still exceeds the depth (non-power-of-two memories),
/// the write is dropped. Returns `None` when the write must be ignored.
pub fn effective_mem_addr(idx: u64, depth: u64) -> Option<u64> {
    let addr_bits = clog2(depth);
    let eff = if addr_bits >= 64 {
        idx
    } else {
        idx & ((1u64 << addr_bits) - 1)
    };
    (eff < depth).then_some(eff)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_addr_truncation_pow2() {
        // Depth 8 (power of two): index 9 truncates to 1 — wrong slot, but
        // the write lands (outcome 1 in the paper).
        assert_eq!(effective_mem_addr(9, 8), Some(1));
        assert_eq!(effective_mem_addr(7, 8), Some(7));
    }

    #[test]
    fn mem_addr_dropped_non_pow2() {
        // Depth 10: 4 address bits; index 12 stays 12 >= 10 — dropped
        // (outcome 2 in the paper).
        assert_eq!(effective_mem_addr(12, 10), None);
        assert_eq!(effective_mem_addr(17, 10), Some(1)); // 17 & 0xF = 1
        assert_eq!(effective_mem_addr(9, 10), Some(9));
    }
}
