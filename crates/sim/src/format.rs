//! `$display` format rendering.
//!
//! Supports the directives the paper's designs use: `%d`, `%0d`, `%h`/`%x`,
//! `%b`, `%c`, `%t`, `%%`, with optional width and zero-pad flags. Unknown
//! directives are emitted literally. `%d` honours declared signedness when
//! the caller supplies per-argument sign flags ([`render_signed`]).

use hwdbg_bits::Bits;

/// Renders `fmt` with `args` substituted for format directives, treating
/// every argument as unsigned.
pub fn render(fmt: &str, args: &[Bits]) -> String {
    render_signed(fmt, args, &[])
}

/// Renders `fmt` with `args` substituted for format directives.
///
/// `signs[i]` marks argument `i` as declared-signed: `%d` then prints the
/// two's-complement value (a leading `-` and the magnitude) when the sign
/// bit is set. Missing entries default to unsigned, so `&[]` reproduces
/// [`render`]. Base directives (`%h`, `%b`) always print the raw bit
/// pattern, like real simulators.
pub fn render_signed(fmt: &str, args: &[Bits], signs: &[bool]) -> String {
    let mut out = String::new();
    let mut chars = fmt.chars().peekable();
    let mut next_arg = 0usize;
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        if chars.peek() == Some(&'%') {
            chars.next();
            out.push('%');
            continue;
        }
        // Optional zero flag and width digits.
        let mut zero_pad = false;
        let mut width = String::new();
        while let Some(&d) = chars.peek() {
            if d == '0' && width.is_empty() {
                zero_pad = true;
                chars.next();
            } else if d.is_ascii_digit() {
                width.push(d);
                chars.next();
            } else {
                break;
            }
        }
        let width: usize = width.parse().unwrap_or(0);
        let Some(kind) = chars.next() else {
            out.push('%');
            break;
        };
        let arg = args.get(next_arg);
        let rendered = match (kind.to_ascii_lowercase(), arg) {
            ('d', Some(v)) => {
                let signed = signs.get(next_arg).copied().unwrap_or(false);
                next_arg += 1;
                let s = dec_string(v, signed);
                pad(&s, default_dec_width(v, width, zero_pad), zero_pad)
            }
            ('h' | 'x', Some(v)) => {
                next_arg += 1;
                pad(&v.to_hex_string(), width, zero_pad)
            }
            ('b', Some(v)) => {
                next_arg += 1;
                pad(&v.to_bin_string(), width, zero_pad)
            }
            ('c', Some(v)) => {
                next_arg += 1;
                char::from_u32(v.to_u64() as u32)
                    .unwrap_or('?')
                    .to_string()
            }
            ('t', Some(v)) => {
                next_arg += 1;
                pad(&v.to_dec_string(), width, zero_pad)
            }
            (_, _) => {
                out.push('%');
                out.push(kind);
                continue;
            }
        };
        out.push_str(&rendered);
    }
    out
}

/// The decimal rendering of `v`: two's-complement (sign bit set means a
/// leading `-` and the negated magnitude) when `signed`, plain otherwise.
fn dec_string(v: &Bits, signed: bool) -> String {
    if signed && v.bit(v.width() - 1) {
        format!("-{}", v.neg().to_dec_string())
    } else {
        v.to_dec_string()
    }
}

/// Verilog pads plain `%d` to the decimal width of the argument's range;
/// `%0d` suppresses padding. An explicit width wins.
fn default_dec_width(v: &Bits, explicit: usize, zero_pad: bool) -> usize {
    if explicit > 0 {
        return explicit;
    }
    if zero_pad {
        return 0; // %0d
    }
    // ceil(width * log10(2)) like real simulators do.
    ((f64::from(v.width()) * std::f64::consts::LOG10_2).ceil() as usize).max(1)
}

fn pad(s: &str, width: usize, zero_pad: bool) -> String {
    if s.len() >= width {
        return s.to_owned();
    }
    let fill = if zero_pad { '0' } else { ' ' };
    let mut out = String::new();
    for _ in 0..(width - s.len()) {
        out.push(fill);
    }
    out.push_str(s);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(w: u32, v: u64) -> Bits {
        Bits::from_u64(w, v)
    }

    #[test]
    fn decimal_default_padding() {
        assert_eq!(render("%d", &[b(8, 5)]), "  5");
        assert_eq!(render("%0d", &[b(8, 5)]), "5");
        assert_eq!(render("%5d", &[b(8, 5)]), "    5");
    }

    #[test]
    fn hex_and_binary() {
        assert_eq!(render("%h", &[b(16, 0xAB)]), "00ab");
        assert_eq!(render("%b", &[b(4, 0b101)]), "0101");
        assert_eq!(render("x=%x!", &[b(8, 0xF)]), "x=0f!");
    }

    #[test]
    fn multiple_args_and_escape() {
        assert_eq!(
            render("a=%0d b=%h 100%%", &[b(8, 3), b(8, 0x7F)]),
            "a=3 b=7f 100%"
        );
    }

    #[test]
    fn missing_args_left_literal() {
        assert_eq!(render("v=%d", &[]), "v=%d");
    }

    #[test]
    fn unknown_directive_literal() {
        assert_eq!(render("%q", &[b(4, 1)]), "%q");
    }

    #[test]
    fn signed_decimal_prints_twos_complement() {
        // 8-bit 0xFF declared signed is -1; 0x80 is the most negative.
        assert_eq!(render_signed("%0d", &[b(8, 0xFF)], &[true]), "-1");
        assert_eq!(render_signed("%0d", &[b(8, 0x80)], &[true]), "-128");
        // Sign bit clear renders like unsigned.
        assert_eq!(render_signed("%0d", &[b(8, 5)], &[true]), "5");
        // Unsigned flag (or a missing entry) keeps the raw value.
        assert_eq!(render_signed("%0d", &[b(8, 0xFF)], &[false]), "255");
        assert_eq!(render_signed("%0d", &[b(8, 0xFF)], &[]), "255");
        // Base directives always print the bit pattern.
        assert_eq!(render_signed("%h", &[b(8, 0xFF)], &[true]), "ff");
        // Wide signed values work through the limb path too.
        let wide = Bits::from_u64(65, 1).neg();
        assert_eq!(render_signed("%0d", &[wide], &[true]), "-1");
    }

    #[test]
    fn time_directive_honours_width_flags() {
        assert_eq!(render("%5t", &[b(32, 42)]), "   42");
        assert_eq!(render("%05t", &[b(32, 42)]), "00042");
        assert_eq!(render("%t", &[b(32, 42)]), "42");
        assert_eq!(render("%0t", &[b(32, 42)]), "42");
    }
}
