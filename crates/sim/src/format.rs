//! `$display` format rendering.
//!
//! Supports the directives the paper's designs use: `%d`, `%0d`, `%h`/`%x`,
//! `%b`, `%c`, `%%`, with optional width and zero-pad flags. Unknown
//! directives are emitted literally.

use hwdbg_bits::Bits;

/// Renders `fmt` with `args` substituted for format directives.
pub fn render(fmt: &str, args: &[Bits]) -> String {
    let mut out = String::new();
    let mut chars = fmt.chars().peekable();
    let mut next_arg = 0usize;
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        if chars.peek() == Some(&'%') {
            chars.next();
            out.push('%');
            continue;
        }
        // Optional zero flag and width digits.
        let mut zero_pad = false;
        let mut width = String::new();
        while let Some(&d) = chars.peek() {
            if d == '0' && width.is_empty() {
                zero_pad = true;
                chars.next();
            } else if d.is_ascii_digit() {
                width.push(d);
                chars.next();
            } else {
                break;
            }
        }
        let width: usize = width.parse().unwrap_or(0);
        let Some(kind) = chars.next() else {
            out.push('%');
            break;
        };
        let arg = args.get(next_arg);
        let rendered = match (kind.to_ascii_lowercase(), arg) {
            ('d', Some(v)) => {
                next_arg += 1;
                let s = v.to_dec_string();
                pad(&s, default_dec_width(v, width, zero_pad), zero_pad)
            }
            ('h' | 'x', Some(v)) => {
                next_arg += 1;
                pad(&v.to_hex_string(), width, zero_pad)
            }
            ('b', Some(v)) => {
                next_arg += 1;
                pad(&v.to_bin_string(), width, zero_pad)
            }
            ('c', Some(v)) => {
                next_arg += 1;
                char::from_u32(v.to_u64() as u32)
                    .unwrap_or('?')
                    .to_string()
            }
            ('t', Some(v)) => {
                next_arg += 1;
                v.to_dec_string()
            }
            (_, _) => {
                out.push('%');
                out.push(kind);
                continue;
            }
        };
        out.push_str(&rendered);
    }
    out
}

/// Verilog pads plain `%d` to the decimal width of the argument's range;
/// `%0d` suppresses padding. An explicit width wins.
fn default_dec_width(v: &Bits, explicit: usize, zero_pad: bool) -> usize {
    if explicit > 0 {
        return explicit;
    }
    if zero_pad {
        return 0; // %0d
    }
    // ceil(width * log10(2)) like real simulators do.
    ((f64::from(v.width()) * std::f64::consts::LOG10_2).ceil() as usize).max(1)
}

fn pad(s: &str, width: usize, zero_pad: bool) -> String {
    if s.len() >= width {
        return s.to_owned();
    }
    let fill = if zero_pad { '0' } else { ' ' };
    let mut out = String::new();
    for _ in 0..(width - s.len()) {
        out.push(fill);
    }
    out.push_str(s);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(w: u32, v: u64) -> Bits {
        Bits::from_u64(w, v)
    }

    #[test]
    fn decimal_default_padding() {
        assert_eq!(render("%d", &[b(8, 5)]), "  5");
        assert_eq!(render("%0d", &[b(8, 5)]), "5");
        assert_eq!(render("%5d", &[b(8, 5)]), "    5");
    }

    #[test]
    fn hex_and_binary() {
        assert_eq!(render("%h", &[b(16, 0xAB)]), "00ab");
        assert_eq!(render("%b", &[b(4, 0b101)]), "0101");
        assert_eq!(render("x=%x!", &[b(8, 0xF)]), "x=0f!");
    }

    #[test]
    fn multiple_args_and_escape() {
        assert_eq!(
            render("a=%0d b=%h 100%%", &[b(8, 3), b(8, 0x7F)]),
            "a=3 b=7f 100%"
        );
    }

    #[test]
    fn missing_args_left_literal() {
        assert_eq!(render("v=%d", &[]), "v=%d");
    }

    #[test]
    fn unknown_directive_literal() {
        assert_eq!(render("%q", &[b(4, 1)]), "%q");
    }
}
