//! Signal interning: dense integer IDs for the flat signal namespace.
//!
//! Elaboration produces a fixed set of flat signal names; everything that
//! runs per simulation event (expression evaluation, state reads/writes,
//! dirty-set scheduling) wants an array index, not a string lookup. The
//! [`SignalTable`] assigns each signal a [`SigId`] at resolve time; the
//! simulator stores values in a `Vec` indexed by it and pre-resolves every
//! name in the design to an ID once, at compile time.

use std::collections::BTreeMap;

/// A dense signal identifier, valid only within the [`SignalTable`] (and
/// hence the [`Design`](crate::Design)) that produced it.
///
/// IDs are assigned in sorted-name order, so they are deterministic for a
/// given design and stable across re-elaborations of identical source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SigId(u32);

impl SigId {
    /// The array index this ID denotes.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs an ID from a raw index (for iteration helpers).
    #[inline]
    pub fn from_index(i: usize) -> Self {
        SigId(i as u32)
    }
}

/// Bidirectional name ⇄ [`SigId`] mapping for one design.
#[derive(Debug, Clone, Default)]
pub struct SignalTable {
    names: Vec<String>,
    by_name: BTreeMap<String, SigId>,
}

impl SignalTable {
    /// Builds a table over `names`, assigning IDs in iteration order.
    /// Callers pass sorted names so IDs are deterministic.
    pub fn new(names: impl IntoIterator<Item = String>) -> Self {
        let mut table = SignalTable::default();
        for name in names {
            table.intern(name);
        }
        table
    }

    /// Adds one name, returning its (possibly pre-existing) ID.
    pub fn intern(&mut self, name: String) -> SigId {
        if let Some(&id) = self.by_name.get(&name) {
            return id;
        }
        // A design with 2^32 signals is beyond anything the elaborator can
        // produce (MAX_WIDTH/MAX_MEM_DEPTH bound state far earlier).
        #[allow(clippy::expect_used)]
        let id = SigId(u32::try_from(self.names.len()).expect("too many signals"));
        self.by_name.insert(name.clone(), id);
        self.names.push(name);
        id
    }

    /// Looks up a name's ID.
    #[inline]
    pub fn id(&self, name: &str) -> Option<SigId> {
        self.by_name.get(name).copied()
    }

    /// The name behind an ID.
    #[inline]
    pub fn name(&self, id: SigId) -> &str {
        &self.names[id.index()]
    }

    /// Number of interned signals.
    #[inline]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no signals are interned.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name)` pairs in ID order.
    pub fn iter(&self) -> impl Iterator<Item = (SigId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (SigId(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_bijective() {
        let mut t = SignalTable::new(["a".to_string(), "b".to_string()]);
        assert_eq!(t.id("a"), Some(SigId(0)));
        assert_eq!(t.id("b"), Some(SigId(1)));
        assert_eq!(t.intern("a".into()), SigId(0)); // no duplicate
        assert_eq!(t.len(), 2);
        assert_eq!(t.name(SigId(1)), "b");
        assert_eq!(t.id("missing"), None);
        let pairs: Vec<_> = t.iter().map(|(i, n)| (i.index(), n.to_owned())).collect();
        assert_eq!(pairs, vec![(0, "a".to_string()), (1, "b".to_string())]);
    }
}
