//! Constant evaluation of AST expressions over a parameter environment.
//!
//! Used to resolve parameter values, net widths, memory depths, replication
//! counts, and case labels at elaboration time.

use crate::DataflowError;
use hwdbg_bits::Bits;
use hwdbg_rtl::{BinaryOp, Expr, UnaryOp};
use std::collections::BTreeMap;

/// A compile-time environment: parameter/localparam name → value.
pub type ConstEnv = BTreeMap<String, Bits>;

/// Evaluates `expr` to a constant.
///
/// # Errors
///
/// Returns [`DataflowError::NotConstant`] if the expression references a
/// name outside `env` or uses a construct that has no constant meaning
/// (indexing, part selects of non-constants, …).
pub fn eval_const(expr: &Expr, env: &ConstEnv) -> Result<Bits, DataflowError> {
    match expr {
        Expr::Literal { value, .. } => Ok(value.clone()),
        Expr::Ident(name) => env
            .get(name)
            .cloned()
            .ok_or_else(|| DataflowError::NotConstant(name.clone())),
        Expr::Unary(op, inner) => {
            let v = eval_const(inner, env)?;
            Ok(match op {
                UnaryOp::Not => !&v,
                UnaryOp::LogNot => Bits::from_bool(v.is_zero()),
                UnaryOp::Neg => v.neg(),
                UnaryOp::RedAnd => Bits::from_bool(v.reduce_and()),
                UnaryOp::RedOr => Bits::from_bool(v.reduce_or()),
                UnaryOp::RedXor => Bits::from_bool(v.reduce_xor()),
                UnaryOp::RedXnor => Bits::from_bool(!v.reduce_xor()),
            })
        }
        Expr::Binary(op, l, r) => {
            let a = eval_const(l, env)?;
            let b = eval_const(r, env)?;
            Ok(apply_binary(*op, &a, &b))
        }
        Expr::Ternary(c, t, f) => {
            // Both arms are evaluated so the result carries the unified
            // width max(|t|, |f|), matching the simulator's semantics.
            let cond = eval_const(c, env)?;
            let tv = eval_const(t, env)?;
            let fv = eval_const(f, env)?;
            let w = tv.width().max(fv.width());
            Ok(if cond.to_bool() { tv.resize(w) } else { fv.resize(w) })
        }
        Expr::WidthCast(w, inner) => Ok(eval_const(inner, env)?.resize(*w)),
        Expr::SignCast(_, inner) => eval_const(inner, env),
        Expr::Concat(parts) => {
            let mut acc: Option<Bits> = None;
            for p in parts {
                let v = eval_const(p, env)?;
                acc = Some(match acc {
                    None => v,
                    Some(hi) => hi.concat(&v),
                });
            }
            acc.ok_or_else(|| DataflowError::NotConstant("empty concat".into()))
        }
        Expr::Repeat(n, body) => {
            let count = eval_const(n, env)?.to_u64();
            if count == 0 {
                return Err(DataflowError::NotConstant("zero replication".into()));
            }
            let body = eval_const(body, env)?;
            let total = count.saturating_mul(u64::from(body.width()));
            if total > u64::from(MAX_WIDTH) {
                return Err(DataflowError::BadRange(format!(
                    "replication produces {total} bits (limit {MAX_WIDTH})"
                )));
            }
            Ok(body.repeat(count as u32))
        }
        Expr::Index(..) | Expr::Range(..) => Err(DataflowError::NotConstant(
            "select on non-constant".into(),
        )),
    }
}

/// Applies a binary operator with Verilog width-extension semantics:
/// operands are zero-extended to the wider of the two, comparisons and
/// logical operators produce one bit, shifts keep the left operand's width.
pub fn apply_binary(op: BinaryOp, a: &Bits, b: &Bits) -> Bits {
    let mut x = a.clone();
    let mut y = b.clone();
    let mut out = Bits::default();
    apply_binary_into(op, &mut x, &mut y, &mut out);
    out
}

/// In-place [`apply_binary`]: writes the result into `out`, reusing its
/// storage. The operands are *scratch*: they may be width-extended in
/// place (which is why they are `&mut`), so callers must not rely on their
/// widths afterwards. This is the simulator's hot-path entry point — for
/// `<= 64`-bit operands nothing here allocates.
pub fn apply_binary_into(op: BinaryOp, a: &mut Bits, b: &mut Bits, out: &mut Bits) {
    use BinaryOp::*;
    // Shifts keep the left operand's width and read `b` as a plain
    // amount; logical ops only need truthiness. Neither widens.
    match op {
        Shl => return a.shl_into(shift_amount(b), out),
        Shr => return a.shr_into(shift_amount(b), out),
        AShr => return a.shr_arith_into(shift_amount(b), out),
        LogAnd => return out.set_bool(a.to_bool() && b.to_bool()),
        LogOr => return out.set_bool(a.to_bool() || b.to_bool()),
        Eq => return out.set_bool(a.eq_zero_ext(b)),
        Ne => return out.set_bool(!a.eq_zero_ext(b)),
        _ => {}
    }
    let w = a.width().max(b.width());
    a.resize_in_place(w);
    b.resize_in_place(w);
    match op {
        Add => a.add_into(b, out),
        Sub => a.sub_into(b, out),
        Mul => a.mul_into(b, out),
        Div => a.div_into(b, out),
        Mod => a.rem_into(b, out),
        Lt => out.set_bool(a.cmp_unsigned(b).is_lt()),
        Le => out.set_bool(a.cmp_unsigned(b).is_le()),
        Gt => out.set_bool(a.cmp_unsigned(b).is_gt()),
        Ge => out.set_bool(a.cmp_unsigned(b).is_ge()),
        And => a.and_into(b, out),
        Or => a.or_into(b, out),
        Xor => a.xor_into(b, out),
        Xnor => {
            a.xor_into(b, out);
            out.not_in_place();
        }
        Shl | Shr | AShr | LogAnd | LogOr | Eq | Ne => unreachable!("handled above"),
    }
}

/// Clamps a shift amount to something sane (a shift by ≥ width clears the
/// value anyway; `Bits::shl`/`shr` handle that).
pub fn shift_amount(b: &Bits) -> u32 {
    b.to_u64().min(u32::MAX as u64) as u32
}

/// Widest signal the toolchain accepts (1 Mibit). A `[msb:lsb]` range
/// beyond this is almost always a malformed design — e.g. a negative
/// parameter wrapping to 2^32-1 — and would otherwise turn into an
/// allocation-size abort deep in the simulator.
pub const MAX_WIDTH: u32 = 1 << 20;

/// Evaluates a `[msb:lsb]` range to a width, requiring `msb >= lsb`.
///
/// # Errors
///
/// Propagates [`DataflowError::NotConstant`] and rejects descending
/// ranges, zero-width slices, and widths above [`MAX_WIDTH`].
pub fn range_width(range: &Option<(Expr, Expr)>, env: &ConstEnv) -> Result<u32, DataflowError> {
    match range {
        None => Ok(1),
        Some((msb, lsb)) => {
            let m = eval_const(msb, env)?.to_u64();
            let l = eval_const(lsb, env)?.to_u64();
            if l > m {
                return Err(DataflowError::BadRange(format!("[{m}:{l}]")));
            }
            let w = m - l + 1;
            if w > u64::from(MAX_WIDTH) {
                return Err(DataflowError::BadRange(format!(
                    "[{m}:{l}] is {w} bits wide (limit {MAX_WIDTH})"
                )));
            }
            Ok(w as u32)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwdbg_rtl::parse_expr;

    fn env(pairs: &[(&str, u64)]) -> ConstEnv {
        pairs
            .iter()
            .map(|(n, v)| (n.to_string(), Bits::from_u64(32, *v)))
            .collect()
    }

    #[test]
    fn arithmetic_with_params() {
        let e = parse_expr("W * 2 + 1").unwrap();
        assert_eq!(eval_const(&e, &env(&[("W", 8)])).unwrap().to_u64(), 17);
    }

    #[test]
    fn ternary_selects() {
        let e = parse_expr("W > 4 ? 10 : 20").unwrap();
        assert_eq!(eval_const(&e, &env(&[("W", 8)])).unwrap().to_u64(), 10);
        assert_eq!(eval_const(&e, &env(&[("W", 2)])).unwrap().to_u64(), 20);
    }

    #[test]
    fn unknown_ident_errors() {
        let e = parse_expr("MISSING + 1").unwrap();
        assert!(matches!(
            eval_const(&e, &env(&[])),
            Err(DataflowError::NotConstant(_))
        ));
    }

    #[test]
    fn concat_and_repeat() {
        let e = parse_expr("{2'b10, 2'b01}").unwrap();
        assert_eq!(eval_const(&e, &env(&[])).unwrap().to_u64(), 0b1001);
        let e = parse_expr("{3{2'b01}}").unwrap();
        assert_eq!(eval_const(&e, &env(&[])).unwrap().to_u64(), 0b010101);
    }

    #[test]
    fn range_width_checks() {
        let r = Some((
            parse_expr("W - 1").unwrap(),
            parse_expr("0").unwrap(),
        ));
        assert_eq!(range_width(&r, &env(&[("W", 8)])).unwrap(), 8);
        assert_eq!(range_width(&None, &env(&[])).unwrap(), 1);
        let bad = Some((parse_expr("0").unwrap(), parse_expr("7").unwrap()));
        assert!(range_width(&bad, &env(&[])).is_err());
    }

    #[test]
    fn width_extension_rules() {
        // 4'hF + 8'h01 extends to 8 bits: 0x10, no wrap at 4 bits.
        let a = Bits::from_u64(4, 0xF);
        let b = Bits::from_u64(8, 1);
        assert_eq!(apply_binary(BinaryOp::Add, &a, &b).to_u64(), 0x10);
        // Comparison yields one bit.
        assert_eq!(apply_binary(BinaryOp::Lt, &a, &b).width(), 1);
        // Shift keeps left width.
        assert_eq!(apply_binary(BinaryOp::Shl, &a, &b).width(), 4);
    }
}
