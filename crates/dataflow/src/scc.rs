//! Strongly-connected-components utility shared across the workspace.
//!
//! Both the lint comb-loop pass and the simulator's levelized scheduler
//! need Tarjan SCC over a dense-index adjacency list; this is the single
//! shared implementation (they previously each kept a copy).

use std::collections::BTreeSet;

/// Iterative Tarjan SCC; returns components with sorted member indices.
///
/// Components come out in reverse topological order of the condensation
/// (callees before callers), which is what a dependency levelizer wants.
pub fn tarjan_scc(adj: &[BTreeSet<usize>]) -> Vec<Vec<usize>> {
    const UNSEEN: usize = usize::MAX;
    let n = adj.len();
    let mut order = vec![UNSEEN; n]; // discovery order
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut next = 0usize;
    let mut sccs = Vec::new();
    // Explicit DFS frames: (node, iterator position over its successors).
    let mut frames: Vec<(usize, Vec<usize>, usize)> = Vec::new();
    for start in 0..n {
        if order[start] != UNSEEN {
            continue;
        }
        frames.push((start, adj[start].iter().copied().collect(), 0));
        order[start] = next;
        low[start] = next;
        next += 1;
        stack.push(start);
        on_stack[start] = true;
        while let Some(last) = frames.len().checked_sub(1) {
            let (v, pos) = (frames[last].0, frames[last].2);
            if pos < frames[last].1.len() {
                let w = frames[last].1[pos];
                frames[last].2 += 1;
                if order[w] == UNSEEN {
                    order[w] = next;
                    low[w] = next;
                    next += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, adj[w].iter().copied().collect(), 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(order[w]);
                }
            } else {
                frames.pop();
                if let Some(parent) = frames.last() {
                    let p = parent.0;
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == order[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    sccs.push(comp);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adj(edges: &[(usize, usize)], n: usize) -> Vec<BTreeSet<usize>> {
        let mut a = vec![BTreeSet::new(); n];
        for &(u, v) in edges {
            a[u].insert(v);
        }
        a
    }

    #[test]
    fn finds_cycle_and_singletons() {
        // 0 -> 1 -> 2 -> 0 (cycle), 3 -> 0 (feeder).
        let a = adj(&[(0, 1), (1, 2), (2, 0), (3, 0)], 4);
        let sccs = tarjan_scc(&a);
        assert!(sccs.contains(&vec![0, 1, 2]));
        assert!(sccs.contains(&vec![3]));
        // Cycle (a dependency of 3) is emitted before its consumer.
        let cyc = sccs.iter().position(|c| c.len() == 3);
        let feeder = sccs.iter().position(|c| c == &vec![3]);
        assert!(cyc < feeder);
    }

    #[test]
    fn every_node_appears_exactly_once() {
        let a = adj(&[(0, 1), (1, 0), (2, 2), (4, 3)], 5);
        let sccs = tarjan_scc(&a);
        let mut all: Vec<usize> = sccs.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }
}
