//! Elaboration and dataflow analysis for RTL designs.
//!
//! This crate turns a parsed multi-module design into the flat, analyzed
//! [`Design`] form that the simulator, the resource estimator, and the
//! debugging tools all consume:
//!
//! 1. [`flatten`] inlines the module hierarchy (the role Verilator's inline
//!    expansion plays in the paper), folding parameters and keeping
//!    localparams so state names survive for the FSM monitor;
//! 2. [`resolve`] classifies every signal (input/output/comb/reg/memory),
//!    partitions drivers into combinational and clocked, and checks the
//!    design for conflicting or dangling drivers;
//! 3. [`PropGraph`] extracts the propagation-relation table `X ⇝σ Y` that
//!    powers Dependency Monitor and LossCheck (§4.5.1 of the paper),
//!    traversing closed-source IPs through [`BlackboxSpec`] models.
//!
//! # Examples
//!
//! ```
//! use hwdbg_dataflow::{elaborate, NoBlackboxes, PropGraph, DepKind};
//!
//! let file = hwdbg_rtl::parse(
//!     "module m(input clk, input d, output reg q);
//!        always @(posedge clk) q <= d;
//!      endmodule",
//! )?;
//! let design = elaborate(&file, "m", &NoBlackboxes)?;
//! let graph = PropGraph::build(&design, &NoBlackboxes)?;
//! let slice = graph.back_slice("q", 1, &[DepKind::Data]);
//! assert!(slice.contains_key("d"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod blackbox;
pub mod consteval;
pub mod design;
pub mod flatten;
pub mod intern;
pub mod prop;
pub mod rewrite;
pub mod scc;

pub use blackbox::{BbDir, BbPort, BlackboxLib, BlackboxSpec, IpRelation, NoBlackboxes, WidthSpec, clog2};
pub use consteval::{apply_binary, apply_binary_into, eval_const, range_width, shift_amount, ConstEnv};
pub use design::{elaborate, resolve, BbInst, ClockedProc, CombDriver, Design, SigInfo, SigKind};
pub use intern::{SigId, SignalTable};
pub use flatten::{expr_to_lvalue, flatten};
pub use prop::{cond_leaves, BuildStats, CondLeaf, DepKind, PropGraph, Relation};
pub use rewrite::{rewrite_expr, rewrite_lvalue, rewrite_stmt, Repl};
pub use scc::tarjan_scc;

use std::fmt;

/// Errors produced by elaboration and analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DataflowError {
    /// An expression required at compile time references a runtime signal.
    NotConstant(String),
    /// A `[msb:lsb]` range with `lsb > msb`, or a memory not based at 0.
    BadRange(String),
    /// Instantiated module is neither RTL source nor a known blackbox.
    UnknownModule(String),
    /// A connection names a port the module does not have.
    UnknownPort(String, String),
    /// A parameter override names an unknown parameter.
    UnknownParam(String, String),
    /// Two declarations share a flat name.
    DuplicateName(String),
    /// An expression references an undeclared signal.
    UnknownSignal(String),
    /// An input port was left unconnected.
    UnconnectedInput(String, String),
    /// An output port is connected to a non-lvalue expression.
    BadOutputConnection(String, String),
    /// A signal is driven both combinationally and under a clock.
    ConflictingDrivers(String),
    /// A signal has more than one combinational driver.
    DuplicateDriver(String),
    /// Selecting into something that is not a signal (e.g. a parameter).
    BadSelect(String),
    /// Instantiation recursion exceeded the depth limit.
    RecursionLimit(String),
    /// A construct outside the supported subset.
    Unsupported(String),
    /// An inner error with source-span context attached.
    WithSpan(Box<DataflowError>, hwdbg_rtl::Span),
}

impl DataflowError {
    /// Attaches a source span (no-op if one is already attached).
    #[must_use]
    pub fn at(self, span: hwdbg_rtl::Span) -> DataflowError {
        match self {
            DataflowError::WithSpan(..) => self,
            other => DataflowError::WithSpan(Box::new(other), span),
        }
    }

    /// The underlying error, with any span wrapper peeled off.
    pub fn root(&self) -> &DataflowError {
        match self {
            DataflowError::WithSpan(inner, _) => inner.root(),
            other => other,
        }
    }

    /// The attached source span, if any.
    pub fn span(&self) -> Option<hwdbg_rtl::Span> {
        match self {
            DataflowError::WithSpan(_, span) => Some(*span),
            _ => None,
        }
    }
}

impl From<DataflowError> for hwdbg_diag::HwdbgError {
    fn from(e: DataflowError) -> Self {
        use hwdbg_diag::{ErrorCode, HwdbgError};
        let span = e.span();
        let message = e.to_string();
        let (code, signals): (ErrorCode, Vec<String>) = match e.root() {
            DataflowError::NotConstant(n) => (ErrorCode::NotConstant, vec![n.clone()]),
            DataflowError::BadRange(_) => (ErrorCode::BadRange, vec![]),
            DataflowError::UnknownModule(_) => (ErrorCode::UnknownModule, vec![]),
            DataflowError::UnknownPort(_, p) => (ErrorCode::UnknownPort, vec![p.clone()]),
            DataflowError::UnknownParam(_, p) => (ErrorCode::UnknownParam, vec![p.clone()]),
            DataflowError::DuplicateName(n) => (ErrorCode::DuplicateName, vec![n.clone()]),
            DataflowError::UnknownSignal(n) => (ErrorCode::UnknownSignal, vec![n.clone()]),
            DataflowError::UnconnectedInput(_, p) => {
                (ErrorCode::UnconnectedInput, vec![p.clone()])
            }
            DataflowError::BadOutputConnection(_, p) => {
                (ErrorCode::BadOutputConnection, vec![p.clone()])
            }
            DataflowError::ConflictingDrivers(n) => {
                (ErrorCode::ConflictingDrivers, vec![n.clone()])
            }
            DataflowError::DuplicateDriver(n) => (ErrorCode::DuplicateDriver, vec![n.clone()]),
            DataflowError::BadSelect(n) => (ErrorCode::BadRange, vec![n.clone()]),
            DataflowError::RecursionLimit(_) => (ErrorCode::RecursionLimit, vec![]),
            DataflowError::Unsupported(_) => (ErrorCode::Unsupported, vec![]),
            DataflowError::WithSpan(..) => (ErrorCode::Internal, vec![]),
        };
        let mut diag = HwdbgError::new(code, message).with_signals(signals);
        if let Some(span) = span {
            diag = diag.with_span(span);
        }
        diag
    }
}

impl fmt::Display for DataflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use DataflowError::*;
        match self {
            NotConstant(n) => write!(f, "expression is not constant: `{n}`"),
            BadRange(r) => write!(f, "invalid range {r}"),
            UnknownModule(m) => write!(f, "unknown module `{m}`"),
            UnknownPort(m, p) => write!(f, "module `{m}` has no port `{p}`"),
            UnknownParam(m, p) => write!(f, "module `{m}` has no parameter `{p}`"),
            DuplicateName(n) => write!(f, "duplicate declaration of `{n}`"),
            UnknownSignal(n) => write!(f, "reference to undeclared signal `{n}`"),
            UnconnectedInput(i, p) => write!(f, "instance `{i}` leaves input `{p}` unconnected"),
            BadOutputConnection(i, p) => {
                write!(f, "instance `{i}` output `{p}` is not connected to an lvalue")
            }
            ConflictingDrivers(n) => {
                write!(f, "signal `{n}` is driven both combinationally and under a clock")
            }
            DuplicateDriver(n) => {
                write!(f, "signal `{n}` has more than one combinational driver")
            }
            BadSelect(n) => write!(f, "cannot select into non-signal `{n}`"),
            RecursionLimit(m) => write!(f, "instantiation recursion limit reached in `{m}`"),
            Unsupported(what) => write!(f, "unsupported construct: {what}"),
            WithSpan(inner, _) => inner.fmt(f),
        }
    }
}

impl std::error::Error for DataflowError {}
