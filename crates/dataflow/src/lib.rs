//! Elaboration and dataflow analysis for RTL designs.
//!
//! This crate turns a parsed multi-module design into the flat, analyzed
//! [`Design`] form that the simulator, the resource estimator, and the
//! debugging tools all consume:
//!
//! 1. [`flatten`] inlines the module hierarchy (the role Verilator's inline
//!    expansion plays in the paper), folding parameters and keeping
//!    localparams so state names survive for the FSM monitor;
//! 2. [`resolve`] classifies every signal (input/output/comb/reg/memory),
//!    partitions drivers into combinational and clocked, and checks the
//!    design for conflicting or dangling drivers;
//! 3. [`PropGraph`] extracts the propagation-relation table `X ⇝σ Y` that
//!    powers Dependency Monitor and LossCheck (§4.5.1 of the paper),
//!    traversing closed-source IPs through [`BlackboxSpec`] models.
//!
//! # Examples
//!
//! ```
//! use hwdbg_dataflow::{elaborate, NoBlackboxes, PropGraph, DepKind};
//!
//! let file = hwdbg_rtl::parse(
//!     "module m(input clk, input d, output reg q);
//!        always @(posedge clk) q <= d;
//!      endmodule",
//! )?;
//! let design = elaborate(&file, "m", &NoBlackboxes)?;
//! let graph = PropGraph::build(&design, &NoBlackboxes)?;
//! let slice = graph.back_slice("q", 1, &[DepKind::Data]);
//! assert!(slice.contains_key("d"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod blackbox;
pub mod consteval;
pub mod design;
pub mod flatten;
pub mod intern;
pub mod prop;
pub mod rewrite;

pub use blackbox::{BbDir, BbPort, BlackboxLib, BlackboxSpec, IpRelation, NoBlackboxes, WidthSpec, clog2};
pub use consteval::{apply_binary, eval_const, range_width, ConstEnv};
pub use design::{elaborate, resolve, BbInst, ClockedProc, CombDriver, Design, SigInfo, SigKind};
pub use intern::{SigId, SignalTable};
pub use flatten::{expr_to_lvalue, flatten};
pub use prop::{DepKind, PropGraph, Relation};
pub use rewrite::{rewrite_expr, rewrite_lvalue, rewrite_stmt, Repl};

use std::fmt;

/// Errors produced by elaboration and analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DataflowError {
    /// An expression required at compile time references a runtime signal.
    NotConstant(String),
    /// A `[msb:lsb]` range with `lsb > msb`, or a memory not based at 0.
    BadRange(String),
    /// Instantiated module is neither RTL source nor a known blackbox.
    UnknownModule(String),
    /// A connection names a port the module does not have.
    UnknownPort(String, String),
    /// A parameter override names an unknown parameter.
    UnknownParam(String, String),
    /// Two declarations share a flat name.
    DuplicateName(String),
    /// An expression references an undeclared signal.
    UnknownSignal(String),
    /// An input port was left unconnected.
    UnconnectedInput(String, String),
    /// An output port is connected to a non-lvalue expression.
    BadOutputConnection(String, String),
    /// A signal is driven both combinationally and under a clock.
    ConflictingDrivers(String),
    /// Selecting into something that is not a signal (e.g. a parameter).
    BadSelect(String),
    /// Instantiation recursion exceeded the depth limit.
    RecursionLimit(String),
    /// A construct outside the supported subset.
    Unsupported(String),
}

impl fmt::Display for DataflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use DataflowError::*;
        match self {
            NotConstant(n) => write!(f, "expression is not constant: `{n}`"),
            BadRange(r) => write!(f, "invalid range {r}"),
            UnknownModule(m) => write!(f, "unknown module `{m}`"),
            UnknownPort(m, p) => write!(f, "module `{m}` has no port `{p}`"),
            UnknownParam(m, p) => write!(f, "module `{m}` has no parameter `{p}`"),
            DuplicateName(n) => write!(f, "duplicate declaration of `{n}`"),
            UnknownSignal(n) => write!(f, "reference to undeclared signal `{n}`"),
            UnconnectedInput(i, p) => write!(f, "instance `{i}` leaves input `{p}` unconnected"),
            BadOutputConnection(i, p) => {
                write!(f, "instance `{i}` output `{p}` is not connected to an lvalue")
            }
            ConflictingDrivers(n) => {
                write!(f, "signal `{n}` is driven both combinationally and under a clock")
            }
            BadSelect(n) => write!(f, "cannot select into non-signal `{n}`"),
            RecursionLimit(m) => write!(f, "instantiation recursion limit reached in `{m}`"),
            Unsupported(what) => write!(f, "unsupported construct: {what}"),
        }
    }
}

impl std::error::Error for DataflowError {}
