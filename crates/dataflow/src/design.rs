//! Resolution of a flat module into a [`Design`]: the analyzed form shared
//! by the simulator, the resource estimator, and the debugging tools.

use crate::blackbox::{BbDir, BlackboxLib};
use crate::consteval::{eval_const, range_width, ConstEnv};
use crate::flatten::{expr_to_lvalue, flatten};
use crate::intern::{SigId, SignalTable};
use crate::DataflowError;
use hwdbg_bits::Bits;
use hwdbg_rtl::{Dir, Edge, EventControl, Expr, Item, LValue, Module, SourceFile, Stmt};
use std::collections::{BTreeMap, BTreeSet};

/// Role of a signal in the resolved design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SigKind {
    /// Top-level input (driven by the testbench).
    Input,
    /// Top-level output.
    Output,
    /// Internal signal driven combinationally (by `assign`, an `always @(*)`
    /// block, or a blackbox output).
    Comb,
    /// A state register: written under a clock edge.
    Reg,
    /// Declared but never driven (kept for diagnostics).
    Undriven,
}

/// Static information about one signal.
#[derive(Debug, Clone)]
pub struct SigInfo {
    /// Flat (hierarchical) name.
    pub name: String,
    /// Bit width of one element.
    pub width: u32,
    /// Resolved role.
    pub kind: SigKind,
    /// Declared `signed`.
    pub signed: bool,
    /// `Some(depth)` for memories (`reg [w-1:0] m [0:depth-1]`).
    pub mem_depth: Option<u64>,
}

impl SigInfo {
    /// True if this signal holds clocked state (register or memory written
    /// under a clock).
    pub fn is_state(&self) -> bool {
        self.kind == SigKind::Reg
    }
}

/// A combinational driver: one `assign` or one `always @(*)` block.
#[derive(Debug, Clone)]
pub struct CombDriver {
    /// Statements (a single assignment for `assign` items).
    pub body: Stmt,
    /// Signals read.
    pub reads: BTreeSet<String>,
    /// Signals written.
    pub writes: BTreeSet<String>,
}

/// A clocked process: one `always @(posedge …)` block.
#[derive(Debug, Clone)]
pub struct ClockedProc {
    /// Sensitivity edges.
    pub edges: Vec<Edge>,
    /// Body statement.
    pub body: Stmt,
    /// Signals read.
    pub reads: BTreeSet<String>,
    /// Signals written.
    pub writes: BTreeSet<String>,
}

/// A blackbox IP instance in the resolved design.
#[derive(Debug, Clone)]
pub struct BbInst {
    /// IP module name (e.g. `scfifo`).
    pub module: String,
    /// Flat instance name.
    pub name: String,
    /// Folded parameter values.
    pub params: BTreeMap<String, Bits>,
    /// Input port → connected expression.
    pub in_conns: BTreeMap<String, Expr>,
    /// Output port → driven lvalue.
    pub out_conns: BTreeMap<String, LValue>,
    /// Resolved width of each connected port.
    pub port_widths: BTreeMap<String, u32>,
    /// Ports that are clocks (posedge of the connected signal ticks the
    /// behavioral model).
    pub clock_ports: Vec<String>,
}

/// A fully resolved flat design.
#[derive(Debug, Clone)]
pub struct Design {
    /// Top module name.
    pub name: String,
    /// The flat module AST (tools instrument this and re-elaborate).
    pub flat: Module,
    /// All signals by flat name.
    pub signals: BTreeMap<String, SigInfo>,
    /// Dense [`SigId`] interner over the same signals (sorted-name order).
    pub table: SignalTable,
    /// Parameter/localparam constants by name.
    pub consts: ConstEnv,
    /// Combinational drivers in declaration order.
    pub combs: Vec<CombDriver>,
    /// Clocked processes in declaration order.
    pub procs: Vec<ClockedProc>,
    /// Blackbox instances.
    pub blackboxes: Vec<BbInst>,
}

impl Design {
    /// Looks up a signal.
    pub fn signal(&self, name: &str) -> Option<&SigInfo> {
        self.signals.get(name)
    }

    /// Looks up a signal's dense ID.
    pub fn sig_id(&self, name: &str) -> Option<SigId> {
        self.table.id(name)
    }

    /// Static info for an interned signal.
    pub fn sig_info(&self, id: SigId) -> &SigInfo {
        &self.signals[self.table.name(id)]
    }

    /// Iterates over state-holding signals (registers and clocked memories).
    pub fn state_signals(&self) -> impl Iterator<Item = &SigInfo> {
        self.signals.values().filter(|s| s.is_state())
    }

    /// Computes the static width of an expression in this design, following
    /// Verilog's pragmatic rules: binary arithmetic/bitwise take the wider
    /// operand, comparisons and logical operators are 1 bit, shifts keep the
    /// left width. Returns `None` for unknown names or non-constant bounds.
    pub fn expr_width(&self, e: &Expr) -> Option<u32> {
        use hwdbg_rtl::{BinaryOp, UnaryOp};
        Some(match e {
            Expr::Literal { value, .. } => value.width(),
            Expr::Ident(n) => {
                if let Some(sig) = self.signals.get(n) {
                    sig.width
                } else {
                    self.consts.get(n)?.width()
                }
            }
            Expr::Unary(op, inner) => match op {
                UnaryOp::Not | UnaryOp::Neg => self.expr_width(inner)?,
                _ => 1,
            },
            Expr::Binary(op, l, r) => {
                if op.is_boolean() {
                    1
                } else if matches!(op, BinaryOp::Shl | BinaryOp::Shr | BinaryOp::AShr) {
                    self.expr_width(l)?
                } else {
                    self.expr_width(l)?.max(self.expr_width(r)?)
                }
            }
            Expr::Ternary(_, t, f) => self.expr_width(t)?.max(self.expr_width(f)?),
            Expr::Index(n, _) => {
                let sig = self.signals.get(n)?;
                if sig.mem_depth.is_some() {
                    sig.width
                } else {
                    1
                }
            }
            Expr::Range(_, msb, lsb) => {
                let m = eval_const(msb, &self.consts).ok()?.to_u64();
                let l = eval_const(lsb, &self.consts).ok()?.to_u64();
                if l > m {
                    return None;
                }
                (m - l + 1) as u32
            }
            Expr::Concat(parts) => {
                let mut sum = 0;
                for p in parts {
                    sum += self.expr_width(p)?;
                }
                sum
            }
            Expr::Repeat(n, body) => {
                let count = eval_const(n, &self.consts).ok()?.to_u64() as u32;
                count * self.expr_width(body)?
            }
            Expr::WidthCast(w, _) => *w,
            Expr::SignCast(_, inner) => self.expr_width(inner)?,
        })
    }

    /// Width of an lvalue (sum of part widths for concatenations).
    pub fn lvalue_width(&self, lv: &LValue) -> Option<u32> {
        Some(match lv {
            LValue::Id(n) => self.signals.get(n)?.width,
            LValue::Index(n, _) => {
                let sig = self.signals.get(n)?;
                if sig.mem_depth.is_some() {
                    sig.width
                } else {
                    1
                }
            }
            LValue::Range(_, msb, lsb) => {
                let m = eval_const(msb, &self.consts).ok()?.to_u64();
                let l = eval_const(lsb, &self.consts).ok()?.to_u64();
                (m - l + 1) as u32
            }
            LValue::Concat(parts) => {
                let mut sum = 0;
                for p in parts {
                    sum += self.lvalue_width(p)?;
                }
                sum
            }
        })
    }

    /// Non-fatal diagnostics about the resolved design: currently, a
    /// warning for every declared-but-undriven signal (a frequent symptom
    /// of a mistyped name that Verilog's implicit-net rules hide). Each
    /// warning carries the declaration span so callers can excerpt the
    /// design source.
    pub fn lints(&self) -> Vec<hwdbg_diag::HwdbgError> {
        use hwdbg_diag::{ErrorCode, HwdbgError};
        let mut out = Vec::new();
        for sig in self.signals.values() {
            if sig.kind != SigKind::Undriven {
                continue;
            }
            let mut warn = HwdbgError::warning(
                ErrorCode::UndrivenSignal,
                format!("signal `{}` is declared but never driven", sig.name),
            )
            .with_signal(&sig.name);
            if let Some(decl) = self.flat.net(&sig.name) {
                warn = warn.with_span(decl.span);
            }
            out.push(warn);
        }
        out
    }

    /// All distinct clock signal names (from process sensitivity lists and
    /// blackbox clock ports).
    pub fn clocks(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for p in &self.procs {
            for e in &p.edges {
                out.insert(e.signal.clone());
            }
        }
        for bb in &self.blackboxes {
            for cp in &bb.clock_ports {
                if let Some(Expr::Ident(n)) = bb.in_conns.get(cp) {
                    out.insert(n.clone());
                }
            }
        }
        out
    }
}

/// Flattens and resolves `top` in one step.
///
/// # Errors
///
/// Propagates flattening errors and [`resolve`] errors.
pub fn elaborate(
    file: &SourceFile,
    top: &str,
    lib: &dyn BlackboxLib,
) -> Result<Design, DataflowError> {
    let flat = flatten(file, top, lib)?;
    resolve(flat, lib)
}

/// Deepest memory the toolchain accepts (16 Mi entries). Malformed depth
/// expressions otherwise turn into multi-gigabyte allocations when
/// simulation state is built.
pub const MAX_MEM_DEPTH: u64 = 1 << 24;

/// Resolves an already-flat module into a [`Design`].
///
/// # Errors
///
/// Fails on duplicate/unknown signals, non-constant widths, signals driven
/// both combinationally and under a clock, signals with more than one
/// combinational driver, or unknown blackbox ports. Errors carry the
/// source span of the offending item where one is known.
pub fn resolve(flat: Module, lib: &dyn BlackboxLib) -> Result<Design, DataflowError> {
    let mut consts = ConstEnv::new();
    for item in &flat.items {
        if let Item::Param(p) | Item::Localparam(p) = item {
            let mut v = eval_const(&p.value, &consts)?;
            if p.range.is_some() {
                v = v.resize(range_width(&p.range, &consts)?);
            }
            consts.insert(p.name.clone(), v);
        }
    }

    let mut signals: BTreeMap<String, SigInfo> = BTreeMap::new();
    let mut declare = |name: &str,
                       width: u32,
                       kind: SigKind,
                       signed: bool,
                       mem_depth: Option<u64>|
     -> Result<(), DataflowError> {
        if signals
            .insert(
                name.to_owned(),
                SigInfo {
                    name: name.to_owned(),
                    width,
                    kind,
                    signed,
                    mem_depth,
                },
            )
            .is_some()
        {
            return Err(DataflowError::DuplicateName(name.to_owned()));
        }
        Ok(())
    };

    for port in &flat.ports {
        let width = range_width(&port.net.range, &consts)?;
        let kind = match port.dir {
            Dir::Input => SigKind::Input,
            Dir::Output => SigKind::Output,
            Dir::Inout => {
                return Err(DataflowError::Unsupported("inout ports".into()));
            }
        };
        declare(&port.net.name, width, kind, port.net.signed, None)?;
    }
    for item in &flat.items {
        if let Item::Net(n) = item {
            let width = range_width(&n.range, &consts).map_err(|e| e.at(n.span))?;
            let mem_depth = match &n.mem_dim {
                None => None,
                Some((lo, hi)) => {
                    let lo_v = eval_const(lo, &consts).map_err(|e| e.at(n.span))?.to_u64();
                    let hi_v = eval_const(hi, &consts).map_err(|e| e.at(n.span))?.to_u64();
                    if lo_v != 0 || hi_v < lo_v {
                        return Err(
                            DataflowError::BadRange(format!("[{lo_v}:{hi_v}]")).at(n.span)
                        );
                    }
                    if hi_v >= MAX_MEM_DEPTH {
                        return Err(DataflowError::BadRange(format!(
                            "memory `{}` has {} entries (limit {MAX_MEM_DEPTH})",
                            n.name,
                            hi_v + 1
                        ))
                        .at(n.span));
                    }
                    Some(hi_v + 1)
                }
            };
            declare(&n.name, width, SigKind::Undriven, n.signed, mem_depth)
                .map_err(|e| e.at(n.span))?;
        }
    }

    // Partition items into drivers.
    let mut combs = Vec::new();
    let mut procs = Vec::new();
    let mut blackboxes = Vec::new();
    for item in &flat.items {
        match item {
            Item::Net(_) | Item::Param(_) | Item::Localparam(_) => {}
            Item::Assign { lhs, rhs, span } => {
                let body = Stmt::Assign {
                    lhs: lhs.clone(),
                    nonblocking: false,
                    rhs: rhs.clone(),
                    span: *span,
                };
                let mut reads = BTreeSet::new();
                let mut writes = BTreeSet::new();
                stmt_reads_writes(&body, &mut reads, &mut writes);
                reads.retain(|n| !consts.contains_key(n));
                combs.push(CombDriver { body, reads, writes });
            }
            Item::Always { event, body, .. } => {
                let mut reads = BTreeSet::new();
                let mut writes = BTreeSet::new();
                stmt_reads_writes(body, &mut reads, &mut writes);
                reads.retain(|n| !consts.contains_key(n));
                match event {
                    EventControl::Comb => combs.push(CombDriver {
                        body: body.clone(),
                        reads,
                        writes,
                    }),
                    EventControl::Edges(edges) => procs.push(ClockedProc {
                        edges: edges.clone(),
                        body: body.clone(),
                        reads,
                        writes,
                    }),
                }
            }
            Item::Instance(inst) => {
                blackboxes
                    .push(resolve_instance(inst, lib, &consts).map_err(|e| e.at(inst.span))?);
            }
        }
    }

    // Classify drivers and detect conflicts. A signal *whole-written* by
    // one combinational driver and also written by any other comb driver
    // has no well-defined settled value (execution order decides), so it
    // is rejected rather than left to oscillate. Distinct drivers that
    // each write disjoint slices of one signal (SignalCat's generated
    // concat wires, bit-sliced buses) remain legal.
    let mut comb_written: BTreeSet<String> = BTreeSet::new();
    let mut clocked_written: BTreeSet<String> = BTreeSet::new();
    {
        // Per comb driver (assign / always@* / blackbox instance): the
        // signals it writes, and whether any write covers the whole signal.
        let mut driver_targets: Vec<BTreeMap<String, bool>> = Vec::new();
        for c in &combs {
            driver_targets.push(stmt_write_targets(&c.body));
        }
        for bb in &blackboxes {
            let mut targets = BTreeMap::new();
            for lv in bb.out_conns.values() {
                add_lvalue_targets(lv, true, &mut targets);
            }
            driver_targets.push(targets);
        }
        let mut n_drivers: BTreeMap<&str, usize> = BTreeMap::new();
        let mut whole: BTreeMap<&str, bool> = BTreeMap::new();
        for targets in &driver_targets {
            for (name, is_whole) in targets {
                *n_drivers.entry(name).or_insert(0) += 1;
                *whole.entry(name).or_insert(false) |= is_whole;
            }
        }
        for (name, count) in n_drivers {
            if count > 1 && whole[name] {
                return Err(DataflowError::DuplicateDriver(name.to_owned()));
            }
            comb_written.insert(name.to_owned());
        }
    }
    for p in &procs {
        for w in &p.writes {
            clocked_written.insert(w.clone());
        }
    }
    if let Some(name) = comb_written.intersection(&clocked_written).next() {
        return Err(DataflowError::ConflictingDrivers(name.clone()));
    }
    for (name, info) in signals.iter_mut() {
        if clocked_written.contains(name) {
            info.kind = SigKind::Reg;
        } else if comb_written.contains(name) && info.kind != SigKind::Output {
            info.kind = SigKind::Comb;
        }
    }

    // Every referenced identifier must be a signal or a constant.
    let mut referenced: BTreeSet<String> = BTreeSet::new();
    for c in &combs {
        referenced.extend(c.reads.iter().cloned());
        referenced.extend(c.writes.iter().cloned());
    }
    for p in &procs {
        referenced.extend(p.reads.iter().cloned());
        referenced.extend(p.writes.iter().cloned());
        for e in &p.edges {
            referenced.insert(e.signal.clone());
        }
    }
    for bb in &blackboxes {
        for e in bb.in_conns.values() {
            referenced.extend(e.idents().into_iter().map(|s| s.to_owned()));
        }
        for lv in bb.out_conns.values() {
            referenced.extend(lv.target_names().into_iter().map(|s| s.to_owned()));
        }
    }
    for name in &referenced {
        if !signals.contains_key(name) && !consts.contains_key(name) {
            return Err(DataflowError::UnknownSignal(name.clone()));
        }
    }

    // Static select/replication validation: reversed (zero-width) part
    // selects and zero or absurd replication counts are elaboration
    // errors with the assignment's span, instead of silently producing
    // garbage widths downstream.
    for c in &combs {
        check_stmt_selects(&c.body, &consts)?;
    }
    for p in &procs {
        check_stmt_selects(&p.body, &consts)?;
    }

    let table = SignalTable::new(signals.keys().cloned());
    Ok(Design {
        name: flat.name.clone(),
        signals,
        table,
        consts,
        combs,
        procs,
        blackboxes,
        flat,
    })
}

/// Resolves one blackbox instance against its library spec.
fn resolve_instance(
    inst: &hwdbg_rtl::Instance,
    lib: &dyn BlackboxLib,
    consts: &ConstEnv,
) -> Result<BbInst, DataflowError> {
    let spec = lib
        .spec(&inst.module)
        .ok_or_else(|| DataflowError::UnknownModule(inst.module.clone()))?;
    let mut params = BTreeMap::new();
    for (n, e) in &inst.params {
        params.insert(n.clone(), eval_const(e, consts)?);
    }
    let mut in_conns = BTreeMap::new();
    let mut out_conns = BTreeMap::new();
    let mut port_widths = BTreeMap::new();
    for (pname, conn) in &inst.conns {
        let port = spec
            .port(pname)
            .ok_or_else(|| DataflowError::UnknownPort(inst.module.clone(), pname.clone()))?;
        let Some(conn) = conn else { continue };
        let width = port
            .width
            .resolve(&params)
            .ok_or_else(|| DataflowError::UnknownParam(inst.module.clone(), pname.clone()))?;
        port_widths.insert(pname.clone(), width);
        match port.dir {
            BbDir::Input => {
                in_conns.insert(pname.clone(), conn.clone());
            }
            BbDir::Output => {
                let lv = expr_to_lvalue(conn).ok_or_else(|| {
                    DataflowError::BadOutputConnection(inst.name.clone(), pname.clone())
                })?;
                out_conns.insert(pname.clone(), lv);
            }
        }
    }
    let clock_ports = spec
        .ports
        .iter()
        .filter(|p| p.is_clock)
        .map(|p| p.name.clone())
        .collect();
    Ok(BbInst {
        module: inst.module.clone(),
        name: inst.name.clone(),
        params,
        in_conns,
        out_conns,
        port_widths,
        clock_ports,
    })
}

/// Collects the signal names read and written by a statement tree.
/// Constants are not filtered here; the caller removes params.
pub fn stmt_reads_writes(
    stmt: &Stmt,
    reads: &mut BTreeSet<String>,
    writes: &mut BTreeSet<String>,
) {
    match stmt {
        Stmt::Block(stmts) => {
            for s in stmts {
                stmt_reads_writes(s, reads, writes);
            }
        }
        Stmt::If { cond, then, els } => {
            add_expr_reads(cond, reads);
            stmt_reads_writes(then, reads, writes);
            if let Some(e) = els {
                stmt_reads_writes(e, reads, writes);
            }
        }
        Stmt::Case {
            expr,
            arms,
            default,
            ..
        } => {
            add_expr_reads(expr, reads);
            for arm in arms {
                for l in &arm.labels {
                    add_expr_reads(l, reads);
                }
                stmt_reads_writes(&arm.body, reads, writes);
            }
            if let Some(d) = default {
                stmt_reads_writes(d, reads, writes);
            }
        }
        Stmt::Assign { lhs, rhs, .. } => {
            add_expr_reads(rhs, reads);
            add_lvalue_writes(lhs, reads, writes);
        }
        Stmt::For {
            var,
            init,
            cond,
            step,
            body,
        } => {
            writes.insert(var.clone());
            add_expr_reads(init, reads);
            add_expr_reads(cond, reads);
            add_expr_reads(step, reads);
            stmt_reads_writes(body, reads, writes);
        }
        Stmt::Display { args, .. } => {
            for a in args {
                add_expr_reads(a, reads);
            }
        }
        Stmt::Finish | Stmt::Empty => {}
    }
}

fn add_expr_reads(e: &Expr, reads: &mut BTreeSet<String>) {
    for n in e.idents() {
        reads.insert(n.to_owned());
    }
}

fn add_lvalue_writes(lv: &LValue, reads: &mut BTreeSet<String>, writes: &mut BTreeSet<String>) {
    match lv {
        LValue::Id(n) => {
            writes.insert(n.clone());
        }
        LValue::Index(n, i) => {
            writes.insert(n.clone());
            add_expr_reads(i, reads);
        }
        LValue::Range(n, a, b) => {
            writes.insert(n.clone());
            add_expr_reads(a, reads);
            add_expr_reads(b, reads);
        }
        LValue::Concat(parts) => {
            for p in parts {
                add_lvalue_writes(p, reads, writes);
            }
        }
    }
}

/// Per-signal write map for one driver: name → true if any write in the
/// driver covers the whole signal (a plain identifier target, possibly
/// inside a concatenation).
/// Walks a statement tree validating every part select and replication
/// whose bounds are compile-time constants. Reversed selects (`a[3:5]`,
/// width zero or negative) and zero/oversized replication counts are
/// rejected; bounds that reference `for`-loop variables are left to the
/// simulator's dynamic-select handling.
fn check_stmt_selects(stmt: &Stmt, consts: &ConstEnv) -> Result<(), DataflowError> {
    match stmt {
        Stmt::Block(stmts) => {
            for s in stmts {
                check_stmt_selects(s, consts)?;
            }
        }
        Stmt::If { cond, then, els } => {
            check_expr_selects(cond, consts)?;
            check_stmt_selects(then, consts)?;
            if let Some(e) = els {
                check_stmt_selects(e, consts)?;
            }
        }
        Stmt::Case {
            expr,
            arms,
            default,
            ..
        } => {
            check_expr_selects(expr, consts)?;
            for arm in arms {
                for l in &arm.labels {
                    check_expr_selects(l, consts)?;
                }
                check_stmt_selects(&arm.body, consts)?;
            }
            if let Some(d) = default {
                check_stmt_selects(d, consts)?;
            }
        }
        Stmt::Assign { lhs, rhs, span, .. } => {
            check_lvalue_selects(lhs, consts).map_err(|e| e.at(*span))?;
            check_expr_selects(rhs, consts).map_err(|e| e.at(*span))?;
        }
        Stmt::For {
            init, cond, step, body, ..
        } => {
            check_expr_selects(init, consts)?;
            check_expr_selects(cond, consts)?;
            check_expr_selects(step, consts)?;
            check_stmt_selects(body, consts)?;
        }
        Stmt::Display { args, span, .. } => {
            for a in args {
                check_expr_selects(a, consts).map_err(|e| e.at(*span))?;
            }
        }
        Stmt::Finish | Stmt::Empty => {}
    }
    Ok(())
}

fn check_range_bounds(
    name: &str,
    msb: &Expr,
    lsb: &Expr,
    consts: &ConstEnv,
) -> Result<(), DataflowError> {
    let (Ok(m), Ok(l)) = (eval_const(msb, consts), eval_const(lsb, consts)) else {
        return Ok(()); // loop-var bounds: checked dynamically at simulation
    };
    let (m, l) = (m.to_u64(), l.to_u64());
    if l > m {
        return Err(DataflowError::BadRange(format!(
            "part select `{name}[{m}:{l}]` has its bounds reversed (zero-width slice)"
        )));
    }
    if m - l + 1 > u64::from(crate::consteval::MAX_WIDTH) {
        return Err(DataflowError::BadRange(format!(
            "part select `{name}[{m}:{l}]` is wider than the {} bit limit",
            crate::consteval::MAX_WIDTH
        )));
    }
    Ok(())
}

fn check_expr_selects(e: &Expr, consts: &ConstEnv) -> Result<(), DataflowError> {
    match e {
        Expr::Literal { .. } | Expr::Ident(_) => {}
        Expr::Unary(_, inner) | Expr::SignCast(_, inner) | Expr::WidthCast(_, inner) => {
            check_expr_selects(inner, consts)?;
        }
        Expr::Binary(_, l, r) => {
            check_expr_selects(l, consts)?;
            check_expr_selects(r, consts)?;
        }
        Expr::Ternary(c, t, f) => {
            check_expr_selects(c, consts)?;
            check_expr_selects(t, consts)?;
            check_expr_selects(f, consts)?;
        }
        Expr::Index(_, idx) => check_expr_selects(idx, consts)?,
        Expr::Range(n, msb, lsb) => check_range_bounds(n, msb, lsb, consts)?,
        Expr::Concat(parts) => {
            for p in parts {
                check_expr_selects(p, consts)?;
            }
        }
        Expr::Repeat(n, body) => {
            if let Ok(c) = eval_const(n, consts) {
                let c = c.to_u64();
                if c == 0 {
                    return Err(DataflowError::BadRange(
                        "replication count of zero".to_owned(),
                    ));
                }
                if c > u64::from(crate::consteval::MAX_WIDTH) {
                    return Err(DataflowError::BadRange(format!(
                        "replication count {c} exceeds the {} bit limit",
                        crate::consteval::MAX_WIDTH
                    )));
                }
            }
            check_expr_selects(body, consts)?;
        }
    }
    Ok(())
}

fn check_lvalue_selects(lv: &LValue, consts: &ConstEnv) -> Result<(), DataflowError> {
    match lv {
        LValue::Id(_) => Ok(()),
        LValue::Index(_, idx) => check_expr_selects(idx, consts),
        LValue::Range(n, msb, lsb) => check_range_bounds(n, msb, lsb, consts),
        LValue::Concat(parts) => {
            for p in parts {
                check_lvalue_selects(p, consts)?;
            }
            Ok(())
        }
    }
}

fn stmt_write_targets(stmt: &Stmt) -> BTreeMap<String, bool> {
    let mut out = BTreeMap::new();
    collect_write_targets(stmt, &mut out);
    out
}

fn collect_write_targets(stmt: &Stmt, out: &mut BTreeMap<String, bool>) {
    match stmt {
        Stmt::Block(stmts) => {
            for s in stmts {
                collect_write_targets(s, out);
            }
        }
        Stmt::If { then, els, .. } => {
            collect_write_targets(then, out);
            if let Some(e) = els {
                collect_write_targets(e, out);
            }
        }
        Stmt::Case { arms, default, .. } => {
            for arm in arms {
                collect_write_targets(&arm.body, out);
            }
            if let Some(d) = default {
                collect_write_targets(d, out);
            }
        }
        Stmt::Assign { lhs, .. } => add_lvalue_targets(lhs, true, out),
        Stmt::For { var, body, .. } => {
            // Loop variables are procedural temporaries; two loops sharing
            // an index name are not conflicting drivers of it.
            out.entry(var.clone()).or_insert(false);
            collect_write_targets(body, out);
        }
        Stmt::Display { .. } | Stmt::Finish | Stmt::Empty => {}
    }
}

/// Records the signals `lv` writes into `out`; `whole` marks writes that
/// cover the entire signal.
fn add_lvalue_targets(lv: &LValue, whole: bool, out: &mut BTreeMap<String, bool>) {
    match lv {
        LValue::Id(n) => {
            *out.entry(n.clone()).or_insert(false) |= whole;
        }
        LValue::Index(n, _) | LValue::Range(n, ..) => {
            out.entry(n.clone()).or_insert(false);
        }
        LValue::Concat(parts) => {
            for p in parts {
                add_lvalue_targets(p, whole, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blackbox::NoBlackboxes;
    use hwdbg_rtl::parse;

    fn design(src: &str, top: &str) -> Design {
        elaborate(&parse(src).unwrap(), top, &NoBlackboxes).unwrap()
    }

    #[test]
    fn classify_signals() {
        let d = design(
            "module m(input clk, input d, output q);
                reg state;
                wire next;
                assign next = ~state;
                assign q = state;
                always @(posedge clk) state <= next & d;
             endmodule",
            "m",
        );
        assert_eq!(d.signal("state").unwrap().kind, SigKind::Reg);
        assert_eq!(d.signal("next").unwrap().kind, SigKind::Comb);
        assert_eq!(d.signal("clk").unwrap().kind, SigKind::Input);
        assert_eq!(d.signal("q").unwrap().kind, SigKind::Output);
        assert_eq!(d.combs.len(), 2);
        assert_eq!(d.procs.len(), 1);
        assert_eq!(d.clocks().len(), 1);
    }

    #[test]
    fn memory_depth_resolved() {
        let d = design(
            "module m(input clk, input [7:0] din, input [3:0] wa);
                reg [7:0] mem [0:9];
                always @(posedge clk) mem[wa] <= din;
             endmodule",
            "m",
        );
        let mem = d.signal("mem").unwrap();
        assert_eq!(mem.mem_depth, Some(10));
        assert_eq!(mem.width, 8);
        assert!(mem.is_state());
    }

    #[test]
    fn conflicting_drivers_rejected() {
        let src = "module m(input clk, input a);
            reg x;
            assign x = a;
            always @(posedge clk) x <= a;
         endmodule";
        // `assign` to a reg is already odd; the conflict check catches it.
        let err = elaborate(&parse(src).unwrap(), "m", &NoBlackboxes).unwrap_err();
        assert!(matches!(err, DataflowError::ConflictingDrivers(_)));
    }

    #[test]
    fn unknown_signal_rejected() {
        let src = "module m(input clk);
            reg x;
            always @(posedge clk) x <= ghost;
         endmodule";
        let err = elaborate(&parse(src).unwrap(), "m", &NoBlackboxes).unwrap_err();
        assert!(matches!(err, DataflowError::UnknownSignal(n) if n == "ghost"));
    }

    #[test]
    fn reads_writes_cover_statements() {
        let d = design(
            "module m(input clk, input [1:0] sel, input [7:0] a, output reg [7:0] y);
                always @(posedge clk) begin
                    case (sel)
                        2'd0: y <= a;
                        default: y <= 8'd0;
                    endcase
                end
             endmodule",
            "m",
        );
        let p = &d.procs[0];
        assert!(p.reads.contains("sel"));
        assert!(p.reads.contains("a"));
        assert!(p.writes.contains("y"));
    }

    #[test]
    fn hierarchical_design_resolves() {
        let d = design(
            "module count #(parameter W = 4)(input clk, output reg [W-1:0] q);
                always @(posedge clk) q <= q + 1'b1;
             endmodule
             module top(input clk, output [7:0] v);
                count #(.W(8)) c0 (.clk(clk), .q(v));
             endmodule",
            "top",
        );
        assert_eq!(d.signal("c0__q").unwrap().width, 8);
        assert_eq!(d.signal("c0__q").unwrap().kind, SigKind::Reg);
    }
}
