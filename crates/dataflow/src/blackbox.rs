//! Static descriptions of blackbox IP blocks.
//!
//! The paper's Dependency Monitor and LossCheck traverse closed-source IPs
//! (`scfifo`, `altsyncram`, …) through developer-provided *IP models* that
//! describe which inputs influence which outputs, under which condition,
//! and with how many cycles of latency. This module defines the model types;
//! `hwdbg-ip` supplies the concrete models next to the behavioral
//! implementations the simulator uses.

use hwdbg_bits::Bits;
use std::collections::BTreeMap;

/// Direction of a blackbox port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BbDir {
    /// Consumed by the IP.
    Input,
    /// Driven by the IP.
    Output,
}

/// How a port's width is derived from the instance parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WidthSpec {
    /// A fixed width.
    Const(u32),
    /// The value of a parameter, e.g. `WIDTH`.
    Param(String),
    /// `ceil(log2(param))`, e.g. the `usedw` port of a FIFO of depth N.
    Clog2Param(String),
}

impl WidthSpec {
    /// Resolves the width given the instance's parameter bindings;
    /// `None` if a referenced parameter is missing.
    pub fn resolve(&self, params: &BTreeMap<String, Bits>) -> Option<u32> {
        match self {
            WidthSpec::Const(w) => Some(*w),
            WidthSpec::Param(p) => Some(params.get(p)?.to_u64() as u32),
            WidthSpec::Clog2Param(p) => Some(clog2(params.get(p)?.to_u64())),
        }
    }
}

/// `ceil(log2(v))`, with `clog2(0) = clog2(1) = 1` (an address needs at
/// least one bit).
pub fn clog2(v: u64) -> u32 {
    if v <= 2 {
        1
    } else {
        64 - (v - 1).leading_zeros()
    }
}

/// A blackbox port.
#[derive(Debug, Clone)]
pub struct BbPort {
    /// Port name.
    pub name: String,
    /// Direction.
    pub dir: BbDir,
    /// Width rule.
    pub width: WidthSpec,
    /// True if this port is a clock; a posedge on the connected signal
    /// ticks the behavioral model.
    pub is_clock: bool,
}

/// One dependency edge of an IP model: data/control flows from `src` port
/// to `dst` port when `cond` (another input port) is high.
#[derive(Debug, Clone)]
pub struct IpRelation {
    /// Source port name (an input).
    pub src: String,
    /// Destination port name (an output, or an input that names internal
    /// state reached later — we only model port-to-port edges).
    pub dst: String,
    /// Gating input port, if any; `None` means unconditional.
    pub cond: Option<String>,
    /// Cycles of latency through the IP (0 = combinational).
    pub latency: u32,
}

/// The static interface of a blackbox: ports plus the dependency model.
#[derive(Debug, Clone)]
pub struct BlackboxSpec {
    /// Module name as written in the HDL (e.g. `scfifo`).
    pub name: String,
    /// Ports.
    pub ports: Vec<BbPort>,
    /// Dependency/propagation model for the static analyses.
    pub relations: Vec<IpRelation>,
}

impl BlackboxSpec {
    /// Looks up a port by name.
    pub fn port(&self, name: &str) -> Option<&BbPort> {
        self.ports.iter().find(|p| p.name == name)
    }
}

/// A provider of blackbox specifications, injected into elaboration.
pub trait BlackboxLib {
    /// Returns the spec for `module`, or `None` if it is not a known IP.
    fn spec(&self, module: &str) -> Option<&BlackboxSpec>;
}

/// A library with no blackboxes (pure-RTL designs).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoBlackboxes;

impl BlackboxLib for NoBlackboxes {
    fn spec(&self, _module: &str) -> Option<&BlackboxSpec> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clog2_values() {
        assert_eq!(clog2(0), 1);
        assert_eq!(clog2(1), 1);
        assert_eq!(clog2(2), 1);
        assert_eq!(clog2(3), 2);
        assert_eq!(clog2(4), 2);
        assert_eq!(clog2(5), 3);
        assert_eq!(clog2(1024), 10);
        assert_eq!(clog2(1025), 11);
    }

    #[test]
    fn width_spec_resolution() {
        let mut params = BTreeMap::new();
        params.insert("WIDTH".to_string(), Bits::from_u64(32, 16));
        params.insert("DEPTH".to_string(), Bits::from_u64(32, 24));
        assert_eq!(WidthSpec::Const(8).resolve(&params), Some(8));
        assert_eq!(
            WidthSpec::Param("WIDTH".into()).resolve(&params),
            Some(16)
        );
        assert_eq!(
            WidthSpec::Clog2Param("DEPTH".into()).resolve(&params),
            Some(5)
        );
        assert_eq!(WidthSpec::Param("NOPE".into()).resolve(&params), None);
    }
}
