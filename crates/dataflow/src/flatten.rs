//! Hierarchy flattening: inline every RTL instance into a single module.
//!
//! The paper runs its analyses after Verilator's inline expansion produces
//! one flat module; this pass plays that role. Child signals are renamed
//! `inst__signal`, parameters are folded to constants, localparams are kept
//! (renamed) so the FSM monitor can still recover state names, and blackbox
//! IP instances are preserved as instances.

use crate::blackbox::BlackboxLib;
use crate::consteval::{eval_const, ConstEnv};
use crate::rewrite::{rewrite_expr, rewrite_lvalue, rewrite_stmt, Repl};
use crate::DataflowError;
use hwdbg_bits::Bits;
use hwdbg_rtl::{
    Dir, Expr, Instance, Item, LValue, Module, NetDecl, Param, SourceFile,
};
use std::collections::BTreeSet;

const MAX_DEPTH: usize = 64;

/// Flattens the hierarchy rooted at `top` into a single module.
///
/// # Errors
///
/// Fails on unknown modules (neither RTL nor blackbox), unconnected or
/// non-lvalue-connected ports, non-constant parameters, or excessive
/// recursion depth.
pub fn flatten(
    file: &SourceFile,
    top: &str,
    lib: &dyn BlackboxLib,
) -> Result<Module, DataflowError> {
    let top_mod = file
        .module(top)
        .ok_or_else(|| DataflowError::UnknownModule(top.to_owned()))?;
    let mut ctx = Flattener {
        file,
        lib,
        out_items: Vec::new(),
        used_names: BTreeSet::new(),
    };
    // Top parameters keep their default values and are preserved as
    // localparams of the flat module.
    let mut env = ConstEnv::new();
    for p in &top_mod.params {
        let v = eval_const(&p.value, &env).map_err(|e| e.at(p.span))?;
        env.insert(p.name.clone(), v);
    }
    let ports = top_mod
        .ports
        .iter()
        .map(|port| {
            let net = NetDecl {
                range: fold_range(&port.net.range, &env).map_err(|e| e.at(port.net.span))?,
                ..port.net.clone()
            };
            Ok(hwdbg_rtl::Port {
                dir: port.dir,
                net,
            })
        })
        .collect::<Result<Vec<_>, DataflowError>>()?;
    for port in &ports {
        ctx.used_names.insert(port.net.name.clone());
    }
    for p in &top_mod.params {
        ctx.out_items.push(Item::Localparam(Param {
            name: p.name.clone(),
            value: const_expr(&env[&p.name]),
            range: None,
            span: p.span,
        }));
        ctx.used_names.insert(p.name.clone());
    }
    ctx.inline(top_mod, "", &env, 0)?;
    Ok(Module {
        name: top_mod.name.clone(),
        params: Vec::new(),
        ports,
        items: ctx.out_items,
        span: top_mod.span,
    })
}

fn const_expr(v: &Bits) -> Expr {
    Expr::Literal {
        value: v.clone(),
        sized: true,
    }
}

fn fold_range(
    range: &Option<(Expr, Expr)>,
    env: &ConstEnv,
) -> Result<Option<(Expr, Expr)>, DataflowError> {
    match range {
        None => Ok(None),
        Some((msb, lsb)) => Ok(Some((
            const_expr(&eval_const(msb, env)?),
            const_expr(&eval_const(lsb, env)?),
        ))),
    }
}

struct Flattener<'a> {
    file: &'a SourceFile,
    lib: &'a dyn BlackboxLib,
    out_items: Vec<Item>,
    used_names: BTreeSet<String>,
}

impl<'a> Flattener<'a> {
    /// Inlines `module`'s body into the output with signal prefix `prefix`,
    /// where `env` binds the module's parameters (and, progressively, its
    /// localparams) to constants.
    fn inline(
        &mut self,
        module: &Module,
        prefix: &str,
        env: &ConstEnv,
        depth: usize,
    ) -> Result<(), DataflowError> {
        if depth > MAX_DEPTH {
            return Err(DataflowError::RecursionLimit(module.name.clone()));
        }
        let mut env = env.clone();
        // Names that get the prefix: every net and localparam declared here.
        let mut local: BTreeSet<String> = BTreeSet::new();
        for n in module.nets() {
            local.insert(n.name.clone());
        }
        for item in &module.items {
            if let Item::Localparam(p) | Item::Param(p) = item {
                local.insert(p.name.clone());
            }
        }
        // Snapshot parameter values so the rename closure does not hold a
        // borrow of `env` while localparams are being folded into it below.
        let param_vals: std::collections::BTreeMap<String, Bits> = module
            .params
            .iter()
            .map(|p| (p.name.clone(), env[&p.name].clone()))
            .collect();
        let rename = |n: &str| -> Repl {
            if let Some(v) = param_vals.get(n) {
                // Parameter: substitute folded constant.
                Repl::Expr(const_expr(v))
            } else if local.contains(n) {
                Repl::Name(format!("{prefix}{n}"))
            } else {
                // Unknown here (e.g. a tool-introduced global); leave as is.
                Repl::Name(n.to_owned())
            }
        };

        for item in &module.items {
            match item {
                Item::Param(p) | Item::Localparam(p) => {
                    let v = (|| {
                        let v = eval_const(&rewrite_expr(&p.value, &|n| rename(n))?, &{
                            // localparams may reference earlier (renamed)
                            // localparams of this module: build a view with
                            // prefixed keys.
                            let mut view = ConstEnv::new();
                            for (k, val) in &env {
                                view.insert(k.clone(), val.clone());
                                view.insert(format!("{prefix}{k}"), val.clone());
                            }
                            view
                        })?;
                        Ok::<Bits, DataflowError>(match &p.range {
                            Some(_) => {
                                let w = crate::consteval::range_width(&p.range, &env)?;
                                v.resize(w)
                            }
                            None => v,
                        })
                    })()
                    .map_err(|e| e.at(p.span))?;
                    env.insert(p.name.clone(), v.clone());
                    let flat_name = format!("{prefix}{}", p.name);
                    if self.used_names.insert(flat_name.clone()) {
                        self.out_items.push(Item::Localparam(Param {
                            name: flat_name,
                            value: const_expr(&v),
                            range: None,
                            span: p.span,
                        }));
                    }
                }
                Item::Net(n) => {
                    let flat = NetDecl {
                        kind: n.kind,
                        signed: n.signed,
                        range: fold_range(&n.range, &merged_env(prefix, &env))
                            .map_err(|e| e.at(n.span))?,
                        name: format!("{prefix}{}", n.name),
                        mem_dim: match &n.mem_dim {
                            None => None,
                            Some((lo, hi)) => Some((
                                const_expr(
                                    &eval_const(
                                        &rewrite_expr(lo, &|x| rename(x))?,
                                        &merged_env(prefix, &env),
                                    )
                                    .map_err(|e| e.at(n.span))?,
                                ),
                                const_expr(
                                    &eval_const(
                                        &rewrite_expr(hi, &|x| rename(x))?,
                                        &merged_env(prefix, &env),
                                    )
                                    .map_err(|e| e.at(n.span))?,
                                ),
                            )),
                        },
                        span: n.span,
                    };
                    if !self.used_names.insert(flat.name.clone()) {
                        return Err(DataflowError::DuplicateName(flat.name).at(n.span));
                    }
                    self.out_items.push(Item::Net(flat));
                }
                Item::Assign { lhs, rhs, span } => {
                    self.out_items.push(Item::Assign {
                        lhs: rewrite_lvalue(lhs, &|n| rename(n)).map_err(|e| e.at(*span))?,
                        rhs: rewrite_expr(rhs, &|n| rename(n)).map_err(|e| e.at(*span))?,
                        span: *span,
                    });
                }
                Item::Always { event, body, span } => {
                    let event = match event {
                        hwdbg_rtl::EventControl::Comb => hwdbg_rtl::EventControl::Comb,
                        hwdbg_rtl::EventControl::Edges(edges) => hwdbg_rtl::EventControl::Edges(
                            edges
                                .iter()
                                .map(|e| hwdbg_rtl::Edge {
                                    posedge: e.posedge,
                                    signal: match rename(&e.signal) {
                                        Repl::Name(n) => n,
                                        Repl::Expr(_) => e.signal.clone(),
                                    },
                                })
                                .collect(),
                        ),
                    };
                    self.out_items.push(Item::Always {
                        event,
                        body: rewrite_stmt(body, &|n| rename(n))?,
                        span: *span,
                    });
                }
                Item::Instance(inst) => {
                    self.inline_instance(inst, prefix, &env, &rename, depth)
                        .map_err(|e| e.at(inst.span))?;
                }
            }
        }
        Ok(())
    }

    fn inline_instance(
        &mut self,
        inst: &Instance,
        prefix: &str,
        env: &ConstEnv,
        rename: &dyn Fn(&str) -> Repl,
        depth: usize,
    ) -> Result<(), DataflowError> {
        let child_prefix = format!("{prefix}{}__", inst.name);
        // Evaluate parameter overrides in the parent scope.
        let mut overrides = ConstEnv::new();
        for (name, value) in &inst.params {
            let folded = eval_const(&rewrite_expr(value, rename)?, &merged_env(prefix, env))?;
            overrides.insert(name.clone(), folded);
        }
        if let Some(child) = self.file.module(&inst.module) {
            // RTL child: bind parameters (override or default), then recurse.
            let mut child_env = ConstEnv::new();
            for p in &child.params {
                let v = match overrides.remove(&p.name) {
                    Some(v) => v,
                    None => eval_const(&p.value, &child_env)?,
                };
                let v = match &p.range {
                    Some(_) => {
                        let w = crate::consteval::range_width(&p.range, &child_env)?;
                        v.resize(w)
                    }
                    None => v,
                };
                child_env.insert(p.name.clone(), v);
            }
            if let Some((name, _)) = overrides.into_iter().next() {
                return Err(DataflowError::UnknownParam(inst.module.clone(), name));
            }
            // Declare nets for the child's ports and wire them up.
            for port in &child.ports {
                let flat_name = format!("{child_prefix}{}", port.net.name);
                let decl = NetDecl {
                    kind: port.net.kind,
                    signed: port.net.signed,
                    range: fold_range(&port.net.range, &child_env)?,
                    name: flat_name.clone(),
                    mem_dim: None,
                    span: port.net.span,
                };
                if !self.used_names.insert(flat_name.clone()) {
                    return Err(DataflowError::DuplicateName(flat_name));
                }
                self.out_items.push(Item::Net(decl));
                let conn = inst
                    .conns
                    .iter()
                    .find(|(n, _)| n == &port.net.name)
                    .and_then(|(_, e)| e.as_ref());
                match (port.dir, conn) {
                    (Dir::Input, Some(e)) => {
                        self.out_items.push(Item::Assign {
                            lhs: LValue::Id(flat_name),
                            rhs: rewrite_expr(e, rename)?,
                            span: inst.span,
                        });
                    }
                    (Dir::Input, None) => {
                        return Err(DataflowError::UnconnectedInput(
                            inst.name.clone(),
                            port.net.name.clone(),
                        ));
                    }
                    (Dir::Output, Some(e)) => {
                        let target = expr_to_lvalue(&rewrite_expr(e, rename)?).ok_or_else(
                            || {
                                DataflowError::BadOutputConnection(
                                    inst.name.clone(),
                                    port.net.name.clone(),
                                )
                            },
                        )?;
                        self.out_items.push(Item::Assign {
                            lhs: target,
                            rhs: Expr::Ident(flat_name),
                            span: inst.span,
                        });
                    }
                    (Dir::Output, None) => {} // unconnected output: fine
                    (Dir::Inout, _) => {
                        return Err(DataflowError::Unsupported(
                            "inout ports cannot be flattened".into(),
                        ));
                    }
                }
            }
            // Unknown connection names are configuration bugs; catch them.
            for (n, _) in &inst.conns {
                if !child.ports.iter().any(|p| &p.net.name == n) {
                    return Err(DataflowError::UnknownPort(inst.module.clone(), n.clone()));
                }
            }
            self.inline(child, &child_prefix, &child_env, depth + 1)
        } else if let Some(spec) = self.lib.spec(&inst.module) {
            // Blackbox: keep the instance, with folded params and rewritten
            // connection expressions.
            for (n, _) in &inst.conns {
                if spec.port(n).is_none() {
                    return Err(DataflowError::UnknownPort(inst.module.clone(), n.clone()));
                }
            }
            let inst_name = format!("{prefix}{}", inst.name);
            if !self.used_names.insert(format!("{inst_name}!inst")) {
                return Err(DataflowError::DuplicateName(inst_name));
            }
            self.out_items.push(Item::Instance(Instance {
                module: inst.module.clone(),
                name: inst_name,
                params: inst
                    .params
                    .iter()
                    .map(|(n, _)| {
                        let v = overrides.get(n).ok_or_else(|| {
                            DataflowError::UnknownParam(inst.module.clone(), n.clone())
                        })?;
                        Ok((n.clone(), const_expr(v)))
                    })
                    .collect::<Result<Vec<_>, DataflowError>>()?,
                conns: inst
                    .conns
                    .iter()
                    .map(|(n, e)| {
                        Ok((
                            n.clone(),
                            match e {
                                Some(e) => Some(rewrite_expr(e, rename)?),
                                None => None,
                            },
                        ))
                    })
                    .collect::<Result<Vec<_>, DataflowError>>()?,
                span: inst.span,
            }));
            Ok(())
        } else {
            Err(DataflowError::UnknownModule(inst.module.clone()))
        }
    }
}

/// Builds a const env that also resolves this scope's renamed localparams.
fn merged_env(prefix: &str, env: &ConstEnv) -> ConstEnv {
    let mut out = ConstEnv::new();
    for (k, v) in env {
        out.insert(k.clone(), v.clone());
        if !prefix.is_empty() {
            out.insert(format!("{prefix}{k}"), v.clone());
        }
    }
    out
}

/// Converts a connection expression into an lvalue, if it has lvalue shape.
pub fn expr_to_lvalue(e: &Expr) -> Option<LValue> {
    match e {
        Expr::Ident(n) => Some(LValue::Id(n.clone())),
        Expr::Index(n, i) => Some(LValue::Index(n.clone(), (**i).clone())),
        Expr::Range(n, a, b) => Some(LValue::Range(n.clone(), (**a).clone(), (**b).clone())),
        Expr::Concat(parts) => {
            let mut out = Vec::new();
            for p in parts {
                out.push(expr_to_lvalue(p)?);
            }
            Some(LValue::Concat(out))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blackbox::NoBlackboxes;
    use hwdbg_rtl::parse;

    #[test]
    fn flatten_single_module_is_identity_shaped() {
        let src = "module top(input clk, output reg [7:0] q);
            localparam STEP = 8'd3;
            always @(posedge clk) q <= q + STEP;
        endmodule";
        let f = parse(src).unwrap();
        let flat = flatten(&f, "top", &NoBlackboxes).unwrap();
        assert_eq!(flat.ports.len(), 2);
        assert!(flat.param("STEP").is_some());
    }

    #[test]
    fn flatten_inlines_child_with_params() {
        let src = "
        module adder #(parameter W = 4)(input [W-1:0] a, input [W-1:0] b, output [W-1:0] s);
            assign s = a + b;
        endmodule
        module top(input [7:0] x, output [7:0] y);
            adder #(.W(8)) u0 (.a(x), .b(8'd1), .s(y));
        endmodule";
        let f = parse(src).unwrap();
        let flat = flatten(&f, "top", &NoBlackboxes).unwrap();
        let names: Vec<_> = flat.nets().map(|n| n.name.clone()).collect();
        assert!(names.contains(&"u0__a".to_string()), "{names:?}");
        assert!(names.contains(&"u0__s".to_string()));
        // The child's W-1 range folded to 7.
        let a = flat.net("u0__a").unwrap();
        let Some((msb, _)) = &a.range else { panic!() };
        assert_eq!(hwdbg_rtl::print_expr(msb), "32'h00000007");
    }

    #[test]
    fn flatten_two_levels() {
        let src = "
        module leaf(input i, output o);
            assign o = ~i;
        endmodule
        module mid(input i, output o);
            leaf l0 (.i(i), .o(o));
        endmodule
        module top(input a, output b);
            mid m0 (.i(a), .o(b));
        endmodule";
        let f = parse(src).unwrap();
        let flat = flatten(&f, "top", &NoBlackboxes).unwrap();
        let names: Vec<_> = flat.nets().map(|n| n.name.clone()).collect();
        assert!(names.contains(&"m0__l0__i".to_string()), "{names:?}");
    }

    #[test]
    fn unconnected_input_rejected() {
        let src = "
        module leaf(input i, output o); assign o = i; endmodule
        module top(output b);
            leaf l0 (.o(b));
        endmodule";
        let f = parse(src).unwrap();
        let err = flatten(&f, "top", &NoBlackboxes).unwrap_err();
        assert!(matches!(err.root(), DataflowError::UnconnectedInput(_, _)));
        assert!(err.span().is_some(), "instance errors carry a span");
    }

    #[test]
    fn unknown_module_rejected() {
        let src = "module top(input a); mystery m0 (.x(a)); endmodule";
        let f = parse(src).unwrap();
        assert!(matches!(
            flatten(&f, "top", &NoBlackboxes).unwrap_err().root(),
            DataflowError::UnknownModule(_)
        ));
    }

    #[test]
    fn unknown_port_rejected() {
        let src = "
        module leaf(input i, output o); assign o = i; endmodule
        module top(input a, output b);
            leaf l0 (.i(a), .o(b), .bogus(a));
        endmodule";
        let f = parse(src).unwrap();
        assert!(matches!(
            flatten(&f, "top", &NoBlackboxes).unwrap_err().root(),
            DataflowError::UnknownPort(_, _)
        ));
    }

    #[test]
    fn localparam_names_survive_with_prefix() {
        let src = "
        module child(input clk, output reg s);
            localparam IDLE = 1'd0;
            always @(posedge clk) s <= IDLE;
        endmodule
        module top(input clk, output w);
            child c0 (.clk(clk), .s(w));
        endmodule";
        let f = parse(src).unwrap();
        let flat = flatten(&f, "top", &NoBlackboxes).unwrap();
        assert!(flat.param("c0__IDLE").is_some());
        let printed = hwdbg_rtl::print_module(&flat);
        assert!(printed.contains("c0__s <= c0__IDLE"), "{printed}");
    }
}
