//! Identifier rewriting over AST fragments.
//!
//! Flattening renames child-instance signals (`fifo0__wptr`) and substitutes
//! parameters with their bound constants; the instrumentation passes in
//! `hwdbg-tools` reuse the same machinery.

use crate::DataflowError;
use hwdbg_rtl::{CaseArm, Expr, LValue, Stmt};

/// What an identifier rewrites to.
#[derive(Debug, Clone)]
pub enum Repl {
    /// Keep as a (possibly renamed) identifier.
    Name(String),
    /// Substitute an arbitrary expression (e.g. a folded parameter value).
    Expr(Expr),
}

/// Rewrites every identifier in `expr` according to `f`.
///
/// # Errors
///
/// Fails if an indexed/part-selected base name is rewritten to a non-name
/// expression (selecting into a parameter is not supported).
pub fn rewrite_expr(
    expr: &Expr,
    f: &dyn Fn(&str) -> Repl,
) -> Result<Expr, DataflowError> {
    Ok(match expr {
        Expr::Literal { .. } => expr.clone(),
        Expr::Ident(n) => match f(n) {
            Repl::Name(n2) => Expr::Ident(n2),
            Repl::Expr(e) => e,
        },
        Expr::Unary(op, e) => Expr::Unary(*op, Box::new(rewrite_expr(e, f)?)),
        Expr::Binary(op, a, b) => Expr::Binary(
            *op,
            Box::new(rewrite_expr(a, f)?),
            Box::new(rewrite_expr(b, f)?),
        ),
        Expr::Ternary(c, t, e) => Expr::Ternary(
            Box::new(rewrite_expr(c, f)?),
            Box::new(rewrite_expr(t, f)?),
            Box::new(rewrite_expr(e, f)?),
        ),
        Expr::Index(n, i) => Expr::Index(base_name(n, f)?, Box::new(rewrite_expr(i, f)?)),
        Expr::Range(n, a, b) => Expr::Range(
            base_name(n, f)?,
            Box::new(rewrite_expr(a, f)?),
            Box::new(rewrite_expr(b, f)?),
        ),
        Expr::Concat(parts) => Expr::Concat(
            parts
                .iter()
                .map(|p| rewrite_expr(p, f))
                .collect::<Result<_, _>>()?,
        ),
        Expr::Repeat(n, b) => Expr::Repeat(
            Box::new(rewrite_expr(n, f)?),
            Box::new(rewrite_expr(b, f)?),
        ),
        Expr::WidthCast(w, e) => Expr::WidthCast(*w, Box::new(rewrite_expr(e, f)?)),
        Expr::SignCast(s, e) => Expr::SignCast(*s, Box::new(rewrite_expr(e, f)?)),
    })
}

fn base_name(n: &str, f: &dyn Fn(&str) -> Repl) -> Result<String, DataflowError> {
    match f(n) {
        Repl::Name(n2) => Ok(n2),
        Repl::Expr(_) => Err(DataflowError::BadSelect(n.to_owned())),
    }
}

/// Rewrites an lvalue's target names.
///
/// # Errors
///
/// Fails if a target name maps to a non-name expression.
pub fn rewrite_lvalue(
    lv: &LValue,
    f: &dyn Fn(&str) -> Repl,
) -> Result<LValue, DataflowError> {
    Ok(match lv {
        LValue::Id(n) => LValue::Id(base_name(n, f)?),
        LValue::Index(n, i) => LValue::Index(base_name(n, f)?, rewrite_expr(i, f)?),
        LValue::Range(n, a, b) => {
            LValue::Range(base_name(n, f)?, rewrite_expr(a, f)?, rewrite_expr(b, f)?)
        }
        LValue::Concat(parts) => LValue::Concat(
            parts
                .iter()
                .map(|p| rewrite_lvalue(p, f))
                .collect::<Result<_, _>>()?,
        ),
    })
}

/// Rewrites every identifier in a statement tree.
///
/// # Errors
///
/// Propagates the errors of [`rewrite_expr`] / [`rewrite_lvalue`].
pub fn rewrite_stmt(stmt: &Stmt, f: &dyn Fn(&str) -> Repl) -> Result<Stmt, DataflowError> {
    Ok(match stmt {
        Stmt::Block(stmts) => Stmt::Block(
            stmts
                .iter()
                .map(|s| rewrite_stmt(s, f))
                .collect::<Result<_, _>>()?,
        ),
        Stmt::If { cond, then, els } => Stmt::If {
            cond: rewrite_expr(cond, f)?,
            then: Box::new(rewrite_stmt(then, f)?),
            els: match els {
                Some(e) => Some(Box::new(rewrite_stmt(e, f)?)),
                None => None,
            },
        },
        Stmt::Case {
            kind,
            expr,
            arms,
            default,
            span,
        } => Stmt::Case {
            kind: *kind,
            expr: rewrite_expr(expr, f)?,
            span: *span,
            arms: arms
                .iter()
                .map(|arm| {
                    Ok(CaseArm {
                        labels: arm
                            .labels
                            .iter()
                            .map(|l| rewrite_expr(l, f))
                            .collect::<Result<_, _>>()?,
                        body: rewrite_stmt(&arm.body, f)?,
                    })
                })
                .collect::<Result<Vec<_>, DataflowError>>()?,
            default: match default {
                Some(d) => Some(Box::new(rewrite_stmt(d, f)?)),
                None => None,
            },
        },
        Stmt::Assign {
            lhs,
            nonblocking,
            rhs,
            span,
        } => Stmt::Assign {
            lhs: rewrite_lvalue(lhs, f)?,
            nonblocking: *nonblocking,
            rhs: rewrite_expr(rhs, f)?,
            span: *span,
        },
        Stmt::For {
            var,
            init,
            cond,
            step,
            body,
        } => Stmt::For {
            var: base_name(var, f)?,
            init: rewrite_expr(init, f)?,
            cond: rewrite_expr(cond, f)?,
            step: rewrite_expr(step, f)?,
            body: Box::new(rewrite_stmt(body, f)?),
        },
        Stmt::Display { format, args, span } => Stmt::Display {
            format: format.clone(),
            args: args
                .iter()
                .map(|a| rewrite_expr(a, f))
                .collect::<Result<_, _>>()?,
            span: *span,
        },
        Stmt::Finish => Stmt::Finish,
        Stmt::Empty => Stmt::Empty,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwdbg_rtl::{parse_expr, print_expr};

    #[test]
    fn rename_and_substitute() {
        let e = parse_expr("W + counter[i]").unwrap();
        let out = rewrite_expr(&e, &|n| match n {
            "W" => Repl::Expr(Expr::sized(32, 8)),
            other => Repl::Name(format!("u0__{other}")),
        })
        .unwrap();
        assert_eq!(print_expr(&out), "32'h00000008 + u0__counter[u0__i]");
    }

    #[test]
    fn indexing_a_parameter_fails() {
        let e = parse_expr("P[2]").unwrap();
        let r = rewrite_expr(&e, &|_| Repl::Expr(Expr::number(3)));
        assert!(r.is_err());
    }
}
