//! Propagation relations and dependency graphs.
//!
//! This module implements the paper's core static analysis (§4.5.1): a
//! table of *propagation relations* `X ⇝σ Y`, meaning the value of `X` at
//! cycle `k` influences `Y` at cycle `k + latency` when the condition `σ`
//! holds at cycle `k`. Dependency Monitor consumes the same table for
//! k-cycle backward slicing, LossCheck uses it to synthesize shadow
//! logic, and the lint taint passes interpret it abstractly at compile
//! time.
//!
//! Relations are keyed by interned [`SigId`]s and share their condition
//! expressions via [`Arc`], so building the table allocates per *guard
//! case*, not per edge; [`BuildStats`] records the sharing and
//! construction asserts that no new names were interned (every edge
//! endpoint must already be in the design's [`SignalTable`]).

use crate::blackbox::BlackboxLib;
use crate::design::Design;
use crate::intern::{SigId, SignalTable};
use crate::DataflowError;
use hwdbg_rtl::{BinaryOp, Expr, LValue, Span, Stmt, UnaryOp};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// Whether an edge is a data flow or a control influence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepKind {
    /// `src` appears on the right-hand side of the assignment to `dst`.
    Data,
    /// `src` appears in the path condition (or index) guarding the
    /// assignment to `dst`.
    Control,
}

/// One propagation relation `src ⇝cond dst`.
#[derive(Debug, Clone)]
pub struct Relation {
    /// The influencing signal (resolve via [`PropGraph::name`]).
    pub src: SigId,
    /// The influenced signal.
    pub dst: SigId,
    /// Condition under which the propagation happens (`1'b1` if always).
    /// Shared between every relation extracted from the same guard case.
    pub cond: Arc<Expr>,
    /// Data or control dependency.
    pub kind: DepKind,
    /// Cycles of delay: 1 for clocked assignments, 0 for combinational.
    pub latency: u32,
    /// The assignment that produced the relation ([`Span::synthetic`] for
    /// blackbox model edges, which have no source).
    pub span: Span,
}

/// Allocation counters from [`PropGraph`] construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildStats {
    /// Total relations extracted.
    pub relations: usize,
    /// Distinct condition expressions allocated; every relation beyond
    /// this count shares an existing `Arc`.
    pub distinct_conds: usize,
    /// Signals in the table — identical to the design's, since
    /// construction interns nothing.
    pub signals: usize,
}

/// One normalized conjunct of a relation condition.
///
/// [`cond_leaves`] splits positive conjunctions and strips negations;
/// disjunctions and comparisons stay opaque, so each leaf is an
/// atomic fact that must hold (`positive`) or must not (`!positive`)
/// for the propagation to happen.
#[derive(Debug, Clone, Copy)]
pub struct CondLeaf<'a> {
    /// The atomic expression (negations peeled off).
    pub expr: &'a Expr,
    /// Polarity after peeling: `false` means the leaf is negated.
    pub positive: bool,
}

/// Normalizes a condition into conjunct leaves: top-level `&&` chains are
/// split, `!`/`~` flip polarity, everything else (disjunctions,
/// comparisons, bare signals) is one leaf.
pub fn cond_leaves(e: &Expr) -> Vec<CondLeaf<'_>> {
    let mut out = Vec::new();
    collect_leaves(e, true, &mut out);
    out
}

fn collect_leaves<'a>(e: &'a Expr, positive: bool, out: &mut Vec<CondLeaf<'a>>) {
    match e {
        Expr::Binary(BinaryOp::LogAnd, a, b) if positive => {
            collect_leaves(a, true, out);
            collect_leaves(b, true, out);
        }
        Expr::Unary(UnaryOp::LogNot | UnaryOp::Not, inner) => {
            collect_leaves(inner, !positive, out);
        }
        other => out.push(CondLeaf { expr: other, positive }),
    }
}

/// The full propagation-relation table of a design.
#[derive(Debug, Clone, Default)]
pub struct PropGraph {
    /// All relations, in extraction order.
    pub relations: Vec<Relation>,
    /// Interned signal names, cloned from the design's table.
    table: SignalTable,
    /// Relation indices grouped by destination signal.
    by_dst: Vec<Vec<u32>>,
    /// Relation indices grouped by source signal.
    by_src: Vec<Vec<u32>>,
    stats: BuildStats,
}

impl PropGraph {
    /// Builds the table from a resolved design. Blackbox instances
    /// contribute relations through their IP models (§5 of the paper).
    ///
    /// # Errors
    ///
    /// Fails if a blackbox instance references an IP the library does not
    /// know (cannot happen for designs elaborated with the same library).
    pub fn build(design: &Design, lib: &dyn BlackboxLib) -> Result<PropGraph, DataflowError> {
        let mut b = Builder::new(design);
        b.walk_design(design);
        for bb in &design.blackboxes {
            let spec = lib
                .spec(&bb.module)
                .ok_or_else(|| DataflowError::UnknownModule(bb.module.clone()))?;
            for rel in &spec.relations {
                let Some(src_expr) = bb.in_conns.get(&rel.src) else {
                    continue;
                };
                let Some(dst_lv) = bb.out_conns.get(&rel.dst) else {
                    continue;
                };
                let srcs: Vec<SigId> = src_expr
                    .idents()
                    .into_iter()
                    .filter_map(|s| b.table.id(s))
                    .collect();
                let dsts: Vec<SigId> = dst_lv
                    .target_names()
                    .into_iter()
                    .filter_map(|d| b.table.id(d))
                    .collect();
                if srcs.is_empty() || dsts.is_empty() {
                    continue;
                }
                let cond = rel
                    .cond
                    .as_ref()
                    .and_then(|cp| bb.in_conns.get(cp))
                    .cloned()
                    .unwrap_or_else(|| Expr::sized(1, 1));
                let cond = b.alloc_cond(cond);
                for &src in &srcs {
                    for &dst in &dsts {
                        b.relations.push(Relation {
                            src,
                            dst,
                            cond: Arc::clone(&cond),
                            kind: DepKind::Data,
                            latency: rel.latency,
                            span: Span::synthetic(),
                        });
                    }
                }
            }
        }
        Ok(b.finish(design))
    }

    /// Builds the table from the design's own RTL only, skipping blackbox
    /// model edges. Infallible — useful for consumers (like lint passes)
    /// that have no [`BlackboxLib`] in scope and analyze local logic.
    pub fn build_local(design: &Design) -> PropGraph {
        let mut b = Builder::new(design);
        b.walk_design(design);
        b.finish(design)
    }

    /// The interned signal namespace the relation IDs resolve in.
    pub fn table(&self) -> &SignalTable {
        &self.table
    }

    /// Looks up a signal name's ID (`None` for constants and unknowns).
    #[inline]
    pub fn id(&self, name: &str) -> Option<SigId> {
        self.table.id(name)
    }

    /// The name behind a relation endpoint.
    #[inline]
    pub fn name(&self, id: SigId) -> &str {
        self.table.name(id)
    }

    /// Allocation counters recorded during construction.
    pub fn stats(&self) -> BuildStats {
        self.stats
    }

    /// Relations whose destination is `dst`, via the per-signal index.
    pub fn incoming_ids(&self, dst: SigId) -> impl Iterator<Item = &Relation> + '_ {
        self.by_dst
            .get(dst.index())
            .map_or(&[][..], Vec::as_slice)
            .iter()
            .map(|&i| &self.relations[i as usize])
    }

    /// Relations whose source is `src`, via the per-signal index.
    pub fn outgoing_ids(&self, src: SigId) -> impl Iterator<Item = &Relation> + '_ {
        self.by_src
            .get(src.index())
            .map_or(&[][..], Vec::as_slice)
            .iter()
            .map(|&i| &self.relations[i as usize])
    }

    /// Relations whose destination is `dst` (name-based convenience).
    pub fn incoming<'a>(&'a self, dst: &str) -> impl Iterator<Item = &'a Relation> + 'a {
        self.id(dst)
            .into_iter()
            .flat_map(|id| self.incoming_ids(id))
    }

    /// Relations whose source is `src` (name-based convenience).
    pub fn outgoing<'a>(&'a self, src: &str) -> impl Iterator<Item = &'a Relation> + 'a {
        self.id(src)
            .into_iter()
            .flat_map(|id| self.outgoing_ids(id))
    }

    /// Backward slice: all signals that can influence `target` within `k`
    /// cycles, mapped to their minimum cycle distance. Includes `target`
    /// itself at distance 0. `kinds` filters which dependency kinds to
    /// follow.
    pub fn back_slice(
        &self,
        target: &str,
        k: u32,
        kinds: &[DepKind],
    ) -> BTreeMap<String, u32> {
        let mut out = BTreeMap::new();
        out.insert(target.to_owned(), 0);
        let Some(t) = self.id(target) else {
            return out;
        };
        let mut dist: BTreeMap<SigId, u32> = BTreeMap::new();
        dist.insert(t, 0);
        let mut queue: VecDeque<SigId> = VecDeque::new();
        queue.push_back(t);
        while let Some(cur) = queue.pop_front() {
            let d = dist.get(&cur).copied().unwrap_or(0);
            for rel in self.incoming_ids(cur) {
                if !kinds.contains(&rel.kind) {
                    continue;
                }
                let nd = d + rel.latency;
                if nd > k {
                    continue;
                }
                let better = dist.get(&rel.src).is_none_or(|&old| nd < old);
                if better {
                    dist.insert(rel.src, nd);
                    queue.push_back(rel.src);
                }
            }
        }
        for (id, d) in dist {
            out.insert(self.name(id).to_owned(), d);
        }
        out
    }

    /// Signals reachable from `src` along relations the `follow` predicate
    /// admits (unbounded, forward direction), including `src`. This is the
    /// guarded-reachability query the taint passes build on: the predicate
    /// typically inspects `cond` (via [`cond_leaves`]) and `kind`.
    pub fn guarded_reachable(
        &self,
        src: SigId,
        follow: &dyn Fn(&Relation) -> bool,
    ) -> BTreeSet<SigId> {
        let mut seen = BTreeSet::new();
        seen.insert(src);
        let mut queue = VecDeque::new();
        queue.push_back(src);
        while let Some(cur) = queue.pop_front() {
            for rel in self.outgoing_ids(cur) {
                if follow(rel) && seen.insert(rel.dst) {
                    queue.push_back(rel.dst);
                }
            }
        }
        seen
    }

    /// Everything that can influence `from` along the given dependency
    /// kinds, unbounded — the transitive-fanin cone. Includes `from`.
    pub fn backward_closure(&self, from: SigId, kinds: &[DepKind]) -> BTreeSet<SigId> {
        let mut seen = BTreeSet::new();
        seen.insert(from);
        let mut queue = VecDeque::new();
        queue.push_back(from);
        while let Some(cur) = queue.pop_front() {
            for rel in self.incoming_ids(cur) {
                if kinds.contains(&rel.kind) && seen.insert(rel.src) {
                    queue.push_back(rel.src);
                }
            }
        }
        seen
    }

    /// Signals reachable forward from `src` along data relations
    /// (unbounded), including `src`.
    pub fn forward_reachable(&self, src: &str) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        out.insert(src.to_owned());
        if let Some(id) = self.id(src) {
            for r in self.guarded_reachable(id, &|rel| rel.kind == DepKind::Data) {
                out.insert(self.name(r).to_owned());
            }
        }
        out
    }

    /// Signals that lie on some data-propagation path from `source` to
    /// `sink` (inclusive): the intersection of forward reachability from
    /// the source and backward reachability from the sink.
    pub fn propagation_sequence(&self, source: &str, sink: &str) -> BTreeSet<String> {
        let fwd = self.forward_reachable(source);
        let mut back = BTreeSet::new();
        back.insert(sink.to_owned());
        if let Some(id) = self.id(sink) {
            for r in self.backward_closure(id, &[DepKind::Data]) {
                back.insert(self.name(r).to_owned());
            }
        }
        fwd.intersection(&back).cloned().collect()
    }
}

/// Construction state: the cloned table plus allocation counters.
struct Builder {
    table: SignalTable,
    relations: Vec<Relation>,
    conds_allocated: usize,
}

impl Builder {
    fn new(design: &Design) -> Builder {
        Builder {
            table: design.table.clone(),
            relations: Vec::new(),
            conds_allocated: 0,
        }
    }

    fn alloc_cond(&mut self, e: Expr) -> Arc<Expr> {
        self.conds_allocated += 1;
        Arc::new(e)
    }

    fn walk_design(&mut self, design: &Design) {
        for c in &design.combs {
            self.walk_stmt(&c.body, &mut vec![], 0);
        }
        for p in &design.procs {
            self.walk_stmt(&p.body, &mut vec![], 1);
        }
    }

    fn finish(self, design: &Design) -> PropGraph {
        // Build-time counter assertion: construction resolves through the
        // design's table and must never widen the namespace.
        debug_assert_eq!(
            self.table.len(),
            design.table.len(),
            "PropGraph construction interned new signals"
        );
        let stats = BuildStats {
            relations: self.relations.len(),
            distinct_conds: self.conds_allocated,
            signals: self.table.len(),
        };
        debug_assert!(stats.distinct_conds <= stats.relations.max(1));
        let mut by_dst = vec![Vec::new(); self.table.len()];
        let mut by_src = vec![Vec::new(); self.table.len()];
        for (i, r) in self.relations.iter().enumerate() {
            by_dst[r.dst.index()].push(i as u32);
            by_src[r.src.index()].push(i as u32);
        }
        PropGraph {
            relations: self.relations,
            table: self.table,
            by_dst,
            by_src,
            stats,
        }
    }

    fn walk_stmt(&mut self, stmt: &Stmt, conds: &mut Vec<Expr>, latency: u32) {
        match stmt {
            Stmt::Block(stmts) => {
                for s in stmts {
                    self.walk_stmt(s, conds, latency);
                }
            }
            Stmt::If { cond, then, els } => {
                conds.push(cond.clone());
                self.walk_stmt(then, conds, latency);
                conds.pop();
                if let Some(els) = els {
                    conds.push(negate(cond));
                    self.walk_stmt(els, conds, latency);
                    conds.pop();
                }
            }
            Stmt::Case {
                expr,
                arms,
                default,
                ..
            } => {
                let mut not_prior: Vec<Expr> = Vec::new();
                for arm in arms {
                    let mut label_eq = Vec::new();
                    for l in &arm.labels {
                        label_eq.push(Expr::eq(expr.clone(), l.clone()));
                    }
                    let arm_cond = Expr::any(label_eq);
                    let mut full = not_prior.clone();
                    full.push(arm_cond.clone());
                    let n = full.len();
                    conds.extend(full);
                    self.walk_stmt(&arm.body, conds, latency);
                    conds.truncate(conds.len() - n);
                    not_prior.push(negate(&arm_cond));
                }
                if let Some(d) = default {
                    let n = not_prior.len();
                    conds.extend(not_prior);
                    self.walk_stmt(d, conds, latency);
                    conds.truncate(conds.len() - n);
                }
            }
            Stmt::Assign { lhs, rhs, span, .. } => {
                self.emit_assign(lhs, rhs, conds, latency, *span);
            }
            Stmt::For { body, .. } => {
                // Loop structure itself is compile-time; relations inside
                // the body hold under the enclosing conditions.
                self.walk_stmt(body, conds, latency);
            }
            Stmt::Display { .. } | Stmt::Finish | Stmt::Empty => {}
        }
    }

    fn emit_assign(
        &mut self,
        lhs: &LValue,
        rhs: &Expr,
        conds: &[Expr],
        latency: u32,
        span: Span,
    ) {
        let mut control_ids: BTreeSet<SigId> = BTreeSet::new();
        for c in conds {
            for n in c.idents() {
                if let Some(id) = self.table.id(n) {
                    control_ids.insert(id);
                }
            }
        }
        // Index expressions on the LHS are control: they steer where data
        // lands.
        let mut index_idents = BTreeSet::new();
        collect_lvalue_index_idents(lhs, &mut index_idents);
        for n in &index_idents {
            if let Some(id) = self.table.id(n) {
                control_ids.insert(id);
            }
        }

        let dsts: Vec<SigId> = lhs
            .target_names()
            .into_iter()
            .filter_map(|d| self.table.id(d))
            .collect();
        if dsts.is_empty() {
            return;
        }
        for (extra, leaf) in rhs_cases(rhs) {
            let mut case_ctrl = control_ids.clone();
            for e in &extra {
                for n in e.idents() {
                    if let Some(id) = self.table.id(n) {
                        case_ctrl.insert(id);
                    }
                }
            }
            let data_srcs: Vec<SigId> = leaf
                .idents()
                .into_iter()
                .filter_map(|s| self.table.id(s))
                .collect();
            // Only cases that produce edges get a condition allocation, so
            // `distinct_conds <= relations` holds by construction.
            if data_srcs.is_empty() && case_ctrl.is_empty() {
                continue;
            }
            let mut all = conds.to_vec();
            all.extend(extra.iter().cloned());
            // One shared Arc per guard case, not one clone per edge.
            let cond = self.alloc_cond(conj(&all));
            for &dst in &dsts {
                for &src in &data_srcs {
                    self.relations.push(Relation {
                        src,
                        dst,
                        cond: Arc::clone(&cond),
                        kind: DepKind::Data,
                        latency,
                        span,
                    });
                }
                for &src in &case_ctrl {
                    self.relations.push(Relation {
                        src,
                        dst,
                        cond: Arc::clone(&cond),
                        kind: DepKind::Control,
                        latency,
                        span,
                    });
                }
            }
        }
    }
}

/// Conjunction of a condition stack (`1'b1` when empty).
fn conj(conds: &[Expr]) -> Expr {
    let mut it = conds.iter().cloned();
    match it.next() {
        None => Expr::sized(1, 1),
        Some(first) => it.fold(first, |acc, c| {
            Expr::Binary(
                hwdbg_rtl::BinaryOp::LogAnd,
                Box::new(acc),
                Box::new(c),
            )
        }),
    }
}

fn negate(e: &Expr) -> Expr {
    Expr::Unary(hwdbg_rtl::UnaryOp::LogNot, Box::new(e.clone()))
}

/// Splits a right-hand side into `(extra conditions, leaf value)` cases by
/// decomposing top-level ternaries, per the paper's running example where
/// `out <= cond_a ? a : b` yields `a ⇝cond_a out` and `b ⇝¬cond_a out`.
fn rhs_cases(rhs: &Expr) -> Vec<(Vec<Expr>, Expr)> {
    match rhs {
        Expr::Ternary(c, t, f) => {
            let mut out = Vec::new();
            for (mut extra, leaf) in rhs_cases(t) {
                extra.insert(0, (**c).clone());
                out.push((extra, leaf));
            }
            for (mut extra, leaf) in rhs_cases(f) {
                extra.insert(0, negate(c));
                out.push((extra, leaf));
            }
            out
        }
        other => vec![(Vec::new(), other.clone())],
    }
}

fn collect_lvalue_index_idents(lv: &LValue, out: &mut BTreeSet<String>) {
    match lv {
        LValue::Id(_) => {}
        LValue::Index(_, i) => {
            for n in i.idents() {
                out.insert(n.to_owned());
            }
        }
        LValue::Range(_, a, b) => {
            for n in a.idents().into_iter().chain(b.idents()) {
                out.insert(n.to_owned());
            }
        }
        LValue::Concat(parts) => {
            for p in parts {
                collect_lvalue_index_idents(p, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blackbox::NoBlackboxes;
    use crate::design::elaborate;
    use hwdbg_rtl::{parse, print_expr};

    fn graph(src: &str, top: &str) -> (Design, PropGraph) {
        let d = elaborate(&parse(src).unwrap(), top, &NoBlackboxes).unwrap();
        let g = PropGraph::build(&d, &NoBlackboxes).unwrap();
        (d, g)
    }

    /// The paper's §4.5.1 running example must produce exactly its table.
    #[test]
    fn paper_running_example_table() {
        let src = "module m(input clk, input cond_a, input cond_b,
                            input [7:0] a, input [7:0] in, input in_valid,
                            output reg [7:0] out);
            reg [7:0] b;
            always @(posedge clk) begin
                if (cond_a) out <= a;
                else if (cond_b) out <= b;
                if (in_valid) b <= in;
            end
        endmodule";
        let (_, g) = graph(src, "m");
        let data: Vec<_> = g
            .relations
            .iter()
            .filter(|r| r.kind == DepKind::Data)
            .map(|r| {
                (
                    g.name(r.src).to_owned(),
                    g.name(r.dst).to_owned(),
                    print_expr(&r.cond),
                )
            })
            .collect();
        assert!(data.contains(&("a".into(), "out".into(), "cond_a".into())), "{data:?}");
        assert!(
            data.contains(&(
                "b".into(),
                "out".into(),
                "(!cond_a) && cond_b".into()
            )),
            "{data:?}"
        );
        assert!(
            data.contains(&("in".into(), "b".into(), "in_valid".into())),
            "{data:?}"
        );
        // All clocked: latency 1.
        assert!(g.relations.iter().all(|r| r.latency == 1));
    }

    #[test]
    fn ternary_rhs_decomposed() {
        let src = "module m(input s, input a, input b, output y);
            assign y = s ? a : b;
        endmodule";
        let (_, g) = graph(src, "m");
        let conds: Vec<_> = g
            .relations
            .iter()
            .filter(|r| r.kind == DepKind::Data)
            .map(|r| (g.name(r.src).to_owned(), print_expr(&r.cond)))
            .collect();
        assert!(conds.contains(&("a".into(), "s".into())));
        assert!(conds.contains(&("b".into(), "!s".into())));
        assert!(g.relations.iter().all(|r| r.latency == 0));
    }

    #[test]
    fn case_conditions_and_control() {
        let src = "module m(input clk, input [1:0] sel, input [3:0] a, output reg [3:0] y);
            always @(posedge clk)
                case (sel)
                    2'd0: y <= a;
                    default: y <= 4'd0;
                endcase
        endmodule";
        let (_, g) = graph(src, "m");
        let ctrl: Vec<_> = g
            .relations
            .iter()
            .filter(|r| r.kind == DepKind::Control)
            .map(|r| (g.name(r.src).to_owned(), g.name(r.dst).to_owned()))
            .collect();
        assert!(ctrl.contains(&("sel".into(), "y".into())), "{ctrl:?}");
    }

    #[test]
    fn back_slice_counts_cycles() {
        let src = "module m(input clk, input [7:0] d, output [7:0] q);
            reg [7:0] s1;
            reg [7:0] s2;
            wire [7:0] w;
            assign w = s1 + 8'd1;
            assign q = s2;
            always @(posedge clk) begin
                s1 <= d;
                s2 <= w;
            end
        endmodule";
        let (_, g) = graph(src, "m");
        let slice = g.back_slice("q", 2, &[DepKind::Data]);
        assert_eq!(slice.get("q"), Some(&0));
        assert_eq!(slice.get("s2"), Some(&0)); // comb assign, latency 0
        assert_eq!(slice.get("w"), Some(&1));
        assert_eq!(slice.get("s1"), Some(&1));
        assert_eq!(slice.get("d"), Some(&2));
        let slice1 = g.back_slice("q", 1, &[DepKind::Data]);
        assert!(!slice1.contains_key("d"));
    }

    #[test]
    fn propagation_sequence_between() {
        let src = "module m(input clk, input [7:0] din, input v, output reg [7:0] dout);
            reg [7:0] b;
            reg [7:0] unrelated;
            always @(posedge clk) begin
                if (v) b <= din;
                dout <= b;
                unrelated <= dout;
            end
        endmodule";
        let (_, g) = graph(src, "m");
        let seq = g.propagation_sequence("din", "dout");
        assert!(seq.contains("din"));
        assert!(seq.contains("b"));
        assert!(seq.contains("dout"));
        assert!(!seq.contains("unrelated"));
    }

    #[test]
    fn lhs_index_is_control() {
        let src = "module m(input clk, input [3:0] wa, input [7:0] d);
            reg [7:0] mem [0:15];
            always @(posedge clk) mem[wa] <= d;
        endmodule";
        let (_, g) = graph(src, "m");
        let wa = g.id("wa").unwrap();
        let mem = g.id("mem").unwrap();
        let d = g.id("d").unwrap();
        assert!(g
            .relations
            .iter()
            .any(|r| r.src == wa && r.dst == mem && r.kind == DepKind::Control));
        assert!(g
            .relations
            .iter()
            .any(|r| r.src == d && r.dst == mem && r.kind == DepKind::Data));
        // The per-signal indexes agree with the flat scan.
        assert_eq!(g.incoming_ids(mem).count(), g.incoming("mem").count());
        assert_eq!(g.outgoing_ids(wa).count(), g.outgoing("wa").count());
    }

    #[test]
    fn interning_shares_conds_and_adds_no_signals() {
        let src = "module m(input clk, input en, input [7:0] a, input [7:0] b,
                            output reg [7:0] x, output reg [7:0] y);
            always @(posedge clk) if (en) begin
                x <= a + b;
                y <= a - b;
            end
        endmodule";
        let (d, g) = graph(src, "m");
        let stats = g.stats();
        // `x <= a + b` under `en` is 2 data + 1 control edges on one
        // shared cond; likewise for `y`. 6 relations, 2 allocations.
        assert_eq!(stats.relations, 6);
        assert_eq!(stats.distinct_conds, 2);
        assert_eq!(stats.signals, d.table.len());
        // The shared conds really are the same allocation.
        let first = &g.relations[0];
        assert!(g
            .relations
            .iter()
            .filter(|r| r.dst == first.dst)
            .all(|r| Arc::ptr_eq(&r.cond, &first.cond)));
        // Every RTL relation carries a real source span.
        assert!(g.relations.iter().all(|r| r.span != Span::synthetic()));
    }

    #[test]
    fn build_local_skips_blackboxes_only() {
        let src = "module m(input clk, input [7:0] d, output reg [7:0] q);
            always @(posedge clk) q <= d;
        endmodule";
        let d = elaborate(&parse(src).unwrap(), "m", &NoBlackboxes).unwrap();
        let g = PropGraph::build_local(&d);
        assert_eq!(g.relations.len(), 1);
        assert!(g.back_slice("q", 1, &[DepKind::Data]).contains_key("d"));
    }

    #[test]
    fn cond_leaves_normalize_polarity() {
        let e = hwdbg_rtl::parse_expr("a && !b && (c || d)").unwrap();
        let leaves = cond_leaves(&e);
        assert_eq!(leaves.len(), 3);
        assert!(leaves[0].positive);
        assert!(!leaves[1].positive);
        assert!(leaves[2].positive);
        assert!(matches!(leaves[2].expr, Expr::Binary(BinaryOp::LogOr, ..)));
    }
}
