//! Propagation relations and dependency graphs.
//!
//! This module implements the paper's core static analysis (§4.5.1): a
//! table of *propagation relations* `X ⇝σ Y`, meaning the value of `X` at
//! cycle `k` influences `Y` at cycle `k + latency` when the condition `σ`
//! holds at cycle `k`. Dependency Monitor consumes the same table for
//! k-cycle backward slicing, and LossCheck uses it to synthesize shadow
//! logic.

use crate::blackbox::BlackboxLib;
use crate::design::Design;
use crate::DataflowError;
use hwdbg_rtl::{Expr, LValue, Stmt};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Whether an edge is a data flow or a control influence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepKind {
    /// `src` appears on the right-hand side of the assignment to `dst`.
    Data,
    /// `src` appears in the path condition (or index) guarding the
    /// assignment to `dst`.
    Control,
}

/// One propagation relation `src ⇝cond dst`.
#[derive(Debug, Clone)]
pub struct Relation {
    /// The influencing signal.
    pub src: String,
    /// The influenced signal.
    pub dst: String,
    /// Condition under which the propagation happens (`1'b1` if always).
    pub cond: Expr,
    /// Data or control dependency.
    pub kind: DepKind,
    /// Cycles of delay: 1 for clocked assignments, 0 for combinational.
    pub latency: u32,
}

/// The full propagation-relation table of a design.
#[derive(Debug, Clone, Default)]
pub struct PropGraph {
    /// All relations, in extraction order.
    pub relations: Vec<Relation>,
}

impl PropGraph {
    /// Builds the table from a resolved design. Blackbox instances
    /// contribute relations through their IP models (§5 of the paper).
    ///
    /// # Errors
    ///
    /// Fails if a blackbox instance references an IP the library does not
    /// know (cannot happen for designs elaborated with the same library).
    pub fn build(design: &Design, lib: &dyn BlackboxLib) -> Result<PropGraph, DataflowError> {
        let mut g = PropGraph::default();
        let consts: BTreeSet<&String> = design.consts.keys().collect();
        let is_signal = |n: &str| !consts.contains(&n.to_owned());
        for c in &design.combs {
            walk_stmt(&c.body, &mut vec![], 0, &is_signal, &mut g.relations);
        }
        for p in &design.procs {
            walk_stmt(&p.body, &mut vec![], 1, &is_signal, &mut g.relations);
        }
        for bb in &design.blackboxes {
            let spec = lib
                .spec(&bb.module)
                .ok_or_else(|| DataflowError::UnknownModule(bb.module.clone()))?;
            for rel in &spec.relations {
                let Some(src_expr) = bb.in_conns.get(&rel.src) else {
                    continue;
                };
                let Some(dst_lv) = bb.out_conns.get(&rel.dst) else {
                    continue;
                };
                let cond = rel
                    .cond
                    .as_ref()
                    .and_then(|cp| bb.in_conns.get(cp))
                    .cloned()
                    .unwrap_or_else(|| Expr::sized(1, 1));
                for src in src_expr.idents() {
                    if !is_signal(src) {
                        continue;
                    }
                    for dst in dst_lv.target_names() {
                        g.relations.push(Relation {
                            src: src.to_owned(),
                            dst: dst.to_owned(),
                            cond: cond.clone(),
                            kind: DepKind::Data,
                            latency: rel.latency,
                        });
                    }
                }
            }
        }
        Ok(g)
    }

    /// Relations whose destination is `dst`.
    pub fn incoming<'a>(&'a self, dst: &'a str) -> impl Iterator<Item = &'a Relation> + 'a {
        self.relations.iter().filter(move |r| r.dst == dst)
    }

    /// Relations whose source is `src`.
    pub fn outgoing<'a>(&'a self, src: &'a str) -> impl Iterator<Item = &'a Relation> + 'a {
        self.relations.iter().filter(move |r| r.src == src)
    }

    /// Backward slice: all signals that can influence `target` within `k`
    /// cycles, mapped to their minimum cycle distance. Includes `target`
    /// itself at distance 0. `kinds` filters which dependency kinds to
    /// follow.
    pub fn back_slice(
        &self,
        target: &str,
        k: u32,
        kinds: &[DepKind],
    ) -> BTreeMap<String, u32> {
        let mut dist: BTreeMap<String, u32> = BTreeMap::new();
        dist.insert(target.to_owned(), 0);
        let mut queue: VecDeque<String> = VecDeque::new();
        queue.push_back(target.to_owned());
        while let Some(cur) = queue.pop_front() {
            let d = dist[&cur];
            for rel in self.incoming(&cur) {
                if !kinds.contains(&rel.kind) {
                    continue;
                }
                let nd = d + rel.latency;
                if nd > k {
                    continue;
                }
                let better = dist.get(&rel.src).is_none_or(|&old| nd < old);
                if better {
                    dist.insert(rel.src.clone(), nd);
                    queue.push_back(rel.src.clone());
                }
            }
        }
        dist
    }

    /// Signals reachable forward from `src` along data relations
    /// (unbounded), including `src`.
    pub fn forward_reachable(&self, src: &str) -> BTreeSet<String> {
        let mut seen = BTreeSet::new();
        seen.insert(src.to_owned());
        let mut queue = VecDeque::new();
        queue.push_back(src.to_owned());
        while let Some(cur) = queue.pop_front() {
            for rel in self.outgoing(&cur) {
                if rel.kind == DepKind::Data && seen.insert(rel.dst.clone()) {
                    queue.push_back(rel.dst.clone());
                }
            }
        }
        seen
    }

    /// Signals that lie on some data-propagation path from `source` to
    /// `sink` (inclusive): the intersection of forward reachability from
    /// the source and backward reachability from the sink.
    pub fn propagation_sequence(&self, source: &str, sink: &str) -> BTreeSet<String> {
        let fwd = self.forward_reachable(source);
        // Backward reachability along data edges, unbounded.
        let mut back = BTreeSet::new();
        back.insert(sink.to_owned());
        let mut queue = VecDeque::new();
        queue.push_back(sink.to_owned());
        while let Some(cur) = queue.pop_front() {
            for rel in self.incoming(&cur) {
                if rel.kind == DepKind::Data && back.insert(rel.src.clone()) {
                    queue.push_back(rel.src.clone());
                }
            }
        }
        fwd.intersection(&back).cloned().collect()
    }
}

/// Conjunction of a condition stack (`1'b1` when empty).
fn conj(conds: &[Expr]) -> Expr {
    let mut it = conds.iter().cloned();
    match it.next() {
        None => Expr::sized(1, 1),
        Some(first) => it.fold(first, |acc, c| {
            Expr::Binary(
                hwdbg_rtl::BinaryOp::LogAnd,
                Box::new(acc),
                Box::new(c),
            )
        }),
    }
}

fn negate(e: &Expr) -> Expr {
    Expr::Unary(hwdbg_rtl::UnaryOp::LogNot, Box::new(e.clone()))
}

fn walk_stmt(
    stmt: &Stmt,
    conds: &mut Vec<Expr>,
    latency: u32,
    is_signal: &dyn Fn(&str) -> bool,
    out: &mut Vec<Relation>,
) {
    match stmt {
        Stmt::Block(stmts) => {
            for s in stmts {
                walk_stmt(s, conds, latency, is_signal, out);
            }
        }
        Stmt::If { cond, then, els } => {
            conds.push(cond.clone());
            walk_stmt(then, conds, latency, is_signal, out);
            conds.pop();
            if let Some(els) = els {
                conds.push(negate(cond));
                walk_stmt(els, conds, latency, is_signal, out);
                conds.pop();
            }
        }
        Stmt::Case {
            expr,
            arms,
            default,
            ..
        } => {
            let mut not_prior: Vec<Expr> = Vec::new();
            for arm in arms {
                let mut label_eq = Vec::new();
                for l in &arm.labels {
                    label_eq.push(Expr::eq(expr.clone(), l.clone()));
                }
                let arm_cond = Expr::any(label_eq);
                let mut full = not_prior.clone();
                full.push(arm_cond.clone());
                let n = full.len();
                conds.extend(full);
                walk_stmt(&arm.body, conds, latency, is_signal, out);
                conds.truncate(conds.len() - n);
                not_prior.push(negate(&arm_cond));
            }
            if let Some(d) = default {
                let n = not_prior.len();
                conds.extend(not_prior);
                walk_stmt(d, conds, latency, is_signal, out);
                conds.truncate(conds.len() - n);
            }
        }
        Stmt::Assign { lhs, rhs, .. } => {
            emit_assign(lhs, rhs, conds, latency, is_signal, out);
        }
        Stmt::For { body, .. } => {
            // Loop structure itself is compile-time; relations inside the
            // body hold under the enclosing conditions.
            walk_stmt(body, conds, latency, is_signal, out);
        }
        Stmt::Display { .. } | Stmt::Finish | Stmt::Empty => {}
    }
}

/// Splits a right-hand side into `(extra conditions, leaf value)` cases by
/// decomposing top-level ternaries, per the paper's running example where
/// `out <= cond_a ? a : b` yields `a ⇝cond_a out` and `b ⇝¬cond_a out`.
fn rhs_cases(rhs: &Expr) -> Vec<(Vec<Expr>, Expr)> {
    match rhs {
        Expr::Ternary(c, t, f) => {
            let mut out = Vec::new();
            for (mut extra, leaf) in rhs_cases(t) {
                extra.insert(0, (**c).clone());
                out.push((extra, leaf));
            }
            for (mut extra, leaf) in rhs_cases(f) {
                extra.insert(0, negate(c));
                out.push((extra, leaf));
            }
            out
        }
        other => vec![(Vec::new(), other.clone())],
    }
}

fn emit_assign(
    lhs: &LValue,
    rhs: &Expr,
    conds: &[Expr],
    latency: u32,
    is_signal: &dyn Fn(&str) -> bool,
    out: &mut Vec<Relation>,
) {
    let mut control_idents: BTreeSet<String> = BTreeSet::new();
    for c in conds {
        for n in c.idents() {
            control_idents.insert(n.to_owned());
        }
    }
    // Index expressions on the LHS are control: they steer where data lands.
    collect_lvalue_index_idents(lhs, &mut control_idents);

    for (extra, leaf) in rhs_cases(rhs) {
        let mut all = conds.to_vec();
        all.extend(extra.iter().cloned());
        let cond = conj(&all);
        let mut extra_ctrl = control_idents.clone();
        for e in &extra {
            for n in e.idents() {
                extra_ctrl.insert(n.to_owned());
            }
        }
        for dst in lhs.target_names() {
            for src in leaf.idents() {
                if is_signal(src) {
                    out.push(Relation {
                        src: src.to_owned(),
                        dst: dst.to_owned(),
                        cond: cond.clone(),
                        kind: DepKind::Data,
                        latency,
                    });
                }
            }
            for src in &extra_ctrl {
                if is_signal(src) {
                    out.push(Relation {
                        src: src.clone(),
                        dst: dst.to_owned(),
                        cond: cond.clone(),
                        kind: DepKind::Control,
                        latency,
                    });
                }
            }
        }
    }
}

fn collect_lvalue_index_idents(lv: &LValue, out: &mut BTreeSet<String>) {
    match lv {
        LValue::Id(_) => {}
        LValue::Index(_, i) => {
            for n in i.idents() {
                out.insert(n.to_owned());
            }
        }
        LValue::Range(_, a, b) => {
            for n in a.idents().into_iter().chain(b.idents()) {
                out.insert(n.to_owned());
            }
        }
        LValue::Concat(parts) => {
            for p in parts {
                collect_lvalue_index_idents(p, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blackbox::NoBlackboxes;
    use crate::design::elaborate;
    use hwdbg_rtl::{parse, print_expr};

    fn graph(src: &str, top: &str) -> (Design, PropGraph) {
        let d = elaborate(&parse(src).unwrap(), top, &NoBlackboxes).unwrap();
        let g = PropGraph::build(&d, &NoBlackboxes).unwrap();
        (d, g)
    }

    /// The paper's §4.5.1 running example must produce exactly its table.
    #[test]
    fn paper_running_example_table() {
        let src = "module m(input clk, input cond_a, input cond_b,
                            input [7:0] a, input [7:0] in, input in_valid,
                            output reg [7:0] out);
            reg [7:0] b;
            always @(posedge clk) begin
                if (cond_a) out <= a;
                else if (cond_b) out <= b;
                if (in_valid) b <= in;
            end
        endmodule";
        let (_, g) = graph(src, "m");
        let data: Vec<_> = g
            .relations
            .iter()
            .filter(|r| r.kind == DepKind::Data)
            .map(|r| (r.src.clone(), r.dst.clone(), print_expr(&r.cond)))
            .collect();
        assert!(data.contains(&("a".into(), "out".into(), "cond_a".into())), "{data:?}");
        assert!(
            data.contains(&(
                "b".into(),
                "out".into(),
                "(!cond_a) && cond_b".into()
            )),
            "{data:?}"
        );
        assert!(
            data.contains(&("in".into(), "b".into(), "in_valid".into())),
            "{data:?}"
        );
        // All clocked: latency 1.
        assert!(g.relations.iter().all(|r| r.latency == 1));
    }

    #[test]
    fn ternary_rhs_decomposed() {
        let src = "module m(input s, input a, input b, output y);
            assign y = s ? a : b;
        endmodule";
        let (_, g) = graph(src, "m");
        let conds: Vec<_> = g
            .relations
            .iter()
            .filter(|r| r.kind == DepKind::Data)
            .map(|r| (r.src.clone(), print_expr(&r.cond)))
            .collect();
        assert!(conds.contains(&("a".into(), "s".into())));
        assert!(conds.contains(&("b".into(), "!s".into())));
        assert!(g.relations.iter().all(|r| r.latency == 0));
    }

    #[test]
    fn case_conditions_and_control() {
        let src = "module m(input clk, input [1:0] sel, input [3:0] a, output reg [3:0] y);
            always @(posedge clk)
                case (sel)
                    2'd0: y <= a;
                    default: y <= 4'd0;
                endcase
        endmodule";
        let (_, g) = graph(src, "m");
        let ctrl: Vec<_> = g
            .relations
            .iter()
            .filter(|r| r.kind == DepKind::Control)
            .map(|r| (r.src.clone(), r.dst.clone()))
            .collect();
        assert!(ctrl.contains(&("sel".into(), "y".into())), "{ctrl:?}");
    }

    #[test]
    fn back_slice_counts_cycles() {
        let src = "module m(input clk, input [7:0] d, output [7:0] q);
            reg [7:0] s1;
            reg [7:0] s2;
            wire [7:0] w;
            assign w = s1 + 8'd1;
            assign q = s2;
            always @(posedge clk) begin
                s1 <= d;
                s2 <= w;
            end
        endmodule";
        let (_, g) = graph(src, "m");
        let slice = g.back_slice("q", 2, &[DepKind::Data]);
        assert_eq!(slice.get("q"), Some(&0));
        assert_eq!(slice.get("s2"), Some(&0)); // comb assign, latency 0
        assert_eq!(slice.get("w"), Some(&1));
        assert_eq!(slice.get("s1"), Some(&1));
        assert_eq!(slice.get("d"), Some(&2));
        let slice1 = g.back_slice("q", 1, &[DepKind::Data]);
        assert!(!slice1.contains_key("d"));
    }

    #[test]
    fn propagation_sequence_between() {
        let src = "module m(input clk, input [7:0] din, input v, output reg [7:0] dout);
            reg [7:0] b;
            reg [7:0] unrelated;
            always @(posedge clk) begin
                if (v) b <= din;
                dout <= b;
                unrelated <= dout;
            end
        endmodule";
        let (_, g) = graph(src, "m");
        let seq = g.propagation_sequence("din", "dout");
        assert!(seq.contains("din"));
        assert!(seq.contains("b"));
        assert!(seq.contains("dout"));
        assert!(!seq.contains("unrelated"));
    }

    #[test]
    fn lhs_index_is_control() {
        let src = "module m(input clk, input [3:0] wa, input [7:0] d);
            reg [7:0] mem [0:15];
            always @(posedge clk) mem[wa] <= d;
        endmodule";
        let (_, g) = graph(src, "m");
        assert!(g
            .relations
            .iter()
            .any(|r| r.src == "wa" && r.dst == "mem" && r.kind == DepKind::Control));
        assert!(g
            .relations
            .iter()
            .any(|r| r.src == "d" && r.dst == "mem" && r.kind == DepKind::Data));
    }
}
