//! Elaboration integration tests: deeper hierarchies, parameterized
//! instantiation chains, and the analysis invariants the tools rely on.

use hwdbg_dataflow::{
    elaborate, eval_const, DataflowError, DepKind, NoBlackboxes, PropGraph, SigKind,
};
use hwdbg_rtl::parse;

#[test]
fn parameter_overrides_chain_through_levels() {
    // Parameters computed from parameters, overridden per instance.
    let src = "
    module leaf #(parameter W = 2)(input [W-1:0] i, output [W-1:0] o);
        assign o = ~i;
    endmodule
    module mid #(parameter N = 4, parameter HALF = N / 2)(
        input [N-1:0] x, output [N-1:0] y);
        wire [HALF-1:0] lo;
        wire [HALF-1:0] hi;
        leaf #(.W(HALF)) l0 (.i(x[HALF-1:0]), .o(lo));
        leaf #(.W(HALF)) l1 (.i(x[N-1:HALF]), .o(hi));
        assign y = {hi, lo};
    endmodule
    module top(input [7:0] a, output [7:0] b);
        mid #(.N(8)) m0 (.x(a), .y(b));
    endmodule";
    let d = elaborate(&parse(src).unwrap(), "top", &NoBlackboxes).unwrap();
    assert_eq!(d.signal("m0__l0__i").unwrap().width, 4);
    assert_eq!(d.signal("m0__l1__o").unwrap().width, 4);
    // HALF folded to 4 inside mid.
    assert_eq!(
        eval_const(
            &hwdbg_rtl::parse_expr("m0__HALF").unwrap_or(hwdbg_rtl::Expr::number(0)),
            &d.consts
        )
        .map(|b| b.to_u64())
        .unwrap_or(4),
        4
    );
}

#[test]
fn same_module_instantiated_twice_gets_distinct_names() {
    let src = "
    module stage(input clk, input [3:0] d, output reg [3:0] q);
        always @(posedge clk) q <= d;
    endmodule
    module top(input clk, input [3:0] a, output [3:0] z);
        wire [3:0] mid;
        stage s0 (.clk(clk), .d(a), .q(mid));
        stage s1 (.clk(clk), .d(mid), .q(z));
    endmodule";
    let d = elaborate(&parse(src).unwrap(), "top", &NoBlackboxes).unwrap();
    assert!(d.signal("s0__q").is_some());
    assert!(d.signal("s1__q").is_some());
    assert_eq!(d.procs.len(), 2);
}

#[test]
fn duplicate_instance_names_rejected() {
    let src = "
    module leaf(input i, output o); assign o = i; endmodule
    module top(input a, output b, output c);
        leaf u (.i(a), .o(b));
        leaf u (.i(a), .o(c));
    endmodule";
    let err = elaborate(&parse(src).unwrap(), "top", &NoBlackboxes).unwrap_err();
    assert!(matches!(err.root(), DataflowError::DuplicateName(_)));
}

#[test]
fn output_port_concat_connection() {
    let src = "
    module pair(output [1:0] o); assign o = 2'b10; endmodule
    module top(output hi, output lo);
        pair p0 (.o({hi, lo}));
    endmodule";
    let d = elaborate(&parse(src).unwrap(), "top", &NoBlackboxes).unwrap();
    assert_eq!(d.signal("hi").unwrap().kind, SigKind::Output);
}

#[test]
fn width_expressions_from_clog2_style_params() {
    let src = "
    module m #(parameter DEPTH = 24, parameter AW = 5)(
        input clk, input [AW-1:0] a, input [7:0] d);
        reg [7:0] mem [0:DEPTH-1];
        always @(posedge clk) mem[a] <= d;
    endmodule";
    let d = elaborate(&parse(src).unwrap(), "m", &NoBlackboxes).unwrap();
    assert_eq!(d.signal("mem").unwrap().mem_depth, Some(24));
    assert_eq!(d.signal("a").unwrap().width, 5);
}

#[test]
fn propagation_survives_flattening() {
    let src = "
    module stage(input clk, input [7:0] d, input en, output reg [7:0] q);
        always @(posedge clk) if (en) q <= d;
    endmodule
    module top(input clk, input [7:0] x, input go, output [7:0] y);
        wire [7:0] mid;
        stage a (.clk(clk), .d(x), .en(go), .q(mid));
        stage b (.clk(clk), .d(mid), .en(go), .q(y));
    endmodule";
    let d = elaborate(&parse(src).unwrap(), "top", &NoBlackboxes).unwrap();
    let g = PropGraph::build(&d, &NoBlackboxes).unwrap();
    let slice = g.back_slice("y", 3, &[DepKind::Data]);
    assert!(slice.contains_key("x"), "{slice:?}");
    assert_eq!(slice["a__q"], 1);
    assert_eq!(slice["x"], 2);
    // Control flows through `go` at each stage.
    let both = g.back_slice("y", 3, &[DepKind::Data, DepKind::Control]);
    assert!(both.contains_key("go"));
}

#[test]
fn expr_width_agrees_with_declared_signals() {
    let src = "module m(input [7:0] a, input [15:0] b, output [15:0] q);
        assign q = a + b;
    endmodule";
    let d = elaborate(&parse(src).unwrap(), "m", &NoBlackboxes).unwrap();
    let e = hwdbg_rtl::parse_expr("a + b").unwrap();
    assert_eq!(d.expr_width(&e), Some(16));
    let e = hwdbg_rtl::parse_expr("a == b").unwrap();
    assert_eq!(d.expr_width(&e), Some(1));
    let e = hwdbg_rtl::parse_expr("{a, b}").unwrap();
    assert_eq!(d.expr_width(&e), Some(24));
    let e = hwdbg_rtl::parse_expr("ghost + 1").unwrap();
    assert_eq!(d.expr_width(&e), None);
}

#[test]
fn top_module_ports_keep_unprefixed_names() {
    let src = "module top(input clk, input [3:0] din, output reg [3:0] dout);
        always @(posedge clk) dout <= din;
    endmodule";
    let d = elaborate(&parse(src).unwrap(), "top", &NoBlackboxes).unwrap();
    for name in ["clk", "din", "dout"] {
        assert!(d.signal(name).is_some(), "{name}");
    }
}

// ---------------------------------------------------------------------------
// Malformed designs: spanned, typed diagnostics instead of panics.
// ---------------------------------------------------------------------------

#[test]
fn duplicate_whole_signal_driver_rejected_with_span() {
    let src = "
    module m(input a, input b, output w);
        assign w = a;
        assign w = b;
    endmodule";
    let err = elaborate(&parse(src).unwrap(), "m", &NoBlackboxes).unwrap_err();
    assert!(
        matches!(err.root(), DataflowError::DuplicateDriver(n) if n == "w"),
        "{err:?}"
    );
    let diag: hwdbg_diag::HwdbgError = err.into();
    assert_eq!(diag.code, hwdbg_diag::ErrorCode::DuplicateDriver);
    assert_eq!(diag.signals, vec!["w".to_string()]);
}

#[test]
fn partial_writes_from_distinct_drivers_stay_legal() {
    // Slice-wise multi-drive is how SignalCat assembles its payload wires;
    // it must NOT be flagged as a duplicate driver.
    let src = "
    module m(input a, input b, output [1:0] w);
        assign w[0] = a;
        assign w[1] = b;
    endmodule";
    assert!(elaborate(&parse(src).unwrap(), "m", &NoBlackboxes).is_ok());
}

#[test]
fn zero_width_slice_rejected_with_span() {
    let src = "
    module m(input [7:0] a, output w);
        assign w = a[3:5];
    endmodule";
    let err = elaborate(&parse(src).unwrap(), "m", &NoBlackboxes).unwrap_err();
    assert!(
        matches!(err.root(), DataflowError::BadRange(_)),
        "{err:?}"
    );
    let diag: hwdbg_diag::HwdbgError = err.into();
    assert_eq!(diag.code, hwdbg_diag::ErrorCode::BadRange);
}

#[test]
fn oversized_repeat_rejected_not_oom() {
    let src = "
    module m(input a, output w);
        assign w = |{1048577{a}};
    endmodule";
    let err = elaborate(&parse(src).unwrap(), "m", &NoBlackboxes).unwrap_err();
    assert!(
        matches!(err.root(), DataflowError::BadRange(_)),
        "{err:?}"
    );
}

#[test]
fn undriven_signal_lint_carries_decl_span() {
    let src = "
    module m(input clk, output reg q);
        wire ghost;
        always @(posedge clk) q <= ~q;
    endmodule";
    let d = elaborate(&parse(src).unwrap(), "m", &NoBlackboxes).unwrap();
    let lints = d.lints();
    let warn = lints
        .iter()
        .find(|w| w.signals.contains(&"ghost".to_string()))
        .expect("undriven `ghost` must be linted");
    assert_eq!(warn.code, hwdbg_diag::ErrorCode::UndrivenSignal);
    assert_eq!(warn.severity, hwdbg_diag::Severity::Warning);
    assert!(warn.span.is_some(), "lint must point at the declaration");
}
