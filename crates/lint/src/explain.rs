//! Human-readable explanations for every stable `L`-code.
//!
//! `hwdbg lint --explain LXXXX` resolves a code to a [`LintExplanation`]:
//! a one-paragraph description of the fingerprint, the Table 1 bug subclass
//! it targets (from the ASPLOS'22 study taxonomy), and a minimal Verilog
//! fragment that triggers the finding. The table is the single source of
//! truth for both the plain-text and `--json` forms of the subflag.

/// Everything the CLI prints for `--explain`.
#[derive(Debug, Clone, Copy)]
pub struct LintExplanation {
    /// The stable diagnostic code, e.g. `"L0604"`.
    pub code: &'static str,
    /// One-paragraph description of what the code fingerprints and why it
    /// matters for hardware bring-up.
    pub summary: &'static str,
    /// The Table 1 subclass (study taxonomy) this code targets.
    pub subclass: &'static str,
    /// A minimal self-contained Verilog fragment that triggers the finding.
    pub example: &'static str,
}

/// Looks up the explanation for a code string (e.g. `"L0502"`).
pub fn explain(code: &str) -> Option<&'static LintExplanation> {
    EXPLANATIONS.iter().find(|e| e.code == code)
}

/// All registered explanations, in code order.
pub fn all_explanations() -> &'static [LintExplanation] {
    EXPLANATIONS
}

static EXPLANATIONS: &[LintExplanation] = &[
    LintExplanation {
        code: "L0101",
        summary: "A `case` statement inside a combinational process covers only \
some selector values and has no `default` arm. Synthesis infers a latch to \
hold the old value on the uncovered paths, which simulates differently from \
hardware and retains stale data.",
        subclass: "Incomplete Implementation",
        example: "always @* begin\n  case (sel)\n    2'd0: y = a;\n    2'd1: y = b;\n  endcase // no default: latch inferred\nend",
    },
    LintExplanation {
        code: "L0102",
        summary: "A clocked (sequential) process uses a blocking assignment \
(`=`). Later statements in the same process observe the new value within the \
same cycle, so behaviour depends on statement order and diverges between \
simulators and synthesized hardware.",
        subclass: "Erroneous Expression",
        example: "always @(posedge clk) begin\n  a = in;   // blocking in sequential process\n  b <= a;   // reads the *new* a\nend",
    },
    LintExplanation {
        code: "L0103",
        summary: "A combinational process uses a nonblocking assignment \
(`<=`). The scheduled update lands after the process re-evaluates, producing \
delta-cycle races and mismatches between RTL and gate-level simulation.",
        subclass: "Erroneous Expression",
        example: "always @* begin\n  y <= a & b; // nonblocking in combinational process\nend",
    },
    LintExplanation {
        code: "L0104",
        summary: "The same register is written from more than one `always` \
process. The processes race: simulation picks an evaluation order, hardware \
shorts two drivers together, and the observed value depends on neither.",
        subclass: "Signal Asynchrony",
        example: "always @(posedge clk) r <= a;\nalways @(posedge clk) r <= b; // second driver",
    },
    LintExplanation {
        code: "L0201",
        summary: "Combinational assignments form a cycle: a signal depends on \
itself through other combinational logic with no register on the path. The \
netlist oscillates or settles unpredictably, and the simulator cannot \
levelize the design.",
        subclass: "Deadlock",
        example: "assign a = b | start;\nassign b = a & enable; // a -> b -> a, no register",
    },
    LintExplanation {
        code: "L0202",
        summary: "An assignment's right-hand side produces more significant \
bits than the destination can hold, so the top bits are silently dropped. \
Sums and products that overflow the target width corrupt data without any \
simulation-time warning.",
        subclass: "Bit Truncation",
        example: "reg [7:0] sum;\nalways @(posedge clk)\n  sum <= a + b; // a,b are [7:0]: carry bit lost",
    },
    LintExplanation {
        code: "L0301",
        summary: "A declared FSM state is never entered from any reachable \
state: no transition leads to it from the reset state. The logic in that arm \
is dead, which usually means a transition was forgotten or its guard can \
never hold.",
        subclass: "Incomplete Implementation",
        example: "localparam IDLE=0, RUN=1, DONE=2;\n// transitions: IDLE->RUN, RUN->IDLE; DONE is never entered",
    },
    LintExplanation {
        code: "L0302",
        summary: "An FSM state has no outgoing transition to any other state: \
once entered, the machine stays there until reset. Terminal hold states are \
sometimes intentional, so this code defaults to `allow` and must be opted \
into with `--deny` or `--warn`.",
        subclass: "Deadlock",
        example: "DONE: state <= DONE; // no way out except reset",
    },
    LintExplanation {
        code: "L0303",
        summary: "An FSM state register is compared against or assigned a \
value that matches no declared state constant. Typos in state encodings \
silently create transitions into limbo values that no arm handles.",
        subclass: "Erroneous Expression",
        example: "localparam IDLE=2'd0, RUN=2'd1;\nstate <= 2'd3; // not a declared state",
    },
    LintExplanation {
        code: "L0401",
        summary: "Every write to a register is unconditionally overwritten by \
a later write in the same process before any cycle boundary, so the first \
write can never be observed. The shadowed update is almost always a logic \
error.",
        subclass: "Failure-to-Update",
        example: "always @(posedge clk) begin\n  r <= a;\n  r <= b; // unconditionally shadows the first write\nend",
    },
    LintExplanation {
        code: "L0402",
        summary: "A register is written but its value is never read by any \
expression, output, or memory address in the design. The computation feeding \
it is dead — typically a consumer hookup that was never completed, leaving \
the producer and consumer clocking different signals.",
        subclass: "Signal Asynchrony",
        example: "reg [7:0] checksum;\nalways @(posedge clk) checksum <= checksum + in;\n// no expression ever reads checksum",
    },
    LintExplanation {
        code: "L0403",
        summary: "An input port is consumed only by `$display`/debug \
statements (or nothing at all): no datapath or control logic depends on it. \
The module advertises an interface it does not honour, so upstream producers \
are silently ignored.",
        subclass: "Incomplete Implementation",
        example: "input wire [7:0] cfg;\n// cfg appears only in: $display(\"cfg=%h\", cfg);",
    },
    LintExplanation {
        code: "L0404",
        summary: "A flag register can be set but never cleared outside reset: \
every non-reset write drives it to the same sticky value. Status and error \
flags that cannot be acknowledged wedge the surrounding handshake logic.",
        subclass: "Failure-to-Update",
        example: "always @(posedge clk)\n  if (rst) err <= 1'b0;\n  else if (bad) err <= 1'b1; // no path back to 0",
    },
    LintExplanation {
        code: "L0405",
        summary: "A restart/soft-clear path reinitialises only a subset of the \
registers that the full reset path initialises. State that survives the \
partial reinit leaks across runs and corrupts the next transaction.",
        subclass: "Failure-to-Update",
        example: "if (rst) begin cnt <= 0; acc <= 0; end\nelse if (restart) begin cnt <= 0; end // acc not reinitialised",
    },
    LintExplanation {
        code: "L0501",
        summary: "A memory is indexed by an expression whose range provably \
exceeds the memory depth, or by a counter that wraps past the last entry. \
Out-of-range writes corrupt unrelated rows; out-of-range reads return \
garbage that propagates silently.",
        subclass: "Buffer Overflow",
        example: "reg [7:0] mem [0:15];\nwire [4:0] idx; // 0..31 against 16 entries\nassign q = mem[idx];",
    },
    LintExplanation {
        code: "L0502",
        summary: "A value is width-cast *before* a right shift instead of \
after, so the high product bits are discarded and the shift then pulls in \
zeros: `16'(prod) >> 4` keeps bits [15:0] then shifts, where the intent \
`16'(prod >> 4)` keeps bits [19:4]. The result is off by a power of two for \
any operand large enough to use the upper bits.",
        subclass: "Bit Truncation",
        example: "wire [23:0] prod = a * b;\nassign y = 16'(prod) >> 4; // should be 16'(prod >> 4)",
    },
    LintExplanation {
        code: "L0601",
        summary: "A producer gates `valid` on the consumer's `ready` in the \
same cycle. AXI-Stream requires `valid` to be asserted independently of \
`ready`; coupling them can deadlock against a consumer that waits for \
`valid` before raising `ready`.",
        subclass: "Protocol Violation",
        example: "assign m_valid = have_data && m_ready; // valid must not wait for ready",
    },
    LintExplanation {
        code: "L0602",
        summary: "Two handshake signals each combinationally depend on the \
other (e.g. `ready` derived from `valid` which is derived from `ready`), so \
neither side can make the first move. The interface wedges with both sides \
waiting.",
        subclass: "Deadlock",
        example: "assign a_ready = b_valid;\nassign b_valid = a_ready; // mutual combinational wait",
    },
    LintExplanation {
        code: "L0603",
        summary: "A stream payload register (`tdata`, `tlast`, ...) advances \
on a path whose guard never checks the handshake: the data can change while \
`valid` is high and `ready` is low, violating the AXI-Stream stability rule \
and dropping beats under backpressure. Every latency-1 update of a payload \
must be qualified by `ready` (or by `!valid || ready`).",
        subclass: "Protocol Violation",
        example: "always @(posedge clk) begin\n  tvalid <= 1'b1;\n  tdata  <= next;  // advances even when tvalid && !tready\nend",
    },
    LintExplanation {
        code: "L0604",
        summary: "A backpressure output (`*_ready`, `*_stall`, `*_busy`) is \
tied to a constant that always admits traffic, while the corresponding \
stream is actually consumed by registered logic. The producer is told \
\"always ready\", so any real stall on the consumer side silently drops \
in-flight beats.",
        subclass: "Producer-Consumer Mismatch",
        example: "assign up_stall = 1'b0; // claims never-stalled\n// but up_valid/up_data feed registers that can back up",
    },
    LintExplanation {
        code: "L0605",
        summary: "A FIFO admission guard compares occupancy against a bound \
that exceeds the storage depth: for a 16-deep memory, `(wr - rd) > 16` still \
admits a write at occupancy 16, so the 17th element overwrites live data. \
The fill check must reject at `>= depth`.",
        subclass: "Buffer Overflow",
        example: "reg [7:0] mem [0:15];\nassign full = (wr_ptr - rd_ptr) > 5'd16; // admits 17th write",
    },
    LintExplanation {
        code: "L0606",
        summary: "A FIFO admission decision is made through a registered \
flag (or into a skid register), adding cycles of staleness between the \
occupancy snapshot and the write it admits — but the threshold leaves no \
margin for those in-flight beats. Under full-rate input the buffer overruns \
by exactly the unaccounted slots; the threshold must be lowered by the \
pipeline depth.",
        subclass: "Signal Asynchrony",
        example: "always @(posedge clk)\n  s_ready_r <= count < 5'd16; // 1-cycle-stale, plus a skid stage:\n// needs margin, e.g. count < 5'd14",
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;

    #[test]
    fn every_registered_code_is_explained() {
        for pass in registry() {
            for code in pass.codes() {
                let e = explain(code.as_str());
                assert!(e.is_some(), "no explanation for {}", code.as_str());
            }
        }
    }

    #[test]
    fn explanations_are_well_formed_and_sorted() {
        let all = all_explanations();
        for pair in all.windows(2) {
            assert!(pair[0].code < pair[1].code, "table not in code order");
        }
        for e in all {
            assert!(e.code.starts_with('L') && e.code.len() == 5, "{}", e.code);
            assert!(!e.summary.is_empty() && !e.subclass.is_empty());
            assert!(!e.example.is_empty());
        }
    }

    #[test]
    fn unknown_code_is_none() {
        assert!(explain("L9999").is_none());
        assert!(explain("E0101").is_none());
        assert!(explain("l0101").is_none());
    }
}
