//! Handshake-protocol lints: the paper's §3.3.1 circular-dependency
//! deadlocks, both the AXI-specific "VALID waits for READY" rule violation
//! and the general mutual-wait cycle between ready/valid flags.

use crate::analysis::{self, conjuncts, ident_leaf};
use crate::{LintPass, LintSink};
use hwdbg_dataflow::Design;
use hwdbg_diag::{ErrorCode, HwdbgError};
use hwdbg_rtl::{LValue, Span, Stmt};
use std::collections::{BTreeMap, BTreeSet};

/// One constant assignment site of a one-bit control flag.
struct ConstSite {
    value_is_one: bool,
    in_reset: bool,
    span: Span,
    /// Positive bare-identifier conjuncts guarding the site.
    positive_deps: BTreeSet<String>,
}

/// A one-bit register whose every whole write is a constant — the shape of
/// a hand-rolled control/handshake flag.
struct Flag {
    sites: Vec<ConstSite>,
}

impl Flag {
    fn set_sites(&self) -> impl Iterator<Item = &ConstSite> {
        self.sites.iter().filter(|s| s.value_is_one && !s.in_reset)
    }

    fn reset_sets_one(&self) -> bool {
        self.sites.iter().any(|s| s.value_is_one && s.in_reset)
    }
}

/// `L0601`/`L0602`: handshake deadlocks.
///
/// - `L0601`: an AXI response VALID (`*bvalid`/`*rvalid`) asserted only
///   when its READY is already high. AXI §A3.3.1 forbids a producer from
///   waiting for READY — against a compliant consumer that waits for VALID,
///   the channel deadlocks.
/// - `L0602`: a cycle of constant-driven flags where each is only set once
///   another is set, none is seeded by reset, and no input-driven path
///   breaks the cycle: no member can ever become 1.
pub struct HandshakePass;

impl LintPass for HandshakePass {
    fn id(&self) -> &'static str {
        "handshake"
    }

    fn codes(&self) -> &'static [ErrorCode] {
        &[
            ErrorCode::LintValidWaitsReady,
            ErrorCode::LintHandshakeDeadlock,
        ]
    }

    fn run(&self, design: &Design, sink: &mut LintSink<'_>) {
        let flags = collect_flags(design);

        // --- L0601: AXI VALID waiting for READY -------------------------
        for (name, flag) in &flags {
            let Some(ready) = axi_ready_counterpart(name) else {
                continue;
            };
            if !design.signals.contains_key(&ready) {
                continue;
            }
            for site in flag.set_sites() {
                if site.positive_deps.contains(&ready) {
                    sink.emit(
                        HwdbgError::warning(
                            ErrorCode::LintValidWaitsReady,
                            format!(
                                "`{name}` is only asserted once `{ready}` is already \
                                 high; AXI forbids a producer from waiting for READY, \
                                 and a consumer that waits for VALID deadlocks here"
                            ),
                        )
                        .with_span(site.span)
                        .with_signal(name)
                        .with_signal(&ready),
                    );
                }
            }
        }

        // --- L0602: mutual-wait cycles ----------------------------------
        // A flag escapes (can eventually become 1) if reset seeds it, or
        // some set-site's flag dependencies are all escaping (sites with
        // no flag dependency escape via inputs/data). Iterate to fixpoint.
        let mut escaped: BTreeSet<&str> = BTreeSet::new();
        loop {
            let mut changed = false;
            for (name, flag) in &flags {
                if escaped.contains(name.as_str()) {
                    continue;
                }
                let escapes = flag.reset_sets_one()
                    || flag.set_sites().any(|site| {
                        site.positive_deps
                            .iter()
                            .filter(|d| flags.contains_key(*d))
                            .all(|d| escaped.contains(d.as_str()))
                    });
                if escapes {
                    escaped.insert(name);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let stuck: Vec<&str> = flags
            .iter()
            .filter(|(n, f)| !escaped.contains(n.as_str()) && f.set_sites().next().is_some())
            .map(|(n, _)| n.as_str())
            .collect();
        // Report each mutual-wait group once: the cycle members are the
        // stuck flags that appear in another stuck flag's dependencies.
        let mut reported: BTreeSet<&str> = BTreeSet::new();
        for &name in &stuck {
            if reported.contains(name) {
                continue;
            }
            // Collect the dependency closure of `name` within the stuck set.
            let mut group: BTreeSet<&str> = BTreeSet::new();
            let mut work = vec![name];
            while let Some(n) = work.pop() {
                if !group.insert(n) {
                    continue;
                }
                if let Some(flag) = flags.get(n) {
                    for site in flag.set_sites() {
                        for d in &site.positive_deps {
                            if stuck.contains(&d.as_str()) {
                                if let Some((k, _)) = flags.get_key_value(d.as_str()) {
                                    work.push(k);
                                }
                            }
                        }
                    }
                }
            }
            reported.extend(group.iter().copied());
            let names: Vec<String> = group.iter().map(|n| format!("`{n}`")).collect();
            let first = group.iter().next().copied().unwrap_or(name);
            let span = flags
                .get(first)
                .and_then(|f| f.set_sites().next())
                .map(|s| s.span);
            let mut err = HwdbgError::warning(
                ErrorCode::LintHandshakeDeadlock,
                format!(
                    "handshake deadlock: {} wait for each other to be set, all \
                     reset to 0, and no other path sets them; none can ever assert",
                    names.join(" and ")
                ),
            )
            .with_signals(group.iter().copied());
            if let Some(span) = span {
                err = err.with_span(span);
            }
            sink.emit(err);
        }
    }
}

/// Collects every one-bit register whose whole writes are all constants.
fn collect_flags(design: &Design) -> BTreeMap<String, Flag> {
    let resets = analysis::reset_inputs(design);
    let mut flags: BTreeMap<String, Flag> = BTreeMap::new();
    let mut disqualified: BTreeSet<String> = BTreeSet::new();
    for proc in &design.procs {
        let mut guards = Vec::new();
        analysis::walk(&proc.body, &mut guards, &mut |guards, stmt| {
            let Stmt::Assign { lhs, rhs, span, .. } = stmt else {
                return;
            };
            for name in lhs.target_names() {
                let eligible = design
                    .signals
                    .get(name)
                    .is_some_and(|s| s.width == 1 && s.mem_depth.is_none() && s.is_state());
                if !eligible {
                    continue;
                }
                let whole = matches!(lhs, LValue::Id(_));
                let cval = analysis::const_value(rhs, design);
                match (whole, cval) {
                    (true, Some(v)) => {
                        let positive_deps = conjuncts(guards)
                            .iter()
                            .filter_map(ident_leaf)
                            .filter(|(_, positive)| *positive)
                            .map(|(n, _)| n.to_owned())
                            .collect();
                        flags.entry(name.to_owned()).or_insert(Flag { sites: Vec::new() }).sites.push(
                            ConstSite {
                                value_is_one: !v.is_zero(),
                                in_reset: analysis::in_reset(guards, &resets),
                                span: *span,
                                positive_deps,
                            },
                        );
                    }
                    _ => {
                        disqualified.insert(name.to_owned());
                    }
                }
            }
        });
    }
    for name in disqualified {
        flags.remove(&name);
    }
    flags
}

/// For an AXI response VALID name, the READY it must not wait for.
fn axi_ready_counterpart(valid: &str) -> Option<String> {
    for (suffix, ready_suffix) in [("bvalid", "bready"), ("rvalid", "rready")] {
        if let Some(prefix) = valid.strip_suffix(suffix) {
            return Some(format!("{prefix}{ready_suffix}"));
        }
    }
    None
}
