//! FSM structural lints over the state machines recovered by
//! [`FsmMonitor`]: unreachable states, trap states, and transitions to
//! encodings no one declared.

use crate::analysis::{self, Guard};
use crate::{LintPass, LintSink};
use hwdbg_dataflow::Design;
use hwdbg_diag::{ErrorCode, HwdbgError};
use hwdbg_rtl::{Expr, Span, Stmt};
use hwdbg_tools::FsmMonitor;
use std::collections::BTreeSet;

/// Which case arm (over the state register) encloses an assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ArmCtx {
    /// Not inside any `case (state)` — executes in every state.
    Outside,
    /// Inside an explicit arm with these label values.
    Arm(BTreeSet<u64>),
    /// Inside the `default` arm.
    Default,
}

/// One whole constant assignment to the state register.
#[derive(Debug)]
struct Site {
    value: u64,
    in_reset: bool,
    arm: ArmCtx,
}

/// `L0301`/`L0302`/`L0303`: structural checks on each recovered FSM.
///
/// - A case arm whose state value is never assigned is dead control flow
///   (`L0301`) — often a symptom of a forgotten transition.
/// - A reachable state with no outgoing transition (`L0302`) can only be
///   left through reset. Terminal "done" states are a legitimate idiom, so
///   this code defaults to `Allow` and must be opted into.
/// - An assigned encoding that no localparam names and no arm handles
///   (`L0303`) is a transition into undeclared state space.
pub struct FsmLintPass;

impl LintPass for FsmLintPass {
    fn id(&self) -> &'static str {
        "fsm-structure"
    }

    fn codes(&self) -> &'static [ErrorCode] {
        &[
            ErrorCode::LintUnreachableState,
            ErrorCode::LintTrapState,
            ErrorCode::LintUndeclaredState,
        ]
    }

    fn run(&self, design: &Design, sink: &mut LintSink<'_>) {
        let resets = analysis::reset_inputs(design);
        for fsm in FsmMonitor::detect(design) {
            if fsm.width > 64 {
                continue;
            }
            let state = fsm.signal.as_str();

            // Every `case (state)` in the design: union of arm label
            // values, whether any has a default, and an anchoring span.
            let mut arm_union: BTreeSet<u64> = BTreeSet::new();
            let mut has_default = false;
            let mut case_span: Option<Span> = None;
            for body in proc_bodies(design) {
                scan_cases(design, body, state, fsm.width, &mut |labels, default, span| {
                    arm_union.extend(labels);
                    has_default |= default;
                    case_span.get_or_insert(span);
                });
            }
            let Some(case_span) = case_span else {
                // No case dispatch over this register: the transition
                // structure is not explicit enough to reason about.
                continue;
            };

            // Every whole assignment to the state register.
            let mut sites: Vec<Site> = Vec::new();
            let mut analyzable = true;
            for proc in &design.procs {
                let mut guards = Vec::new();
                analysis::walk(&proc.body, &mut guards, &mut |guards, stmt| {
                    let Stmt::Assign { lhs, rhs, .. } = stmt else {
                        return;
                    };
                    if !lhs.target_names().contains(&state) {
                        return;
                    }
                    if !matches!(lhs, hwdbg_rtl::LValue::Id(_)) {
                        analyzable = false;
                        return;
                    }
                    // `state <= state` is a hold, not a transition.
                    if matches!(rhs, Expr::Ident(n) if n == state) {
                        return;
                    }
                    match analysis::const_value(rhs, design) {
                        Some(v) if v.width() <= 64 => sites.push(Site {
                            value: v.resize(fsm.width).to_u64(),
                            in_reset: analysis::in_reset(guards, &resets),
                            arm: arm_ctx(guards, state, fsm.width, design),
                        }),
                        // A computed next-state (two-process style): too
                        // dynamic for structural checks.
                        _ => analyzable = false,
                    }
                });
            }
            if !analyzable {
                continue;
            }
            let assigned: BTreeSet<u64> = sites.iter().map(|s| s.value).collect();

            for &v in &arm_union {
                if !assigned.contains(&v) {
                    sink.emit(
                        HwdbgError::warning(
                            ErrorCode::LintUnreachableState,
                            format!(
                                "FSM `{state}`: state {} has a case arm but no \
                                 assignment ever enters it; the arm is unreachable",
                                state_name(&fsm.states, v)
                            ),
                        )
                        .with_span(case_span)
                        .with_signal(state),
                    );
                }
            }

            for &v in &assigned {
                let covered = arm_union.contains(&v) || has_default;
                if !covered {
                    continue;
                }
                let has_exit = sites.iter().any(|s| {
                    s.value != v
                        && !s.in_reset
                        && match &s.arm {
                            ArmCtx::Outside => true,
                            ArmCtx::Arm(labels) => labels.contains(&v),
                            ArmCtx::Default => !arm_union.contains(&v),
                        }
                });
                if !has_exit {
                    sink.emit(
                        HwdbgError::warning(
                            ErrorCode::LintTrapState,
                            format!(
                                "FSM `{state}`: state {} has no outgoing transition; \
                                 once entered, only reset leaves it",
                                state_name(&fsm.states, v)
                            ),
                        )
                        .with_span(case_span)
                        .with_signal(state),
                    );
                }
            }

            for &v in &assigned {
                if !fsm.states.contains_key(&v) && !arm_union.contains(&v) && !has_default {
                    sink.emit(
                        HwdbgError::warning(
                            ErrorCode::LintUndeclaredState,
                            format!(
                                "FSM `{state}` is assigned encoding {v}, which no \
                                 localparam names and no case arm handles"
                            ),
                        )
                        .with_span(case_span)
                        .with_signal(state),
                    );
                }
            }
        }
    }
}

fn state_name(states: &std::collections::BTreeMap<u64, String>, v: u64) -> String {
    match states.get(&v) {
        Some(n) => format!("`{n}` ({v})"),
        None => format!("{v}"),
    }
}

fn proc_bodies(design: &Design) -> impl Iterator<Item = &Stmt> {
    design
        .procs
        .iter()
        .map(|p| &p.body)
        .chain(design.combs.iter().map(|c| &c.body))
}

/// Finds every `case` whose selector is exactly the state register and
/// reports (const arm label values, has-default, span).
fn scan_cases(
    design: &Design,
    stmt: &Stmt,
    state: &str,
    width: u32,
    f: &mut impl FnMut(Vec<u64>, bool, Span),
) {
    match stmt {
        Stmt::Block(stmts) => {
            for s in stmts {
                scan_cases(design, s, state, width, f);
            }
        }
        Stmt::If { then, els, .. } => {
            scan_cases(design, then, state, width, f);
            if let Some(e) = els {
                scan_cases(design, e, state, width, f);
            }
        }
        Stmt::For { body, .. } => scan_cases(design, body, state, width, f),
        Stmt::Case {
            expr,
            arms,
            default,
            span,
            ..
        } => {
            if matches!(expr, Expr::Ident(n) if n == state) {
                let mut labels = Vec::new();
                for arm in arms {
                    for l in &arm.labels {
                        if let Some(v) = analysis::const_value(l, design) {
                            if v.width() <= 64 {
                                labels.push(v.resize(width).to_u64());
                            }
                        }
                    }
                }
                f(labels, default.is_some(), *span);
            }
            for arm in arms {
                scan_cases(design, &arm.body, state, width, f);
            }
            if let Some(d) = default {
                scan_cases(design, d, state, width, f);
            }
        }
        _ => {}
    }
}

/// The innermost case-arm context over the state register in a guard stack.
fn arm_ctx(guards: &[Guard<'_>], state: &str, width: u32, design: &Design) -> ArmCtx {
    for g in guards.iter().rev() {
        match g {
            Guard::Arm {
                selector: Expr::Ident(n),
                labels,
            } if n == state => {
                let values = labels
                    .iter()
                    .filter_map(|l| analysis::const_value(l, design))
                    .filter(|v| v.width() <= 64)
                    .map(|v| v.resize(width).to_u64())
                    .collect();
                return ArmCtx::Arm(values);
            }
            Guard::Default {
                selector: Expr::Ident(n),
            } if n == state => {
                return ArmCtx::Default;
            }
            _ => {}
        }
    }
    ArmCtx::Outside
}
