//! The built-in lint passes, grouped by the study's bug taxonomy.

pub mod fsm;
pub mod handshake;
pub mod loss;
pub mod range;
pub mod structure;
pub mod style;
pub mod taint;
