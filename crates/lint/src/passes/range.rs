//! `L0501`: static index-range analysis — the paper's buffer-overflow
//! class, where an index register can run past the end of a memory (or a
//! bit-vector) and the out-of-range accesses are silently dropped.

use crate::analysis::{self, conjuncts, wrap_bound};
use crate::{LintPass, LintSink};
use hwdbg_dataflow::{Design, SigKind};
use hwdbg_diag::{ErrorCode, HwdbgError};
use hwdbg_rtl::{BinaryOp, Expr, LValue, Span, Stmt};
use std::collections::{BTreeMap, BTreeSet};

/// The statically provable maximum of an index register.
struct IdxBound {
    max: u64,
    /// Span of the assignment that makes the register unbounded (an
    /// unguarded increment), when one exists — the best place to point.
    unbounded_at: Option<Span>,
}

/// Checks every `mem[r]` / `vec[r]` access where `r` is a plain register:
/// the register's reachable maximum is derived inductively from its
/// assignments (constants contribute their value; `r <= r + 1` guarded by
/// a wrap test `r == K` / `r != K` / `r < K` contributes `K`; anything
/// else contributes `2^w - 1`) and compared against the addressed range.
pub struct MemIndexPass;

impl LintPass for MemIndexPass {
    fn id(&self) -> &'static str {
        "mem-index-range"
    }

    fn codes(&self) -> &'static [ErrorCode] {
        &[ErrorCode::LintMemIndexRange]
    }

    fn run(&self, design: &Design, sink: &mut LintSink<'_>) {
        let bounds = index_bounds(design);

        // Every identifier-indexed access in the design, plus constant
        // indices for a cheap exact check.
        let mut ident_accesses: BTreeSet<(&str, &str)> = BTreeSet::new();
        let mut const_accesses: BTreeSet<(&str, u64)> = BTreeSet::new();
        for body in design
            .procs
            .iter()
            .map(|p| &p.body)
            .chain(design.combs.iter().map(|c| &c.body))
        {
            scan_accesses(design, body, &mut ident_accesses, &mut const_accesses);
        }

        for (mem, idx) in ident_accesses {
            let Some(limit) = addr_limit(design, mem) else {
                continue;
            };
            let Some(bound) = bounds.get(idx) else {
                continue;
            };
            if bound.max <= limit {
                continue;
            }
            let what = if design.signals.get(mem).is_some_and(|s| s.mem_depth.is_some()) {
                "entries"
            } else {
                "bits"
            };
            let mut err = HwdbgError::warning(
                ErrorCode::LintMemIndexRange,
                format!(
                    "index `{idx}` can reach {} but `{mem}` only has {} {what} \
                     (valid indices 0..={limit}); out-of-range accesses are \
                     silently dropped",
                    bound.max,
                    limit + 1
                ),
            )
            .with_signal(mem)
            .with_signal(idx);
            // Point at the unguarded increment when the register is
            // unbounded (the missing wrap is the bug); otherwise at the
            // too-small declaration.
            if let Some(span) = bound
                .unbounded_at
                .or_else(|| design.flat.net(mem).map(|d| d.span))
            {
                err = err.with_span(span);
            }
            sink.emit(err);
        }
        for (mem, idx) in const_accesses {
            let Some(limit) = addr_limit(design, mem) else {
                continue;
            };
            if idx <= limit {
                continue;
            }
            let mut err = HwdbgError::warning(
                ErrorCode::LintMemIndexRange,
                format!(
                    "constant index {idx} is out of range for `{mem}` \
                     (valid indices 0..={limit})"
                ),
            )
            .with_signal(mem);
            if let Some(decl) = design.flat.net(mem) {
                err = err.with_span(decl.span);
            }
            sink.emit(err);
        }
    }
}

/// Valid-index limit of an addressable signal: `depth - 1` for memories,
/// `width - 1` for multi-bit vectors.
fn addr_limit(design: &Design, name: &str) -> Option<u64> {
    let sig = design.signals.get(name)?;
    match sig.mem_depth {
        Some(depth) => Some(depth.saturating_sub(1)),
        None if sig.width > 1 => Some(u64::from(sig.width) - 1),
        None => None,
    }
}

/// Derives the reachable maximum of every plain unsigned index register.
fn index_bounds(design: &Design) -> BTreeMap<&str, IdxBound> {
    let mut bounds: BTreeMap<&str, IdxBound> = BTreeMap::new();
    for proc in &design.procs {
        let mut guards = Vec::new();
        analysis::walk(&proc.body, &mut guards, &mut |guards, stmt| {
            let Stmt::Assign { lhs, rhs, span, .. } = stmt else {
                return;
            };
            for name in lhs.target_names() {
                let Some(sig) = design.signals.get(name) else {
                    continue;
                };
                if sig.kind != SigKind::Reg
                    || sig.signed
                    || sig.mem_depth.is_some()
                    || sig.width > 32
                {
                    continue;
                }
                let ceiling = (1u64 << sig.width) - 1;
                let (value, bounded) = match contribution(design, name, lhs, rhs, guards) {
                    Contribution::Hold => continue,
                    Contribution::Const(v) => (v.min(ceiling), true),
                    Contribution::BoundedInc(k) => (k.min(ceiling), true),
                    Contribution::Unbounded => (ceiling, false),
                };
                let entry = bounds.entry(name).or_insert(IdxBound {
                    max: 0,
                    unbounded_at: None,
                });
                if value >= entry.max {
                    entry.max = value;
                    if !bounded {
                        entry.unbounded_at.get_or_insert(*span);
                    }
                }
            }
        });
    }
    bounds
}

enum Contribution {
    /// `r <= r` — no new value.
    Hold,
    /// A constant assignment.
    Const(u64),
    /// `r <= r + 1` under a wrap guard proving the result stays `<= K`.
    BoundedInc(u64),
    /// Anything else: assume the full range.
    Unbounded,
}

fn contribution(
    design: &Design,
    name: &str,
    lhs: &LValue,
    rhs: &Expr,
    guards: &[analysis::Guard<'_>],
) -> Contribution {
    if !matches!(lhs, LValue::Id(_)) {
        // A partial write scrambles the value unpredictably.
        return Contribution::Unbounded;
    }
    if matches!(rhs, Expr::Ident(n) if n == name) {
        return Contribution::Hold;
    }
    if let Some(v) = analysis::const_value(rhs, design) {
        if v.width() <= 64 {
            return Contribution::Const(v.to_u64());
        }
        return Contribution::Unbounded;
    }
    // `r <= r + 1` (either operand order).
    let is_inc_by_one = matches!(rhs, Expr::Binary(BinaryOp::Add, a, b)
        if (matches!(&**a, Expr::Ident(n) if n == name)
                && analysis::const_value(b, design).is_some_and(|v| v.width() <= 64 && v.to_u64() == 1))
            || (matches!(&**b, Expr::Ident(n) if n == name)
                && analysis::const_value(a, design).is_some_and(|v| v.width() <= 64 && v.to_u64() == 1)));
    if is_inc_by_one {
        for c in conjuncts(guards) {
            if let Some((n, k)) = wrap_bound(&c, design) {
                if n == name {
                    return Contribution::BoundedInc(k);
                }
            }
        }
    }
    Contribution::Unbounded
}

/// Collects `base[index]` accesses from expressions and lvalues, splitting
/// identifier indices from constant ones. `$display` arguments are skipped
/// — debug reads are not datapath accesses.
fn scan_accesses<'a>(
    design: &Design,
    stmt: &'a Stmt,
    idents: &mut BTreeSet<(&'a str, &'a str)>,
    consts: &mut BTreeSet<(&'a str, u64)>,
) {
    match stmt {
        Stmt::Block(stmts) => {
            for s in stmts {
                scan_accesses(design, s, idents, consts);
            }
        }
        Stmt::If { cond, then, els } => {
            scan_expr(design, cond, idents, consts);
            scan_accesses(design, then, idents, consts);
            if let Some(e) = els {
                scan_accesses(design, e, idents, consts);
            }
        }
        Stmt::Case {
            expr,
            arms,
            default,
            ..
        } => {
            scan_expr(design, expr, idents, consts);
            for arm in arms {
                for l in &arm.labels {
                    scan_expr(design, l, idents, consts);
                }
                scan_accesses(design, &arm.body, idents, consts);
            }
            if let Some(d) = default {
                scan_accesses(design, d, idents, consts);
            }
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            scan_expr(design, init, idents, consts);
            scan_expr(design, cond, idents, consts);
            scan_expr(design, step, idents, consts);
            scan_accesses(design, body, idents, consts);
        }
        Stmt::Assign { lhs, rhs, .. } => {
            scan_expr(design, rhs, idents, consts);
            if let LValue::Index(base, idx) = lhs {
                note_index(design, base, idx, idents, consts);
            }
        }
        Stmt::Display { .. } | Stmt::Finish | Stmt::Empty => {}
    }
}

fn scan_expr<'a>(
    design: &Design,
    e: &'a Expr,
    idents: &mut BTreeSet<(&'a str, &'a str)>,
    consts: &mut BTreeSet<(&'a str, u64)>,
) {
    visit_indices(e, &mut |base, idx| note_index(design, base, idx, idents, consts));
}

fn note_index<'a>(
    design: &Design,
    base: &'a str,
    idx: &'a Expr,
    idents: &mut BTreeSet<(&'a str, &'a str)>,
    consts: &mut BTreeSet<(&'a str, u64)>,
) {
    match idx {
        Expr::Ident(n) => {
            idents.insert((base, n));
        }
        _ => {
            if let Some(v) = analysis::const_value(idx, design) {
                if v.width() <= 64 {
                    consts.insert((base, v.to_u64()));
                }
            }
        }
    }
}

fn visit_indices<'a>(e: &'a Expr, f: &mut impl FnMut(&'a str, &'a Expr)) {
    match e {
        Expr::Index(base, idx) => {
            f(base, idx);
            visit_indices(idx, f);
        }
        Expr::Unary(_, a) | Expr::WidthCast(_, a) | Expr::SignCast(_, a) => visit_indices(a, f),
        Expr::Binary(_, a, b) | Expr::Repeat(a, b) => {
            visit_indices(a, f);
            visit_indices(b, f);
        }
        Expr::Ternary(c, t, el) => {
            visit_indices(c, f);
            visit_indices(t, f);
            visit_indices(el, f);
        }
        Expr::Range(_, a, b) => {
            visit_indices(a, f);
            visit_indices(b, f);
        }
        Expr::Concat(parts) => {
            for p in parts {
                visit_indices(p, f);
            }
        }
        Expr::Literal { .. } | Expr::Ident(_) => {}
    }
}
