//! Dataflow-taint lints over the propagation-relation table.
//!
//! These passes consume [`PropGraph`] (the paper's §4.5.1 `X ⇝σ Y` table)
//! instead of re-walking the AST: each relation carries the exact path
//! condition under which a value moves, so handshake qualification,
//! backpressure reachability, and occupancy admission all become questions
//! about relation conditions and graph closures.
//!
//! - [`QualificationPass`] (`L0603`): payload registers of a produced
//!   valid/ready stream must only advance under their handshake — the
//!   AXI-Stream stability rule (study subclass S2, protocol violation).
//! - [`BackpressurePass`] (`L0604`): a ready/stall/busy output with an
//!   empty backward closure is tied off; if the constant *admits* the
//!   upstream stream, the producer can never be throttled (subclass C2,
//!   producer-consumer mismatch).
//! - [`OccupancyPass`] (`L0605`/`L0606`): abstract interpretation of
//!   wrap-free FIFO pointer counts: the admission guard bounds occupancy
//!   at each write, and the bound plus skid/staleness margin must stay
//!   within the memory depth (subclasses D4 buffer overflow and C4
//!   signal asynchrony).
//! - [`PrecisionPass`] (`L0502`): width-interval propagation through
//!   casts and shifts — `W'(x) >> k` discards the high bits the shift was
//!   meant to keep (subclass D6, bit truncation).

use crate::analysis::{
    self, cmp_bound, comb_aliases, conjuncts, const_value, in_reset, qualifies_advance,
    reset_inputs, stream_pairs, Conjunct,
};
use crate::{LintPass, LintSink};
use hwdbg_dataflow::{cond_leaves, DepKind, Design, PropGraph, SigKind};
use hwdbg_diag::{ErrorCode, HwdbgError};
use hwdbg_rtl::{BinaryOp, Dir, Expr, Span, Stmt};
use std::collections::{BTreeMap, BTreeSet};

/// `L0603`: a stream payload register advances without its valid/ready
/// qualification.
///
/// For every produced stream (registered `*valid` with an external
/// `*ready`), each latency-1 data relation into a payload register must be
/// conditioned on the handshake: a positive `ready`, a negative `valid`
/// (slot known empty), or the composite `!valid || ready`. An advance
/// relation with none of these can replace a word the consumer has not
/// taken — the §3.3 protocol-violation fingerprint.
pub struct QualificationPass;

impl LintPass for QualificationPass {
    fn id(&self) -> &'static str {
        "qual-taint"
    }

    fn codes(&self) -> &'static [ErrorCode] {
        &[ErrorCode::LintUnqualifiedAdvance]
    }

    fn run(&self, design: &Design, sink: &mut LintSink<'_>) {
        let graph = PropGraph::build_local(design);
        for pair in stream_pairs(design) {
            for payload in &pair.payloads {
                let Some(pid) = graph.id(payload) else {
                    continue;
                };
                let mut flagged = false;
                for rel in graph.incoming_ids(pid) {
                    if flagged
                        || rel.kind != DepKind::Data
                        || rel.latency != 1
                        || rel.src == rel.dst
                    {
                        continue;
                    }
                    let qualified = cond_leaves(&rel.cond)
                        .iter()
                        .any(|l| qualifies_advance(l, &pair.valid, &pair.ready));
                    if qualified {
                        continue;
                    }
                    flagged = true;
                    sink.emit(
                        HwdbgError::warning(
                            ErrorCode::LintUnqualifiedAdvance,
                            format!(
                                "stream payload `{payload}` advances without its \
                                 handshake: the assignment is not conditioned on \
                                 `{ready}` (or `!{valid}`), so a stalled word is \
                                 overwritten while `{valid}` is high",
                                ready = pair.ready,
                                valid = pair.valid,
                            ),
                        )
                        .with_span(rel.span)
                        .with_signals([
                            payload.as_str(),
                            pair.valid.as_str(),
                            pair.ready.as_str(),
                        ]),
                    );
                }
            }
        }
    }
}

/// `L0604`: a backpressure output is tied to a constant that permanently
/// admits the upstream stream.
///
/// For each 1-bit `*ready`/`*stall`/`*busy` output port with a sibling
/// `*valid` input that actually feeds design state, the backward closure
/// of the output over the propagation graph is computed. An empty closure
/// (no input, no register — nothing can ever change the value) combined
/// with a constant driver of *permissive* polarity (ready high, stall/busy
/// low) means the producer can never be throttled: the study's §3.3.2
/// bounded-buffer race.
pub struct BackpressurePass;

/// Suffixes of backpressure outputs, with the constant value (as a bool)
/// that *blocks* the stream; the opposite polarity is permissive.
const BACKPRESSURE_SUFFIXES: [(&str, bool); 3] =
    [("ready", false), ("stall", true), ("busy", true)];

impl LintPass for BackpressurePass {
    fn id(&self) -> &'static str {
        "backpressure"
    }

    fn codes(&self) -> &'static [ErrorCode] {
        &[ErrorCode::LintConstantBackpressure]
    }

    fn run(&self, design: &Design, sink: &mut LintSink<'_>) {
        let graph = PropGraph::build_local(design);
        let aliases = comb_aliases(design);
        let inputs = analysis::input_ports(design);
        // Signals a blackbox instance drives: their fan-in is invisible to
        // the local graph, so anything they reach must be skipped.
        let bb_driven: BTreeSet<String> = design
            .blackboxes
            .iter()
            .flat_map(|b| b.out_conns.values())
            .flat_map(|lv| lv.target_names().into_iter().map(str::to_owned))
            .collect();
        for port in &design.flat.ports {
            if port.dir != Dir::Output {
                continue;
            }
            let name = port.net.name.as_str();
            let Some(&(suf, blocking)) = BACKPRESSURE_SUFFIXES
                .iter()
                .find(|(suf, _)| name.ends_with(suf))
            else {
                continue;
            };
            let info = design.signals.get(name);
            if info.is_none_or(|s| {
                s.width != 1 || !matches!(s.kind, SigKind::Comb | SigKind::Output)
            }) {
                continue;
            }
            // The stream being admitted: a sibling valid *input* that
            // feeds local state (the design really consumes the stream).
            let stem = &name[..name.len() - suf.len()];
            let valid = [format!("{stem}valid"), format!("{stem}_valid")]
                .into_iter()
                .find(|v| inputs.contains(v));
            let Some(valid) = valid else {
                continue;
            };
            let consumed = graph.id(&valid).is_some_and(|vid| {
                graph.outgoing_ids(vid).any(|r| {
                    design
                        .signals
                        .get(graph.name(r.dst))
                        .is_some_and(|s| s.kind == SigKind::Reg)
                })
            });
            if !consumed {
                continue;
            }
            let Some(out_id) = graph.id(name) else {
                continue;
            };
            let closure = graph.backward_closure(out_id, &[DepKind::Data, DepKind::Control]);
            let dynamic = closure.iter().any(|&id| {
                let n = graph.name(id);
                inputs.contains(n)
                    || bb_driven.contains(n)
                    || design
                        .signals
                        .get(n)
                        .is_some_and(|s| s.kind == SigKind::Reg)
            });
            if dynamic {
                continue;
            }
            // Constant-tied: confirm the polarity from the driver itself.
            let Some(&(rhs, span)) = aliases.get(name) else {
                continue;
            };
            let Some(v) = const_value(rhs, design) else {
                continue;
            };
            if (v.to_u64() != 0) == blocking {
                continue; // tied off in the *blocking* direction: no overrun
            }
            sink.emit(
                HwdbgError::warning(
                    ErrorCode::LintConstantBackpressure,
                    format!(
                        "backpressure output `{name}` is tied to a constant that \
                         always admits the `{valid}` stream; the producer can \
                         never be throttled, so a slow consumer overruns its \
                         buffer"
                    ),
                )
                .with_span(span)
                .with_signals([name, valid.as_str()]),
            );
        }
    }
}

/// One detected FIFO counting scheme: `wr - rd` occupancy (wrap-free,
/// pointers one bit wider than the index) against a declared memory.
struct Fifo {
    mem: String,
    depth: u64,
}

/// An admission fact extracted from one guard conjunct: writes are only
/// admitted while the occupancy count is at most `bound`, observed
/// `staleness` cycles ago, with the bound's definition at `span`.
struct Admission {
    fifo: Fifo,
    bound: u64,
    staleness: u64,
    span: Span,
}

/// `L0605`/`L0606`: abstract interpretation of FIFO occupancy.
///
/// The pass recognizes the wrap-free counting idiom — `wr_ptr - rd_ptr`
/// compared against a constant, pointers one bit wider than the memory
/// index — and computes, for every write that enters the FIFO, the
/// worst-case occupancy the admission guard permits:
///
/// ```text
/// occupancy_after = bound + staleness + skid + 1
/// ```
///
/// where `bound` is the largest count satisfying the guard (interval
/// abstraction of the comparison), `staleness` is 1 when the guard is
/// observed through a registered flag (one more write can slip in),
/// and `skid` is 1 when the write lands in a staging register that
/// drains into the RAM (one more word in flight). If the result exceeds
/// the memory depth, the oldest unread slot is overwritten. A direct
/// off-by-one full test raises `L0605` (subclass D4); a margin eaten by
/// skid/staleness raises `L0606` (subclass C4). Writes with no
/// recognizable admission guard are skipped — intentional drop-on-full
/// designs stay silent.
pub struct OccupancyPass;

impl LintPass for OccupancyPass {
    fn id(&self) -> &'static str {
        "occupancy"
    }

    fn codes(&self) -> &'static [ErrorCode] {
        &[
            ErrorCode::LintOccupancyOverflow,
            ErrorCode::LintOccupancyMargin,
        ]
    }

    fn run(&self, design: &Design, sink: &mut LintSink<'_>) {
        let graph = PropGraph::build_local(design);
        let aliases = comb_aliases(design);
        let resets = reset_inputs(design);
        let flag_updates = registered_flag_updates(design, &resets);
        let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
        for proc in &design.procs {
            let mut guards = Vec::new();
            analysis::walk(&proc.body, &mut guards, &mut |guards, stmt| {
                let Stmt::Assign { lhs, span, .. } = stmt else {
                    return;
                };
                if in_reset(guards, &resets) {
                    return;
                }
                for dst in lhs.target_names() {
                    let Some((mem, skid)) = entry_point(design, &graph, dst) else {
                        continue;
                    };
                    let mut worst: Option<Admission> = None;
                    for c in &conjuncts(guards) {
                        let Some(adm) =
                            classify_admission(design, &graph, &aliases, &flag_updates, c, *span)
                        else {
                            continue;
                        };
                        if adm.fifo.mem != mem {
                            continue;
                        }
                        let better = worst
                            .as_ref()
                            .is_none_or(|w| adm.bound + adm.staleness < w.bound + w.staleness);
                        if better {
                            worst = Some(adm);
                        }
                    }
                    // No admission guard: the write is either always
                    // allowed by design (drop handled elsewhere) or beyond
                    // the abstraction — stay silent.
                    let Some(adm) = worst else {
                        continue;
                    };
                    let after = adm.bound + adm.staleness + skid + 1;
                    if after <= adm.fifo.depth {
                        continue;
                    }
                    let code = if adm.staleness + skid == 0 {
                        ErrorCode::LintOccupancyOverflow
                    } else {
                        ErrorCode::LintOccupancyMargin
                    };
                    if !seen.insert((adm.span.start, adm.span.end)) {
                        continue;
                    }
                    let msg = if code == ErrorCode::LintOccupancyOverflow {
                        format!(
                            "writes into `{mem}` (depth {}) are admitted while \
                             occupancy can already be {}; the admitted write makes \
                             it {after} — the full test is off by one",
                            adm.fifo.depth, adm.bound
                        )
                    } else {
                        format!(
                            "the admission threshold for `{mem}` (depth {}) leaves \
                             no margin: occupancy can be {} when tested, plus {} \
                             stale cycle(s) and {} in-flight skid word(s) makes \
                             {after} after the admitted write",
                            adm.fifo.depth, adm.bound, adm.staleness, skid
                        )
                    };
                    sink.emit(
                        HwdbgError::warning(code, msg)
                            .with_span(adm.span)
                            .with_signal(mem.as_str()),
                    );
                }
            });
        }
    }
}

/// If `dst` is where words enter a FIFO, the memory name and the extra
/// skid occupancy: writing the memory itself is skid 0; writing a staging
/// register that data-feeds a memory is skid 1.
fn entry_point(design: &Design, graph: &PropGraph, dst: &str) -> Option<(String, u64)> {
    let info = design.signals.get(dst)?;
    if info.mem_depth.is_some() {
        return Some((dst.to_owned(), 0));
    }
    if info.kind != SigKind::Reg {
        return None;
    }
    let id = graph.id(dst)?;
    for rel in graph.outgoing_ids(id) {
        if rel.kind != DepKind::Data || rel.latency != 1 {
            continue;
        }
        let mem = graph.name(rel.dst);
        if design
            .signals
            .get(mem)
            .is_some_and(|s| s.mem_depth.is_some())
        {
            return Some((mem.to_owned(), 1));
        }
    }
    None
}

/// Decomposes `expr` (after one level of comb aliasing) as a pointer-count
/// comparison `(wr - rd) OP k`, validating the wrap-free FIFO shape:
/// equal-width pointer registers one bit wider than the index of a memory
/// `wr` steers and `rd` reads.
fn count_compare<'a>(
    design: &Design,
    graph: &PropGraph,
    aliases: &BTreeMap<&str, (&'a Expr, Span)>,
    expr: &'a Expr,
) -> Option<(Fifo, BinaryOp, u64)> {
    let expand = |e: &'a Expr| -> &'a Expr {
        match e {
            Expr::Ident(n) => aliases.get(n.as_str()).map_or(e, |&(rhs, _)| rhs),
            other => other,
        }
    };
    let Expr::Binary(op, lhs, rhs) = expand(expr) else {
        return None;
    };
    if !matches!(op, BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge) {
        return None;
    }
    let k = const_value(rhs, design)?;
    if k.width() > 64 {
        return None;
    }
    let k = k.to_u64();
    let Expr::Binary(BinaryOp::Sub, a, b) = expand(lhs) else {
        return None;
    };
    let (Expr::Ident(wr), Expr::Ident(rd)) = (&**a, &**b) else {
        return None;
    };
    let wi = design.signals.get(wr)?;
    let ri = design.signals.get(rd)?;
    if wi.kind != SigKind::Reg || ri.kind != SigKind::Reg || wi.width != ri.width {
        return None;
    }
    if wi.width < 2 || wi.width > 63 {
        return None;
    }
    let depth_from_width = 1u64 << (wi.width - 1);
    // Find the memory the pointers manage: `wr` steers a write into it
    // (control edge) and `rd` co-sources its read.
    let wr_id = graph.id(wr)?;
    let rd_id = graph.id(rd)?;
    for rel in graph.outgoing_ids(wr_id) {
        if rel.kind != DepKind::Control {
            continue;
        }
        let mem = graph.name(rel.dst);
        let Some(depth) = design.signals.get(mem).and_then(|s| s.mem_depth) else {
            continue;
        };
        if depth != depth_from_width {
            continue;
        }
        let reads = graph
            .outgoing_ids(rd_id)
            .filter(|r| r.kind == DepKind::Data)
            .any(|r| {
                graph
                    .incoming_ids(r.dst)
                    .any(|m| m.kind == DepKind::Data && graph.name(m.src) == mem)
            });
        if reads {
            return Some((
                Fifo {
                    mem: mem.to_owned(),
                    depth,
                },
                *op,
                k,
            ));
        }
    }
    None
}

/// Registered admission flags: registers whose only non-reset update is an
/// unconditional (modulo reset) `flag <= <expr>`, mapped to that update's
/// right-hand side and span. Observing occupancy through such a flag adds
/// one cycle of staleness.
fn registered_flag_updates<'a>(
    design: &'a Design,
    resets: &BTreeSet<String>,
) -> BTreeMap<&'a str, (&'a Expr, Span)> {
    let mut sites: BTreeMap<&str, Vec<(&Expr, Span, bool)>> = BTreeMap::new();
    for proc in &design.procs {
        let mut guards = Vec::new();
        analysis::walk(&proc.body, &mut guards, &mut |guards, stmt| {
            let Stmt::Assign { lhs, rhs, span, .. } = stmt else {
                return;
            };
            if in_reset(guards, resets) {
                return;
            }
            // Unconditional outside reset: every conjunct is a reset test.
            let plain = conjuncts(guards)
                .iter()
                .all(|c| matches!(c.expr, Expr::Ident(n) if resets.contains(n)));
            for dst in lhs.target_names() {
                sites.entry(dst).or_default().push((rhs, *span, plain));
            }
        });
    }
    let mut out = BTreeMap::new();
    for (dst, s) in sites {
        if let [(rhs, span, true)] = s.as_slice() {
            if design
                .signals
                .get(dst)
                .is_some_and(|i| i.kind == SigKind::Reg && i.width == 1)
            {
                out.insert(dst, (*rhs, *span));
            }
        }
    }
    out
}

/// Classifies one guard conjunct as an occupancy admission: either a
/// direct count comparison (possibly through a comb alias) or a
/// registered flag holding one. Returns the worst-case admitted bound,
/// the staleness, and the span of the *definition* the off-by-one lives
/// at.
fn classify_admission(
    design: &Design,
    graph: &PropGraph,
    aliases: &BTreeMap<&str, (&Expr, Span)>,
    flags: &BTreeMap<&str, (&Expr, Span)>,
    c: &Conjunct<'_>,
    site_span: Span,
) -> Option<Admission> {
    // Direct comparison, or one comb-alias hop: staleness 0. The span
    // points at the alias definition when there is one.
    if let Some((fifo, op, k)) = count_compare(design, graph, aliases, c.expr) {
        let span = match c.expr {
            Expr::Ident(n) => aliases.get(n.as_str()).map_or(site_span, |&(_, s)| s),
            _ => site_span,
        };
        let bound = cmp_bound(op, k, c.positive)?;
        return Some(Admission {
            fifo,
            bound,
            staleness: 0,
            span,
        });
    }
    // A registered flag: one cycle stale.
    if let Expr::Ident(n) = c.expr {
        if let Some(&(rhs, span)) = flags.get(n.as_str()) {
            let (fifo, op, k) = count_compare(design, graph, aliases, rhs)?;
            let bound = cmp_bound(op, k, c.positive)?;
            return Some(Admission {
                fifo,
                bound,
                staleness: 1,
                span,
            });
        }
    }
    None
}

/// `L0502`: truncation before shift.
///
/// `W'(x) >> k` with `x` wider than `W` cuts off the bits `[.. : W]`
/// before the shift brings them down — the paper's §3.2.2 example
/// `left <= 42'(right) >> 6`. The correct order is `W'(x >> k)`. The pass
/// propagates declared widths (the interval abstraction's width
/// component) through every assignment expression of the design.
pub struct PrecisionPass;

impl LintPass for PrecisionPass {
    fn id(&self) -> &'static str {
        "precision-shift"
    }

    fn codes(&self) -> &'static [ErrorCode] {
        &[ErrorCode::LintTruncatedShift]
    }

    fn run(&self, design: &Design, sink: &mut LintSink<'_>) {
        let bodies = design
            .procs
            .iter()
            .map(|p| &p.body)
            .chain(design.combs.iter().map(|c| &c.body));
        for body in bodies {
            let mut guards = Vec::new();
            analysis::walk(body, &mut guards, &mut |_, stmt| {
                let Stmt::Assign { rhs, span, .. } = stmt else {
                    return;
                };
                check_expr(design, rhs, *span, sink);
            });
        }
    }
}

fn check_expr(design: &Design, e: &Expr, span: Span, sink: &mut LintSink<'_>) {
    if let Expr::Binary(BinaryOp::Shr | BinaryOp::AShr, lhs, amt) = e {
        if let Expr::WidthCast(w, inner) = &**lhs {
            let shift = const_value(amt, design).map_or(0, |v| v.to_u64());
            let inner_w = design.expr_width(inner);
            if shift > 0 && inner_w.is_some_and(|iw| iw > *w) {
                let iw = inner_w.unwrap_or(*w);
                sink.emit(
                    HwdbgError::warning(
                        ErrorCode::LintTruncatedShift,
                        format!(
                            "`{w}'(…)` truncates a {iw}-bit value before `>> \
                             {shift}`, discarding bits [{}:{w}] the shift would \
                             have kept; shift first: `{w}'(x >> {shift})`",
                            iw - 1
                        ),
                    )
                    .with_span(span),
                );
            }
        }
    }
    for sub in subexprs(e) {
        check_expr(design, sub, span, sink);
    }
}

/// Immediate subexpressions of `e`, for recursive descent.
fn subexprs(e: &Expr) -> Vec<&Expr> {
    match e {
        Expr::Literal { .. } | Expr::Ident(_) => vec![],
        Expr::Unary(_, a) => vec![a],
        Expr::Binary(_, a, b) => vec![a, b],
        Expr::Ternary(c, t, f) => vec![c, t, f],
        Expr::Index(_, i) => vec![i],
        Expr::Range(_, a, b) => vec![a, b],
        Expr::Concat(parts) => parts.iter().collect(),
        Expr::Repeat(n, x) => vec![n, x],
        Expr::WidthCast(_, a) | Expr::SignCast(_, a) => vec![a],
    }
}
