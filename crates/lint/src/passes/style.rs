//! Language-semantics lints: the paper's "misused language feature" class.
//!
//! These bugs come from Verilog's permissive scheduling rules: a `case`
//! without a default infers a latch, a blocking assignment in a clocked
//! block races with other processes, and two processes writing one signal
//! is last-writer-wins nondeterminism in synthesis.

use crate::analysis;
use crate::{LintPass, LintSink};
use hwdbg_dataflow::Design;
use hwdbg_diag::{ErrorCode, HwdbgError};
use hwdbg_rtl::{print_expr, Stmt};
use std::collections::{BTreeMap, BTreeSet};

/// `L0101`: a combinational `case` with no `default` that does not cover
/// every selector value. The unmatched selectors keep the previous value —
/// an inferred latch in synthesis, and a common source of X-propagation
/// mismatches between simulation and hardware.
pub struct IncompleteCasePass;

impl LintPass for IncompleteCasePass {
    fn id(&self) -> &'static str {
        "incomplete-case"
    }

    fn codes(&self) -> &'static [ErrorCode] {
        &[ErrorCode::LintIncompleteCase]
    }

    fn run(&self, design: &Design, sink: &mut LintSink<'_>) {
        for comb in &design.combs {
            scan_cases(design, &comb.body, sink);
        }
    }
}

fn scan_cases(design: &Design, stmt: &Stmt, sink: &mut LintSink<'_>) {
    match stmt {
        Stmt::Block(stmts) => {
            for s in stmts {
                scan_cases(design, s, sink);
            }
        }
        Stmt::If { then, els, .. } => {
            scan_cases(design, then, sink);
            if let Some(e) = els {
                scan_cases(design, e, sink);
            }
        }
        Stmt::For { body, .. } => scan_cases(design, body, sink),
        Stmt::Case {
            expr,
            arms,
            default,
            span,
            ..
        } => {
            for arm in arms {
                scan_cases(design, &arm.body, sink);
            }
            if let Some(d) = default {
                scan_cases(design, d, sink);
                return;
            }
            // No default: prove full coverage or flag.
            let Some(width) = design.expr_width(expr) else {
                return;
            };
            if width > 16 {
                return;
            }
            let mut covered = BTreeSet::new();
            for arm in arms {
                for label in &arm.labels {
                    match analysis::const_value(label, design) {
                        Some(v) if v.width() <= 64 => {
                            covered.insert(v.resize(width.max(1)).to_u64());
                        }
                        // A label we cannot evaluate: assume coverage
                        // rather than guess.
                        _ => return,
                    }
                }
            }
            let needed = 1u128 << width;
            if (covered.len() as u128) < needed {
                sink.emit(
                    HwdbgError::warning(
                        ErrorCode::LintIncompleteCase,
                        format!(
                            "combinational case over `{}` has no default and covers \
                             {} of {} selector values; unmatched selectors infer a latch",
                            print_expr(expr),
                            covered.len(),
                            needed
                        ),
                    )
                    .with_span(*span),
                );
            }
        }
        _ => {}
    }
}

/// `L0102`/`L0103`: assignment-operator misuse. Blocking assignments in a
/// clocked block are flagged when the written signal is visible outside the
/// block (another process, a combinational driver, a blackbox, or a port) —
/// that is where the evaluation-order race actually bites. Nonblocking
/// assignments in combinational logic delay the update by a delta cycle and
/// are flagged unconditionally.
pub struct AssignStylePass;

impl LintPass for AssignStylePass {
    fn id(&self) -> &'static str {
        "assign-style"
    }

    fn codes(&self) -> &'static [ErrorCode] {
        &[
            ErrorCode::LintBlockingInSeq,
            ErrorCode::LintNonblockingInComb,
        ]
    }

    fn run(&self, design: &Design, sink: &mut LintSink<'_>) {
        let outputs = analysis::output_ports(design);
        for (i, proc) in design.procs.iter().enumerate() {
            // Signals visible outside process `i`.
            let mut external: BTreeSet<&str> = BTreeSet::new();
            for (j, other) in design.procs.iter().enumerate() {
                if j != i {
                    external.extend(other.reads.iter().map(String::as_str));
                }
            }
            for comb in &design.combs {
                external.extend(comb.reads.iter().map(String::as_str));
            }
            for bb in &design.blackboxes {
                for conn in bb.in_conns.values() {
                    external.extend(conn.idents());
                }
            }
            external.extend(outputs.iter().map(String::as_str));

            let mut guards = Vec::new();
            analysis::walk(&proc.body, &mut guards, &mut |_, stmt| {
                let Stmt::Assign {
                    lhs,
                    nonblocking: false,
                    span,
                    ..
                } = stmt
                else {
                    return;
                };
                for target in lhs.target_names() {
                    if external.contains(target) {
                        sink.emit(
                            HwdbgError::warning(
                                ErrorCode::LintBlockingInSeq,
                                format!(
                                    "blocking assignment to `{target}` in a clocked block, \
                                     but `{target}` is read outside this block; evaluation \
                                     order decides whether readers see the old or new value"
                                ),
                            )
                            .with_span(*span)
                            .with_signal(target),
                        );
                    }
                }
            });
        }
        for comb in &design.combs {
            let mut guards = Vec::new();
            analysis::walk(&comb.body, &mut guards, &mut |_, stmt| {
                let Stmt::Assign {
                    lhs,
                    nonblocking: true,
                    span,
                    ..
                } = stmt
                else {
                    return;
                };
                let target = lhs.target_names().first().copied().unwrap_or("?").to_owned();
                sink.emit(
                    HwdbgError::warning(
                        ErrorCode::LintNonblockingInComb,
                        format!(
                            "nonblocking assignment to `{target}` in a combinational \
                             block delays the update by a delta cycle"
                        ),
                    )
                    .with_span(*span)
                    .with_signal(target),
                );
            });
        }
    }
}

/// `L0104`: one signal whole-written by two or more clocked processes.
/// Simulation picks an evaluation order; synthesis tools either reject the
/// design or silently keep one driver.
pub struct MultiProcWritePass;

impl LintPass for MultiProcWritePass {
    fn id(&self) -> &'static str {
        "multi-proc-write"
    }

    fn codes(&self) -> &'static [ErrorCode] {
        &[ErrorCode::LintMultiProcWrite]
    }

    fn run(&self, design: &Design, sink: &mut LintSink<'_>) {
        // Signal -> set of clocked-process indices that assign it. Walk the
        // bodies (rather than using `proc.writes`) so `for` loop variables,
        // which are process-local, never collide across processes.
        let mut writers: BTreeMap<&str, BTreeSet<usize>> = BTreeMap::new();
        for (i, proc) in design.procs.iter().enumerate() {
            let mut guards = Vec::new();
            analysis::walk(&proc.body, &mut guards, &mut |_, stmt| {
                if let Stmt::Assign { lhs, .. } = stmt {
                    for target in lhs.target_names() {
                        if design.signals.contains_key(target) {
                            writers.entry(target).or_default().insert(i);
                        }
                    }
                }
            });
        }
        for (name, procs) in writers {
            if procs.len() < 2 {
                continue;
            }
            let mut err = HwdbgError::warning(
                ErrorCode::LintMultiProcWrite,
                format!(
                    "`{name}` is written by {} separate always blocks; the last \
                     writer wins and the winner depends on scheduling order",
                    procs.len()
                ),
            )
            .with_signal(name);
            if let Some(decl) = design.flat.net(name) {
                err = err.with_span(decl.span);
            }
            sink.emit(err);
        }
    }
}
