//! Structural lints: combinational cycles and silent width truncation.

use crate::analysis::{self, significant_bits};
use crate::{LintPass, LintSink};
use hwdbg_dataflow::{tarjan_scc, Design};
use hwdbg_diag::{ErrorCode, HwdbgError};
use hwdbg_rtl::{print_lvalue, BinaryOp, Expr, Stmt, UnaryOp};
use std::collections::{BTreeMap, BTreeSet};

/// `L0201`: a cycle among combinational drivers. The simulator's settling
/// loop will hit its iteration cap at runtime; hardware oscillates or
/// settles to a timing-dependent value. Finding the strongly connected
/// components statically names every signal on the cycle.
pub struct CombLoopPass;

impl LintPass for CombLoopPass {
    fn id(&self) -> &'static str {
        "comb-loop"
    }

    fn codes(&self) -> &'static [ErrorCode] {
        &[ErrorCode::LintCombLoop]
    }

    fn run(&self, design: &Design, sink: &mut LintSink<'_>) {
        // Nodes: comb-written signals. Edge w -> r when w's driver reads r
        // and r is itself comb-written (registers and inputs break cycles).
        let mut comb_written: BTreeSet<&str> = BTreeSet::new();
        for comb in &design.combs {
            comb_written.extend(comb.writes.iter().map(String::as_str));
        }
        let nodes: Vec<&str> = comb_written.iter().copied().collect();
        let index: BTreeMap<&str, usize> =
            nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
        let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); nodes.len()];
        for comb in &design.combs {
            for w in &comb.writes {
                let Some(&wi) = index.get(w.as_str()) else {
                    continue;
                };
                for r in &comb.reads {
                    if let Some(&ri) = index.get(r.as_str()) {
                        adj[wi].insert(ri);
                    }
                }
            }
        }
        for scc in tarjan_scc(&adj) {
            let cyclic = scc.len() > 1 || adj[scc[0]].contains(&scc[0]);
            if !cyclic {
                continue;
            }
            let names: Vec<&str> = scc.iter().map(|&i| nodes[i]).collect();
            let mut err = HwdbgError::warning(
                ErrorCode::LintCombLoop,
                format!(
                    "combinational loop through {}: each driver reads another's \
                     output, so the logic never settles",
                    names
                        .iter()
                        .map(|n| format!("`{n}`"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            )
            .with_signals(names.iter().copied());
            if let Some(decl) = names.first().and_then(|n| design.flat.net(n)) {
                err = err.with_span(decl.span);
            }
            sink.emit(err);
        }
    }
}

/// `L0202`: an assignment whose right-hand side carries more significant
/// bits than the target holds. Verilog truncates silently; the paper's
/// bit-truncation bugs (e.g. a 64-bit intermediate stored in a 32-bit
/// temporary) corrupt data with no simulation-time signal.
///
/// The *effective* width refines the declared width: unsized literals and
/// parameter references count only their significant bits, comparisons are
/// one bit, and shifts keep the left operand's width — so idiomatic code
/// like `ptr <= ptr + 1` stays clean.
pub struct WidthTruncationPass;

impl LintPass for WidthTruncationPass {
    fn id(&self) -> &'static str {
        "width-truncation"
    }

    fn codes(&self) -> &'static [ErrorCode] {
        &[ErrorCode::LintWidthTruncation]
    }

    fn run(&self, design: &Design, sink: &mut LintSink<'_>) {
        let bodies = design
            .procs
            .iter()
            .map(|p| &p.body)
            .chain(design.combs.iter().map(|c| &c.body));
        for body in bodies {
            let mut guards = Vec::new();
            analysis::walk(body, &mut guards, &mut |_, stmt| {
                let Stmt::Assign { lhs, rhs, span, .. } = stmt else {
                    return;
                };
                let Some(lw) = design.lvalue_width(lhs) else {
                    return;
                };
                // Signed arithmetic sign-extends rather than truncating
                // value bits; stay silent there.
                if lhs
                    .target_names()
                    .iter()
                    .chain(rhs.idents().iter())
                    .any(|n| design.signals.get(*n).is_some_and(|s| s.signed))
                {
                    return;
                }
                let Some(rw) = eff_width(design, rhs) else {
                    return;
                };
                if rw > lw {
                    sink.emit(
                        HwdbgError::warning(
                            ErrorCode::LintWidthTruncation,
                            format!(
                                "right-hand side carries {rw} significant bits but \
                                 `{}` holds {lw}; the top {} bits are silently dropped",
                                print_lvalue(lhs),
                                rw - lw
                            ),
                        )
                        .with_span(*span),
                    );
                }
            });
        }
    }
}

/// Effective (value-carrying) width of an expression, or `None` when it
/// cannot be determined.
fn eff_width(design: &Design, e: &Expr) -> Option<u32> {
    match e {
        Expr::Literal { value, sized } => Some(if *sized {
            value.width()
        } else {
            significant_bits(value)
        }),
        Expr::Ident(n) => design
            .signals
            .get(n)
            .map(|s| s.width)
            .or_else(|| design.consts.get(n).map(significant_bits)),
        Expr::Unary(op, inner) => match op {
            UnaryOp::Not | UnaryOp::Neg => eff_width(design, inner),
            _ => Some(1),
        },
        Expr::Binary(op, a, b) => {
            if op.is_boolean() {
                Some(1)
            } else {
                match op {
                    BinaryOp::Shl | BinaryOp::Shr | BinaryOp::AShr => eff_width(design, a),
                    _ => Some(eff_width(design, a)?.max(eff_width(design, b)?)),
                }
            }
        }
        Expr::Ternary(_, t, f) => Some(eff_width(design, t)?.max(eff_width(design, f)?)),
        Expr::SignCast(_, inner) => eff_width(design, inner),
        // Concats, repeats, selects, and casts are exact-width constructs;
        // the design's width rules are already the effective width.
        _ => design.expr_width(e),
    }
}
