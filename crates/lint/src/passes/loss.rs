//! Signal-loss lints: the paper's LossCheck class, applied statically.
//!
//! A value is "lost" when a write can never be observed: overwritten on the
//! same path before the flop updates, stored in a register nothing reads,
//! dropped because a sticky error flag gates the datapath shut, or thrown
//! away because a re-init branch forgot one register.

use crate::analysis::{self, conjunct_key, conjuncts, ident_leaf, Guard};
use crate::{LintPass, LintSink};
use hwdbg_bits::Bits;
use hwdbg_dataflow::Design;
use hwdbg_diag::{ErrorCode, HwdbgError};
use hwdbg_rtl::{LValue, Span, Stmt};
use std::collections::{BTreeMap, BTreeSet};

/// Path identity of one statement: flattened `if` conjuncts plus case-arm
/// markers. `a ⊆ b` means the statement with key `a` executes whenever the
/// one with key `b` does (conservatively, over syntactic guards).
fn guard_keys(guards: &[Guard<'_>]) -> BTreeSet<String> {
    let mut keys: BTreeSet<String> = conjuncts(guards).iter().map(conjunct_key).collect();
    for g in guards {
        if !matches!(g, Guard::Cond { .. }) {
            keys.insert(analysis::path_key(std::slice::from_ref(g)));
        }
    }
    keys
}

/// `L0401`: a nonblocking whole-register write that a later write in the
/// same block overwrites on every path where the first executes. The first
/// write can never reach the flop.
pub struct DeadWritePass;

impl LintPass for DeadWritePass {
    fn id(&self) -> &'static str {
        "dead-write"
    }

    fn codes(&self) -> &'static [ErrorCode] {
        &[ErrorCode::LintDeadWrite]
    }

    fn run(&self, design: &Design, sink: &mut LintSink<'_>) {
        for proc in &design.procs {
            // (signal, guard keys, span, rhs reads signal) in source order.
            let mut writes: Vec<(&str, BTreeSet<String>, Span, bool)> = Vec::new();
            let mut guards = Vec::new();
            analysis::walk(&proc.body, &mut guards, &mut |guards, stmt| {
                let Stmt::Assign {
                    lhs: LValue::Id(name),
                    nonblocking: true,
                    rhs,
                    span,
                } = stmt
                else {
                    return;
                };
                writes.push((
                    name,
                    guard_keys(guards),
                    *span,
                    rhs.idents().contains(&name.as_str()),
                ));
            });
            for (i, (name, keys_i, span_i, _)) in writes.iter().enumerate() {
                let dead = writes.iter().skip(i + 1).any(|(n2, keys_j, _, self_ref)| {
                    n2 == name && !self_ref && keys_j.is_subset(keys_i)
                });
                if dead {
                    sink.emit(
                        HwdbgError::warning(
                            ErrorCode::LintDeadWrite,
                            format!(
                                "nonblocking write to `{name}` is dead: a later write \
                                 in the same block executes on every path this one \
                                 does and overwrites it before the flop updates"
                            ),
                        )
                        .with_span(*span_i)
                        .with_signal(*name),
                    );
                }
            }
        }
    }
}

/// `L0402`/`L0403`: liveness of values. An internal signal nothing reads
/// (`L0402`) loses every value written to it; an input that only reaches
/// `$display` statements (`L0403`) is debug-observed but functionally
/// ignored — usually a wiring mistake.
pub struct LivenessPass;

impl LintPass for LivenessPass {
    fn id(&self) -> &'static str {
        "liveness"
    }

    fn codes(&self) -> &'static [ErrorCode] {
        &[ErrorCode::LintNeverRead, ErrorCode::LintInputIgnored]
    }

    fn run(&self, design: &Design, sink: &mut LintSink<'_>) {
        let inputs = analysis::input_ports(design);
        let outputs = analysis::output_ports(design);
        let mut logic: BTreeSet<&str> = BTreeSet::new();
        let mut display: BTreeSet<&str> = BTreeSet::new();
        for body in design
            .procs
            .iter()
            .map(|p| &p.body)
            .chain(design.combs.iter().map(|c| &c.body))
        {
            scan_reads(body, &mut logic, &mut display);
        }
        for proc in &design.procs {
            logic.extend(proc.edges.iter().map(|e| e.signal.as_str()));
        }
        for bb in &design.blackboxes {
            for conn in bb.in_conns.values() {
                logic.extend(conn.idents());
            }
            // Index expressions inside out-connection lvalues are reads.
            for lv in bb.out_conns.values() {
                scan_lvalue_reads(lv, &mut logic);
            }
        }

        for name in design.signals.keys() {
            let name = name.as_str();
            if logic.contains(name) || display.contains(name) {
                continue;
            }
            if inputs.contains(name) || outputs.contains(name) {
                continue;
            }
            let mut err = HwdbgError::warning(
                ErrorCode::LintNeverRead,
                format!("`{name}` is never read; every value written to it is lost"),
            )
            .with_signal(name);
            if let Some(decl) = design.flat.net(name) {
                err = err.with_span(decl.span);
            }
            sink.emit(err);
        }
        for name in &inputs {
            let name = name.as_str();
            if display.contains(name) && !logic.contains(name) {
                let mut err = HwdbgError::warning(
                    ErrorCode::LintInputIgnored,
                    format!(
                        "input `{name}` only reaches $display statements; no logic \
                         consumes it"
                    ),
                )
                .with_signal(name);
                if let Some(decl) = design.flat.net(name) {
                    err = err.with_span(decl.span);
                }
                sink.emit(err);
            }
        }
    }
}

fn scan_reads<'a>(stmt: &'a Stmt, logic: &mut BTreeSet<&'a str>, display: &mut BTreeSet<&'a str>) {
    match stmt {
        Stmt::Block(stmts) => {
            for s in stmts {
                scan_reads(s, logic, display);
            }
        }
        Stmt::If { cond, then, els } => {
            logic.extend(cond.idents());
            scan_reads(then, logic, display);
            if let Some(e) = els {
                scan_reads(e, logic, display);
            }
        }
        Stmt::Case {
            expr,
            arms,
            default,
            ..
        } => {
            logic.extend(expr.idents());
            for arm in arms {
                for l in &arm.labels {
                    logic.extend(l.idents());
                }
                scan_reads(&arm.body, logic, display);
            }
            if let Some(d) = default {
                scan_reads(d, logic, display);
            }
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            logic.extend(init.idents());
            logic.extend(cond.idents());
            logic.extend(step.idents());
            scan_reads(body, logic, display);
        }
        Stmt::Assign { lhs, rhs, .. } => {
            logic.extend(rhs.idents());
            scan_lvalue_reads(lhs, logic);
        }
        Stmt::Display { args, .. } => {
            for a in args {
                display.extend(a.idents());
            }
        }
        Stmt::Finish | Stmt::Empty => {}
    }
}

/// Index/range expressions inside an lvalue are reads (the base is a write).
fn scan_lvalue_reads<'a>(lv: &'a LValue, logic: &mut BTreeSet<&'a str>) {
    match lv {
        LValue::Id(_) => {}
        LValue::Index(_, i) => logic.extend(i.idents()),
        LValue::Range(_, a, b) => {
            logic.extend(a.idents());
            logic.extend(b.idents());
        }
        LValue::Concat(parts) => {
            for p in parts {
                scan_lvalue_reads(p, logic);
            }
        }
    }
}

/// `L0404`: a sticky error/drop flag. A one-bit internal register that
/// resets to 0, is set to 1 somewhere, is never cleared outside reset, and
/// whose negation gates non-constant (datapath) writes: a single trigger
/// blocks traffic until the next reset — the paper's "filter stuck after
/// one malformed packet" class.
pub struct StickyFlagPass;

impl LintPass for StickyFlagPass {
    fn id(&self) -> &'static str {
        "sticky-flag"
    }

    fn codes(&self) -> &'static [ErrorCode] {
        &[ErrorCode::LintStickyFlag]
    }

    fn run(&self, design: &Design, sink: &mut LintSink<'_>) {
        let outputs = analysis::output_ports(design);
        let resets = analysis::reset_inputs(design);
        struct FlagInfo {
            first_set: Option<Span>,
            reset_clears: bool,
            disqualified: bool,
        }
        let mut flags: BTreeMap<&str, FlagInfo> = BTreeMap::new();
        let mut gated: BTreeSet<String> = BTreeSet::new();
        for proc in &design.procs {
            let mut guards = Vec::new();
            analysis::walk(&proc.body, &mut guards, &mut |guards, stmt| {
                let Stmt::Assign { lhs, rhs, span, .. } = stmt else {
                    return;
                };
                let rhs_const = analysis::const_value(rhs, design);
                // Non-constant writes gated by a negated flag mark that
                // flag as traffic-blocking.
                if rhs_const.is_none() {
                    for c in conjuncts(guards) {
                        if let Some((n, false)) = ident_leaf(&c) {
                            gated.insert(n.to_owned());
                        }
                    }
                }
                for name in lhs.target_names() {
                    let eligible = design.signals.get(name).is_some_and(|s| {
                        s.width == 1 && s.mem_depth.is_none() && s.is_state()
                    }) && !outputs.contains(name);
                    if !eligible {
                        continue;
                    }
                    let info = flags.entry(name).or_insert(FlagInfo {
                        first_set: None,
                        reset_clears: false,
                        disqualified: false,
                    });
                    if !matches!(lhs, LValue::Id(_)) {
                        info.disqualified = true;
                        continue;
                    }
                    let in_reset = analysis::in_reset(guards, &resets);
                    match rhs_const.as_ref().map(|v| !v.is_zero()) {
                        Some(true) if !in_reset => {
                            info.first_set.get_or_insert(*span);
                        }
                        Some(false) if in_reset => info.reset_clears = true,
                        // Cleared or recomputed outside reset, or set
                        // from reset: not sticky.
                        _ => info.disqualified = true,
                    }
                }
            });
        }
        for (name, info) in flags {
            let (Some(span), true, false) = (info.first_set, info.reset_clears, info.disqualified)
            else {
                continue;
            };
            if !gated.contains(name) {
                continue;
            }
            sink.emit(
                HwdbgError::warning(
                    ErrorCode::LintStickyFlag,
                    format!(
                        "flag `{name}` is sticky: set here, cleared only by reset, \
                         and `!{name}` gates datapath writes — one trigger blocks \
                         traffic until reset"
                    ),
                )
                .with_span(span)
                .with_signal(name),
            );
        }
    }
}

/// `L0405`: an incomplete re-initialization branch. When a non-reset path
/// rewrites all-but-one of the registers the reset block initializes, each
/// to its exact reset value, the one register left out (and holding
/// residue from the previous run — it feeds back into itself) is almost
/// certainly a forgotten `x <= RESET_VALUE`.
pub struct ReinitPass;

impl LintPass for ReinitPass {
    fn id(&self) -> &'static str {
        "incomplete-reinit"
    }

    fn codes(&self) -> &'static [ErrorCode] {
        &[ErrorCode::LintIncompleteReinit]
    }

    fn run(&self, design: &Design, sink: &mut LintSink<'_>) {
        let resets = analysis::reset_inputs(design);
        for proc in &design.procs {
            // Registers the reset branch initializes, with their values.
            let mut reset_map: BTreeMap<&str, Bits> = BTreeMap::new();
            // Registers with a self-referential write in this process.
            let mut self_ref: BTreeSet<&str> = BTreeSet::new();
            // Non-reset paths: constant re-init members and all writes.
            struct Group<'a> {
                consts: Vec<(&'a str, Bits, Span)>,
                written: BTreeSet<&'a str>,
            }
            let mut groups: BTreeMap<String, Group<'_>> = BTreeMap::new();

            let mut guards = Vec::new();
            analysis::walk(&proc.body, &mut guards, &mut |guards, stmt| {
                let Stmt::Assign { lhs, rhs, span, .. } = stmt else {
                    return;
                };
                if let LValue::Id(name) = lhs {
                    if rhs.idents().contains(&name.as_str()) {
                        self_ref.insert(name);
                    }
                }
                let in_reset = analysis::in_reset(guards, &resets);
                let cval = analysis::const_value(rhs, design).and_then(|v| {
                    let w = match lhs {
                        LValue::Id(n) => design.signals.get(n)?.width,
                        _ => return None,
                    };
                    Some(v.resize(w))
                });
                if in_reset {
                    // Only direct `if (rst)` members define the reset
                    // contract (deeper conditionals are not the plain
                    // init-everything block).
                    let direct = guards.len() == 1;
                    if let (LValue::Id(name), Some(v), true) = (lhs, cval, direct) {
                        reset_map.insert(name, v);
                    }
                    return;
                }
                let group = groups
                    .entry(analysis::path_key(guards))
                    .or_insert_with(|| Group {
                        consts: Vec::new(),
                        written: BTreeSet::new(),
                    });
                for t in lhs.target_names() {
                    group.written.insert(t);
                }
                if let (LValue::Id(name), Some(v)) = (lhs, cval) {
                    group.consts.push((name, v, *span));
                }
            });

            if reset_map.len() < 2 {
                continue;
            }
            for group in groups.values() {
                let members: Vec<&(&str, Bits, Span)> = group
                    .consts
                    .iter()
                    .filter(|(n, _, _)| reset_map.contains_key(n))
                    .collect();
                if members.len() < 2 {
                    continue;
                }
                if !members.iter().all(|(n, v, _)| reset_map.get(n) == Some(v)) {
                    continue;
                }
                let missing: Vec<&str> = reset_map
                    .keys()
                    .filter(|n| !group.written.contains(*n))
                    .copied()
                    .collect();
                let [lone] = missing[..] else { continue };
                if !self_ref.contains(lone) {
                    continue;
                }
                let names: Vec<String> =
                    members.iter().map(|(n, _, _)| format!("`{n}`")).collect();
                sink.emit(
                    HwdbgError::warning(
                        ErrorCode::LintIncompleteReinit,
                        format!(
                            "this branch re-initializes {} to their reset values but \
                             not `{lone}`; `{lone}` carries the previous run's value \
                             into the next",
                            names.join(", ")
                        ),
                    )
                    .with_span(members[0].2)
                    .with_signal(lone),
                );
            }
        }
    }
}
